//! Support for the figure/table binaries: a tiny CLI-argument helper and
//! shared formatting, so every exhibit binary has the same interface:
//!
//! ```text
//! cargo run --release -p flashcache-bench --bin fig4 -- [--scale N] [--paper] [--seed S]
//! ```
//!
//! `--paper` runs at the paper's full sizes; the default scale keeps each
//! binary in the seconds-to-a-couple-of-minutes range.

#![warn(missing_docs)]

pub mod parallel;
pub mod svg;

/// Parsed common arguments.
#[derive(Debug, Clone)]
pub struct RunArgs {
    /// Divisor applied to capacities/footprints (1 = paper scale).
    pub scale: u64,
    /// RNG seed announced and used by the experiment.
    pub seed: u64,
    /// Directory to save machine-readable `.dat` files into (`--out`).
    pub out_dir: Option<std::path::PathBuf>,
    /// Worker threads for sweep fan-out (`--threads N`, default = the
    /// machine's available parallelism).
    pub threads: usize,
    /// Destination for a JSON telemetry snapshot (`--json-metrics FILE`).
    pub json_metrics: Option<std::path::PathBuf>,
    /// Trace-event ring capacity (`--trace-events N`, default 256).
    pub trace_events: usize,
}

impl RunArgs {
    /// Parses `--scale N`, `--paper` (scale 1), `--seed S`,
    /// `--threads N`, `--json-metrics FILE` and `--trace-events N` from
    /// `std::env::args`, with `default_scale` when none is given.
    ///
    /// When `--json-metrics` is given this also installs the
    /// process-global [`flash_obs::ObsSink`], so every cache the
    /// experiment builds afterwards reports into it; call
    /// [`RunArgs::finish`] at the end of `main` to write the snapshot.
    pub fn parse(default_scale: u64) -> RunArgs {
        let mut scale = default_scale;
        let mut seed = 0x1507_2008u64;
        let mut out_dir = None;
        let mut threads = parallel::default_threads();
        let mut json_metrics = None;
        let mut trace_events = 256usize;
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--paper" => scale = 1,
                "--scale" => {
                    i += 1;
                    scale = args
                        .get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--scale needs a positive integer"));
                }
                "--seed" => {
                    i += 1;
                    seed = args
                        .get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--seed needs an integer"));
                }
                "--out" => {
                    i += 1;
                    out_dir = Some(std::path::PathBuf::from(
                        args.get(i)
                            .unwrap_or_else(|| die("--out needs a directory")),
                    ));
                }
                "--threads" => {
                    i += 1;
                    threads = args
                        .get(i)
                        .and_then(|v| v.parse().ok())
                        .filter(|&n: &usize| n >= 1)
                        .unwrap_or_else(|| die("--threads needs a positive integer"));
                }
                "--json-metrics" => {
                    i += 1;
                    json_metrics = Some(std::path::PathBuf::from(
                        args.get(i)
                            .unwrap_or_else(|| die("--json-metrics needs a path")),
                    ));
                }
                "--trace-events" => {
                    i += 1;
                    trace_events = args
                        .get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--trace-events needs a non-negative integer"));
                }
                "--bench" | "--quiet" => {} // passed through by `cargo bench`
                other => {
                    eprintln!("ignoring unknown argument: {other}");
                }
            }
            i += 1;
        }
        if scale == 0 {
            die::<u64>("--scale must be at least 1");
        }
        if json_metrics.is_some() {
            flash_obs::install_global_sink(std::sync::Arc::new(flash_obs::ObsSink::with_capacity(
                trace_events,
            )));
        }
        RunArgs {
            scale,
            seed,
            out_dir,
            threads,
            json_metrics,
            trace_events,
        }
    }

    /// Writes the process-global telemetry snapshot to the
    /// `--json-metrics` path, if one was given.
    ///
    /// Call this as the last statement of `main`, after the experiment
    /// has finished: caches flush their counters into the sink when
    /// dropped, so every cache the run built must be gone by then.
    pub fn finish(&self) {
        let Some(path) = &self.json_metrics else {
            return;
        };
        let Some(sink) = flash_obs::global_sink() else {
            return;
        };
        match std::fs::write(path, sink.snapshot().to_json()) {
            Ok(()) => println!("[metrics saved {}]", path.display()),
            Err(e) => eprintln!("could not save metrics to {}: {e}", path.display()),
        }
    }

    /// Prints the exhibit and, when `--out` was given, saves it as a
    /// `.dat` file, reporting the path.
    pub fn emit(&self, exhibit: &Exhibit) {
        exhibit.print();
        if let Some(dir) = &self.out_dir {
            match exhibit.save_dat(dir) {
                Ok(path) => println!("[saved {}]", path.display()),
                Err(e) => eprintln!("could not save {}: {e}", exhibit.name()),
            }
        }
        println!();
    }

    /// Prints the standard experiment header.
    pub fn announce(&self, exhibit: &str, description: &str) {
        println!("=== {exhibit}: {description} ===");
        println!(
            "scale: 1/{} of paper size{} | seed: {:#x}",
            self.scale,
            if self.scale == 1 {
                " (paper scale)"
            } else {
                ""
            },
            self.seed
        );
        println!();
    }
}

fn die<T>(msg: &str) -> T {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Formats a byte count as MB with the binary convention used in the
/// paper's figures.
pub fn fmt_mb(bytes: u64) -> String {
    format!("{}MB", bytes / (1 << 20))
}

/// A printable, exportable data table: one per figure/table series.
#[derive(Debug, Clone)]
pub struct Exhibit {
    name: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Exhibit {
    /// Creates an exhibit with the given snake_case name and columns.
    pub fn new(name: &str, columns: &[&str]) -> Exhibit {
        Exhibit {
            name: name.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// The exhibit name (used as the `.dat` file stem).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the column count.
    pub fn row<I: IntoIterator<Item = String>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().collect();
        assert_eq!(
            row.len(),
            self.columns.len(),
            "{}: row width mismatch",
            self.name
        );
        self.rows.push(row);
    }

    /// Prints the table with aligned columns.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let mut out = String::new();
            for (w, cell) in widths.iter().zip(cells) {
                out.push_str(&format!("{cell:>width$}  ", width = w));
            }
            println!("{}", out.trim_end());
        };
        line(&self.columns);
        for row in &self.rows {
            line(row);
        }
    }

    /// Saves as a gnuplot-friendly `.dat`: `#`-prefixed header then
    /// tab-separated rows. Returns the written path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (directory creation, write).
    pub fn save_dat(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.dat", self.name));
        let mut text = format!("# {}\n", self.columns.join("\t"));
        for row in &self.rows {
            text.push_str(&row.join("\t"));
            text.push('\n');
        }
        std::fs::write(&path, text)?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhibit_roundtrip() {
        let mut e = Exhibit::new("test_series", &["x", "y"]);
        e.row(["1".to_string(), "2.5".to_string()]);
        e.row(["2".to_string(), "5.0".to_string()]);
        let dir = std::env::temp_dir().join("flashcache_exhibit_test");
        let path = e.save_dat(&dir).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("# x\ty"));
        assert!(text.contains("1\t2.5"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn exhibit_rejects_ragged_rows() {
        let mut e = Exhibit::new("bad", &["a", "b"]);
        e.row(["only-one".to_string()]);
    }
}
