//! Parallel sweep runner for the figure binaries.
//!
//! The exhibit sweeps (per-`t` decode/lifetime points, per-workload
//! lifetime comparisons) are embarrassingly parallel: every point is an
//! independent simulation with its own seed. The implementation lives
//! in [`flashcache_engine::pool`] — the sharded engine drives its cache
//! shards with the same scoped thread pool — and is re-exported here so
//! existing `flashcache_bench::parallel::par_map` callers keep working.

pub use flashcache_engine::pool::{default_threads, par_map};
