//! A small, dependency-free SVG line-chart renderer for the exported
//! `.dat` series — turning each exhibit back into a figure.
//!
//! Not a general plotting library: exactly enough for the paper's
//! exhibits (numeric x, one or more numeric series, optional log-y).

use std::fmt::Write as _;

/// One plotted series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// (x, y) points in data space.
    pub points: Vec<(f64, f64)>,
}

/// Chart configuration.
#[derive(Debug, Clone)]
pub struct Chart {
    /// Title drawn above the plot.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Log-scale the y axis (used by lifetime plots).
    pub log_y: bool,
    /// Series to draw.
    pub series: Vec<Series>,
}

const WIDTH: f64 = 720.0;
const HEIGHT: f64 = 480.0;
const MARGIN_L: f64 = 84.0;
const MARGIN_R: f64 = 24.0;
const MARGIN_T: f64 = 48.0;
const MARGIN_B: f64 = 64.0;
const PALETTE: [&str; 6] = [
    "#2563eb", "#dc2626", "#16a34a", "#9333ea", "#ea580c", "#0891b2",
];

impl Chart {
    /// Renders the chart to an SVG document string.
    ///
    /// Series with fewer than one finite point are skipped; an entirely
    /// empty chart still renders axes.
    pub fn to_svg(&self) -> String {
        let (x_min, x_max, y_min, y_max) = self.bounds();
        let map_x = |x: f64| {
            MARGIN_L + (x - x_min) / (x_max - x_min).max(1e-300) * (WIDTH - MARGIN_L - MARGIN_R)
        };
        let map_y = |y: f64| {
            let v = if self.log_y { y.max(1e-300).log10() } else { y };
            let (lo, hi) = if self.log_y {
                (y_min.max(1e-300).log10(), y_max.max(1e-300).log10())
            } else {
                (y_min, y_max)
            };
            HEIGHT - MARGIN_B - (v - lo) / (hi - lo).max(1e-300) * (HEIGHT - MARGIN_T - MARGIN_B)
        };

        let mut svg = String::new();
        let _ = write!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}">"#
        );
        let _ = write!(
            svg,
            r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#
        );
        // Title and axis labels.
        let _ = write!(
            svg,
            r#"<text x="{}" y="28" font-family="sans-serif" font-size="16" text-anchor="middle" font-weight="bold">{}</text>"#,
            WIDTH / 2.0,
            escape(&self.title)
        );
        let _ = write!(
            svg,
            r#"<text x="{}" y="{}" font-family="sans-serif" font-size="13" text-anchor="middle">{}</text>"#,
            WIDTH / 2.0,
            HEIGHT - 16.0,
            escape(&self.x_label)
        );
        let _ = write!(
            svg,
            r#"<text x="20" y="{}" font-family="sans-serif" font-size="13" text-anchor="middle" transform="rotate(-90 20 {})">{}</text>"#,
            HEIGHT / 2.0,
            HEIGHT / 2.0,
            escape(&self.y_label)
        );
        // Axes box.
        let _ = write!(
            svg,
            r##"<rect x="{MARGIN_L}" y="{MARGIN_T}" width="{}" height="{}" fill="none" stroke="#333" stroke-width="1"/>"##,
            WIDTH - MARGIN_L - MARGIN_R,
            HEIGHT - MARGIN_T - MARGIN_B
        );
        // Ticks.
        for i in 0..=5 {
            let fx = i as f64 / 5.0;
            let x = x_min + fx * (x_max - x_min);
            let px = map_x(x);
            let _ = write!(
                svg,
                r##"<line x1="{px}" y1="{}" x2="{px}" y2="{}" stroke="#ccc" stroke-width="0.5"/>"##,
                MARGIN_T,
                HEIGHT - MARGIN_B
            );
            let _ = write!(
                svg,
                r#"<text x="{px}" y="{}" font-family="sans-serif" font-size="11" text-anchor="middle">{}</text>"#,
                HEIGHT - MARGIN_B + 18.0,
                format_tick(x)
            );
            let y = if self.log_y {
                10f64.powf(
                    y_min.max(1e-300).log10()
                        + fx * (y_max.max(1e-300).log10() - y_min.max(1e-300).log10()),
                )
            } else {
                y_min + fx * (y_max - y_min)
            };
            let py = map_y(y);
            let _ = write!(
                svg,
                r##"<line x1="{MARGIN_L}" y1="{py}" x2="{}" y2="{py}" stroke="#ccc" stroke-width="0.5"/>"##,
                WIDTH - MARGIN_R
            );
            let _ = write!(
                svg,
                r#"<text x="{}" y="{}" font-family="sans-serif" font-size="11" text-anchor="end">{}</text>"#,
                MARGIN_L - 6.0,
                py + 4.0,
                format_tick(y)
            );
        }
        // Series.
        for (i, s) in self.series.iter().enumerate() {
            let color = PALETTE[i % PALETTE.len()];
            let pts: Vec<(f64, f64)> = s
                .points
                .iter()
                .filter(|(x, y)| x.is_finite() && y.is_finite())
                .map(|&(x, y)| (map_x(x), map_y(y)))
                .collect();
            if pts.is_empty() {
                continue;
            }
            let path: Vec<String> = pts.iter().map(|(x, y)| format!("{x:.1},{y:.1}")).collect();
            let _ = write!(
                svg,
                r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="2"/>"#,
                path.join(" ")
            );
            for (x, y) in &pts {
                let _ = write!(
                    svg,
                    r#"<circle cx="{x:.1}" cy="{y:.1}" r="2.6" fill="{color}"/>"#
                );
            }
            // Legend entry.
            let ly = MARGIN_T + 16.0 + i as f64 * 18.0;
            let _ = write!(
                svg,
                r#"<line x1="{}" y1="{ly}" x2="{}" y2="{ly}" stroke="{color}" stroke-width="3"/>"#,
                MARGIN_L + 10.0,
                MARGIN_L + 34.0
            );
            let _ = write!(
                svg,
                r#"<text x="{}" y="{}" font-family="sans-serif" font-size="12">{}</text>"#,
                MARGIN_L + 40.0,
                ly + 4.0,
                escape(&s.label)
            );
        }
        svg.push_str("</svg>");
        svg
    }

    fn bounds(&self) -> (f64, f64, f64, f64) {
        let mut x_min = f64::INFINITY;
        let mut x_max = f64::NEG_INFINITY;
        let mut y_min = f64::INFINITY;
        let mut y_max = f64::NEG_INFINITY;
        for s in &self.series {
            for &(x, y) in &s.points {
                if x.is_finite() && y.is_finite() {
                    x_min = x_min.min(x);
                    x_max = x_max.max(x);
                    y_min = y_min.min(y);
                    y_max = y_max.max(y);
                }
            }
        }
        if !x_min.is_finite() {
            return (0.0, 1.0, 0.0, 1.0);
        }
        if (x_max - x_min).abs() < 1e-300 {
            x_max = x_min + 1.0;
        }
        if (y_max - y_min).abs() < 1e-300 {
            y_max = y_min + 1.0;
        }
        if !self.log_y {
            y_min = y_min.min(0.0);
        }
        (x_min, x_max, y_min, y_max)
    }
}

/// Parses a `.dat` file (as written by [`crate::Exhibit::save_dat`])
/// into a chart: first numeric column = x, remaining numeric columns =
/// series. Returns `None` when fewer than two numeric columns exist.
pub fn chart_from_dat(name: &str, text: &str, log_y: bool) -> Option<Chart> {
    let mut lines = text.lines();
    let header = lines.next()?.trim_start_matches('#');
    let columns: Vec<&str> = header.split('\t').map(str::trim).collect();
    let rows: Vec<Vec<&str>> = lines
        .filter(|l| !l.trim().is_empty())
        .map(|l| l.split('\t').map(str::trim).collect())
        .collect();
    if rows.is_empty() {
        return None;
    }
    // Numeric columns: every row parses.
    let numeric: Vec<usize> = (0..columns.len())
        .filter(|&c| {
            rows.iter()
                .all(|r| r.get(c).is_some_and(|v| v.parse::<f64>().is_ok()))
        })
        .collect();
    if numeric.len() < 2 {
        return None;
    }
    let x_col = numeric[0];
    let series = numeric[1..]
        .iter()
        .map(|&c| Series {
            label: columns[c].to_string(),
            points: rows
                .iter()
                .map(|r| {
                    (
                        r[x_col].parse::<f64>().expect("checked numeric"),
                        r[c].parse::<f64>().expect("checked numeric"),
                    )
                })
                .collect(),
        })
        .collect();
    Some(Chart {
        title: name.to_string(),
        x_label: columns[x_col].to_string(),
        y_label: String::new(),
        log_y,
        series,
    })
}

fn format_tick(v: f64) -> String {
    let a = v.abs();
    if a == 0.0 {
        "0".to_string()
    } else if !(1e-2..1e5).contains(&a) {
        format!("{v:.1e}")
    } else if a >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_basic_chart() {
        let chart = Chart {
            title: "Miss rate".to_string(),
            x_label: "flash (MB)".to_string(),
            y_label: "miss %".to_string(),
            log_y: false,
            series: vec![
                Series {
                    label: "unified".to_string(),
                    points: vec![(128.0, 55.0), (256.0, 40.0), (640.0, 25.0)],
                },
                Series {
                    label: "split".to_string(),
                    points: vec![(128.0, 53.0), (256.0, 36.0), (640.0, 17.0)],
                },
            ],
        };
        let svg = chart.to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("polyline"));
        assert!(svg.contains("unified"));
        assert!(svg.contains("Miss rate"));
        // Two series, two polylines.
        assert_eq!(svg.matches("<polyline").count(), 2);
    }

    #[test]
    fn log_scale_handles_decades() {
        let chart = Chart {
            title: "lifetime".to_string(),
            x_label: "t".to_string(),
            y_label: "cycles".to_string(),
            log_y: true,
            series: vec![Series {
                label: "stdev0".to_string(),
                points: (0..10).map(|t| (t as f64, 1e5 * 2f64.powi(t))).collect(),
            }],
        };
        let svg = chart.to_svg();
        assert!(svg.contains("polyline"));
    }

    #[test]
    fn empty_chart_still_renders_axes() {
        let chart = Chart {
            title: "empty".to_string(),
            x_label: "x".to_string(),
            y_label: "y".to_string(),
            log_y: false,
            series: vec![],
        };
        let svg = chart.to_svg();
        assert!(svg.contains("<rect"));
        assert_eq!(svg.matches("<polyline").count(), 0);
    }

    #[test]
    fn dat_parsing_picks_numeric_columns() {
        let text = "# workload\tecc\tdensity\nuniform\t10\t1\nalpha1\t7\t3\n";
        // First column is text -> x becomes `ecc`, series `density`.
        let chart = chart_from_dat("fig11", text, false).unwrap();
        assert_eq!(chart.series.len(), 1);
        assert_eq!(chart.series[0].label, "density");
        assert_eq!(chart.series[0].points, vec![(10.0, 1.0), (7.0, 3.0)]);
    }

    #[test]
    fn dat_without_numbers_is_rejected() {
        assert!(chart_from_dat("x", "# a\tb\nfoo\tbar\n", false).is_none());
        assert!(chart_from_dat("x", "# a\tb\n", false).is_none());
    }

    #[test]
    fn escapes_markup() {
        assert_eq!(escape("a<b&c"), "a&lt;b&amp;c");
    }
}
