//! Figure 10: average throughput as a function of (uniform) BCH code
//! strength, SPECWeb99 and dbt2, 256MB DRAM + 1GB flash.

use disk_trace::WorkloadSpec;
use flashcache_bench::{Exhibit, RunArgs};
use flashcache_sim::experiments::ecc_throughput::{ecc_throughput_curve, EccThroughputParams};

fn main() {
    let args = RunArgs::parse(16);
    args.announce("Figure 10", "relative bandwidth vs BCH strength");
    for (name, workload) in [
        ("fig10_specweb99", WorkloadSpec::specweb99()),
        ("fig10_dbt2", WorkloadSpec::dbt2()),
    ] {
        let mut params = EccThroughputParams::paper(workload).scaled(args.scale);
        params.seed = args.seed;
        println!("-- {}", params.workload.name);
        let mut exhibit = Exhibit::new(name, &["strength", "network_mbps", "relative_bandwidth"]);
        for p in ecc_throughput_curve(&params) {
            exhibit.row([
                format!("{}", p.strength),
                format!("{:.2}", p.network_mbps),
                format!("{:.3}", p.relative_bandwidth),
            ]);
        }
        args.emit(&exhibit);
    }
    args.finish();
}
