//! `bench_admission`: the four-way admission/longevity ablation, emitted
//! as machine-readable JSON (`BENCH_admission.json`).
//!
//! Replays one fixed Zipf trace (alpha1, write-bearing) through four
//! cache variants — unified, split (the paper's design, the baseline),
//! split + re-reference admission, split + admission + longevity
//! bucketing — and reports per variant the flash bytes programmed,
//! erases, mean block wear, read miss rate, and the projected lifetime
//! relative to the split baseline (∝ 1 / mean block erases).
//!
//! Usage: `bench_admission [--requests N] [--seed N] [--smoke]
//! [--out PATH] [--buckets N] [--window N]`
//!
//! The run asserts the PR's acceptance criteria: the full variant must
//! program fewer flash bytes and project a longer lifetime than the
//! split baseline while degrading the read miss rate by less than two
//! points absolute (CI re-checks with `--smoke` on every push).

use disk_trace::WorkloadSpec;
use flash_obs::JsonValue;
use flashcache_sim::experiments::admission::{run_ablation, AblationParams, AblationRow};

struct Args {
    requests: u64,
    seed: u64,
    smoke: bool,
    out: String,
    buckets: u32,
    window: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        requests: 200_000,
        seed: 0x5EED,
        smoke: false,
        out: "BENCH_admission.json".to_string(),
        buckets: 4,
        window: 65_536,
    };
    let mut requests_set = false;
    let mut window_set = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match a.as_str() {
            "--requests" => {
                args.requests = val("--requests").parse().expect("request count");
                requests_set = true;
            }
            "--seed" => args.seed = val("--seed").parse().expect("seed"),
            "--smoke" => args.smoke = true,
            "--out" => args.out = val("--out"),
            "--buckets" => args.buckets = val("--buckets").parse().expect("bucket count"),
            "--window" => {
                args.window = val("--window").parse().expect("window");
                window_set = true;
            }
            other => panic!("unknown flag {other}"),
        }
    }
    if args.smoke {
        if !requests_set {
            args.requests = 20_000;
        }
        if !window_set {
            args.window = 16_384;
        }
    }
    args
}

fn row_json(row: &AblationRow, baseline: &AblationRow) -> JsonValue {
    let round2 = |x: f64| (x * 100.0).round() / 100.0;
    let round4 = |x: f64| (x * 10_000.0).round() / 10_000.0;
    JsonValue::Object(vec![
        ("variant".into(), JsonValue::String(row.variant.clone())),
        (
            "read_miss_rate".into(),
            JsonValue::Number(round4(row.read_miss_rate)),
        ),
        ("flash_programs".into(), JsonValue::UInt(row.flash_programs)),
        (
            "flash_bytes_written".into(),
            JsonValue::UInt(row.flash_bytes_written),
        ),
        (
            "admitted_write_bytes".into(),
            JsonValue::UInt(row.admitted_write_bytes),
        ),
        ("erases".into(), JsonValue::UInt(row.erases)),
        (
            "mean_block_erases".into(),
            JsonValue::Number(round2(row.mean_block_erases)),
        ),
        ("rejected_fills".into(), JsonValue::UInt(row.rejected_fills)),
        (
            "rejected_writes".into(),
            JsonValue::UInt(row.rejected_writes),
        ),
        (
            "coalesced_writes".into(),
            JsonValue::UInt(row.coalesced_writes),
        ),
        ("gc_moved_pages".into(), JsonValue::UInt(row.gc_moved_pages)),
        (
            "lifetime_vs_split".into(),
            JsonValue::Number(round2(row.lifetime_vs(baseline))),
        ),
    ])
}

fn main() {
    let args = parse_args();

    // alpha1 = Zipf(0.8) over 512MB (§6.2, Table 4); the footprint is
    // scaled so the half-working-set flash warms up within the trace
    // (smoke shrinks both further).
    let workload = if args.smoke {
        WorkloadSpec::alpha1().scaled(512)
    } else {
        WorkloadSpec::alpha1().scaled(16)
    };
    let params = AblationParams {
        workload,
        warmup_accesses: args.requests / 2,
        measured_accesses: args.requests,
        seed: args.seed,
        reref_k: 1,
        reref_window: args.window,
        longevity_buckets: args.buckets,
    };
    println!(
        "bench_admission: {} measured accesses of {} ({}% writes), \
         reref k={} window={}, {} longevity buckets",
        params.measured_accesses,
        params.workload.name,
        (params.workload.write_fraction * 100.0).round(),
        params.reref_k,
        params.reref_window,
        params.longevity_buckets
    );

    let rows = run_ablation(&params);
    let split = rows[1].clone();
    assert_eq!(split.variant, "split");
    for row in &rows {
        println!(
            "  {:<26} miss {:.4}  programs {:>8}  erases {:>6}  mean wear {:>7.2}  \
             rejected {:>7}  lifetime vs split {:.2}x",
            row.variant,
            row.read_miss_rate,
            row.flash_programs,
            row.erases,
            row.mean_block_erases,
            row.rejected_fills + row.rejected_writes,
            row.lifetime_vs(&split),
        );
    }

    let doc = JsonValue::Object(vec![
        (
            "workload".into(),
            JsonValue::String(format!(
                "{} (Zipf 0.8), {}% writes, {} pages footprint",
                params.workload.name,
                (params.workload.write_fraction * 100.0).round(),
                params.workload.footprint_pages
            )),
        ),
        (
            "warmup_accesses".into(),
            JsonValue::UInt(params.warmup_accesses),
        ),
        (
            "measured_accesses".into(),
            JsonValue::UInt(params.measured_accesses),
        ),
        ("seed".into(), JsonValue::UInt(params.seed)),
        ("reref_k".into(), JsonValue::UInt(u64::from(params.reref_k))),
        ("reref_window".into(), JsonValue::UInt(params.reref_window)),
        (
            "longevity_buckets".into(),
            JsonValue::UInt(u64::from(params.longevity_buckets)),
        ),
        (
            "lifetime_model".into(),
            JsonValue::String(
                "projected lifetime ∝ 1 / mean block erase count at end of run, \
                 normalized to the split baseline"
                    .into(),
            ),
        ),
        (
            "variants".into(),
            JsonValue::Array(rows.iter().map(|r| row_json(r, &split)).collect()),
        ),
    ]);
    std::fs::write(&args.out, doc.render() + "\n").expect("write benchmark output");
    println!("wrote {}", args.out);

    // Acceptance criteria (vs the split baseline).
    let full = &rows[3];
    assert_eq!(full.variant, "split+admission+longevity");
    assert!(
        full.flash_bytes_written < split.flash_bytes_written,
        "admission must reduce flash bytes written: {} vs split {}",
        full.flash_bytes_written,
        split.flash_bytes_written
    );
    let lifetime = full.lifetime_vs(&split);
    assert!(
        lifetime > 1.0,
        "projected lifetime must improve vs split: {lifetime:.3}x"
    );
    assert!(
        full.read_miss_rate < split.read_miss_rate + 0.02,
        "read miss rate must stay within 2 points of split: {:.4} vs {:.4}",
        full.read_miss_rate,
        split.read_miss_rate
    );
    println!(
        "OK: flash bytes {:.1}% of split, lifetime {lifetime:.2}x, \
         read miss {:+.2} points",
        100.0 * full.flash_bytes_written as f64 / split.flash_bytes_written.max(1) as f64,
        100.0 * (full.read_miss_rate - split.read_miss_rate)
    );
}
