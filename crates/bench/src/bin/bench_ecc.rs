//! `bench_ecc`: before/after timings for the ECC kernels, emitted as
//! machine-readable JSON.
//!
//! For each code strength it times the retained bit-serial/reference
//! kernels against the table-driven replacements on the 2KB flash-page
//! geometry (GF(2^15)), asserting bit-identical results while it
//! measures, then times the figure-12 lifetime sweep serial vs fanned
//! across `--threads` workers. Results land in `BENCH_ecc.json` in the
//! current directory (the workspace root under `cargo run`).

use std::hint::black_box;
use std::time::{Duration, Instant};

use flash_ecc::BchCode;
use flashcache_bench::{parallel::par_map, RunArgs};
use flashcache_core::ControllerPolicy;
use flashcache_sim::experiments::lifetime::{fig12_workloads, lifetime_accesses, LifetimeParams};

const STRENGTHS: [usize; 4] = [1, 4, 8, 12];
const PAGE_BYTES: usize = 2048;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn random_page(seed: u64) -> Vec<u8> {
    let mut state = seed;
    (0..PAGE_BYTES)
        .map(|_| splitmix(&mut state) as u8)
        .collect()
}

/// Distinct bit positions within the data payload, deterministically.
fn error_positions(seed: u64, count: usize) -> Vec<usize> {
    let mut state = seed;
    let mut picked = Vec::new();
    while picked.len() < count {
        let p = (splitmix(&mut state) % (PAGE_BYTES as u64 * 8)) as usize;
        if !picked.contains(&p) {
            picked.push(p);
        }
    }
    picked
}

/// Mean ns per call over a ~200ms measurement window.
fn time_ns(mut f: impl FnMut()) -> f64 {
    for _ in 0..3 {
        f();
    }
    let budget = Duration::from_millis(200);
    let start = Instant::now();
    let mut iters = 0u64;
    loop {
        f();
        iters += 1;
        if start.elapsed() >= budget {
            break;
        }
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn json_num(x: f64) -> String {
    format!("{x:.1}")
}

fn main() {
    let args = RunArgs::parse(8192);
    println!(
        "bench_ecc: 2KB page over GF(2^15), t in {STRENGTHS:?}, threads={}",
        args.threads
    );

    let mut encode_rows = Vec::new();
    let mut decode_rows = Vec::new();
    for (k, &t) in STRENGTHS.iter().enumerate() {
        let code = BchCode::for_flash_page(t);
        let data = random_page(args.seed ^ (k as u64) << 16);

        // Encode: bit-serial oracle vs table-driven, proven identical.
        let parity = code.encode(&data);
        assert_eq!(
            parity,
            code.encode_bitserial(&data),
            "t={t}: table-driven encode diverged from the bit-serial oracle"
        );
        let bitserial_ns = time_ns(|| {
            black_box(code.encode_bitserial(black_box(&data)));
        });
        let table_ns = time_ns(|| {
            black_box(code.encode(black_box(&data)));
        });
        println!(
            "encode  t={t:>2}: bitserial {bitserial_ns:>12.1} ns  table {table_ns:>10.1} ns  ({:.1}x)",
            bitserial_ns / table_ns
        );
        encode_rows.push(format!(
            "{{\"t\":{t},\"bitserial_ns\":{},\"table_ns\":{},\"speedup\":{:.2}}}",
            json_num(bitserial_ns),
            json_num(table_ns),
            bitserial_ns / table_ns
        ));

        // Decode pipeline on a page corrupted with t bit errors:
        // syndromes -> Berlekamp-Massey -> Chien, reference vs fast.
        let mut corrupted = data.clone();
        for p in error_positions(args.seed ^ 0xE44, t) {
            corrupted[p / 8] ^= 0x80 >> (p % 8);
        }
        let syn_fast = code.syndromes(&corrupted, &parity);
        let syn_ref = code.syndromes_reference(&corrupted, &parity);
        assert_eq!(syn_fast, syn_ref, "t={t}: fast syndromes diverged");
        let sigma = code.berlekamp_massey(&syn_fast);
        assert_eq!(
            code.chien_search(&sigma),
            code.chien_search_reference(&sigma),
            "t={t}: batched Chien search diverged"
        );
        let reference_ns = time_ns(|| {
            let s = code.syndromes_reference(black_box(&corrupted), black_box(&parity));
            let sigma = code.berlekamp_massey(&s);
            black_box(code.chien_search_reference(&sigma));
        });
        let fast_ns = time_ns(|| {
            let s = code.syndromes(black_box(&corrupted), black_box(&parity));
            let sigma = code.berlekamp_massey(&s);
            black_box(code.chien_search(&sigma));
        });
        println!(
            "decode  t={t:>2}: reference {reference_ns:>12.1} ns  fast  {fast_ns:>10.1} ns  ({:.1}x)",
            reference_ns / fast_ns
        );
        decode_rows.push(format!(
            "{{\"t\":{t},\"errors\":{t},\"reference_ns\":{},\"fast_ns\":{},\"speedup\":{:.2}}}",
            json_num(reference_ns),
            json_num(fast_ns),
            reference_ns / fast_ns
        ));
    }

    // Figure-12 sweep wall time, serial vs fanned out. The default
    // `--scale 8192` keeps this in the low seconds; pass `--scale 256
    // --paper`-style values for a fuller sweep.
    let params = LifetimeParams {
        scale: args.scale,
        seed: args.seed,
        ..LifetimeParams::default()
    };
    let runs: Vec<_> = fig12_workloads()
        .iter()
        .flat_map(|w| {
            let scaled = w.clone().scaled(params.scale);
            [
                (scaled.clone(), ControllerPolicy::Programmable),
                (scaled, ControllerPolicy::FixedEcc { strength: 1 }),
            ]
        })
        .collect();
    let run_sweep = |threads: usize| {
        let start = Instant::now();
        let out = par_map(runs.clone(), threads, |(w, c)| {
            lifetime_accesses(&w, c, &params)
        });
        (start.elapsed().as_secs_f64(), out)
    };
    let (serial_s, serial_out) = run_sweep(1);
    let (parallel_s, parallel_out) = run_sweep(args.threads);
    assert_eq!(serial_out, parallel_out, "parallel sweep changed results");
    println!(
        "fig12 sweep (scale {}): serial {serial_s:.2}s  {} threads {parallel_s:.2}s",
        params.scale, args.threads
    );

    let json = format!(
        "{{\n  \"page_bytes\": {PAGE_BYTES},\n  \"field\": \"GF(2^15)\",\n  \"time_unit\": \"ns_per_page\",\n  \"encode\": [\n    {}\n  ],\n  \"decode\": [\n    {}\n  ],\n  \"fig12_sweep\": {{\"scale\": {}, \"threads\": {}, \"serial_s\": {serial_s:.3}, \"parallel_s\": {parallel_s:.3}}}\n}}\n",
        encode_rows.join(",\n    "),
        decode_rows.join(",\n    "),
        params.scale,
        args.threads
    );
    let path = "BENCH_ecc.json";
    std::fs::write(path, json).expect("write BENCH_ecc.json");
    println!("[saved {path}]");
    args.finish();
}
