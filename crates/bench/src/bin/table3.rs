//! Table 3: the simulator configuration parameters.

use flash_ecc::EccLatencyModel;
use flashcache_bench::RunArgs;
use flashcache_sim::ServerConfig;
use nand_flash::FlashTiming;
use storage_model::{DramModel, HddModel};

fn main() {
    let args = RunArgs::parse(1);
    args.announce("Table 3", "configuration parameters");
    let server = ServerConfig::default();
    let dram = DramModel::default();
    let t = FlashTiming::default();
    let ecc = EccLatencyModel::default();
    let hdd = HddModel::travelstar();
    println!(
        "processor:        {} cores, in-order (modelled via bottleneck analysis)",
        server.cores
    );
    println!(
        "DRAM:             128MB..512MB, tRC = {:.0}ns",
        dram.access_latency_ns
    );
    println!(
        "NAND flash:       256MB..2GB; read {:.0}us(SLC)/{:.0}us(MLC); write {:.0}us/{:.0}us; erase {:.1}ms/{:.1}ms",
        t.slc_read_us, t.mlc_read_us,
        t.slc_program_us, t.mlc_program_us,
        t.slc_erase_us / 1000.0, t.mlc_erase_us / 1000.0,
    );
    println!(
        "BCH code latency: {:.0}us (t=3) .. {:.0}us (t=26)",
        ecc.decode_us(3),
        ecc.decode_us(26)
    );
    println!(
        "IDE disk:         average access latency {:.1}ms",
        hdd.avg_access_latency_us / 1000.0
    );
    args.finish();
}
