//! Figure 1(b): normalized garbage-collection overhead vs occupied
//! flash space.

use flashcache_bench::{fmt_mb, Exhibit, RunArgs};
use flashcache_sim::experiments::gc_overhead::gc_overhead_curve;

fn main() {
    let args = RunArgs::parse(16); // paper: 2GB flash
    let flash_bytes = (2048u64 << 20) / args.scale;
    args.announce(
        "Figure 1(b)",
        "GC overhead vs occupied flash space (normalized to 10%)",
    );
    println!("flash: {}\n", fmt_mb(flash_bytes));
    let occupancies = [0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90, 0.95];
    let writes = (flash_bytes / 2048).clamp(50_000, 2_000_000);
    let mut exhibit = Exhibit::new(
        "fig1b_gc_overhead",
        &["used_pct", "gc_overhead_pct", "normalized_to_10pct"],
    );
    for p in gc_overhead_curve(flash_bytes, &occupancies, writes, args.seed) {
        exhibit.row([
            format!("{:.0}", p.occupancy * 100.0),
            format!("{:.2}", p.gc_overhead * 100.0),
            format!("{:.2}", p.normalized),
        ]);
    }
    args.emit(&exhibit);
    args.finish();
}
