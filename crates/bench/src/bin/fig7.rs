//! Figure 7: optimal access latency and SLC/MLC partition for various
//! multimode MLC flash sizes (die areas).

use disk_trace::WorkloadSpec;
use flashcache_bench::{Exhibit, RunArgs};
use flashcache_sim::experiments::density_partition::{
    density_partition_curve, DensityPartitionParams, MLC_BYTES_PER_MM2,
};

fn main() {
    let args = RunArgs::parse(1);
    args.announce("Figure 7", "optimal SLC/MLC partition vs flash die area");
    let params = DensityPartitionParams::default();
    // (a) Financial2, working set 443.8MB; (b) WebSearch1, 5116.7MB.
    for (which, workload) in [
        ("fig7a_financial2", WorkloadSpec::financial2()),
        ("fig7b_websearch1", WorkloadSpec::websearch1()),
    ] {
        let scaled = if args.scale > 1 {
            workload.clone().scaled(args.scale)
        } else {
            workload.clone()
        };
        let wss_mm2 = scaled.footprint_bytes() as f64 / MLC_BYTES_PER_MM2;
        println!(
            "-- {}: working set {:.1}MB ({:.0}mm^2 of MLC)",
            scaled.name,
            scaled.footprint_bytes() as f64 / (1 << 20) as f64,
            wss_mm2
        );
        let steps = 10;
        let areas: Vec<f64> = (1..=steps)
            .map(|i| wss_mm2 * i as f64 / steps as f64)
            .collect();
        let mut exhibit = Exhibit::new(which, &["area_mm2", "latency_us", "optimal_slc_pct"]);
        for p in density_partition_curve(&scaled, &areas, &params, args.seed) {
            exhibit.row([
                format!("{:.1}", p.die_area_mm2),
                format!("{:.1}", p.latency_us),
                format!("{:.0}", p.optimal_slc_fraction * 100.0),
            ]);
        }
        args.emit(&exhibit);
    }
    args.finish();
}
