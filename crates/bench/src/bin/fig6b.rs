//! Figure 6(b): maximum tolerable write/erase cycles versus ECC code
//! strength, for spatial oxide-thickness variation of 0/5/10/20%.

use flashcache_bench::{parallel::par_map, Exhibit, RunArgs};
use flashcache_sim::experiments::curves::lifetime_point;

fn main() {
    let args = RunArgs::parse(1);
    args.announce(
        "Figure 6(b)",
        "max tolerable W/E cycles vs correctable errors",
    );
    let mut exhibit = Exhibit::new(
        "fig6b_lifetime_vs_strength",
        &["t", "stdev_0", "stdev_5pct", "stdev_10pct", "stdev_20pct"],
    );
    let points = par_map((0..=10).collect(), args.threads, lifetime_point);
    for p in points {
        exhibit.row([
            format!("{}", p.t),
            format!("{:.3e}", p.cycles_by_stdev[0]),
            format!("{:.3e}", p.cycles_by_stdev[1]),
            format!("{:.3e}", p.cycles_by_stdev[2]),
            format!("{:.3e}", p.cycles_by_stdev[3]),
        ]);
    }
    args.emit(&exhibit);
    args.finish();
}
