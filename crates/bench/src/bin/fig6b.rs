//! Figure 6(b): maximum tolerable write/erase cycles versus ECC code
//! strength, for spatial oxide-thickness variation of 0/5/10/20%.

use flashcache_bench::{Exhibit, RunArgs};
use flashcache_sim::experiments::curves::lifetime_curve;

fn main() {
    let args = RunArgs::parse(1);
    args.announce(
        "Figure 6(b)",
        "max tolerable W/E cycles vs correctable errors",
    );
    let mut exhibit = Exhibit::new(
        "fig6b_lifetime_vs_strength",
        &["t", "stdev_0", "stdev_5pct", "stdev_10pct", "stdev_20pct"],
    );
    for p in lifetime_curve(10) {
        exhibit.row([
            format!("{}", p.t),
            format!("{:.3e}", p.cycles_by_stdev[0]),
            format!("{:.3e}", p.cycles_by_stdev[1]),
            format!("{:.3e}", p.cycles_by_stdev[2]),
            format!("{:.3e}", p.cycles_by_stdev[3]),
        ]);
    }
    args.emit(&exhibit);
}
