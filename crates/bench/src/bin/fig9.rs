//! Figure 9: system memory + disk power breakdown and network bandwidth
//! for DRAM-only vs DRAM+flash servers (dbt2 and SPECWeb99).

use flashcache_bench::{Exhibit, RunArgs};
use flashcache_sim::experiments::power_bandwidth::{power_bandwidth, Fig9Params, Fig9Row};

fn push(exhibit: &mut Exhibit, r: &Fig9Row) {
    exhibit.row([
        r.label.replace(' ', "_"),
        format!("{:.3}", r.mem_read_w),
        format!("{:.3}", r.mem_write_w),
        format!("{:.3}", r.mem_idle_w),
        format!("{:.3}", r.flash_w),
        format!("{:.3}", r.disk_w),
        format!("{:.3}", r.total_power_w()),
        format!("{:.2}", r.normalized_bandwidth),
    ]);
}

fn main() {
    let args = RunArgs::parse(8);
    args.announce(
        "Figure 9",
        "power breakdown (W) and normalized network bandwidth",
    );
    for (name, mut params) in [
        ("fig9a_dbt2", Fig9Params::dbt2()),
        ("fig9b_specweb99", Fig9Params::specweb99()),
    ] {
        params = params.scaled(args.scale);
        params.seed = args.seed;
        println!("-- {name}");
        let (base, flash) = power_bandwidth(&params);
        let mut exhibit = Exhibit::new(
            name,
            &[
                "configuration",
                "mem_rd_w",
                "mem_wr_w",
                "mem_idle_w",
                "flash_w",
                "disk_w",
                "total_w",
                "norm_bandwidth",
            ],
        );
        push(&mut exhibit, &base);
        push(&mut exhibit, &flash);
        args.emit(&exhibit);
        println!(
            "power reduction: {:.2}x | flash hit fraction {:.2} | disk busy {:.1}s -> {:.1}s\n",
            base.total_power_w() / flash.total_power_w().max(1e-9),
            flash.report.flash_hit_fraction,
            base.report.power_inputs.disk_busy_s,
            flash.report.power_inputs.disk_busy_s,
        );
    }
    args.finish();
}
