//! Ablation: the wear-levelling threshold of §3.6 — erase-count spread
//! and performance with migration disabled or at various thresholds.

use disk_trace::WorkloadSpec;
use flashcache_bench::RunArgs;
use flashcache_core::FlashCache;
use flashcache_sim::experiments::driver::{cache_config_for_bytes, drive_cache};

fn main() {
    let args = RunArgs::parse(32);
    args.announce(
        "Ablation: wear-level threshold",
        "erase-count spread vs migration threshold (alpha2, write-heavy)",
    );
    let mut workload = WorkloadSpec::alpha2().scaled(args.scale);
    workload.write_fraction = 0.6;
    let flash_bytes = workload.footprint_pages * 2048 / 2;
    let accesses = 16_000_000 / args.scale.max(1);
    println!(
        "{:>12}{:>12}{:>12}{:>12}{:>14}{:>12}",
        "threshold", "min erase", "max erase", "mean", "migrations", "read miss"
    );
    for threshold in [f64::INFINITY, 256.0, 64.0, 16.0] {
        let mut config = cache_config_for_bytes(flash_bytes);
        config.wear_threshold = threshold;
        let mut cache = FlashCache::new(config).expect("valid config");
        let mut generator = workload.generator(args.seed);
        drive_cache(&mut cache, &mut generator, accesses, false);
        let (min, max, mean) = cache.erase_spread();
        let s = cache.stats();
        println!(
            "{:>12}{:>12}{:>12}{:>12.1}{:>14}{:>11.1}%",
            if threshold.is_finite() {
                format!("{threshold:.0}")
            } else {
                "off".to_string()
            },
            min,
            max,
            mean,
            s.wear_migrations,
            s.read_miss_rate() * 100.0
        );
    }
    args.finish();
}
