//! Renders every `.dat` file in a directory (as produced by the exhibit
//! binaries' `--out`) into an SVG line chart next to it.
//!
//! ```sh
//! cargo run --release -p flashcache-bench --bin fig6b -- --out results
//! cargo run --release -p flashcache-bench --bin plot -- results
//! ```

use flashcache_bench::svg::chart_from_dat;

fn main() {
    let dir = std::env::args().nth(1).unwrap_or_else(|| {
        eprintln!("usage: plot <directory-with-.dat-files>");
        std::process::exit(2);
    });
    let entries = match std::fs::read_dir(&dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error: {dir}: {e}");
            std::process::exit(1);
        }
    };
    let mut rendered = 0;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("dat") {
            continue;
        }
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("exhibit")
            .to_string();
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("skipping {}: {e}", path.display());
                continue;
            }
        };
        // Lifetime-style series span decades: log-scale them.
        let log_y = name.contains("lifetime") || name.contains("fig6b");
        match chart_from_dat(&name, &text, log_y) {
            Some(chart) => {
                let out = path.with_extension("svg");
                if let Err(e) = std::fs::write(&out, chart.to_svg()) {
                    eprintln!("could not write {}: {e}", out.display());
                } else {
                    println!("rendered {}", out.display());
                    rendered += 1;
                }
            }
            None => eprintln!("skipping {name}: no numeric series"),
        }
    }
    if rendered == 0 {
        eprintln!("no .dat files rendered from {dir}");
        std::process::exit(1);
    }
}
