//! Table 1: the ITRS 2007 memory-technology roadmap.

use flash_reliability::itrs::ITRS_2007;
use flashcache_bench::RunArgs;

fn main() {
    let args = RunArgs::parse(1);
    args.announce("Table 1", "ITRS 2007 roadmap for memory technology");
    println!(
        "{:<28}{:>8}{:>8}{:>8}{:>8}{:>8}",
        "", "2007", "2009", "2011", "2013", "2015"
    );
    let row = |label: &str, f: &dyn Fn(usize) -> String| {
        print!("{label:<28}");
        for i in 0..5 {
            print!("{:>8}", f(i));
        }
        println!();
    };
    row("NAND SLC (um^2/bit)", &|i| {
        format!("{:.4}", ITRS_2007[i].nand_slc_um2_per_bit)
    });
    row("NAND MLC (um^2/bit)", &|i| {
        format!("{:.4}", ITRS_2007[i].nand_mlc_um2_per_bit)
    });
    row("DRAM cell (um^2/bit)", &|i| {
        format!("{:.4}", ITRS_2007[i].dram_um2_per_bit)
    });
    row("W/E cycles SLC", &|i| {
        format!("{:.0e}", ITRS_2007[i].slc_we_cycles)
    });
    row("W/E cycles MLC", &|i| {
        format!("{:.0e}", ITRS_2007[i].mlc_we_cycles)
    });
    row("retention (years)", &|i| {
        format!("{:.0}", ITRS_2007[i].retention_years)
    });
    args.finish();
}
