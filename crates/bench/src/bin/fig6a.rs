//! Figure 6(a): BCH decode latency versus number of correctable errors
//! on the 100MHz accelerator model.

use flashcache_bench::{parallel::par_map, Exhibit, RunArgs};
use flashcache_sim::experiments::curves::decode_latency_point;

fn main() {
    let args = RunArgs::parse(1);
    args.announce("Figure 6(a)", "BCH decode latency vs code strength");
    let mut exhibit = Exhibit::new(
        "fig6a_decode_latency",
        &["t", "syndrome_us", "chien_us", "total_us"],
    );
    let points = par_map((2..=11).collect(), args.threads, decode_latency_point);
    for p in points {
        exhibit.row([
            format!("{}", p.t),
            format!("{:.1}", p.syndrome_us),
            format!("{:.1}", p.chien_us),
            format!("{:.1}", p.total_us),
        ]);
    }
    args.emit(&exhibit);
    args.finish();
}
