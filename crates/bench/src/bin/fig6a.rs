//! Figure 6(a): BCH decode latency versus number of correctable errors
//! on the 100MHz accelerator model.

use flashcache_bench::{Exhibit, RunArgs};
use flashcache_sim::experiments::curves::decode_latency_curve;

fn main() {
    let args = RunArgs::parse(1);
    args.announce("Figure 6(a)", "BCH decode latency vs code strength");
    let mut exhibit = Exhibit::new(
        "fig6a_decode_latency",
        &["t", "syndrome_us", "chien_us", "total_us"],
    );
    for p in decode_latency_curve(2..=11) {
        exhibit.row([
            format!("{}", p.t),
            format!("{:.1}", p.syndrome_us),
            format!("{:.1}", p.chien_us),
            format!("{:.1}", p.total_us),
        ]);
    }
    args.emit(&exhibit);
}
