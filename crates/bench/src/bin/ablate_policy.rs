//! Ablation: controller policy — lifetime under Programmable, EccOnly,
//! DensityOnly, and fixed BCH-1 controllers.

use disk_trace::WorkloadSpec;
use flashcache_bench::RunArgs;
use flashcache_core::ControllerPolicy;
use flashcache_sim::experiments::lifetime::{lifetime_accesses, LifetimeParams};

fn main() {
    let args = RunArgs::parse(1024);
    let params = LifetimeParams {
        scale: 1, // workload pre-scaled below
        acceleration: 2e5,
        budget: 60_000_000 / args.scale.max(1),
        seed: args.seed,
    };
    args.announce(
        "Ablation: controller policy",
        "accesses to total failure per policy (alpha2)",
    );
    let workload = WorkloadSpec::alpha2().scaled(args.scale);
    println!("{:<16}{:>16}{:>10}", "policy", "accesses", "vs BCH-1");
    let (bch1, _) = lifetime_accesses(
        &workload,
        ControllerPolicy::FixedEcc { strength: 1 },
        &params,
    );
    for (name, policy) in [
        ("BCH-1 fixed", ControllerPolicy::FixedEcc { strength: 1 }),
        ("ECC only", ControllerPolicy::EccOnly),
        ("density only", ControllerPolicy::DensityOnly),
        ("programmable", ControllerPolicy::Programmable),
    ] {
        let (life, truncated) = lifetime_accesses(&workload, policy, &params);
        println!(
            "{:<16}{:>16}{:>9.1}x{}",
            name,
            life,
            life as f64 / bch1.max(1) as f64,
            if truncated { " (budget hit)" } else { "" }
        );
    }
    args.finish();
}
