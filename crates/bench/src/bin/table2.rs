//! Table 2: performance and power of DRAM, SLC/MLC NAND and HDD.

use flashcache_bench::RunArgs;
use nand_flash::{FlashPower, FlashTiming};
use storage_model::{DramModel, HddModel};

fn main() {
    let args = RunArgs::parse(1);
    args.announce("Table 2", "device performance and power constants");
    let dram = DramModel::default();
    let t = FlashTiming::default();
    let p = FlashPower::default();
    let hdd = HddModel::barracuda();
    println!(
        "{:<16}{:>14}{:>14}{:>14}{:>14}{:>14}",
        "device", "active", "idle", "read", "write", "erase"
    );
    println!(
        "{:<16}{:>14}{:>14}{:>14}{:>14}{:>14}",
        "1Gb DDR2 DRAM",
        format!("{:.0}mW", dram.active_mw_per_gbit),
        format!("{:.0}mW", dram.idle_mw_per_gbit),
        format!("{:.0}ns", dram.access_latency_ns + 5.0),
        format!("{:.0}ns", dram.access_latency_ns + 5.0),
        "N/A"
    );
    println!(
        "{:<16}{:>14}{:>14}{:>14}{:>14}{:>14}",
        "1Gb NAND-SLC",
        format!("{:.0}mW", p.active_mw),
        format!("{:.0}uW", p.idle_uw_per_gbit),
        format!("{:.0}us", t.slc_read_us),
        format!("{:.0}us", t.slc_program_us),
        format!("{:.1}ms", t.slc_erase_us / 1000.0)
    );
    println!(
        "{:<16}{:>14}{:>14}{:>14}{:>14}{:>14}",
        "4Gb NAND-MLC",
        "N/A",
        "N/A",
        format!("{:.0}us", t.mlc_read_us),
        format!("{:.0}us", t.mlc_program_us),
        format!("{:.1}ms", t.mlc_erase_us / 1000.0)
    );
    println!(
        "{:<16}{:>14}{:>14}{:>14}{:>14}{:>14}",
        "HDD (750GB)",
        format!("{:.1}W", hdd.active_w),
        format!("{:.1}W", hdd.idle_w),
        format!("{:.1}ms", hdd.avg_access_latency_us / 1000.0),
        format!("{:.1}ms", hdd.avg_access_latency_us / 1000.0 + 1.0),
        "N/A"
    );
    args.finish();
}
