//! Figure 4: flash miss rate, unified vs split read/write disk cache,
//! executing a dbt2 (OLTP) trace.

use flashcache_bench::{fmt_mb, Exhibit, RunArgs};
use flashcache_sim::experiments::split_miss::{split_miss_curve, SplitMissParams};

fn main() {
    let args = RunArgs::parse(8);
    let mut params = SplitMissParams::default().scaled(args.scale);
    params.seed = args.seed;
    args.announce(
        "Figure 4",
        "miss rate: unified vs split (90/10) flash disk cache, dbt2 trace",
    );
    println!(
        "workload: {} ({})\n",
        params.workload.name,
        fmt_mb(params.workload.footprint_bytes())
    );
    let mut exhibit = Exhibit::new(
        "fig4_split_miss",
        &[
            "flash_mb",
            "unified_read_miss_pct",
            "split_read_miss_pct",
            "unified_overall_pct",
            "split_overall_pct",
            "unified_gc_pct",
            "split_gc_pct",
        ],
    );
    for p in split_miss_curve(&params) {
        exhibit.row([
            format!("{}", p.flash_bytes >> 20),
            format!("{:.1}", p.unified_miss_rate * 100.0),
            format!("{:.1}", p.split_miss_rate * 100.0),
            format!("{:.1}", p.unified_overall_miss_rate * 100.0),
            format!("{:.1}", p.split_overall_miss_rate * 100.0),
            format!("{:.1}", p.unified_gc_overhead * 100.0),
            format!("{:.1}", p.split_gc_overhead * 100.0),
        ]);
    }
    args.emit(&exhibit);
    args.finish();
}
