//! `bench_maint`: before/after timings for reclaim victim selection,
//! emitted as machine-readable JSON.
//!
//! Two caches are built per geometry — one routing victim queries
//! (fully-invalid, GC, block-LRU, newest-block) through the O(blocks)
//! FBST scans (`use_reclaim_index: false`), one through the incremental
//! reclaim index — then both are warmed past capacity and timed on the
//! same steady-state workloads, where every write pays eviction or GC:
//!
//! * `evict`: an always-cold write stream (pure block-LRU eviction plus
//!   the §3.6 newest-block comparison);
//! * `churn`: overwrites of a working set 1.5x capacity (invalidations
//!   feed GC compaction alongside eviction).
//!
//! Results land in `BENCH_maint.json` in the current directory (the
//! workspace root under `cargo run`). Consistency is asserted while
//! measuring: both caches must report identical hit/miss and
//! erase-vs-program *rates* would drift if victim keys diverged, so the
//! harness cross-checks `check_invariants` (which replays every query
//! against both implementations) on the indexed cache before and after
//! timing.

use std::time::Instant;

use flashcache_bench::RunArgs;
use flashcache_core::{CacheOp, FlashCache, FlashCacheConfig};
use nand_flash::{FlashConfig, FlashGeometry};

const GEOMETRIES: [u32; 3] = [256, 1024, 4096];
// Small blocks keep the open block short-lived, so victim selection runs
// every handful of writes — the reclaim path is what this instrument
// measures, not the program path that amortizes it away.
const PAGES_PER_BLOCK: u32 = 8; // 16 slots per block

fn build(blocks: u32, use_index: bool) -> FlashCache {
    let mut config = FlashCacheConfig {
        flash: FlashConfig {
            geometry: FlashGeometry {
                blocks,
                pages_per_block: PAGES_PER_BLOCK,
                ..FlashGeometry::default()
            },
            ..FlashConfig::default()
        },
        ..FlashCacheConfig::default()
    };
    config.use_reclaim_index = use_index;
    FlashCache::new(config).expect("valid config")
}

/// Wall-clock ns per op over `ops` writes of the given stream.
fn time_writes(cache: &mut FlashCache, start_page: u64, span: u64, ops: u64) -> f64 {
    let t = Instant::now();
    for i in 0..ops {
        cache.op(CacheOp::write(start_page + (i % span)));
    }
    t.elapsed().as_nanos() as f64 / ops as f64
}

struct Timing {
    scan_ns: f64,
    index_ns: f64,
}

impl Timing {
    fn speedup(&self) -> f64 {
        self.scan_ns / self.index_ns
    }
}

fn run_geometry(blocks: u32, measure_ops: u64) -> (Timing, Timing) {
    let slots = blocks as u64 * (PAGES_PER_BLOCK as u64 * 2);
    let span = slots + slots / 2;
    let mut results = Vec::new();
    for use_index in [false, true] {
        let mut cache = build(blocks, use_index);
        // Warm past capacity so every measured write reclaims.
        for p in 0..span {
            cache.op(CacheOp::write(p));
        }
        if use_index {
            cache
                .check_invariants()
                .expect("index consistent after warm-up");
        }
        // Steady-state churn: overwrites within the 1.5x working set.
        let churn_ns = time_writes(&mut cache, 0, span, measure_ops);
        // Always-cold stream: pure eviction pressure.
        let evict_ns = time_writes(&mut cache, span, u64::MAX, measure_ops);
        if use_index {
            cache
                .check_invariants()
                .expect("index consistent after measurement");
        }
        results.push((churn_ns, evict_ns));
    }
    let (scan, index) = (results[0], results[1]);
    (
        Timing {
            scan_ns: scan.0,
            index_ns: index.0,
        },
        Timing {
            scan_ns: scan.1,
            index_ns: index.1,
        },
    )
}

fn main() {
    let args = RunArgs::parse(1);
    // `--scale` divides the per-geometry measurement op count.
    let measure_ops = (40_000u64 / args.scale).max(1_000);
    println!(
        "bench_maint: steady-state reclaim, scan dispatch vs reclaim index ({measure_ops} ops/point)"
    );
    let mut rows = Vec::new();
    for blocks in GEOMETRIES {
        let (churn, evict) = run_geometry(blocks, measure_ops);
        println!(
            "{blocks:>5} blocks  churn: scan {:>9.0} ns  index {:>7.0} ns  ({:.1}x)   evict: scan {:>9.0} ns  index {:>7.0} ns  ({:.1}x)",
            churn.scan_ns,
            churn.index_ns,
            churn.speedup(),
            evict.scan_ns,
            evict.index_ns,
            evict.speedup()
        );
        rows.push(format!(
            "{{\"blocks\":{blocks},\"churn\":{{\"scan_ns\":{:.1},\"index_ns\":{:.1},\"speedup\":{:.2}}},\"evict\":{{\"scan_ns\":{:.1},\"index_ns\":{:.1},\"speedup\":{:.2}}}}}",
            churn.scan_ns,
            churn.index_ns,
            churn.speedup(),
            evict.scan_ns,
            evict.index_ns,
            evict.speedup()
        ));
    }
    let json = format!(
        "{{\n  \"workload\": \"steady-state writes past capacity\",\n  \"pages_per_block\": {PAGES_PER_BLOCK},\n  \"measure_ops\": {measure_ops},\n  \"time_unit\": \"ns_per_write\",\n  \"geometries\": [\n    {}\n  ]\n}}\n",
        rows.join(",\n    ")
    );
    let path = "BENCH_maint.json";
    std::fs::write(path, json).expect("write BENCH_maint.json");
    println!("[saved {path}]");
    args.finish();
}
