//! Ablation: sweep the write-region fraction around the paper's 10%
//! choice (§3.5) and report read miss rate and disk-flush traffic.

use disk_trace::WorkloadSpec;
use flashcache_bench::{fmt_mb, RunArgs};
use flashcache_core::{FlashCache, SplitPolicy};
use flashcache_sim::experiments::driver::{cache_config_for_bytes, drive_cache};

fn main() {
    let args = RunArgs::parse(16);
    args.announce(
        "Ablation: split ratio",
        "write-region fraction vs read miss rate (dbt2)",
    );
    let workload = WorkloadSpec::dbt2().scaled(args.scale);
    let flash_bytes = (512u64 << 20) / args.scale;
    let accesses = 4_000_000 / args.scale.max(1);
    println!(
        "workload: {} | flash {}",
        workload.name,
        fmt_mb(flash_bytes)
    );
    println!(
        "{:>16}{:>16}{:>14}{:>12}{:>12}",
        "write fraction", "read miss", "overall miss", "flushed", "gc runs"
    );
    let mut fractions = vec![
        None,
        Some(0.02),
        Some(0.05),
        Some(0.10),
        Some(0.20),
        Some(0.35),
        Some(0.50),
    ];
    for f in fractions.drain(..) {
        let mut config = cache_config_for_bytes(flash_bytes);
        config.split = match f {
            None => SplitPolicy::Unified,
            Some(wf) => SplitPolicy::Split { write_fraction: wf },
        };
        let mut cache = FlashCache::new(config).expect("valid config");
        let mut generator = workload.generator(args.seed);
        drive_cache(&mut cache, &mut generator, accesses, false);
        cache.reset_stats();
        drive_cache(&mut cache, &mut generator, accesses, false);
        let s = cache.stats();
        println!(
            "{:>16}{:>15.1}%{:>13.1}%{:>12}{:>12}",
            match f {
                None => "unified".to_string(),
                Some(wf) => format!("{:.0}%", wf * 100.0),
            },
            s.read_miss_rate() * 100.0,
            s.miss_rate() * 100.0,
            s.flushed_dirty_pages,
            s.gc_runs
        );
    }
    args.finish();
}
