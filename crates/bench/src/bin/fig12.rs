//! Figure 12: normalized lifetime — programmable flash memory controller
//! vs a fixed BCH-1 controller, per workload.

use flashcache_bench::{parallel::par_map, Exhibit, RunArgs};
use flashcache_core::ControllerPolicy;
use flashcache_sim::experiments::lifetime::{
    fig12_workloads, lifetime_accesses, LifetimeParams, LifetimeRow,
};

fn main() {
    let args = RunArgs::parse(256);
    let params = LifetimeParams {
        scale: args.scale,
        seed: args.seed,
        ..LifetimeParams::default()
    };
    args.announce(
        "Figure 12",
        "accesses to total flash failure: programmable vs BCH-1",
    );
    // Fan each (workload, controller) run — two per workload — across
    // worker threads; every run is an independent simulation. Results
    // come back in input order, so reassembling rows pairwise yields
    // exactly what serial `lifetime_comparison` would produce.
    let workloads = fig12_workloads();
    let runs: Vec<_> = workloads
        .iter()
        .flat_map(|w| {
            let scaled = w.clone().scaled(params.scale);
            [
                (scaled.clone(), ControllerPolicy::Programmable),
                (scaled, ControllerPolicy::FixedEcc { strength: 1 }),
            ]
        })
        .collect();
    let results = par_map(runs, args.threads, |(workload, controller)| {
        lifetime_accesses(&workload, controller, &params)
    });
    let rows: Vec<LifetimeRow> = workloads
        .iter()
        .zip(results.chunks_exact(2))
        .map(|(w, pair)| {
            let (programmable, trunc_a) = pair[0];
            let (bch1, trunc_b) = pair[1];
            LifetimeRow {
                workload: w.name.clone(),
                programmable_accesses: programmable,
                bch1_accesses: bch1,
                truncated: trunc_a || trunc_b,
            }
        })
        .collect();
    let max_life = rows
        .iter()
        .map(|r| r.programmable_accesses)
        .max()
        .unwrap_or(1) as f64;
    let mut exhibit = Exhibit::new(
        "fig12_lifetime",
        &[
            "workload",
            "programmable",
            "bch1",
            "norm_programmable",
            "norm_bch1",
            "gain",
        ],
    );
    let mut gains = Vec::new();
    for r in &rows {
        exhibit.row([
            format!("{}{}", r.workload, if r.truncated { "*" } else { "" }),
            format!("{}", r.programmable_accesses),
            format!("{}", r.bch1_accesses),
            format!("{:.4}", r.programmable_accesses as f64 / max_life),
            format!("{:.5}", r.bch1_accesses as f64 / max_life),
            format!("{:.1}x", r.improvement()),
        ]);
        if !r.truncated {
            gains.push(r.improvement());
        }
    }
    args.emit(&exhibit);
    if !gains.is_empty() {
        let geo = gains.iter().map(|g| g.ln()).sum::<f64>() / gains.len() as f64;
        println!(
            "average lifetime extension (geometric mean): {:.1}x (paper: ~20x)",
            geo.exp()
        );
    }
    if rows.iter().any(|r| r.truncated) {
        println!("(* = access budget hit before total failure)");
    }
    args.finish();
}
