//! Figure 11: breakdown of page reconfiguration (descriptor update)
//! events — ECC strength increases vs MLC→SLC density switches.

use flashcache_bench::{Exhibit, RunArgs};
use flashcache_sim::experiments::reconfig_breakdown::{
    fig11_workloads, reconfig_breakdown, ReconfigParams,
};

fn main() {
    let args = RunArgs::parse(64);
    let params = ReconfigParams {
        scale: args.scale,
        seed: args.seed,
        ..ReconfigParams::default()
    };
    args.announce(
        "Figure 11",
        "descriptor updates: code strength vs density, per workload",
    );
    let mut exhibit = Exhibit::new(
        "fig11_reconfig_breakdown",
        &[
            "workload",
            "ecc_events",
            "density_events",
            "hot_promotions",
            "ecc_pct",
            "density_pct",
        ],
    );
    for row in reconfig_breakdown(&fig11_workloads(), &params) {
        exhibit.row([
            row.workload.clone(),
            format!("{}", row.ecc_events),
            format!("{}", row.density_events),
            format!("{}", row.hot_promotions),
            format!("{:.1}", row.ecc_pct()),
            format!("{:.1}", 100.0 - row.ecc_pct()),
        ]);
    }
    args.emit(&exhibit);
    args.finish();
}
