//! `cargo bench` entry that regenerates every paper exhibit at a quick
//! scale by running the sibling binaries through cargo. For full-scale
//! runs invoke a binary directly with `--paper`, e.g.
//! `cargo run --release -p flashcache-bench --bin fig4 -- --paper`.

use std::process::Command;

fn main() {
    let exhibits = [
        "table1",
        "table2",
        "table3",
        "fig1b",
        "fig4",
        "fig6a",
        "fig6b",
        "fig7",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "ablate_split",
        "ablate_wear",
        "ablate_policy",
    ];
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    for name in exhibits {
        println!("\n################ {name} ################");
        let status = Command::new(&cargo)
            .args([
                "run",
                "--release",
                "-q",
                "-p",
                "flashcache-bench",
                "--bin",
                name,
            ])
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {name}: {e}"));
        assert!(status.success(), "{name} exited with {status}");
    }
}
