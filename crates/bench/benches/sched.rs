//! Criterion micro-benchmarks of the NAND event scheduler: schedule +
//! drain cycles at queue depths 1, 8, and 64, on both the timer-wheel
//! default and the retained heap oracle. The heap-vs-wheel pairs at
//! each depth quantify what the calendar-queue rebuild buys on the
//! scheduler hot path itself, isolated from the cache layers above it.

use criterion::{criterion_group, criterion_main, Criterion};

use nand_flash::sched::{
    ChannelConfig, EventDriven, OpClass, OpRequest, SchedBackend, TimingModel,
};
use nand_flash::{CellMode, FlashTiming};

const CHANNELS: u32 = 4;
const PLANES: u32 = 2;

fn backend_name(backend: SchedBackend) -> &'static str {
    match backend {
        SchedBackend::Heap => "heap",
        SchedBackend::Wheel => "wheel",
    }
}

fn config(backend: SchedBackend, queue_depth: u32) -> ChannelConfig {
    ChannelConfig::builder()
        .channels(CHANNELS)
        .planes(PLANES)
        .queue_depth(queue_depth)
        .sched_backend(backend)
        .build()
        .expect("bench channel config is valid")
}

/// One schedule/drain cycle: a burst of mixed fore/background ops (the
/// read-heavy 8:2 mix the replay path produces) followed by a drain, on
/// a model constructed per-iteration so queue state never accumulates
/// across cycles.
fn cycle(timing: FlashTiming, cfg: ChannelConfig, burst: u32) -> f64 {
    let mut model = EventDriven::new(timing, cfg);
    for i in 0..burst {
        let req = if i % 5 == 4 {
            OpRequest {
                class: OpClass::Program,
                mode: CellMode::Slc,
                block: i % 64,
                lba: Some(u64::from(i % 16)),
                background: true,
            }
        } else {
            OpRequest {
                class: OpClass::Read,
                mode: CellMode::Mlc,
                block: (i * 3) % 64,
                lba: None,
                background: false,
            }
        };
        std::hint::black_box(model.op(&req));
    }
    model.drain()
}

fn bench_sched(c: &mut Criterion) {
    let timing = FlashTiming::default();
    for depth in [1u32, 8, 64] {
        for backend in [SchedBackend::Heap, SchedBackend::Wheel] {
            let cfg = config(backend, depth);
            let name = format!("sched_cycle_{}_depth{}", backend_name(backend), depth);
            c.bench_function(&name, |b| {
                b.iter(|| std::hint::black_box(cycle(timing, cfg, 256)))
            });
        }
    }
    // The serial no-contention bypass: the configuration every
    // closed-form-shaped replay hits when it flips to the event backend.
    let serial = ChannelConfig::builder()
        .build()
        .expect("serial config is valid");
    c.bench_function("sched_cycle_wheel_serial_bypass", |b| {
        b.iter(|| std::hint::black_box(cycle(timing, serial, 256)))
    });
}

criterion_group!(flashcache_sched, bench_sched);
criterion_main!(flashcache_sched);
