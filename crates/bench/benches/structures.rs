//! Criterion micro-benchmarks of the supporting data structures: LRU
//! tracking, the DRAM page cache, popularity sampling, trace generation,
//! and full hierarchy submission.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use disk_trace::{DiskRequest, Popularity, PopularitySampler, WorkloadSpec};
use flashcache_core::lru::LruTracker;
use flashcache_core::PrimaryDiskCache;
use flashcache_sim::hierarchy::{Hierarchy, HierarchyConfig};

fn bench_lru(c: &mut Criterion) {
    let mut lru = LruTracker::new();
    for k in 0..10_000u64 {
        lru.touch(k);
    }
    let mut i = 0u64;
    c.bench_function("lru_touch_10k_resident", |b| {
        b.iter(|| {
            i = (i * 2_654_435_761 + 1) % 10_000;
            std::hint::black_box(lru.touch(i))
        })
    });
}

fn bench_pdc(c: &mut Criterion) {
    let mut pdc = PrimaryDiskCache::new(4_096);
    let mut i = 0u64;
    c.bench_function("pdc_insert_with_eviction", |b| {
        b.iter(|| {
            i += 1;
            std::hint::black_box(pdc.insert(i % 8_192, i.is_multiple_of(3)))
        })
    });
}

fn bench_popularity(c: &mut Criterion) {
    let sampler = PopularitySampler::new(Popularity::Zipf { alpha: 1.2 }, 1 << 20, 1);
    let mut rng = StdRng::seed_from_u64(2);
    c.bench_function("zipf_sample_1m_pages", |b| {
        b.iter(|| std::hint::black_box(sampler.sample(&mut rng)))
    });
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut generator = WorkloadSpec::dbt2().scaled(16).generator(3);
    c.bench_function("dbt2_next_request", |b| {
        b.iter(|| std::hint::black_box(generator.next_request()))
    });
}

fn bench_hierarchy_submit(c: &mut Criterion) {
    let mut h = Hierarchy::new(HierarchyConfig {
        dram_bytes: 4 << 20,
        ..HierarchyConfig::default()
    });
    // Warm a little so all three levels participate.
    for p in 0..20_000u64 {
        h.submit(DiskRequest::read(p % 30_000));
    }
    let mut rng = StdRng::seed_from_u64(4);
    c.bench_function("hierarchy_submit_mixed", |b| {
        b.iter(|| {
            let p = rng.gen_range(0..30_000u64);
            let req = if rng.gen_bool(0.3) {
                DiskRequest::write(p)
            } else {
                DiskRequest::read(p)
            };
            std::hint::black_box(h.submit(req))
        })
    });
}

criterion_group!(
    benches,
    bench_lru,
    bench_pdc,
    bench_popularity,
    bench_trace_generation,
    bench_hierarchy_submit
);
criterion_main!(benches);
