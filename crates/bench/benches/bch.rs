//! Criterion micro-benchmarks of the real BCH/CRC implementation —
//! software counterparts of Figure 6(a)'s accelerator measurements.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flash_ecc::{crc32, BchCode};

fn page_data() -> Vec<u8> {
    (0..2048usize).map(|i| (i * 131 % 251) as u8).collect()
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("bch_encode_2kb");
    for t in [1usize, 4, 8, 12] {
        let code = BchCode::for_flash_page(t);
        let data = page_data();
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, _| {
            b.iter(|| code.encode(std::hint::black_box(&data)))
        });
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("bch_decode_2kb");
    group.sample_size(20);
    for t in [1usize, 4, 8, 12] {
        let code = BchCode::for_flash_page(t);
        let data = page_data();
        let parity = code.encode(&data);
        // Inject t errors so the decoder does full correction work.
        let mut corrupted = data.clone();
        for e in 0..t {
            let bit = 1000 + e * 1201;
            corrupted[bit / 8] ^= 1 << (7 - bit % 8);
        }
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, _| {
            b.iter(|| {
                let mut work = corrupted.clone();
                code.decode(&mut work, std::hint::black_box(&parity))
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_crc(c: &mut Criterion) {
    let data = page_data();
    c.bench_function("crc32_2kb", |b| {
        b.iter(|| crc32(std::hint::black_box(&data)))
    });
}

fn bench_verified_roundtrip(c: &mut Criterion) {
    use nand_flash::verified::VerifiedFlash;
    use nand_flash::{BlockId, CellMode, FlashConfig, PageAddr};
    let mut flash = VerifiedFlash::new(FlashConfig::default());
    let data = page_data();
    let addr = PageAddr::new(BlockId(0), 0);
    c.bench_function("verified_flash_program_read_erase", |b| {
        b.iter(|| {
            flash.program(addr, CellMode::Slc, 4, &data).unwrap();
            let out = flash.read(addr).unwrap();
            flash.erase(BlockId(0)).unwrap();
            std::hint::black_box(out.corrected)
        })
    });
}

criterion_group!(
    benches,
    bench_encode,
    bench_decode,
    bench_crc,
    bench_verified_roundtrip
);
criterion_main!(benches);
