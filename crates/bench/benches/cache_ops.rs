//! Criterion micro-benchmarks of the cache's hot paths: hits, misses
//! with eviction pressure, and write churn with GC.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flashcache_core::{CacheOp, FlashCache, FlashCacheConfig};
use nand_flash::{FlashConfig, FlashGeometry};

fn cache(blocks: u32) -> FlashCache {
    FlashCache::new(FlashCacheConfig {
        flash: FlashConfig {
            geometry: FlashGeometry {
                blocks,
                pages_per_block: 32,
                ..FlashGeometry::default()
            },
            ..FlashConfig::default()
        },
        ..FlashCacheConfig::default()
    })
    .expect("valid config")
}

fn bench_read_hit(c: &mut Criterion) {
    let mut cache = cache(64);
    for p in 0..1000u64 {
        cache.op(CacheOp::read(p));
    }
    let mut i = 0u64;
    c.bench_function("flashcache_read_hit", |b| {
        b.iter(|| {
            i = (i + 1) % 1000;
            std::hint::black_box(cache.op(CacheOp::read(i)))
        })
    });
}

fn bench_read_capacity_miss(c: &mut Criterion) {
    let mut cache = cache(32);
    let mut p = 0u64;
    c.bench_function("flashcache_read_capacity_miss", |b| {
        b.iter(|| {
            p += 1; // always-cold stream: every read fills and evicts
            std::hint::black_box(cache.op(CacheOp::read(p)))
        })
    });
}

fn bench_write_churn(c: &mut Criterion) {
    let mut cache = cache(32);
    let mut p = 0u64;
    c.bench_function("flashcache_write_churn_gc", |b| {
        b.iter(|| {
            p = (p + 1) % 300; // hot overwrites: exercises GC
            std::hint::black_box(cache.op(CacheOp::write(p)))
        })
    });
}

/// Steady-state reclaim: the cache is warmed past capacity first, so
/// every benchmarked write pays victim selection (GC compaction or
/// block eviction). This is the path the reclaim index accelerates —
/// the per-op cost of the scan baseline grows with the block count,
/// the indexed cost does not.
fn bench_steady_state_reclaim(c: &mut Criterion) {
    let mut g = c.benchmark_group("flashcache_steady_reclaim");
    for blocks in [256u32, 1024, 4096] {
        let mut cache = cache(blocks);
        let slots = blocks as u64 * 64;
        let span = slots + slots / 2; // churn set 1.5x capacity
        for p in 0..span {
            cache.op(CacheOp::write(p));
        }
        let mut p = span;
        g.bench_function(
            BenchmarkId::from_parameter(format!("{blocks}_blocks")),
            |b| {
                b.iter(|| {
                    p = (p + 1) % span;
                    std::hint::black_box(cache.op(CacheOp::write(p)))
                })
            },
        );
    }
    g.finish();
}

/// Batched lookups through `op_batch` versus the scalar `op` loop on
/// the same mixed stream — measures what the prefetch pipeline buys
/// when outcomes are byte-identical by contract.
fn bench_op_batch(c: &mut Criterion) {
    const BATCH: usize = 256;
    let mut g = c.benchmark_group("flashcache_op_batch");
    for (tag, pipeline) in [("pipelined", true), ("scalar_loop", false)] {
        let mut cache = FlashCache::new(FlashCacheConfig {
            flash: FlashConfig {
                geometry: FlashGeometry {
                    blocks: 64,
                    pages_per_block: 32,
                    ..FlashGeometry::default()
                },
                ..FlashConfig::default()
            },
            batch_pipeline: pipeline,
            ..FlashCacheConfig::default()
        })
        .expect("valid config");
        for p in 0..1500u64 {
            cache.op(CacheOp::write(p));
        }
        let mut p = 0u64;
        let mut ops = Vec::with_capacity(BATCH);
        let mut outs = Vec::with_capacity(BATCH);
        g.bench_function(BenchmarkId::from_parameter(tag), |b| {
            b.iter(|| {
                ops.clear();
                outs.clear();
                for _ in 0..BATCH {
                    // Mixed hit/miss stream spread over 2x the resident set.
                    p = p.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                    ops.push(CacheOp::read(p % 3000));
                }
                cache.op_batch_into(&ops, &mut outs);
                std::hint::black_box(outs.len())
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_read_hit,
    bench_read_capacity_miss,
    bench_write_churn,
    bench_op_batch,
    bench_steady_state_reclaim
);
criterion_main!(benches);
