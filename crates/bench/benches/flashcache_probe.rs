//! Criterion micro-benchmarks of the FCHT probe flavours: the SWAR
//! group probe (8 ctrl bytes per u64 load) versus the byte-at-a-time
//! oracle, across load factors and hit/miss mixes.
//!
//! Besides the criterion groups, the bench enforces an optional floor:
//! set `FLASHCACHE_PROBE_FLOOR=<ratio>` (CI uses `1.3`) and the
//! miss-heavy lookup workload at 0.875 load must show SWAR at least
//! that many times faster than bytewise, measured with `Instant`
//! directly so the gate works even under the vendored criterion stub.

use std::hint::black_box;
use std::time::Instant;

use criterion::{criterion_group, Criterion};

use flashcache_core::tables::Fcht;
use nand_flash::{BlockId, PageAddr};

/// Buckets in the benchmark table. Matches the committed replay
/// geometry's order of magnitude so probe chains resemble production.
const BUCKETS: usize = 1 << 17;

fn addr(i: u64) -> PageAddr {
    PageAddr::new(BlockId((i >> 6) as u32), (i & 63) as u32)
}

/// Builds a table at `load` (fraction of buckets occupied) with keys
/// spread by a multiplicative hash so chains form naturally.
fn filled(load: f64, swar: bool) -> (Fcht, Vec<u64>) {
    let mut t = Fcht::with_capacity(BUCKETS * 7 / 8 - 1);
    t.set_swar_probe(swar);
    let n = (BUCKETS as f64 * load) as u64;
    let keys: Vec<u64> = (0..n)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect();
    for &k in &keys {
        t.insert(k, addr(k & 0xFFFF));
    }
    (t, keys)
}

fn bench_lookup_flavours(c: &mut Criterion) {
    for &(load, tag) in &[(0.5, "load0.5"), (0.7, "load0.7"), (0.875, "load0.875")] {
        for &(swar, flavour) in &[(false, "bytewise"), (true, "swar")] {
            let (t, keys) = filled(load, swar);
            let mut i = 0usize;
            c.bench_function(&format!("fcht_hit_{tag}_{flavour}"), |b| {
                b.iter(|| {
                    i = (i + 1) % keys.len();
                    black_box(t.lookup(keys[i]))
                })
            });
            // Misses walk the full chain to the first empty — the
            // worst case and the one SWAR compresses the most.
            let mut m = 1u64;
            c.bench_function(&format!("fcht_miss_{tag}_{flavour}"), |b| {
                b.iter(|| {
                    m = m.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                    black_box(t.lookup(m | 1 << 63))
                })
            });
        }
    }
}

fn bench_churn_flavours(c: &mut Criterion) {
    for &(swar, flavour) in &[(false, "bytewise"), (true, "swar")] {
        let (mut t, keys) = filled(0.7, swar);
        let mut i = 0usize;
        c.bench_function(&format!("fcht_churn_load0.7_{flavour}"), |b| {
            b.iter(|| {
                i = (i + 1) % keys.len();
                let k = keys[i];
                t.remove(k);
                black_box(t.insert(k, addr(k & 0xFFFF)))
            })
        });
    }
}

/// Measures miss-heavy lookups at 0.875 load in both flavours and
/// asserts the SWAR speedup clears `FLASHCACHE_PROBE_FLOOR` when set.
fn enforce_probe_floor() {
    let Some(floor) = std::env::var("FLASHCACHE_PROBE_FLOOR")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
    else {
        return;
    };
    let miss_heavy = |swar: bool| -> f64 {
        let (t, _) = filled(0.875, swar);
        let mut m = 1u64;
        // Warm up, then time.
        for _ in 0..100_000 {
            m = m.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            black_box(t.lookup(m | 1 << 63));
        }
        let start = Instant::now();
        for _ in 0..1_000_000 {
            m = m.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            black_box(t.lookup(m | 1 << 63));
        }
        start.elapsed().as_secs_f64()
    };
    // Best-of-3 each to shed scheduler noise.
    let bytewise = (0..3).map(|_| miss_heavy(false)).fold(f64::MAX, f64::min);
    let swar = (0..3).map(|_| miss_heavy(true)).fold(f64::MAX, f64::min);
    let speedup = bytewise / swar;
    println!(
        "probe floor check: bytewise {bytewise:.3}s, swar {swar:.3}s, \
         speedup {speedup:.2}x (floor {floor}x)"
    );
    assert!(
        speedup >= floor,
        "SWAR miss-heavy speedup {speedup:.2}x below FLASHCACHE_PROBE_FLOOR={floor}x"
    );
}

criterion_group!(benches, bench_lookup_flavours, bench_churn_flavours);

fn main() {
    enforce_probe_floor();
    benches();
}
