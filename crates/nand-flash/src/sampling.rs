//! Small random sampling helpers (Poisson, binomial) used by the wear
//! model's bit-error injection. Implemented here to avoid pulling in a
//! statistics crate.

use rand::Rng;

/// Samples a Poisson(λ) variate.
///
/// Uses Knuth's product-of-uniforms method for small λ and a clamped
/// normal approximation for large λ (where individual-count accuracy no
/// longer matters for error injection).
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
            if k > 1_000 {
                return k; // numeric guard; unreachable for lambda < 30
            }
        }
    }
    // Normal approximation with continuity correction.
    let z = normal(rng);
    let v = lambda + lambda.sqrt() * z + 0.5;
    if v < 0.0 {
        0
    } else {
        v as u64
    }
}

/// Samples a Binomial(n, p) variate.
///
/// Direct Bernoulli summation for small `n`, normal approximation
/// otherwise. `p` is clamped to `[0, 1]`.
pub fn binomial<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    let p = p.clamp(0.0, 1.0);
    if n == 0 || p == 0.0 {
        return 0;
    }
    if p == 1.0 {
        return n;
    }
    if n <= 64 {
        (0..n).filter(|_| rng.gen::<f64>() < p).count() as u64
    } else {
        let mean = n as f64 * p;
        let sd = (n as f64 * p * (1.0 - p)).sqrt();
        let v = mean + sd * normal(rng) + 0.5;
        (v.max(0.0) as u64).min(n)
    }
}

/// Standard normal variate via Box–Muller.
pub fn normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_mean_small_lambda() {
        let mut rng = StdRng::seed_from_u64(1);
        let lambda = 3.5;
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| poisson(&mut rng, lambda)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - lambda).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn poisson_mean_large_lambda() {
        let mut rng = StdRng::seed_from_u64(2);
        let lambda = 250.0;
        let n = 5_000;
        let sum: u64 = (0..n).map(|_| poisson(&mut rng, lambda)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - lambda).abs() < 2.0, "mean={mean}");
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(poisson(&mut rng, 0.0), 0);
        assert_eq!(poisson(&mut rng, -1.0), 0);
    }

    #[test]
    fn binomial_edges() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(binomial(&mut rng, 0, 0.5), 0);
        assert_eq!(binomial(&mut rng, 10, 0.0), 0);
        assert_eq!(binomial(&mut rng, 10, 1.0), 10);
        assert_eq!(binomial(&mut rng, 10, 2.0), 10); // clamped
    }

    #[test]
    fn binomial_mean_small_and_large_n() {
        let mut rng = StdRng::seed_from_u64(5);
        let reps = 20_000;
        let sum: u64 = (0..reps).map(|_| binomial(&mut rng, 20, 0.3)).sum();
        let mean = sum as f64 / reps as f64;
        assert!((mean - 6.0).abs() < 0.1, "small-n mean={mean}");
        let sum: u64 = (0..reps).map(|_| binomial(&mut rng, 1000, 0.3)).sum();
        let mean = sum as f64 / reps as f64;
        assert!((mean - 300.0).abs() < 2.0, "large-n mean={mean}");
    }

    #[test]
    fn binomial_never_exceeds_n() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..1000 {
            assert!(binomial(&mut rng, 100, 0.99) <= 100);
        }
    }

    #[test]
    fn normal_mean_and_variance() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }
}
