//! Small random sampling helpers (Poisson, binomial) used by the wear
//! model's bit-error injection. Implemented here to avoid pulling in a
//! statistics crate.

use rand::Rng;

/// Samples a Poisson(λ) variate.
///
/// Uses Knuth's product-of-uniforms method for small λ and a clamped
/// normal approximation for large λ (where individual-count accuracy no
/// longer matters for error injection).
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
            if k > 1_000 {
                return k; // numeric guard; unreachable for lambda < 30
            }
        }
    }
    // Normal approximation with continuity correction.
    let z = normal(rng);
    let v = lambda + lambda.sqrt() * z + 0.5;
    if v < 0.0 {
        0
    } else {
        v as u64
    }
}

/// Samples a Binomial(n, p) variate.
///
/// Direct Bernoulli summation for small `n`, normal approximation
/// otherwise. `p` is clamped to `[0, 1]`.
pub fn binomial<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    let p = p.clamp(0.0, 1.0);
    if n == 0 || p == 0.0 {
        return 0;
    }
    if p == 1.0 {
        return n;
    }
    if n <= 64 {
        (0..n).filter(|_| rng.gen::<f64>() < p).count() as u64
    } else {
        let mean = n as f64 * p;
        let sd = (n as f64 * p * (1.0 - p)).sqrt();
        let v = mean + sd * normal(rng) + 0.5;
        (v.max(0.0) as u64).min(n)
    }
}

/// Standard normal variate via Box–Muller.
///
/// Stateless form: the transform's second (sine) variate is discarded,
/// so every call pays the full `ln`/`sqrt`/`cos`. Loops drawing many
/// normals should use [`NormalSource`], which keeps the pair.
pub fn normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Stateful Box–Muller source that keeps the transform's second
/// variate instead of discarding it.
///
/// Box–Muller turns two uniforms into two independent normals (cosine
/// and sine of the same angle); [`normal`] throws the sine one away.
/// `NormalSource` returns it on the next call, halving the
/// `ln`/`sqrt` and uniform-draw cost of bulk sampling — two uniforms
/// per *pair* rather than per variate, which also means its stream
/// consumption differs from back-to-back [`normal`] calls.
#[derive(Debug, Clone, Copy, Default)]
pub struct NormalSource {
    spare: Option<f64>,
}

impl NormalSource {
    /// A source with no cached variate.
    pub fn new() -> Self {
        NormalSource::default()
    }

    /// Draws one standard normal variate.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let (sin, cos) = (2.0 * std::f64::consts::PI * u2).sin_cos();
        self.spare = Some(r * sin);
        r * cos
    }
}

/// A Poisson(λ) source with `exp(-λ)` precomputed once.
///
/// [`poisson`] re-evaluates `(-lambda).exp()` on every small-λ call;
/// for a fixed rate (the per-read transient-error draw) that
/// transcendental dominates the draw itself. Sampling consumes exactly
/// the same uniforms as [`poisson`] with the same λ, so swapping one
/// in is stream-exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonSource {
    lambda: f64,
    /// `exp(-lambda)`, the small-λ loop's termination threshold.
    exp_neg_lambda: f64,
}

impl PoissonSource {
    /// A source for rate `lambda` (values `<= 0` always sample 0).
    pub fn new(lambda: f64) -> Self {
        PoissonSource {
            lambda,
            exp_neg_lambda: (-lambda).exp(),
        }
    }

    /// The configured rate.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Draws one Poisson(λ) variate; identical stream to
    /// [`poisson`]`(rng, self.lambda())`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.lambda <= 0.0 {
            return 0;
        }
        if self.lambda < 30.0 {
            let l = self.exp_neg_lambda;
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= rng.gen::<f64>();
                if p <= l {
                    return k;
                }
                k += 1;
                if k > 1_000 {
                    return k; // numeric guard; unreachable for lambda < 30
                }
            }
        }
        let z = normal(rng);
        let v = self.lambda + self.lambda.sqrt() * z + 0.5;
        if v < 0.0 {
            0
        } else {
            v as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_mean_small_lambda() {
        let mut rng = StdRng::seed_from_u64(1);
        let lambda = 3.5;
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| poisson(&mut rng, lambda)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - lambda).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn poisson_mean_large_lambda() {
        let mut rng = StdRng::seed_from_u64(2);
        let lambda = 250.0;
        let n = 5_000;
        let sum: u64 = (0..n).map(|_| poisson(&mut rng, lambda)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - lambda).abs() < 2.0, "mean={mean}");
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(poisson(&mut rng, 0.0), 0);
        assert_eq!(poisson(&mut rng, -1.0), 0);
    }

    #[test]
    fn binomial_edges() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(binomial(&mut rng, 0, 0.5), 0);
        assert_eq!(binomial(&mut rng, 10, 0.0), 0);
        assert_eq!(binomial(&mut rng, 10, 1.0), 10);
        assert_eq!(binomial(&mut rng, 10, 2.0), 10); // clamped
    }

    #[test]
    fn binomial_mean_small_and_large_n() {
        let mut rng = StdRng::seed_from_u64(5);
        let reps = 20_000;
        let sum: u64 = (0..reps).map(|_| binomial(&mut rng, 20, 0.3)).sum();
        let mean = sum as f64 / reps as f64;
        assert!((mean - 6.0).abs() < 0.1, "small-n mean={mean}");
        let sum: u64 = (0..reps).map(|_| binomial(&mut rng, 1000, 0.3)).sum();
        let mean = sum as f64 / reps as f64;
        assert!((mean - 300.0).abs() < 2.0, "large-n mean={mean}");
    }

    #[test]
    fn binomial_never_exceeds_n() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..1000 {
            assert!(binomial(&mut rng, 100, 0.99) <= 100);
        }
    }

    #[test]
    fn poisson_source_matches_free_function_stream() {
        for lambda in [1e-4, 0.5, 3.5, 29.9, 250.0] {
            let src = PoissonSource::new(lambda);
            let mut ra = StdRng::seed_from_u64(42);
            let mut rb = StdRng::seed_from_u64(42);
            for _ in 0..2_000 {
                assert_eq!(src.sample(&mut ra), poisson(&mut rb, lambda), "λ={lambda}");
            }
            // Streams advanced identically too.
            assert_eq!(ra.gen::<u64>(), rb.gen::<u64>());
        }
    }

    #[test]
    fn poisson_source_zero_lambda() {
        let mut rng = StdRng::seed_from_u64(8);
        assert_eq!(PoissonSource::new(0.0).sample(&mut rng), 0);
        assert_eq!(PoissonSource::new(-1.0).sample(&mut rng), 0);
        assert_eq!(PoissonSource::new(2.5).lambda(), 2.5);
    }

    #[test]
    fn normal_source_mean_variance_and_pairing() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut src = NormalSource::new();
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| src.sample(&mut rng)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
        // The cosine variate of each pair matches the stateless sampler;
        // the sine variate comes "for free" without advancing the rng.
        let mut ra = StdRng::seed_from_u64(10);
        let mut rb = StdRng::seed_from_u64(10);
        let mut src = NormalSource::new();
        for _ in 0..100 {
            assert_eq!(src.sample(&mut ra), normal(&mut rb));
            let before = ra.clone().gen::<u64>();
            let _free = src.sample(&mut ra);
            assert_eq!(ra.gen::<u64>(), before, "sine variate must not draw");
            rb.gen::<u64>(); // keep rb aligned for the next pair
        }
    }

    #[test]
    fn normal_mean_and_variance() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }
}
