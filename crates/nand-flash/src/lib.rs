//! Dual-mode SLC/MLC NAND flash device model.
//!
//! Implements the flash substrate of *Improving NAND Flash Based Disk
//! Caches* (ISCA 2008): the §2.1/Figure 1(a) array organization (2KB
//! pages + 64B spare, 64-SLC-page blocks that can hold 128 MLC pages),
//! erase-before-program discipline, per-page SLC/MLC density selection
//! (§4.2), Table 2/3 timing and power, and wear-driven bit-error
//! injection backed by the `flash-reliability` lifetime model.
//!
//! * [`fxhash`] — vendored deterministic hasher for integer-keyed hot
//!   paths (re-exported by `flashcache-core`);
//! * [`geometry`] — blocks, physical pages, slots, capacity math;
//! * [`timing`] — per-operation latency and energy constants;
//! * [`sched`] — the device-timing API: the [`TimingModel`] trait, the
//!   closed-form oracle, and the event-driven channel/plane scheduler;
//! * [`wear`] — permanent/transient bit-error injection as erase counts
//!   grow, with MLC-vs-SLC endurance coupling;
//! * [`device`] — the [`FlashDevice`] state machine tying it together;
//! * [`sampling`] — Poisson/binomial/normal sampling helpers.
//!
//! # Examples
//!
//! ```
//! use nand_flash::{FlashConfig, FlashDevice};
//! use nand_flash::geometry::{BlockId, CellMode, PageAddr};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut flash = FlashDevice::new(FlashConfig::default());
//! // One physical page holds two 2KB pages in MLC mode...
//! flash.program_page(PageAddr::new(BlockId(0), 0), CellMode::Mlc, None)?;
//! flash.program_page(PageAddr::new(BlockId(0), 1), CellMode::Mlc, None)?;
//! // ...and MLC reads are slower than SLC reads (50µs vs 25µs).
//! let out = flash.read_page(PageAddr::new(BlockId(0), 1))?;
//! assert_eq!(out.latency_us, 50.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod device;
pub mod fxhash;
pub mod geometry;
pub mod sampling;
pub mod sched;
pub mod timing;
pub mod verified;
pub mod wear;

pub use device::{
    EraseOutcome, FlashConfig, FlashDevice, FlashOpError, FlashStats, OpContext, ProgramOutcome,
    ReadOutcome,
};
pub use geometry::{BlockId, CellMode, FlashGeometry, PageAddr};
pub use sched::{
    ChannelConfig, ChannelConfigBuilder, ChannelConfigError, ClosedForm, EventDriven, OpClass,
    OpRequest, OpTiming, SchedBackend, TimingBackend, TimingModel, TraceEntry, TraceKind,
};
pub use timing::{FlashPower, FlashTiming};
pub use verified::{VerifiedError, VerifiedFlash, VerifiedRead};
pub use wear::{PageWearState, WearConfig, WearModel};
