//! Device-timing API and deterministic discrete-event NAND scheduler.
//!
//! This module fronts all operation timing behind the [`TimingModel`]
//! trait, resolved once at device construction:
//!
//! * [`ClosedForm`] — the original Table 2/3 arithmetic: every op costs
//!   its table latency, no queueing, wait is always zero. Bit-for-bit
//!   identical to the pre-trait free-function sums.
//! * [`EventDriven`] — a discrete-event scheduler with per-channel bus
//!   arbitration, per-plane cell occupancy, bounded queue depth, and a
//!   coalescing write buffer, in the spirit of FTL-SIM's event loop and
//!   the multi-channel interleaving literature.
//!
//! Events live in a binary heap keyed on `(time, seq)` — ties broken by
//! submission sequence — so replaying the same op stream always pops
//! events in the same order and the event trace is byte-reproducible.
//!
//! # Oracle contract
//!
//! With [`ChannelConfig::is_serial`] (1 channel, 1 plane, queue depth 1,
//! zero transfer time, zero writeback delay) every operation — fore- or
//! background — blocks and advances the clock, every stall term is
//! exactly `0.0`, and the reported `(wait, service)` pairs are
//! byte-identical to [`ClosedForm`]. Differential tests pin this.
//!
//! # Scheduling disciplines
//!
//! * Channel of a block: `block % channels`; plane within the channel:
//!   `(block / channels) % planes` — consecutive blocks stripe across
//!   channels first, then planes.
//! * Reads occupy the plane for the cell access, then the channel bus
//!   for the transfer out. Programs transfer over the bus first, then
//!   occupy the plane for the cell program. Erases occupy only the
//!   plane. Cell phases on different planes overlap; the bus serializes
//!   per channel.
//! * At most `queue_depth` ops may be outstanding per channel; excess
//!   submissions stall until a slot frees (FIFO admission).
//! * Background programs carrying an LBA are held in a write buffer for
//!   `writeback_us`; a rewrite of the same LBA inside the window
//!   supersedes the pending flush (generation counter), so only the
//!   last version occupies the NAND. Foreground ops arriving before a
//!   flush deadline are dispatched ahead of it.
//! * Background ops (GC traffic, fills, buffered flushes) consume
//!   channel and plane time without advancing the foreground clock, so
//!   later foreground ops observe genuine queue wait.

use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, HashMap};
use std::error::Error;
use std::fmt;

use crate::geometry::CellMode;
use crate::timing::FlashTiming;

/// Which timing implementation a device resolves at construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimingBackend {
    /// Closed-form per-op sums (the original model, and the oracle).
    #[default]
    ClosedForm,
    /// Discrete-event scheduler with channel/plane parallelism.
    EventDriven,
}

/// Channel-level geometry and scheduling parameters for the
/// event-driven backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelConfig {
    /// Independent channels (each with its own bus).
    pub channels: u32,
    /// Planes per channel (cell ops on different planes overlap).
    pub planes: u32,
    /// Outstanding ops admitted per channel before submissions stall.
    pub queue_depth: u32,
    /// Write-buffer hold time before a background program is flushed to
    /// the NAND, µs. Zero disables buffering.
    pub writeback_us: f64,
    /// Bus transfer time per page op, µs. Zero makes the bus free.
    pub xfer_us: f64,
    /// Maximum retained event-trace entries (0 disables tracing).
    pub trace_capacity: u32,
}

impl Default for ChannelConfig {
    fn default() -> Self {
        ChannelConfig {
            channels: 1,
            planes: 1,
            queue_depth: 1,
            writeback_us: 0.0,
            xfer_us: 0.0,
            trace_capacity: 0,
        }
    }
}

/// Invalid [`ChannelConfig`] description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelConfigError(String);

impl ChannelConfigError {
    fn new(msg: String) -> Self {
        ChannelConfigError(msg)
    }
}

impl fmt::Display for ChannelConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid channel config: {}", self.0)
    }
}

impl Error for ChannelConfigError {}

impl ChannelConfig {
    /// Starts a fluent builder seeded with the serial default; call
    /// [`ChannelConfigBuilder::build`] to validate and obtain the
    /// finished config.
    ///
    /// ```
    /// use nand_flash::sched::ChannelConfig;
    ///
    /// let cfg = ChannelConfig::builder()
    ///     .channels(4)
    ///     .planes(2)
    ///     .queue_depth(8)
    ///     .writeback_us(500.0)
    ///     .build()
    ///     .expect("valid channel config");
    /// assert_eq!(cfg.channels, 4);
    /// assert!(!cfg.is_serial());
    /// ```
    pub fn builder() -> ChannelConfigBuilder {
        ChannelConfigBuilder {
            config: ChannelConfig::default(),
        }
    }

    /// Validates invariants, returning a description of the first
    /// violation.
    ///
    /// # Errors
    ///
    /// [`ChannelConfigError`] describing the violated constraint.
    pub fn validate(&self) -> Result<(), ChannelConfigError> {
        if self.channels == 0 {
            return Err(ChannelConfigError::new("channels must be >= 1".into()));
        }
        if self.planes == 0 {
            return Err(ChannelConfigError::new("planes must be >= 1".into()));
        }
        if self.queue_depth == 0 {
            return Err(ChannelConfigError::new("queue_depth must be >= 1".into()));
        }
        if !self.writeback_us.is_finite() || self.writeback_us < 0.0 {
            return Err(ChannelConfigError::new(format!(
                "writeback_us must be finite and >= 0, got {}",
                self.writeback_us
            )));
        }
        if !self.xfer_us.is_finite() || self.xfer_us < 0.0 {
            return Err(ChannelConfigError::new(format!(
                "xfer_us must be finite and >= 0, got {}",
                self.xfer_us
            )));
        }
        Ok(())
    }

    /// Whether this configuration mimics serial execution: one channel,
    /// one plane, depth one, free bus, no write buffering. In this mode
    /// the event backend is the closed-form oracle, byte for byte.
    pub fn is_serial(&self) -> bool {
        self.channels == 1
            && self.planes == 1
            && self.queue_depth <= 1
            && self.writeback_us == 0.0
            && self.xfer_us == 0.0
    }
}

/// Fluent constructor for [`ChannelConfig`], obtained from
/// [`ChannelConfig::builder`]. Follows the `FlashCacheConfig::builder`
/// style: each setter overrides one field,
/// [`build`](ChannelConfigBuilder::build) validates.
#[derive(Debug, Clone)]
pub struct ChannelConfigBuilder {
    config: ChannelConfig,
}

impl ChannelConfigBuilder {
    /// Sets the channel count.
    pub fn channels(mut self, channels: u32) -> Self {
        self.config.channels = channels;
        self
    }

    /// Sets planes per channel.
    pub fn planes(mut self, planes: u32) -> Self {
        self.config.planes = planes;
        self
    }

    /// Sets the per-channel outstanding-op limit.
    pub fn queue_depth(mut self, queue_depth: u32) -> Self {
        self.config.queue_depth = queue_depth;
        self
    }

    /// Sets the write-buffer hold time, µs.
    pub fn writeback_us(mut self, writeback_us: f64) -> Self {
        self.config.writeback_us = writeback_us;
        self
    }

    /// Sets the per-op bus transfer time, µs.
    pub fn xfer_us(mut self, xfer_us: f64) -> Self {
        self.config.xfer_us = xfer_us;
        self
    }

    /// Sets the event-trace retention limit.
    pub fn trace_capacity(mut self, trace_capacity: u32) -> Self {
        self.config.trace_capacity = trace_capacity;
        self
    }

    /// Validates and returns the finished configuration.
    ///
    /// # Errors
    ///
    /// [`ChannelConfigError`] for zero channel/plane/depth counts or
    /// negative/non-finite times.
    pub fn build(self) -> Result<ChannelConfig, ChannelConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// Operation class, as the scheduler sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// Page read: cell access then bus transfer out.
    Read,
    /// Page program: bus transfer in then cell program.
    Program,
    /// Block erase: cell only.
    Erase,
}

/// One operation submitted to a [`TimingModel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpRequest {
    /// What the op does.
    pub class: OpClass,
    /// Cell mode (for erase: the block's worst programmed mode).
    pub mode: CellMode,
    /// Target block, used for channel/plane placement.
    pub block: u32,
    /// Logical (disk) address, when known — enables write-buffer
    /// coalescing for background programs.
    pub lba: Option<u64>,
    /// Background ops (GC, fills, flushes) consume device time without
    /// advancing the foreground clock.
    pub background: bool,
}

/// The timing verdict for one operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpTiming {
    /// Queueing delay before service began, µs. Exactly `0.0` under
    /// [`ClosedForm`] and under serial-mimic [`EventDriven`].
    pub wait_us: f64,
    /// Device service time (cell phase plus bus transfer), µs.
    pub service_us: f64,
}

/// Trace record kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// An op was placed on channel/plane resources.
    Dispatch,
    /// An op's completion event fired.
    Complete,
    /// A buffered write flushed to the NAND.
    WbFlush,
    /// A buffered write was superseded by a rewrite and never flushed.
    WbCoalesce,
}

/// One entry of the bounded event trace. Times are stored as raw `f64`
/// bits so equality is byte-exact across runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Event time as `f64::to_bits`.
    pub t_bits: u64,
    /// Global event sequence number.
    pub seq: u64,
    /// What happened.
    pub kind: TraceKind,
    /// Channel involved.
    pub channel: u32,
}

/// The redesigned device-timing API: a single object, resolved at
/// device construction, that prices every operation.
///
/// Implementations must be deterministic: the same op sequence yields
/// the same timings, clock, and trace.
pub trait TimingModel: fmt::Debug + Send {
    /// Prices one operation and advances internal state.
    fn op(&mut self, req: &OpRequest) -> OpTiming;
    /// Table read latency in `mode`, µs (no queueing).
    fn read_us(&self, mode: CellMode) -> f64;
    /// Table program latency in `mode`, µs (no queueing).
    fn program_us(&self, mode: CellMode) -> f64;
    /// Table erase latency for a block whose worst mode is `mode`, µs.
    fn erase_us(&self, mode: CellMode) -> f64;
    /// Current modeled clock, µs.
    fn now_us(&self) -> f64;
    /// Runs all pending events (including scheduled write-buffer
    /// flushes) and returns the makespan: the time at which every
    /// resource falls idle. Advances the clock to it.
    fn drain(&mut self) -> f64;
    /// The retained event trace (empty unless tracing is enabled).
    fn trace(&self) -> &[TraceEntry];
}

/// Builds the configured timing model.
pub fn build_model(
    backend: TimingBackend,
    timing: FlashTiming,
    channel: ChannelConfig,
) -> Box<dyn TimingModel + Send> {
    match backend {
        TimingBackend::ClosedForm => Box::new(ClosedForm::new(timing)),
        TimingBackend::EventDriven => Box::new(EventDriven::new(timing, channel)),
    }
}

fn table_read(t: &FlashTiming, mode: CellMode) -> f64 {
    match mode {
        CellMode::Slc => t.slc_read_us,
        CellMode::Mlc => t.mlc_read_us,
    }
}

fn table_program(t: &FlashTiming, mode: CellMode) -> f64 {
    match mode {
        CellMode::Slc => t.slc_program_us,
        CellMode::Mlc => t.mlc_program_us,
    }
}

fn table_erase(t: &FlashTiming, mode: CellMode) -> f64 {
    match mode {
        CellMode::Slc => t.slc_erase_us,
        CellMode::Mlc => t.mlc_erase_us,
    }
}

/// The original arithmetic model: wait is always zero, service is the
/// Table 2/3 latency, the clock is the running sum of service times.
#[derive(Debug, Clone)]
pub struct ClosedForm {
    timing: FlashTiming,
    clock_us: f64,
}

impl ClosedForm {
    /// A closed-form model over the given latency table.
    pub fn new(timing: FlashTiming) -> Self {
        ClosedForm {
            timing,
            clock_us: 0.0,
        }
    }
}

impl TimingModel for ClosedForm {
    fn op(&mut self, req: &OpRequest) -> OpTiming {
        let service_us = match req.class {
            OpClass::Read => table_read(&self.timing, req.mode),
            OpClass::Program => table_program(&self.timing, req.mode),
            OpClass::Erase => table_erase(&self.timing, req.mode),
        };
        self.clock_us += service_us;
        OpTiming {
            wait_us: 0.0,
            service_us,
        }
    }

    fn read_us(&self, mode: CellMode) -> f64 {
        table_read(&self.timing, mode)
    }

    fn program_us(&self, mode: CellMode) -> f64 {
        table_program(&self.timing, mode)
    }

    fn erase_us(&self, mode: CellMode) -> f64 {
        table_erase(&self.timing, mode)
    }

    fn now_us(&self) -> f64 {
        self.clock_us
    }

    fn drain(&mut self) -> f64 {
        self.clock_us
    }

    fn trace(&self) -> &[TraceEntry] {
        &[]
    }
}

/// Total-ordered `f64` for heap keys.
#[derive(Debug, Clone, Copy)]
struct OrdF64(f64);

impl PartialEq for OrdF64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[derive(Debug, Clone, Copy)]
enum EvKind {
    Complete {
        channel: u32,
    },
    WbFlush {
        lba: u64,
        generation: u64,
        mode: CellMode,
        block: u32,
    },
}

/// Heap event, min-ordered on `(time, seq)` via `Reverse`.
#[derive(Debug, Clone, Copy)]
struct Ev {
    t: f64,
    seq: u64,
    kind: EvKind,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Ev {}

impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ev {
    fn cmp(&self, other: &Self) -> Ordering {
        self.t.total_cmp(&other.t).then(self.seq.cmp(&other.seq))
    }
}

/// Discrete-event NAND scheduler with channel/plane parallelism.
///
/// See the module docs for the scheduling disciplines and the oracle
/// contract. The scheduler is RNG-free: determinism is structural.
#[derive(Debug)]
pub struct EventDriven {
    timing: FlashTiming,
    cfg: ChannelConfig,
    serial: bool,
    now_us: f64,
    seq: u64,
    events: BinaryHeap<Reverse<Ev>>,
    /// Per-channel time at which the bus falls idle.
    bus_free_us: Vec<f64>,
    /// Per-plane (channel-major) time at which the cell array falls idle.
    plane_free_us: Vec<f64>,
    /// Per-channel completion times of outstanding ops (queue-depth
    /// admission window).
    outstanding: Vec<BinaryHeap<Reverse<OrdF64>>>,
    /// Write buffer: LBA → generation of the pending flush.
    wb_pending: HashMap<u64, u64>,
    wb_generation: u64,
    trace: Vec<TraceEntry>,
}

impl EventDriven {
    /// An event-driven model over the given latency table and channel
    /// configuration.
    pub fn new(timing: FlashTiming, cfg: ChannelConfig) -> Self {
        let channels = cfg.channels.max(1) as usize;
        let planes = channels * cfg.planes.max(1) as usize;
        EventDriven {
            timing,
            serial: cfg.is_serial(),
            now_us: 0.0,
            seq: 0,
            events: BinaryHeap::new(),
            bus_free_us: vec![0.0; channels],
            plane_free_us: vec![0.0; planes],
            outstanding: (0..channels).map(|_| BinaryHeap::new()).collect(),
            wb_pending: HashMap::new(),
            wb_generation: 0,
            trace: Vec::new(),
            cfg,
        }
    }

    /// The channel configuration in force.
    pub fn channel_config(&self) -> &ChannelConfig {
        &self.cfg
    }

    /// Pending (not yet flushed or coalesced) write-buffer entries.
    pub fn buffered_writes(&self) -> usize {
        self.wb_pending.len()
    }

    fn push_trace(&mut self, kind: TraceKind, t: f64, seq: u64, channel: u32) {
        if self.trace.len() < self.cfg.trace_capacity as usize {
            self.trace.push(TraceEntry {
                t_bits: t.to_bits(),
                seq,
                kind,
                channel,
            });
        }
    }

    fn push_event(&mut self, t: f64, kind: EvKind) {
        let seq = self.seq;
        self.seq += 1;
        self.events.push(Reverse(Ev { t, seq, kind }));
    }

    fn channel_of(&self, block: u32) -> usize {
        (block % self.cfg.channels) as usize
    }

    fn plane_of(&self, block: u32) -> usize {
        let ch = self.channel_of(block);
        ch * self.cfg.planes as usize + ((block / self.cfg.channels) % self.cfg.planes) as usize
    }

    /// Places one op on the channel/plane timeline starting no earlier
    /// than `arrival_us`, returning `(wait, service, end)`.
    ///
    /// Wait is accumulated as a sum of individual stall terms (each a
    /// `max(ready, free) - ready`), never as `end - arrival - service`:
    /// in serial mode every term is exactly `0.0`, which keeps the
    /// oracle comparison byte-exact.
    fn dispatch(&mut self, class: OpClass, mode: CellMode, block: u32, arrival_us: f64) -> OpSpan {
        let ch = self.channel_of(block);
        let plane = self.plane_of(block);
        // FIFO queue-depth admission: completed ops leave the window,
        // then stall until the window has room.
        let depth = self.cfg.queue_depth.max(1) as usize;
        let q = &mut self.outstanding[ch];
        while matches!(q.peek(), Some(&Reverse(OrdF64(t))) if t <= arrival_us) {
            q.pop();
        }
        let mut admit_us = arrival_us;
        while q.len() >= depth {
            let Reverse(OrdF64(t)) = q.pop().expect("len >= depth > 0");
            if t > admit_us {
                admit_us = t;
            }
        }
        let mut wait_us = admit_us - arrival_us;
        let xfer = self.cfg.xfer_us;
        let (service_us, end);
        match class {
            OpClass::Read => {
                let cell = table_read(&self.timing, mode);
                let cell_start = if self.plane_free_us[plane] > admit_us {
                    self.plane_free_us[plane]
                } else {
                    admit_us
                };
                wait_us += cell_start - admit_us;
                let cell_end = cell_start + cell;
                let bus_start = if self.bus_free_us[ch] > cell_end {
                    self.bus_free_us[ch]
                } else {
                    cell_end
                };
                wait_us += bus_start - cell_end;
                end = bus_start + xfer;
                self.bus_free_us[ch] = end;
                self.plane_free_us[plane] = end;
                service_us = cell + xfer;
            }
            OpClass::Program => {
                let cell = table_program(&self.timing, mode);
                let bus_start = if self.bus_free_us[ch] > admit_us {
                    self.bus_free_us[ch]
                } else {
                    admit_us
                };
                wait_us += bus_start - admit_us;
                let bus_end = bus_start + xfer;
                self.bus_free_us[ch] = bus_end;
                let cell_start = if self.plane_free_us[plane] > bus_end {
                    self.plane_free_us[plane]
                } else {
                    bus_end
                };
                wait_us += cell_start - bus_end;
                end = cell_start + cell;
                self.plane_free_us[plane] = end;
                service_us = xfer + cell;
            }
            OpClass::Erase => {
                let cell = table_erase(&self.timing, mode);
                let cell_start = if self.plane_free_us[plane] > admit_us {
                    self.plane_free_us[plane]
                } else {
                    admit_us
                };
                wait_us += cell_start - admit_us;
                end = cell_start + cell;
                self.plane_free_us[plane] = end;
                service_us = cell;
            }
        }
        self.outstanding[ch].push(Reverse(OrdF64(end)));
        let seq = self.seq;
        self.push_trace(TraceKind::Dispatch, end, seq, ch as u32);
        self.push_event(end, EvKind::Complete { channel: ch as u32 });
        OpSpan {
            wait_us,
            service_us,
            end_us: end,
        }
    }

    /// Fires every event due at or before `t_us`.
    fn run_until(&mut self, t_us: f64) {
        while matches!(self.events.peek(), Some(&Reverse(ev)) if ev.t <= t_us) {
            let Reverse(ev) = self.events.pop().expect("peeked non-empty");
            self.fire(ev);
        }
    }

    fn fire(&mut self, ev: Ev) {
        match ev.kind {
            EvKind::Complete { channel } => {
                self.push_trace(TraceKind::Complete, ev.t, ev.seq, channel);
            }
            EvKind::WbFlush {
                lba,
                generation,
                mode,
                block,
            } => {
                if self.wb_pending.get(&lba) == Some(&generation) {
                    self.wb_pending.remove(&lba);
                    self.push_trace(
                        TraceKind::WbFlush,
                        ev.t,
                        ev.seq,
                        self.channel_of(block) as u32,
                    );
                    self.dispatch(OpClass::Program, mode, block, ev.t);
                } else {
                    self.push_trace(
                        TraceKind::WbCoalesce,
                        ev.t,
                        ev.seq,
                        self.channel_of(block) as u32,
                    );
                }
            }
        }
    }
}

/// Internal dispatch result.
#[derive(Debug, Clone, Copy)]
struct OpSpan {
    wait_us: f64,
    service_us: f64,
    end_us: f64,
}

impl TimingModel for EventDriven {
    fn op(&mut self, req: &OpRequest) -> OpTiming {
        let arrival_us = self.now_us;
        self.run_until(arrival_us);
        let blocking = self.serial || !req.background;
        if !blocking && req.class == OpClass::Program && self.cfg.writeback_us > 0.0 {
            if let Some(lba) = req.lba {
                // Buffer the write: the NAND occupancy happens at flush
                // time (or never, if a rewrite supersedes it), but the
                // service cost is reported now so device stats stay
                // monotone and backend-independent.
                self.wb_generation += 1;
                self.wb_pending.insert(lba, self.wb_generation);
                self.push_event(
                    arrival_us + self.cfg.writeback_us,
                    EvKind::WbFlush {
                        lba,
                        generation: self.wb_generation,
                        mode: req.mode,
                        block: req.block,
                    },
                );
                return OpTiming {
                    wait_us: 0.0,
                    service_us: table_program(&self.timing, req.mode) + self.cfg.xfer_us,
                };
            }
        }
        let span = self.dispatch(req.class, req.mode, req.block, arrival_us);
        if blocking {
            self.run_until(span.end_us);
            self.now_us = span.end_us;
        }
        OpTiming {
            wait_us: span.wait_us,
            service_us: span.service_us,
        }
    }

    fn read_us(&self, mode: CellMode) -> f64 {
        table_read(&self.timing, mode)
    }

    fn program_us(&self, mode: CellMode) -> f64 {
        table_program(&self.timing, mode)
    }

    fn erase_us(&self, mode: CellMode) -> f64 {
        table_erase(&self.timing, mode)
    }

    fn now_us(&self) -> f64 {
        self.now_us
    }

    fn drain(&mut self) -> f64 {
        // Fire everything still scheduled — buffered writes flush at
        // their writeback deadlines and their dispatches enqueue further
        // completion events, all consumed here in (time, seq) order.
        while let Some(Reverse(ev)) = self.events.pop() {
            self.fire(ev);
        }
        let mut makespan = self.now_us;
        for &t in &self.bus_free_us {
            if t > makespan {
                makespan = t;
            }
        }
        for &t in &self.plane_free_us {
            if t > makespan {
                makespan = t;
            }
        }
        self.now_us = makespan;
        makespan
    }

    fn trace(&self) -> &[TraceEntry] {
        &self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fg(class: OpClass, mode: CellMode, block: u32) -> OpRequest {
        OpRequest {
            class,
            mode,
            block,
            lba: None,
            background: false,
        }
    }

    fn bg(class: OpClass, mode: CellMode, block: u32, lba: Option<u64>) -> OpRequest {
        OpRequest {
            class,
            mode,
            block,
            lba,
            background: true,
        }
    }

    #[test]
    fn builder_validates() {
        assert!(ChannelConfig::builder().channels(0).build().is_err());
        assert!(ChannelConfig::builder().planes(0).build().is_err());
        assert!(ChannelConfig::builder().queue_depth(0).build().is_err());
        assert!(ChannelConfig::builder().writeback_us(-1.0).build().is_err());
        assert!(ChannelConfig::builder().xfer_us(f64::NAN).build().is_err());
        let cfg = ChannelConfig::builder()
            .channels(4)
            .planes(2)
            .queue_depth(8)
            .writeback_us(500.0)
            .xfer_us(40.0)
            .trace_capacity(64)
            .build()
            .unwrap();
        assert_eq!((cfg.channels, cfg.planes, cfg.queue_depth), (4, 2, 8));
        assert!(!cfg.is_serial());
        assert!(ChannelConfig::default().is_serial());
    }

    #[test]
    fn serial_event_model_matches_closed_form_bitwise() {
        let timing = FlashTiming::default();
        let mut oracle = ClosedForm::new(timing);
        let mut event = EventDriven::new(timing, ChannelConfig::default());
        let ops = [
            fg(OpClass::Read, CellMode::Slc, 0),
            bg(OpClass::Program, CellMode::Mlc, 1, Some(42)),
            fg(OpClass::Read, CellMode::Mlc, 1),
            bg(OpClass::Erase, CellMode::Mlc, 0, None),
            bg(OpClass::Program, CellMode::Slc, 2, Some(42)),
            fg(OpClass::Read, CellMode::Slc, 2),
        ];
        for op in &ops {
            let a = oracle.op(op);
            let b = event.op(op);
            assert_eq!(a.wait_us.to_bits(), b.wait_us.to_bits());
            assert_eq!(a.service_us.to_bits(), b.service_us.to_bits());
        }
        assert_eq!(oracle.drain().to_bits(), event.drain().to_bits());
        assert_eq!(oracle.now_us().to_bits(), event.now_us().to_bits());
    }

    #[test]
    fn channels_overlap_background_work() {
        let timing = FlashTiming::default();
        let cfg = ChannelConfig::builder()
            .channels(4)
            .queue_depth(8)
            .build()
            .unwrap();
        let mut event = EventDriven::new(timing, cfg);
        // Four background programs striped across four channels overlap;
        // serially they would cost 4 * 200µs.
        for block in 0..4 {
            event.op(&bg(OpClass::Program, CellMode::Slc, block, None));
        }
        let makespan = event.drain();
        assert_eq!(makespan, 200.0, "four channels run four programs in one");

        let mut serial = EventDriven::new(timing, ChannelConfig::default());
        for block in 0..4 {
            serial.op(&bg(OpClass::Program, CellMode::Slc, block, None));
        }
        assert_eq!(serial.drain(), 800.0);
    }

    #[test]
    fn background_traffic_delays_foreground_reads() {
        let timing = FlashTiming::default();
        let cfg = ChannelConfig::builder()
            .channels(1)
            .queue_depth(8)
            .xfer_us(0.0)
            .build()
            .unwrap();
        let mut event = EventDriven::new(timing, cfg);
        // A background erase occupies the sole plane...
        event.op(&bg(OpClass::Erase, CellMode::Mlc, 0, None));
        // ...so a foreground read on the same plane waits out the erase.
        let t = event.op(&fg(OpClass::Read, CellMode::Slc, 0));
        assert_eq!(t.wait_us, 3300.0);
        assert_eq!(t.service_us, 25.0);
    }

    #[test]
    fn queue_depth_throttles_admission() {
        let timing = FlashTiming::default();
        let deep = ChannelConfig::builder()
            .channels(1)
            .planes(4)
            .queue_depth(4)
            .build()
            .unwrap();
        let shallow = ChannelConfig::builder()
            .channels(1)
            .planes(4)
            .queue_depth(1)
            .build()
            .unwrap();
        // Four erases on four planes: deep queue overlaps them, a
        // depth-1 queue serializes admission.
        let mut a = EventDriven::new(timing, deep);
        let mut b = EventDriven::new(timing, shallow);
        for block in 0..4 {
            a.op(&bg(OpClass::Erase, CellMode::Slc, block, None));
            b.op(&bg(OpClass::Erase, CellMode::Slc, block, None));
        }
        assert_eq!(a.drain(), 1500.0);
        assert_eq!(b.drain(), 4.0 * 1500.0);
    }

    #[test]
    fn write_buffer_coalesces_rewrites() {
        let timing = FlashTiming::default();
        let cfg = ChannelConfig::builder()
            .channels(1)
            .queue_depth(8)
            .writeback_us(500.0)
            .trace_capacity(64)
            .build()
            .unwrap();
        let mut event = EventDriven::new(timing, cfg);
        // Three rewrites of the same LBA inside the window: only the
        // last flushes; the first two coalesce away.
        for block in 0..3 {
            event.op(&bg(OpClass::Program, CellMode::Slc, block, Some(7)));
        }
        assert_eq!(event.buffered_writes(), 1);
        let makespan = event.drain();
        assert_eq!(event.buffered_writes(), 0);
        // One program dispatched at its 500µs deadline.
        assert_eq!(makespan, 700.0);
        let flushes = event
            .trace()
            .iter()
            .filter(|e| e.kind == TraceKind::WbFlush)
            .count();
        let coalesced = event
            .trace()
            .iter()
            .filter(|e| e.kind == TraceKind::WbCoalesce)
            .count();
        assert_eq!((flushes, coalesced), (1, 2));
    }

    #[test]
    fn trace_is_reproducible_and_bounded() {
        let timing = FlashTiming::default();
        let cfg = ChannelConfig::builder()
            .channels(2)
            .queue_depth(4)
            .writeback_us(100.0)
            .trace_capacity(8)
            .build()
            .unwrap();
        let run = |cfg: ChannelConfig| {
            let mut event = EventDriven::new(timing, cfg);
            for i in 0..16u32 {
                event.op(&bg(
                    OpClass::Program,
                    CellMode::Mlc,
                    i,
                    Some(u64::from(i % 4)),
                ));
                event.op(&fg(OpClass::Read, CellMode::Slc, i));
            }
            event.drain();
            event.trace().to_vec()
        };
        let a = run(cfg);
        let b = run(cfg);
        assert_eq!(a, b, "same config + same ops => byte-identical trace");
        assert!(a.len() <= 8);
        assert!(!a.is_empty());
    }

    #[test]
    fn closed_form_clock_sums_services() {
        let mut model = ClosedForm::new(FlashTiming::default());
        model.op(&fg(OpClass::Read, CellMode::Slc, 0));
        model.op(&fg(OpClass::Program, CellMode::Mlc, 0));
        assert_eq!(model.now_us(), 25.0 + 680.0);
        assert_eq!(model.drain(), 25.0 + 680.0);
        assert!(model.trace().is_empty());
        assert_eq!(model.read_us(CellMode::Mlc), 50.0);
        assert_eq!(model.program_us(CellMode::Slc), 200.0);
        assert_eq!(model.erase_us(CellMode::Mlc), 3300.0);
    }
}
