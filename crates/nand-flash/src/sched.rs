//! Device-timing API and deterministic discrete-event NAND scheduler.
//!
//! This module fronts all operation timing behind the [`TimingModel`]
//! trait, resolved once at device construction:
//!
//! * [`ClosedForm`] — the original Table 2/3 arithmetic: every op costs
//!   its table latency, no queueing, wait is always zero. Bit-for-bit
//!   identical to the pre-trait free-function sums.
//! * [`EventDriven`] — a discrete-event scheduler with per-channel bus
//!   arbitration, per-plane cell occupancy, bounded queue depth, and a
//!   coalescing write buffer, in the spirit of FTL-SIM's event loop and
//!   the multi-channel interleaving literature.
//!
//! The event-driven scheduler itself has two compiled-in
//! implementations, selected by [`ChannelConfig::sched_backend`]:
//!
//! * [`SchedBackend::Wheel`] (default) — the fast core: a bucketed
//!   calendar queue (timer wheel) with a slab event arena for the
//!   global timeline, flat per-channel admission windows, and a
//!   no-contention bypass that materializes no event at all when
//!   nothing can observe it (tracing off). Steady-state scheduling
//!   allocates nothing.
//! * [`SchedBackend::Heap`] — the original `BinaryHeap`-based
//!   scheduler, retained as a differential oracle. Both backends must
//!   produce byte-identical per-op timings, drained makespans, and
//!   event traces; `tests/sched_props.rs` pins this.
//!
//! Events are keyed on `(time, seq)` — ties broken by submission
//! sequence — so replaying the same op stream always pops events in the
//! same order and the event trace is byte-reproducible. The wheel
//! quantizes event *placement* (bucket index) but never event *times*:
//! within a bucket the exact `(time, seq)` minimum is selected, and
//! bucket order is consistent with time order because the tick mapping
//! is monotone, so drained times stay bit-identical to the heap.
//!
//! # Oracle contract
//!
//! With [`ChannelConfig::is_serial`] (1 channel, 1 plane, queue depth 1,
//! zero transfer time, zero writeback delay) every operation — fore- or
//! background — blocks and advances the clock, every stall term is
//! exactly `0.0`, and the reported `(wait, service)` pairs are
//! byte-identical to [`ClosedForm`]. Differential tests pin this.
//!
//! # Scheduling disciplines
//!
//! * Channel of a block: `block % channels`; plane within the channel:
//!   `(block / channels) % planes` — consecutive blocks stripe across
//!   channels first, then planes.
//! * Reads occupy the plane for the cell access, then the channel bus
//!   for the transfer out. Programs transfer over the bus first, then
//!   occupy the plane for the cell program. Erases occupy only the
//!   plane. Cell phases on different planes overlap; the bus serializes
//!   per channel.
//! * At most `queue_depth` ops may be outstanding per channel; excess
//!   submissions stall until a slot frees (FIFO admission).
//! * Background programs carrying an LBA are held in a write buffer for
//!   `writeback_us`; a rewrite of the same LBA inside the window
//!   supersedes the pending flush (generation counter), so only the
//!   last version occupies the NAND. Foreground ops arriving before a
//!   flush deadline are dispatched ahead of it.
//! * Background ops (GC traffic, fills, buffered flushes) consume
//!   channel and plane time without advancing the foreground clock, so
//!   later foreground ops observe genuine queue wait.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;
use std::error::Error;
use std::fmt;

use crate::fxhash::FxHashMap;
use crate::geometry::CellMode;
use crate::timing::FlashTiming;

/// Which timing implementation a device resolves at construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimingBackend {
    /// Closed-form per-op sums (the original model, and the oracle).
    #[default]
    ClosedForm,
    /// Discrete-event scheduler with channel/plane parallelism.
    EventDriven,
}

/// Which event-queue implementation the event-driven scheduler uses.
///
/// Both backends implement exactly the same scheduling disciplines and
/// must agree bit-for-bit on every per-op timing, trace entry, and
/// drained makespan; the heap is retained purely as a differential
/// oracle for the wheel's cache-friendly structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedBackend {
    /// `BinaryHeap` event queue + per-channel admission heaps (the
    /// original implementation; the oracle).
    Heap,
    /// Bucketed timer wheel + slab event arena + flat admission
    /// windows (the fast default).
    #[default]
    Wheel,
}

/// Channel-level geometry and scheduling parameters for the
/// event-driven backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelConfig {
    /// Independent channels (each with its own bus).
    pub channels: u32,
    /// Planes per channel (cell ops on different planes overlap).
    pub planes: u32,
    /// Outstanding ops admitted per channel before submissions stall.
    pub queue_depth: u32,
    /// Write-buffer hold time before a background program is flushed to
    /// the NAND, µs. Zero disables buffering.
    pub writeback_us: f64,
    /// Bus transfer time per page op, µs. Zero makes the bus free.
    pub xfer_us: f64,
    /// Maximum retained event-trace entries (0 disables tracing).
    pub trace_capacity: u32,
    /// Event-queue implementation (wheel by default; heap is the
    /// differential oracle).
    pub sched_backend: SchedBackend,
}

impl Default for ChannelConfig {
    fn default() -> Self {
        ChannelConfig {
            channels: 1,
            planes: 1,
            queue_depth: 1,
            writeback_us: 0.0,
            xfer_us: 0.0,
            trace_capacity: 0,
            sched_backend: SchedBackend::default(),
        }
    }
}

/// Invalid [`ChannelConfig`] description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelConfigError(String);

impl ChannelConfigError {
    fn new(msg: String) -> Self {
        ChannelConfigError(msg)
    }
}

impl fmt::Display for ChannelConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid channel config: {}", self.0)
    }
}

impl Error for ChannelConfigError {}

impl ChannelConfig {
    /// Starts a fluent builder seeded with the serial default; call
    /// [`ChannelConfigBuilder::build`] to validate and obtain the
    /// finished config.
    ///
    /// ```
    /// use nand_flash::sched::ChannelConfig;
    ///
    /// let cfg = ChannelConfig::builder()
    ///     .channels(4)
    ///     .planes(2)
    ///     .queue_depth(8)
    ///     .writeback_us(500.0)
    ///     .build()
    ///     .expect("valid channel config");
    /// assert_eq!(cfg.channels, 4);
    /// assert!(!cfg.is_serial());
    /// ```
    pub fn builder() -> ChannelConfigBuilder {
        ChannelConfigBuilder {
            config: ChannelConfig::default(),
        }
    }

    /// Validates invariants, returning a description of the first
    /// violation.
    ///
    /// # Errors
    ///
    /// [`ChannelConfigError`] describing the violated constraint.
    pub fn validate(&self) -> Result<(), ChannelConfigError> {
        if self.channels == 0 {
            return Err(ChannelConfigError::new("channels must be >= 1".into()));
        }
        if self.planes == 0 {
            return Err(ChannelConfigError::new("planes must be >= 1".into()));
        }
        if self.queue_depth == 0 {
            return Err(ChannelConfigError::new("queue_depth must be >= 1".into()));
        }
        if !self.writeback_us.is_finite() || self.writeback_us < 0.0 {
            return Err(ChannelConfigError::new(format!(
                "writeback_us must be finite and >= 0, got {}",
                self.writeback_us
            )));
        }
        if !self.xfer_us.is_finite() || self.xfer_us < 0.0 {
            return Err(ChannelConfigError::new(format!(
                "xfer_us must be finite and >= 0, got {}",
                self.xfer_us
            )));
        }
        Ok(())
    }

    /// Whether this configuration mimics serial execution: one channel,
    /// one plane, depth one, free bus, no write buffering. In this mode
    /// the event backend is the closed-form oracle, byte for byte.
    pub fn is_serial(&self) -> bool {
        self.channels == 1
            && self.planes == 1
            && self.queue_depth <= 1
            && self.writeback_us == 0.0
            && self.xfer_us == 0.0
    }
}

/// Fluent constructor for [`ChannelConfig`], obtained from
/// [`ChannelConfig::builder`]. Follows the `FlashCacheConfig::builder`
/// style: each setter overrides one field,
/// [`build`](ChannelConfigBuilder::build) validates.
#[derive(Debug, Clone)]
pub struct ChannelConfigBuilder {
    config: ChannelConfig,
}

impl ChannelConfigBuilder {
    /// Sets the channel count.
    pub fn channels(mut self, channels: u32) -> Self {
        self.config.channels = channels;
        self
    }

    /// Sets planes per channel.
    pub fn planes(mut self, planes: u32) -> Self {
        self.config.planes = planes;
        self
    }

    /// Sets the per-channel outstanding-op limit.
    pub fn queue_depth(mut self, queue_depth: u32) -> Self {
        self.config.queue_depth = queue_depth;
        self
    }

    /// Sets the write-buffer hold time, µs.
    pub fn writeback_us(mut self, writeback_us: f64) -> Self {
        self.config.writeback_us = writeback_us;
        self
    }

    /// Sets the per-op bus transfer time, µs.
    pub fn xfer_us(mut self, xfer_us: f64) -> Self {
        self.config.xfer_us = xfer_us;
        self
    }

    /// Sets the event-trace retention limit.
    pub fn trace_capacity(mut self, trace_capacity: u32) -> Self {
        self.config.trace_capacity = trace_capacity;
        self
    }

    /// Selects the event-queue implementation (wheel by default).
    pub fn sched_backend(mut self, sched_backend: SchedBackend) -> Self {
        self.config.sched_backend = sched_backend;
        self
    }

    /// Validates and returns the finished configuration.
    ///
    /// # Errors
    ///
    /// [`ChannelConfigError`] for zero channel/plane/depth counts or
    /// negative/non-finite times.
    pub fn build(self) -> Result<ChannelConfig, ChannelConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// Operation class, as the scheduler sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// Page read: cell access then bus transfer out.
    Read,
    /// Page program: bus transfer in then cell program.
    Program,
    /// Block erase: cell only.
    Erase,
}

/// One operation submitted to a [`TimingModel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpRequest {
    /// What the op does.
    pub class: OpClass,
    /// Cell mode (for erase: the block's worst programmed mode).
    pub mode: CellMode,
    /// Target block, used for channel/plane placement.
    pub block: u32,
    /// Logical (disk) address, when known — enables write-buffer
    /// coalescing for background programs.
    pub lba: Option<u64>,
    /// Background ops (GC, fills, flushes) consume device time without
    /// advancing the foreground clock.
    pub background: bool,
}

/// The timing verdict for one operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpTiming {
    /// Queueing delay before service began, µs. Exactly `0.0` under
    /// [`ClosedForm`] and under serial-mimic [`EventDriven`].
    pub wait_us: f64,
    /// Device service time (cell phase plus bus transfer), µs.
    pub service_us: f64,
}

/// Trace record kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// An op was placed on channel/plane resources.
    Dispatch,
    /// An op's completion event fired.
    Complete,
    /// A buffered write flushed to the NAND.
    WbFlush,
    /// A buffered write was superseded by a rewrite and never flushed.
    WbCoalesce,
}

/// One entry of the bounded event trace. Times are stored as raw `f64`
/// bits so equality is byte-exact across runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Event time as `f64::to_bits`.
    pub t_bits: u64,
    /// Global event sequence number.
    pub seq: u64,
    /// What happened.
    pub kind: TraceKind,
    /// Channel involved.
    pub channel: u32,
}

/// The redesigned device-timing API: a single object, resolved at
/// device construction, that prices every operation.
///
/// Implementations must be deterministic: the same op sequence yields
/// the same timings, clock, and trace.
pub trait TimingModel: fmt::Debug + Send {
    /// Prices one operation and advances internal state.
    fn op(&mut self, req: &OpRequest) -> OpTiming;
    /// Table read latency in `mode`, µs (no queueing).
    fn read_us(&self, mode: CellMode) -> f64;
    /// Table program latency in `mode`, µs (no queueing).
    fn program_us(&self, mode: CellMode) -> f64;
    /// Table erase latency for a block whose worst mode is `mode`, µs.
    fn erase_us(&self, mode: CellMode) -> f64;
    /// Current modeled clock, µs.
    fn now_us(&self) -> f64;
    /// Runs all pending events (including scheduled write-buffer
    /// flushes) and returns the makespan: the time at which every
    /// resource falls idle. Advances the clock to it.
    fn drain(&mut self) -> f64;
    /// The retained event trace (empty unless tracing is enabled).
    fn trace(&self) -> &[TraceEntry];
}

/// Builds the configured timing model.
pub fn build_model(
    backend: TimingBackend,
    timing: FlashTiming,
    channel: ChannelConfig,
) -> Box<dyn TimingModel + Send> {
    match backend {
        TimingBackend::ClosedForm => Box::new(ClosedForm::new(timing)),
        TimingBackend::EventDriven => Box::new(EventDriven::new(timing, channel)),
    }
}

fn table_read(t: &FlashTiming, mode: CellMode) -> f64 {
    match mode {
        CellMode::Slc => t.slc_read_us,
        CellMode::Mlc => t.mlc_read_us,
    }
}

fn table_program(t: &FlashTiming, mode: CellMode) -> f64 {
    match mode {
        CellMode::Slc => t.slc_program_us,
        CellMode::Mlc => t.mlc_program_us,
    }
}

fn table_erase(t: &FlashTiming, mode: CellMode) -> f64 {
    match mode {
        CellMode::Slc => t.slc_erase_us,
        CellMode::Mlc => t.mlc_erase_us,
    }
}

/// The original arithmetic model: wait is always zero, service is the
/// Table 2/3 latency, the clock is the running sum of service times.
#[derive(Debug, Clone)]
pub struct ClosedForm {
    timing: FlashTiming,
    clock_us: f64,
}

impl ClosedForm {
    /// A closed-form model over the given latency table.
    pub fn new(timing: FlashTiming) -> Self {
        ClosedForm {
            timing,
            clock_us: 0.0,
        }
    }
}

impl TimingModel for ClosedForm {
    fn op(&mut self, req: &OpRequest) -> OpTiming {
        let service_us = match req.class {
            OpClass::Read => table_read(&self.timing, req.mode),
            OpClass::Program => table_program(&self.timing, req.mode),
            OpClass::Erase => table_erase(&self.timing, req.mode),
        };
        self.clock_us += service_us;
        OpTiming {
            wait_us: 0.0,
            service_us,
        }
    }

    fn read_us(&self, mode: CellMode) -> f64 {
        table_read(&self.timing, mode)
    }

    fn program_us(&self, mode: CellMode) -> f64 {
        table_program(&self.timing, mode)
    }

    fn erase_us(&self, mode: CellMode) -> f64 {
        table_erase(&self.timing, mode)
    }

    fn now_us(&self) -> f64 {
        self.clock_us
    }

    fn drain(&mut self) -> f64 {
        self.clock_us
    }

    fn trace(&self) -> &[TraceEntry] {
        &[]
    }
}

/// Total-ordered `f64` for heap keys.
#[derive(Debug, Clone, Copy)]
struct OrdF64(f64);

impl PartialEq for OrdF64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[derive(Debug, Clone, Copy)]
enum EvKind {
    Complete {
        channel: u32,
    },
    WbFlush {
        lba: u64,
        generation: u64,
        mode: CellMode,
        block: u32,
    },
}

/// Timeline event, min-ordered on `(time, seq)`.
#[derive(Debug, Clone, Copy)]
struct Ev {
    t: f64,
    seq: u64,
    kind: EvKind,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Ev {}

impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ev {
    fn cmp(&self, other: &Self) -> Ordering {
        self.t.total_cmp(&other.t).then(self.seq.cmp(&other.seq))
    }
}

#[inline]
fn channel_of(cfg: &ChannelConfig, block: u32) -> usize {
    (block % cfg.channels) as usize
}

#[inline]
fn plane_of(cfg: &ChannelConfig, block: u32) -> usize {
    let ch = channel_of(cfg, block);
    ch * cfg.planes as usize + ((block / cfg.channels) % cfg.planes) as usize
}

/// Places one admitted op on the channel/plane timelines and returns
/// `(service, end)`, accumulating stall terms into `wait_us`.
///
/// Shared by both event backends so the stall arithmetic is *textually*
/// identical — each stall term is a `max(ready, free) - ready`, never
/// `end - arrival - service`, which is what keeps serial-mode waits
/// exactly `0.0` and the heap/wheel comparison byte-exact. The wide
/// parameter list is the point: both callers hand over exactly the
/// resource state the arithmetic reads, nothing behind a struct that
/// would differ between them.
#[inline]
#[allow(clippy::too_many_arguments)]
fn place_op(
    timing: &FlashTiming,
    xfer: f64,
    bus_free_us: &mut [f64],
    plane_free_us: &mut [f64],
    class: OpClass,
    mode: CellMode,
    ch: usize,
    plane: usize,
    admit_us: f64,
    wait_us: &mut f64,
) -> (f64, f64) {
    let (service_us, end);
    match class {
        OpClass::Read => {
            let cell = table_read(timing, mode);
            let cell_start = if plane_free_us[plane] > admit_us {
                plane_free_us[plane]
            } else {
                admit_us
            };
            *wait_us += cell_start - admit_us;
            let cell_end = cell_start + cell;
            let bus_start = if bus_free_us[ch] > cell_end {
                bus_free_us[ch]
            } else {
                cell_end
            };
            *wait_us += bus_start - cell_end;
            end = bus_start + xfer;
            bus_free_us[ch] = end;
            plane_free_us[plane] = end;
            service_us = cell + xfer;
        }
        OpClass::Program => {
            let cell = table_program(timing, mode);
            let bus_start = if bus_free_us[ch] > admit_us {
                bus_free_us[ch]
            } else {
                admit_us
            };
            *wait_us += bus_start - admit_us;
            let bus_end = bus_start + xfer;
            bus_free_us[ch] = bus_end;
            let cell_start = if plane_free_us[plane] > bus_end {
                plane_free_us[plane]
            } else {
                bus_end
            };
            *wait_us += cell_start - bus_end;
            end = cell_start + cell;
            plane_free_us[plane] = end;
            service_us = xfer + cell;
        }
        OpClass::Erase => {
            let cell = table_erase(timing, mode);
            let cell_start = if plane_free_us[plane] > admit_us {
                plane_free_us[plane]
            } else {
                admit_us
            };
            *wait_us += cell_start - admit_us;
            end = cell_start + cell;
            plane_free_us[plane] = end;
            service_us = cell;
        }
    }
    (service_us, end)
}

/// Internal dispatch result.
#[derive(Debug, Clone, Copy)]
struct OpSpan {
    wait_us: f64,
    service_us: f64,
    end_us: f64,
}

/// Discrete-event NAND scheduler with channel/plane parallelism.
///
/// See the module docs for the scheduling disciplines and the oracle
/// contract. The scheduler is RNG-free: determinism is structural. The
/// internal event-queue implementation is selected by
/// [`ChannelConfig::sched_backend`]; both produce byte-identical
/// timings, traces, and makespans.
#[derive(Debug)]
pub struct EventDriven {
    inner: EventImpl,
}

// One `EventDriven` exists per device (already boxed behind
// `dyn TimingModel`), so the variant size gap is irrelevant and an
// extra indirection would cost on every op.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum EventImpl {
    Heap(EventHeap),
    Wheel(EventWheel),
}

impl EventDriven {
    /// An event-driven model over the given latency table and channel
    /// configuration.
    pub fn new(timing: FlashTiming, cfg: ChannelConfig) -> Self {
        let inner = match cfg.sched_backend {
            SchedBackend::Heap => EventImpl::Heap(EventHeap::new(timing, cfg)),
            SchedBackend::Wheel => EventImpl::Wheel(EventWheel::new(timing, cfg)),
        };
        EventDriven { inner }
    }

    /// The channel configuration in force.
    pub fn channel_config(&self) -> &ChannelConfig {
        match &self.inner {
            EventImpl::Heap(m) => &m.cfg,
            EventImpl::Wheel(m) => &m.cfg,
        }
    }

    /// Pending (not yet flushed or coalesced) write-buffer entries.
    pub fn buffered_writes(&self) -> usize {
        match &self.inner {
            EventImpl::Heap(m) => m.wb_pending.len(),
            EventImpl::Wheel(m) => m.wb_pending.len(),
        }
    }
}

impl TimingModel for EventDriven {
    fn op(&mut self, req: &OpRequest) -> OpTiming {
        match &mut self.inner {
            EventImpl::Heap(m) => m.op(req),
            EventImpl::Wheel(m) => m.op(req),
        }
    }

    fn read_us(&self, mode: CellMode) -> f64 {
        match &self.inner {
            EventImpl::Heap(m) => table_read(&m.timing, mode),
            EventImpl::Wheel(m) => table_read(&m.timing, mode),
        }
    }

    fn program_us(&self, mode: CellMode) -> f64 {
        match &self.inner {
            EventImpl::Heap(m) => table_program(&m.timing, mode),
            EventImpl::Wheel(m) => table_program(&m.timing, mode),
        }
    }

    fn erase_us(&self, mode: CellMode) -> f64 {
        match &self.inner {
            EventImpl::Heap(m) => table_erase(&m.timing, mode),
            EventImpl::Wheel(m) => table_erase(&m.timing, mode),
        }
    }

    fn now_us(&self) -> f64 {
        match &self.inner {
            EventImpl::Heap(m) => m.now_us,
            EventImpl::Wheel(m) => m.now_us,
        }
    }

    fn drain(&mut self) -> f64 {
        match &mut self.inner {
            EventImpl::Heap(m) => m.drain(),
            EventImpl::Wheel(m) => m.drain(),
        }
    }

    fn trace(&self) -> &[TraceEntry] {
        match &self.inner {
            EventImpl::Heap(m) => &m.trace,
            EventImpl::Wheel(m) => &m.trace,
        }
    }
}

/// The original heap-based event scheduler, retained verbatim as the
/// differential oracle for [`EventWheel`].
#[derive(Debug)]
struct EventHeap {
    timing: FlashTiming,
    cfg: ChannelConfig,
    serial: bool,
    now_us: f64,
    seq: u64,
    events: BinaryHeap<Reverse<Ev>>,
    /// Per-channel time at which the bus falls idle.
    bus_free_us: Vec<f64>,
    /// Per-plane (channel-major) time at which the cell array falls idle.
    plane_free_us: Vec<f64>,
    /// Per-channel completion times of outstanding ops (queue-depth
    /// admission window).
    outstanding: Vec<BinaryHeap<Reverse<OrdF64>>>,
    /// Write buffer: LBA → generation of the pending flush.
    wb_pending: FxHashMap<u64, u64>,
    wb_generation: u64,
    trace: Vec<TraceEntry>,
}

impl EventHeap {
    fn new(timing: FlashTiming, cfg: ChannelConfig) -> Self {
        let channels = cfg.channels.max(1) as usize;
        let planes = channels * cfg.planes.max(1) as usize;
        EventHeap {
            timing,
            serial: cfg.is_serial(),
            now_us: 0.0,
            seq: 0,
            events: BinaryHeap::new(),
            bus_free_us: vec![0.0; channels],
            plane_free_us: vec![0.0; planes],
            outstanding: (0..channels).map(|_| BinaryHeap::new()).collect(),
            wb_pending: FxHashMap::default(),
            wb_generation: 0,
            trace: Vec::new(),
            cfg,
        }
    }

    fn push_trace(&mut self, kind: TraceKind, t: f64, seq: u64, channel: u32) {
        if self.trace.len() < self.cfg.trace_capacity as usize {
            self.trace.push(TraceEntry {
                t_bits: t.to_bits(),
                seq,
                kind,
                channel,
            });
        }
    }

    fn push_event(&mut self, t: f64, kind: EvKind) {
        let seq = self.seq;
        self.seq += 1;
        self.events.push(Reverse(Ev { t, seq, kind }));
    }

    /// Places one op on the channel/plane timeline starting no earlier
    /// than `arrival_us`, returning `(wait, service, end)`.
    fn dispatch(&mut self, class: OpClass, mode: CellMode, block: u32, arrival_us: f64) -> OpSpan {
        let ch = channel_of(&self.cfg, block);
        let plane = plane_of(&self.cfg, block);
        // FIFO queue-depth admission: completed ops leave the window,
        // then stall until the window has room.
        let depth = self.cfg.queue_depth.max(1) as usize;
        let q = &mut self.outstanding[ch];
        while matches!(q.peek(), Some(&Reverse(OrdF64(t))) if t <= arrival_us) {
            q.pop();
        }
        let mut admit_us = arrival_us;
        while q.len() >= depth {
            let Reverse(OrdF64(t)) = q.pop().expect("len >= depth > 0");
            if t > admit_us {
                admit_us = t;
            }
        }
        let mut wait_us = admit_us - arrival_us;
        let (service_us, end) = place_op(
            &self.timing,
            self.cfg.xfer_us,
            &mut self.bus_free_us,
            &mut self.plane_free_us,
            class,
            mode,
            ch,
            plane,
            admit_us,
            &mut wait_us,
        );
        self.outstanding[ch].push(Reverse(OrdF64(end)));
        let seq = self.seq;
        self.push_trace(TraceKind::Dispatch, end, seq, ch as u32);
        self.push_event(end, EvKind::Complete { channel: ch as u32 });
        OpSpan {
            wait_us,
            service_us,
            end_us: end,
        }
    }

    /// Fires every event due at or before `t_us`.
    fn run_until(&mut self, t_us: f64) {
        while matches!(self.events.peek(), Some(&Reverse(ev)) if ev.t <= t_us) {
            let Reverse(ev) = self.events.pop().expect("peeked non-empty");
            self.fire(ev);
        }
    }

    fn fire(&mut self, ev: Ev) {
        match ev.kind {
            EvKind::Complete { channel } => {
                self.push_trace(TraceKind::Complete, ev.t, ev.seq, channel);
            }
            EvKind::WbFlush {
                lba,
                generation,
                mode,
                block,
            } => {
                if self.wb_pending.get(&lba) == Some(&generation) {
                    self.wb_pending.remove(&lba);
                    self.push_trace(
                        TraceKind::WbFlush,
                        ev.t,
                        ev.seq,
                        channel_of(&self.cfg, block) as u32,
                    );
                    self.dispatch(OpClass::Program, mode, block, ev.t);
                } else {
                    self.push_trace(
                        TraceKind::WbCoalesce,
                        ev.t,
                        ev.seq,
                        channel_of(&self.cfg, block) as u32,
                    );
                }
            }
        }
    }

    fn op(&mut self, req: &OpRequest) -> OpTiming {
        let arrival_us = self.now_us;
        self.run_until(arrival_us);
        let blocking = self.serial || !req.background;
        if !blocking && req.class == OpClass::Program && self.cfg.writeback_us > 0.0 {
            if let Some(lba) = req.lba {
                // Buffer the write: the NAND occupancy happens at flush
                // time (or never, if a rewrite supersedes it), but the
                // service cost is reported now so device stats stay
                // monotone and backend-independent.
                self.wb_generation += 1;
                self.wb_pending.insert(lba, self.wb_generation);
                self.push_event(
                    arrival_us + self.cfg.writeback_us,
                    EvKind::WbFlush {
                        lba,
                        generation: self.wb_generation,
                        mode: req.mode,
                        block: req.block,
                    },
                );
                return OpTiming {
                    wait_us: 0.0,
                    service_us: table_program(&self.timing, req.mode) + self.cfg.xfer_us,
                };
            }
        }
        let span = self.dispatch(req.class, req.mode, req.block, arrival_us);
        if blocking {
            self.run_until(span.end_us);
            self.now_us = span.end_us;
        }
        OpTiming {
            wait_us: span.wait_us,
            service_us: span.service_us,
        }
    }

    fn drain(&mut self) -> f64 {
        // Fire everything still scheduled — buffered writes flush at
        // their writeback deadlines and their dispatches enqueue further
        // completion events, all consumed here in (time, seq) order.
        while let Some(Reverse(ev)) = self.events.pop() {
            self.fire(ev);
        }
        let mut makespan = self.now_us;
        for &t in &self.bus_free_us {
            if t > makespan {
                makespan = t;
            }
        }
        for &t in &self.plane_free_us {
            if t > makespan {
                makespan = t;
            }
        }
        self.now_us = makespan;
        makespan
    }
}

/// Ring size of the calendar queue (one wrap of the wheel).
const WHEEL_BUCKETS: usize = 1024;
/// Bitmap words covering the ring.
const WHEEL_WORDS: usize = WHEEL_BUCKETS / 64;
/// Bucket width, µs. Sized so one wrap (16.4 ms) covers the event
/// horizon of deep queues of the slowest op (MLC erase, 3.3 ms) plus
/// any realistic writeback window; farther events overflow to a side
/// list that is cascaded back in when the ring empties.
const WHEEL_QUANTUM_US: f64 = 16.0;
const WHEEL_INV_QUANTUM: f64 = 1.0 / WHEEL_QUANTUM_US;
/// Null link in the slab arena.
const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct EvNode {
    ev: Ev,
    next: u32,
}

/// Bucketed calendar queue (timer wheel) over a slab event arena.
///
/// Events are binned by quantized time (`tick = floor(t / quantum)`)
/// into a ring of singly linked buckets; freed nodes return to a free
/// list, so steady-state push/pop allocates nothing. The quantization
/// contract: bucketing affects only *placement* — the tick mapping is
/// monotone (so an event in an earlier bucket never has a later time),
/// and within a bucket the exact `(t, seq)` minimum is selected — so
/// pop order, and therefore every drained time, is bit-identical to a
/// total-order heap. Events beyond one wrap land on an unsorted
/// overflow list and cascade into the ring when it empties; all ring
/// events hold ticks inside `[base_tick, base_tick + WHEEL_BUCKETS)`,
/// which keeps every bucket single-ticked (no wrap collisions).
#[derive(Debug)]
struct TimerWheel {
    nodes: Vec<EvNode>,
    free_head: u32,
    heads: Vec<u32>,
    occupied: [u64; WHEEL_WORDS],
    /// Quantized time of the ring window start. Events pushed with an
    /// earlier tick are clamped into the base bucket (see
    /// [`TimerWheel::push`]); everything else in the ring holds ticks
    /// inside `[base_tick, base_tick + WHEEL_BUCKETS)`.
    base_tick: u64,
    ring_len: usize,
    overflow: Vec<Ev>,
    len: usize,
}

impl TimerWheel {
    fn new() -> Self {
        TimerWheel {
            nodes: Vec::new(),
            free_head: NIL,
            heads: vec![NIL; WHEEL_BUCKETS],
            occupied: [0; WHEEL_WORDS],
            base_tick: 0,
            ring_len: 0,
            overflow: Vec::new(),
            len: 0,
        }
    }

    /// Quantized bucket index of an event time. Monotone: `t1 <= t2`
    /// implies `tick_of(t1) <= tick_of(t2)` (IEEE multiplication by a
    /// positive constant and the truncating cast are both monotone), so
    /// bucket order can never contradict time order.
    #[inline]
    fn tick_of(t: f64) -> u64 {
        (t * WHEEL_INV_QUANTUM) as u64
    }

    #[inline]
    fn len(&self) -> usize {
        self.len
    }

    fn push(&mut self, ev: Ev) {
        let tick = Self::tick_of(ev.t);
        if self.len == 0 {
            self.base_tick = tick;
        }
        self.len += 1;
        // An event can land before the window start when the wheel was
        // seeded by a *later* event (a distant writeback deadline, say,
        // followed by a near completion). Clamping it into the base
        // bucket preserves exact pop order: the base bucket is scanned
        // first, every clamped event's time precedes every event in a
        // later bucket (`t < base_tick * quantum <= later bucket
        // start`), and within the bucket selection compares exact
        // `(t, seq)`.
        let tick = tick.max(self.base_tick);
        if tick - self.base_tick >= WHEEL_BUCKETS as u64 {
            self.overflow.push(ev);
        } else {
            self.insert_ring(tick, ev);
        }
    }

    fn insert_ring(&mut self, tick: u64, ev: Ev) {
        let slot = (tick % WHEEL_BUCKETS as u64) as usize;
        let node = EvNode {
            ev,
            next: self.heads[slot],
        };
        let idx = if self.free_head != NIL {
            let idx = self.free_head;
            self.free_head = self.nodes[idx as usize].next;
            self.nodes[idx as usize] = node;
            idx
        } else {
            let idx = self.nodes.len() as u32;
            self.nodes.push(node);
            idx
        };
        self.heads[slot] = idx;
        self.occupied[slot / 64] |= 1u64 << (slot % 64);
        self.ring_len += 1;
    }

    /// Pops the globally earliest `(t, seq)` event if its time is at or
    /// before `limit`.
    fn pop_due(&mut self, limit: f64) -> Option<Ev> {
        if self.len == 0 {
            return None;
        }
        if self.ring_len == 0 {
            self.refill_from_overflow();
        }
        let slot = self.first_occupied_slot();
        // Exact (t, seq) minimum within the bucket: quantization decides
        // placement, never order.
        let head = self.heads[slot];
        let mut min_idx = head;
        let mut min_prev = NIL;
        let mut prev = head;
        let mut cur = self.nodes[head as usize].next;
        while cur != NIL {
            let c = &self.nodes[cur as usize].ev;
            let m = &self.nodes[min_idx as usize].ev;
            if c.cmp(m) == Ordering::Less {
                min_idx = cur;
                min_prev = prev;
            }
            prev = cur;
            cur = self.nodes[cur as usize].next;
        }
        let ev = self.nodes[min_idx as usize].ev;
        if ev.t > limit {
            return None;
        }
        // Unlink and recycle the node.
        let after = self.nodes[min_idx as usize].next;
        if min_prev == NIL {
            self.heads[slot] = after;
        } else {
            self.nodes[min_prev as usize].next = after;
        }
        self.nodes[min_idx as usize].next = self.free_head;
        self.free_head = min_idx;
        if self.heads[slot] == NIL {
            self.occupied[slot / 64] &= !(1u64 << (slot % 64));
        }
        self.ring_len -= 1;
        self.len -= 1;
        self.base_tick = self.base_tick.max(Self::tick_of(ev.t));
        Some(ev)
    }

    /// First occupied bucket in cyclic order from the window start;
    /// caller guarantees the ring is non-empty.
    fn first_occupied_slot(&self) -> usize {
        debug_assert!(self.ring_len > 0);
        let base_slot = (self.base_tick % WHEEL_BUCKETS as u64) as usize;
        let word0 = base_slot / 64;
        let bit0 = base_slot % 64;
        let masked = self.occupied[word0] & (!0u64 << bit0);
        if masked != 0 {
            return word0 * 64 + masked.trailing_zeros() as usize;
        }
        for i in 1..=WHEEL_WORDS {
            let w = (word0 + i) % WHEEL_WORDS;
            let bits = if w == word0 {
                // Wrapped back to the base word: only the low bits.
                self.occupied[w] & !(!0u64 << bit0)
            } else {
                self.occupied[w]
            };
            if bits != 0 {
                return w * 64 + bits.trailing_zeros() as usize;
            }
        }
        unreachable!("non-empty ring always has an occupied bucket")
    }

    /// Advances the window to the earliest overflow event and moves
    /// every overflow event now inside one wrap into the ring.
    fn refill_from_overflow(&mut self) {
        debug_assert!(self.ring_len == 0 && !self.overflow.is_empty());
        let mut min_tick = u64::MAX;
        for ev in &self.overflow {
            min_tick = min_tick.min(Self::tick_of(ev.t));
        }
        self.base_tick = self.base_tick.max(min_tick);
        let mut i = 0;
        while i < self.overflow.len() {
            let tick = Self::tick_of(self.overflow[i].t).max(self.base_tick);
            if tick - self.base_tick < WHEEL_BUCKETS as u64 {
                let ev = self.overflow.swap_remove(i);
                self.insert_ring(tick, ev);
            } else {
                i += 1;
            }
        }
        debug_assert!(self.ring_len > 0, "refill must land the earliest event");
    }
}

/// The fast event scheduler: timer-wheel timeline, flat per-channel
/// admission windows, slab arena, and a no-contention bypass. Produces
/// timings, traces, and makespans byte-identical to [`EventHeap`].
#[derive(Debug)]
struct EventWheel {
    timing: FlashTiming,
    cfg: ChannelConfig,
    serial: bool,
    /// Whether trace retention is on. Off (the default), completion
    /// events are semantically inert — nothing observes them — so the
    /// bypass skips materializing them entirely.
    trace_on: bool,
    now_us: f64,
    seq: u64,
    wheel: TimerWheel,
    /// Per-channel time at which the bus falls idle.
    bus_free_us: Vec<f64>,
    /// Per-plane (channel-major) time at which the cell array falls idle.
    plane_free_us: Vec<f64>,
    /// Flat admission windows: `queue_depth` completion-time slots per
    /// channel, linearly scanned (the window is small and contiguous —
    /// no per-op heap churn).
    out_ends: Vec<f64>,
    out_len: Vec<u32>,
    depth: usize,
    /// Write buffer: LBA → generation of the pending flush.
    wb_pending: FxHashMap<u64, u64>,
    wb_generation: u64,
    trace: Vec<TraceEntry>,
}

impl EventWheel {
    fn new(timing: FlashTiming, cfg: ChannelConfig) -> Self {
        let channels = cfg.channels.max(1) as usize;
        let planes = channels * cfg.planes.max(1) as usize;
        let depth = cfg.queue_depth.max(1) as usize;
        EventWheel {
            timing,
            serial: cfg.is_serial(),
            trace_on: cfg.trace_capacity > 0,
            now_us: 0.0,
            seq: 0,
            wheel: TimerWheel::new(),
            bus_free_us: vec![0.0; channels],
            plane_free_us: vec![0.0; planes],
            out_ends: vec![0.0; channels * depth],
            out_len: vec![0; channels],
            depth,
            wb_pending: FxHashMap::default(),
            wb_generation: 0,
            trace: Vec::new(),
            cfg,
        }
    }

    fn push_trace(&mut self, kind: TraceKind, t: f64, seq: u64, channel: u32) {
        if self.trace.len() < self.cfg.trace_capacity as usize {
            self.trace.push(TraceEntry {
                t_bits: t.to_bits(),
                seq,
                kind,
                channel,
            });
        }
    }

    fn push_event(&mut self, t: f64, kind: EvKind) {
        let seq = self.seq;
        self.seq += 1;
        self.wheel.push(Ev { t, seq, kind });
    }

    /// Admission over the flat window: drop completions at or before
    /// `arrival_us`, then, if the window is still full, free the
    /// earliest completion and stall to it — value-identical to the
    /// oracle's heap pops.
    #[inline]
    fn admit(&mut self, ch: usize, arrival_us: f64) -> f64 {
        let n = self.out_len[ch] as usize;
        let base = ch * self.depth;
        let slots = &mut self.out_ends[base..base + n];
        let mut kept = 0;
        for i in 0..n {
            let t = slots[i];
            if t > arrival_us {
                slots[kept] = t;
                kept += 1;
            }
        }
        let mut admit_us = arrival_us;
        while kept >= self.depth {
            // Remove the earliest completion; admission stalls to it.
            let slots = &mut self.out_ends[base..base + kept];
            let mut min_i = 0;
            for i in 1..kept {
                if slots[i] < slots[min_i] {
                    min_i = i;
                }
            }
            let t = slots[min_i];
            slots[min_i] = slots[kept - 1];
            kept -= 1;
            if t > admit_us {
                admit_us = t;
            }
        }
        self.out_len[ch] = kept as u32;
        admit_us
    }

    /// Places one op on the channel/plane timeline starting no earlier
    /// than `arrival_us`, returning `(wait, service, end)`.
    fn dispatch(&mut self, class: OpClass, mode: CellMode, block: u32, arrival_us: f64) -> OpSpan {
        let ch = channel_of(&self.cfg, block);
        let plane = plane_of(&self.cfg, block);
        let admit_us = self.admit(ch, arrival_us);
        let mut wait_us = admit_us - arrival_us;
        let (service_us, end) = place_op(
            &self.timing,
            self.cfg.xfer_us,
            &mut self.bus_free_us,
            &mut self.plane_free_us,
            class,
            mode,
            ch,
            plane,
            admit_us,
            &mut wait_us,
        );
        let n = self.out_len[ch] as usize;
        self.out_ends[ch * self.depth + n] = end;
        self.out_len[ch] = (n + 1) as u32;
        if self.trace_on {
            // Trace retention makes completion events observable: emit
            // the dispatch record and materialize the completion so the
            // trace stream (and its seq numbering) is byte-identical to
            // the heap oracle's.
            let seq = self.seq;
            self.push_trace(TraceKind::Dispatch, end, seq, ch as u32);
            self.push_event(end, EvKind::Complete { channel: ch as u32 });
        }
        OpSpan {
            wait_us,
            service_us,
            end_us: end,
        }
    }

    /// Fires every event due at or before `t_us`.
    #[inline]
    fn run_until(&mut self, t_us: f64) {
        while let Some(ev) = self.wheel.pop_due(t_us) {
            self.fire(ev);
        }
    }

    fn fire(&mut self, ev: Ev) {
        match ev.kind {
            EvKind::Complete { channel } => {
                self.push_trace(TraceKind::Complete, ev.t, ev.seq, channel);
            }
            EvKind::WbFlush {
                lba,
                generation,
                mode,
                block,
            } => {
                if self.wb_pending.get(&lba) == Some(&generation) {
                    self.wb_pending.remove(&lba);
                    self.push_trace(
                        TraceKind::WbFlush,
                        ev.t,
                        ev.seq,
                        channel_of(&self.cfg, block) as u32,
                    );
                    self.dispatch(OpClass::Program, mode, block, ev.t);
                } else {
                    self.push_trace(
                        TraceKind::WbCoalesce,
                        ev.t,
                        ev.seq,
                        channel_of(&self.cfg, block) as u32,
                    );
                }
            }
        }
    }

    fn op(&mut self, req: &OpRequest) -> OpTiming {
        let arrival_us = self.now_us;
        if self.serial && !self.trace_on {
            // Serial bypass: a serial config forbids write buffering
            // (is_serial ⇒ writeback_us == 0) and with tracing off no
            // completion event is ever materialized, so the timeline is
            // permanently empty, every stall term is exactly 0.0, and
            // xfer_us == 0.0 makes every `+ xfer` a bit-exact no-op.
            // The admission window and free-time arrays are skipped
            // too: every entry they would hold is <= the advanced clock
            // and therefore unobservable.
            debug_assert!(self.wheel.len() == 0);
            let (service_us, end) = match req.class {
                OpClass::Read => {
                    let cell = table_read(&self.timing, req.mode);
                    (
                        cell + self.cfg.xfer_us,
                        (arrival_us + cell) + self.cfg.xfer_us,
                    )
                }
                OpClass::Program => {
                    let cell = table_program(&self.timing, req.mode);
                    let bus_end = arrival_us + self.cfg.xfer_us;
                    (self.cfg.xfer_us + cell, bus_end + cell)
                }
                OpClass::Erase => {
                    let cell = table_erase(&self.timing, req.mode);
                    (cell, arrival_us + cell)
                }
            };
            self.now_us = end;
            return OpTiming {
                wait_us: 0.0,
                service_us,
            };
        }
        if self.wheel.len() != 0 {
            self.run_until(arrival_us);
        }
        let blocking = self.serial || !req.background;
        if !blocking && req.class == OpClass::Program && self.cfg.writeback_us > 0.0 {
            if let Some(lba) = req.lba {
                // Buffer the write: the NAND occupancy happens at flush
                // time (or never, if a rewrite supersedes it), but the
                // service cost is reported now so device stats stay
                // monotone and backend-independent.
                self.wb_generation += 1;
                self.wb_pending.insert(lba, self.wb_generation);
                self.push_event(
                    arrival_us + self.cfg.writeback_us,
                    EvKind::WbFlush {
                        lba,
                        generation: self.wb_generation,
                        mode: req.mode,
                        block: req.block,
                    },
                );
                return OpTiming {
                    wait_us: 0.0,
                    service_us: table_program(&self.timing, req.mode) + self.cfg.xfer_us,
                };
            }
        }
        let span = self.dispatch(req.class, req.mode, req.block, arrival_us);
        if blocking {
            if self.wheel.len() != 0 {
                self.run_until(span.end_us);
            }
            self.now_us = span.end_us;
        }
        OpTiming {
            wait_us: span.wait_us,
            service_us: span.service_us,
        }
    }

    fn drain(&mut self) -> f64 {
        // Fire everything still scheduled — buffered writes flush at
        // their writeback deadlines and their dispatches enqueue further
        // completion events, all consumed here in (time, seq) order.
        while let Some(ev) = self.wheel.pop_due(f64::INFINITY) {
            self.fire(ev);
        }
        let mut makespan = self.now_us;
        for &t in &self.bus_free_us {
            if t > makespan {
                makespan = t;
            }
        }
        for &t in &self.plane_free_us {
            if t > makespan {
                makespan = t;
            }
        }
        self.now_us = makespan;
        makespan
    }
}

impl TimingModel for EventWheel {
    fn op(&mut self, req: &OpRequest) -> OpTiming {
        EventWheel::op(self, req)
    }

    fn read_us(&self, mode: CellMode) -> f64 {
        table_read(&self.timing, mode)
    }

    fn program_us(&self, mode: CellMode) -> f64 {
        table_program(&self.timing, mode)
    }

    fn erase_us(&self, mode: CellMode) -> f64 {
        table_erase(&self.timing, mode)
    }

    fn now_us(&self) -> f64 {
        self.now_us
    }

    fn drain(&mut self) -> f64 {
        EventWheel::drain(self)
    }

    fn trace(&self) -> &[TraceEntry] {
        &self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fg(class: OpClass, mode: CellMode, block: u32) -> OpRequest {
        OpRequest {
            class,
            mode,
            block,
            lba: None,
            background: false,
        }
    }

    fn bg(class: OpClass, mode: CellMode, block: u32, lba: Option<u64>) -> OpRequest {
        OpRequest {
            class,
            mode,
            block,
            lba: Some(lba.unwrap_or(0)).filter(|_| lba.is_some()),
            background: true,
        }
    }

    #[test]
    fn builder_validates() {
        assert!(ChannelConfig::builder().channels(0).build().is_err());
        assert!(ChannelConfig::builder().planes(0).build().is_err());
        assert!(ChannelConfig::builder().queue_depth(0).build().is_err());
        assert!(ChannelConfig::builder().writeback_us(-1.0).build().is_err());
        assert!(ChannelConfig::builder().xfer_us(f64::NAN).build().is_err());
        let cfg = ChannelConfig::builder()
            .channels(4)
            .planes(2)
            .queue_depth(8)
            .writeback_us(500.0)
            .xfer_us(40.0)
            .trace_capacity(64)
            .sched_backend(SchedBackend::Heap)
            .build()
            .unwrap();
        assert_eq!((cfg.channels, cfg.planes, cfg.queue_depth), (4, 2, 8));
        assert_eq!(cfg.sched_backend, SchedBackend::Heap);
        assert!(!cfg.is_serial());
        assert!(ChannelConfig::default().is_serial());
        assert_eq!(
            ChannelConfig::default().sched_backend,
            SchedBackend::Wheel,
            "the wheel is the default scheduler"
        );
    }

    #[test]
    fn serial_event_model_matches_closed_form_bitwise() {
        let timing = FlashTiming::default();
        let ops = [
            fg(OpClass::Read, CellMode::Slc, 0),
            bg(OpClass::Program, CellMode::Mlc, 1, Some(42)),
            fg(OpClass::Read, CellMode::Mlc, 1),
            bg(OpClass::Erase, CellMode::Mlc, 0, None),
            bg(OpClass::Program, CellMode::Slc, 2, Some(42)),
            fg(OpClass::Read, CellMode::Slc, 2),
        ];
        for backend in [SchedBackend::Heap, SchedBackend::Wheel] {
            let mut oracle = ClosedForm::new(timing);
            let cfg = ChannelConfig {
                sched_backend: backend,
                ..ChannelConfig::default()
            };
            let mut event = EventDriven::new(timing, cfg);
            for op in &ops {
                let a = oracle.op(op);
                let b = event.op(op);
                assert_eq!(a.wait_us.to_bits(), b.wait_us.to_bits());
                assert_eq!(a.service_us.to_bits(), b.service_us.to_bits());
            }
            assert_eq!(oracle.drain().to_bits(), event.drain().to_bits());
            assert_eq!(oracle.now_us().to_bits(), event.now_us().to_bits());
        }
    }

    #[test]
    fn channels_overlap_background_work() {
        let timing = FlashTiming::default();
        let cfg = ChannelConfig::builder()
            .channels(4)
            .queue_depth(8)
            .build()
            .unwrap();
        let mut event = EventDriven::new(timing, cfg);
        // Four background programs striped across four channels overlap;
        // serially they would cost 4 * 200µs.
        for block in 0..4 {
            event.op(&bg(OpClass::Program, CellMode::Slc, block, None));
        }
        let makespan = event.drain();
        assert_eq!(makespan, 200.0, "four channels run four programs in one");

        let mut serial = EventDriven::new(timing, ChannelConfig::default());
        for block in 0..4 {
            serial.op(&bg(OpClass::Program, CellMode::Slc, block, None));
        }
        assert_eq!(serial.drain(), 800.0);
    }

    #[test]
    fn background_traffic_delays_foreground_reads() {
        let timing = FlashTiming::default();
        let cfg = ChannelConfig::builder()
            .channels(1)
            .queue_depth(8)
            .xfer_us(0.0)
            .build()
            .unwrap();
        let mut event = EventDriven::new(timing, cfg);
        // A background erase occupies the sole plane...
        event.op(&bg(OpClass::Erase, CellMode::Mlc, 0, None));
        // ...so a foreground read on the same plane waits out the erase.
        let t = event.op(&fg(OpClass::Read, CellMode::Slc, 0));
        assert_eq!(t.wait_us, 3300.0);
        assert_eq!(t.service_us, 25.0);
    }

    #[test]
    fn queue_depth_throttles_admission() {
        let timing = FlashTiming::default();
        let deep = ChannelConfig::builder()
            .channels(1)
            .planes(4)
            .queue_depth(4)
            .build()
            .unwrap();
        let shallow = ChannelConfig::builder()
            .channels(1)
            .planes(4)
            .queue_depth(1)
            .build()
            .unwrap();
        // Four erases on four planes: deep queue overlaps them, a
        // depth-1 queue serializes admission.
        let mut a = EventDriven::new(timing, deep);
        let mut b = EventDriven::new(timing, shallow);
        for block in 0..4 {
            a.op(&bg(OpClass::Erase, CellMode::Slc, block, None));
            b.op(&bg(OpClass::Erase, CellMode::Slc, block, None));
        }
        assert_eq!(a.drain(), 1500.0);
        assert_eq!(b.drain(), 4.0 * 1500.0);
    }

    #[test]
    fn write_buffer_coalesces_rewrites() {
        let timing = FlashTiming::default();
        for backend in [SchedBackend::Heap, SchedBackend::Wheel] {
            let cfg = ChannelConfig::builder()
                .channels(1)
                .queue_depth(8)
                .writeback_us(500.0)
                .trace_capacity(64)
                .sched_backend(backend)
                .build()
                .unwrap();
            let mut event = EventDriven::new(timing, cfg);
            // Three rewrites of the same LBA inside the window: only the
            // last flushes; the first two coalesce away.
            for block in 0..3 {
                event.op(&bg(OpClass::Program, CellMode::Slc, block, Some(7)));
            }
            assert_eq!(event.buffered_writes(), 1);
            let makespan = event.drain();
            assert_eq!(event.buffered_writes(), 0);
            // One program dispatched at its 500µs deadline.
            assert_eq!(makespan, 700.0);
            let flushes = event
                .trace()
                .iter()
                .filter(|e| e.kind == TraceKind::WbFlush)
                .count();
            let coalesced = event
                .trace()
                .iter()
                .filter(|e| e.kind == TraceKind::WbCoalesce)
                .count();
            assert_eq!((flushes, coalesced), (1, 2));
        }
    }

    #[test]
    fn trace_is_reproducible_and_bounded() {
        let timing = FlashTiming::default();
        let cfg = ChannelConfig::builder()
            .channels(2)
            .queue_depth(4)
            .writeback_us(100.0)
            .trace_capacity(8)
            .build()
            .unwrap();
        let run = |cfg: ChannelConfig| {
            let mut event = EventDriven::new(timing, cfg);
            for i in 0..16u32 {
                event.op(&bg(
                    OpClass::Program,
                    CellMode::Mlc,
                    i,
                    Some(u64::from(i % 4)),
                ));
                event.op(&fg(OpClass::Read, CellMode::Slc, i));
            }
            event.drain();
            event.trace().to_vec()
        };
        let a = run(cfg);
        let b = run(cfg);
        assert_eq!(a, b, "same config + same ops => byte-identical trace");
        assert!(a.len() <= 8);
        assert!(!a.is_empty());
    }

    #[test]
    fn heap_and_wheel_traces_are_byte_identical() {
        let timing = FlashTiming::default();
        let build = |backend| {
            ChannelConfig::builder()
                .channels(3)
                .planes(2)
                .queue_depth(4)
                .writeback_us(250.0)
                .xfer_us(10.0)
                .trace_capacity(4096)
                .sched_backend(backend)
                .build()
                .unwrap()
        };
        let mut heap = EventDriven::new(timing, build(SchedBackend::Heap));
        let mut wheel = EventDriven::new(timing, build(SchedBackend::Wheel));
        for i in 0..200u32 {
            let op = match i % 5 {
                0 => fg(OpClass::Read, CellMode::Slc, i % 17),
                1 => bg(
                    OpClass::Program,
                    CellMode::Mlc,
                    i % 17,
                    Some(u64::from(i % 6)),
                ),
                2 => bg(OpClass::Erase, CellMode::Mlc, i % 17, None),
                3 => fg(OpClass::Program, CellMode::Slc, (i * 3) % 17),
                _ => bg(OpClass::Read, CellMode::Mlc, (i * 7) % 17, None),
            };
            let a = heap.op(&op);
            let b = wheel.op(&op);
            assert_eq!(a.wait_us.to_bits(), b.wait_us.to_bits(), "op {i} wait");
            assert_eq!(
                a.service_us.to_bits(),
                b.service_us.to_bits(),
                "op {i} service"
            );
        }
        assert_eq!(heap.drain().to_bits(), wheel.drain().to_bits());
        assert_eq!(heap.trace(), wheel.trace());
    }

    #[test]
    fn closed_form_clock_sums_services() {
        let mut model = ClosedForm::new(FlashTiming::default());
        model.op(&fg(OpClass::Read, CellMode::Slc, 0));
        model.op(&fg(OpClass::Program, CellMode::Mlc, 0));
        assert_eq!(model.now_us(), 25.0 + 680.0);
        assert_eq!(model.drain(), 25.0 + 680.0);
        assert!(model.trace().is_empty());
        assert_eq!(model.read_us(CellMode::Mlc), 50.0);
        assert_eq!(model.program_us(CellMode::Slc), 200.0);
        assert_eq!(model.erase_us(CellMode::Mlc), 3300.0);
    }

    // ------------------------------------------------------------------
    // Timer-wheel internals: quantization boundaries, overflow cascade.
    // ------------------------------------------------------------------

    fn ev(t: f64, seq: u64) -> Ev {
        Ev {
            t,
            seq,
            kind: EvKind::Complete { channel: 0 },
        }
    }

    #[test]
    fn wheel_pops_bucket_edges_in_exact_time_order() {
        // Times straddling a bucket edge: exactly on the boundary, one
        // ULP below, one ULP above, plus same-bucket neighbours. The
        // wheel must pop in exact (t, seq) order regardless of which
        // side of the edge quantization lands each event on.
        let q = WHEEL_QUANTUM_US;
        let edge = 3.0 * q;
        let below = f64::from_bits(edge.to_bits() - 1);
        let above = f64::from_bits(edge.to_bits() + 1);
        assert_ne!(
            TimerWheel::tick_of(below),
            TimerWheel::tick_of(edge),
            "edge and edge-ulp must quantize to different buckets"
        );
        assert_eq!(TimerWheel::tick_of(edge), TimerWheel::tick_of(above));
        let mut wheel = TimerWheel::new();
        // Push out of order.
        for (t, seq) in [
            (above, 4),
            (edge, 2),
            (below, 1),
            (edge, 3),
            (0.5 * q, 0),
            (edge + 0.25 * q, 5),
        ] {
            wheel.push(ev(t, seq));
        }
        let mut popped = Vec::new();
        while let Some(e) = wheel.pop_due(f64::INFINITY) {
            popped.push((e.t.to_bits(), e.seq));
        }
        let mut sorted = popped.clone();
        sorted.sort();
        assert_eq!(popped, sorted, "pop order must be exact (t, seq) order");
        assert_eq!(popped.len(), 6);
        // Ties on t broke by seq: the two boundary events at `edge`.
        assert_eq!(popped[2], (edge.to_bits(), 2));
        assert_eq!(popped[3], (edge.to_bits(), 3));
    }

    #[test]
    fn wheel_pop_due_respects_the_limit_at_the_boundary() {
        let q = WHEEL_QUANTUM_US;
        let mut wheel = TimerWheel::new();
        wheel.push(ev(2.0 * q, 0));
        // An event exactly at the limit fires; one ULP past it does not.
        assert!(wheel
            .pop_due(f64::from_bits((2.0 * q).to_bits() - 1))
            .is_none());
        assert_eq!(wheel.pop_due(2.0 * q).map(|e| e.seq), Some(0));
        assert!(wheel.pop_due(f64::INFINITY).is_none());
    }

    #[test]
    fn wheel_cascades_overflow_beyond_one_wrap() {
        // Events far beyond one wheel wrap land on the overflow list
        // and must still pop in exact global order once the ring
        // empties into their window.
        let horizon = WHEEL_QUANTUM_US * WHEEL_BUCKETS as f64;
        let mut wheel = TimerWheel::new();
        let times = [
            (0.5 * horizon, 0u64),
            (1.5 * horizon, 1),
            (3.25 * horizon, 2),
            (3.25 * horizon, 3),
            (10.0 * horizon, 4),
        ];
        for &(t, seq) in &times {
            wheel.push(ev(t, seq));
        }
        assert_eq!(wheel.len(), times.len());
        let order: Vec<u64> = std::iter::from_fn(|| wheel.pop_due(f64::INFINITY))
            .map(|e| e.seq)
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
        assert_eq!(wheel.len(), 0);
    }

    #[test]
    fn wheel_steady_state_reuses_arena_nodes() {
        let mut wheel = TimerWheel::new();
        let mut t = 0.0;
        for seq in 0..64u64 {
            t += 7.0;
            wheel.push(ev(t, seq));
        }
        while wheel.pop_due(f64::INFINITY).is_some() {}
        let arena = wheel.nodes.len();
        // A second wave of equal depth must not grow the arena.
        for seq in 64..128u64 {
            t += 7.0;
            wheel.push(ev(t, seq));
        }
        assert_eq!(wheel.nodes.len(), arena, "free list must recycle nodes");
        while wheel.pop_due(f64::INFINITY).is_some() {}
        assert_eq!(wheel.len(), 0);
    }
}
