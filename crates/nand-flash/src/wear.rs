//! Wear-out and bit-error injection.
//!
//! Each physical page accumulates *permanent* failed cells as its block's
//! erase count grows, following the lognormal cell-lifetime model of the
//! `flash-reliability` crate. A cell that can no longer hold two bits
//! (MLC failure) may still hold one (SLC still works) — which is exactly
//! why the paper's controller demotes aging pages from MLC to SLC mode.
//!
//! The injector therefore tracks two coupled failure counts per physical
//! page, `fail_mlc ≥ fail_slc`, grown monotonically by Poisson increments
//! with binomial thinning, so that repeated reads at the same wear level
//! observe consistent ("fail consistently", §5.2.1) error counts.

use rand::Rng;

use flash_reliability::CellLifetimeModel;

use crate::geometry::CellMode;
use crate::sampling::{binomial, poisson, NormalSource, PoissonSource};

/// Configuration of the wear/error model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WearConfig {
    /// SLC cell lifetime distribution; the MLC distribution is derived
    /// from it (10× fewer cycles, Table 1).
    pub slc_lifetime: CellLifetimeModel,
    /// Page-to-page quality spread, in decades of lifetime.
    pub spatial_sigma_decades: f64,
    /// Bit cells per physical page (data + spare).
    pub cells_per_page: u32,
    /// Expected transient (soft) bit errors per page read.
    pub transient_errors_per_read: f64,
    /// Uniform lifetime acceleration factor for tractable whole-lifetime
    /// simulations (Figure 12); 1.0 = real endurance.
    pub acceleration: f64,
    /// Replay fast-path gate: memoize per-page wear evaluation between
    /// erase-count changes, use the precomputed `10^-delta` quality
    /// factor, and skip the lifetime-model transcendentals entirely
    /// while a page sits below the failure onset (expected failures
    /// < [`NEGLIGIBLE_FAILURES`]). Observed failure counts match the
    /// direct evaluation except with probability ~1e-12 per skipped
    /// draw; kept as a gate so differential tests can exercise the
    /// slow oracle.
    pub cache_evaluations: bool,
}

impl Default for WearConfig {
    fn default() -> Self {
        WearConfig {
            slc_lifetime: CellLifetimeModel::default(),
            spatial_sigma_decades: 0.15,
            cells_per_page: flash_reliability::CELLS_PER_PAGE as u32,
            transient_errors_per_read: 1e-4,
            acceleration: 1.0,
            cache_evaluations: true,
        }
    }
}

impl WearConfig {
    /// Returns the configuration with lifetimes divided by `factor`.
    #[must_use]
    pub fn accelerated(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "acceleration must be positive");
        self.acceleration = factor;
        self
    }
}

/// Expected-failure level per page below which the fast path treats a
/// wear evaluation as exactly zero. A skipped Poisson draw at λ below
/// this bound changes the observed failure count with probability
/// < 1e-12, so even million-erase replays diverge from the direct
/// oracle with probability ~1e-6.
pub const NEGLIGIBLE_FAILURES: f64 = 1e-12;

/// Runtime wear model shared by all pages of a device.
#[derive(Debug, Clone, Copy)]
pub struct WearModel {
    config: WearConfig,
    slc: CellLifetimeModel,
    mlc: CellLifetimeModel,
    /// Transient-error draw with `exp(-λ)` hoisted out of the per-read
    /// loop (λ is constant for the life of the model).
    transient: PoissonSource,
    /// Effective cycle count below which even the weaker (MLC) curve's
    /// expected page failures stay under [`NEGLIGIBLE_FAILURES`] — the
    /// fast path's transcendental-free early-out. Young blocks (the
    /// common case in cache replay) never reach the lognormal CDF.
    onset_effective: f64,
}

impl WearModel {
    /// Builds the model from a configuration.
    pub fn new(config: WearConfig) -> Self {
        let slc = config.slc_lifetime.accelerated(config.acceleration);
        let mlc = slc.mlc();
        let p = (NEGLIGIBLE_FAILURES / config.cells_per_page.max(1) as f64).clamp(1e-300, 0.5);
        WearModel {
            config,
            slc,
            mlc,
            transient: PoissonSource::new(config.transient_errors_per_read),
            onset_effective: mlc.quantile(p),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &WearConfig {
        &self.config
    }

    /// Samples a page quality offset (decades) for device construction.
    pub fn sample_quality<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.config.spatial_sigma_decades * crate::sampling::normal(rng)
    }

    /// [`WearModel::sample_quality`] drawing from a [`NormalSource`], so
    /// bulk construction (one draw per physical page) keeps Box–Muller's
    /// second variate instead of discarding it.
    pub fn sample_quality_with<R: Rng + ?Sized>(
        &self,
        normals: &mut NormalSource,
        rng: &mut R,
    ) -> f64 {
        self.config.spatial_sigma_decades * normals.sample(rng)
    }

    /// Expected cumulative failed cells in `mode` after `erases` cycles
    /// for a page with quality offset `delta` decades.
    pub fn expected_failures(&self, mode: CellMode, erases: u64, delta: f64) -> f64 {
        // A +delta-decade better page behaves like a younger page.
        self.expected_failures_effective(mode, erases as f64 * 10f64.powf(-delta))
    }

    /// Expected cumulative failed cells at pre-scaled `effective` cycles
    /// (`erases * 10^-delta`); lets callers reuse a precomputed quality
    /// factor instead of paying `powf` per evaluation.
    pub fn expected_failures_effective(&self, mode: CellMode, effective: f64) -> f64 {
        let model = match mode {
            CellMode::Slc => &self.slc,
            CellMode::Mlc => &self.mlc,
        };
        self.config.cells_per_page as f64 * model.failure_prob(effective)
    }

    /// Median W/E cycles until a page in `mode` exceeds `t` failed cells
    /// (used by experiment sizing, not by the injector itself).
    pub fn median_cycles_to_failures(&self, mode: CellMode, t: usize) -> f64 {
        let model = match mode {
            CellMode::Slc => &self.slc,
            CellMode::Mlc => &self.mlc,
        };
        let p = (t as f64 + 0.7) / self.config.cells_per_page as f64;
        model.quantile(p.clamp(1e-300, 1.0 - 1e-12))
    }
}

/// Per-physical-page wear state.
///
/// Lambdas are held in `f64` so that re-evaluating the model at an
/// unchanged erase count reproduces the stored value *exactly* — the
/// property that makes the fast path's erase-count memo bit-exact
/// (with `f32` storage, round-off manufactured spurious tiny-λ Poisson
/// draws on repeat reads).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageWearState {
    /// Quality offset in decades (positive = better than average).
    pub quality_delta: f32,
    /// `10^-quality_delta`, precomputed so the per-read path avoids
    /// `powf` (used when `WearConfig::cache_evaluations` is on).
    quality_factor: f64,
    /// Erase count the lambdas were last evaluated at.
    last_erases: u64,
    /// Expected-failure budget already consumed, MLC curve.
    lambda_mlc: f64,
    /// Expected-failure budget already consumed, SLC curve.
    lambda_slc: f64,
    /// Permanent cell failures visible in MLC mode.
    pub fail_mlc: u32,
    /// Permanent cell failures visible in SLC mode (subset of MLC).
    pub fail_slc: u32,
}

impl Default for PageWearState {
    fn default() -> Self {
        PageWearState::with_quality(0.0)
    }
}

impl PageWearState {
    /// Creates a fresh page with the given quality offset.
    pub fn with_quality(delta: f64) -> Self {
        // Round through f32 first so the precomputed factor matches what
        // the direct path derives back from the stored `quality_delta`.
        let delta = delta as f32;
        PageWearState {
            quality_delta: delta,
            quality_factor: 10f64.powf(-(delta as f64)),
            last_erases: 0,
            lambda_mlc: 0.0,
            lambda_slc: 0.0,
            fail_mlc: 0,
            fail_slc: 0,
        }
    }

    /// Permanent failures observable when reading in `mode`.
    pub fn permanent_failures(&self, mode: CellMode) -> u32 {
        match mode {
            CellMode::Slc => self.fail_slc,
            CellMode::Mlc => self.fail_mlc,
        }
    }

    /// Advances the page's permanent-failure counts to the wear level
    /// implied by `erases`, then returns the observed bit-error count of
    /// one read in `mode` (permanent + transient).
    pub fn observe_read_errors<R: Rng + ?Sized>(
        &mut self,
        model: &WearModel,
        mode: CellMode,
        erases: u64,
        rng: &mut R,
    ) -> u32 {
        self.advance(model, erases, rng);
        let transient = if model.config.cache_evaluations {
            model.transient.sample(rng) as u32
        } else {
            poisson(rng, model.config.transient_errors_per_read) as u32
        };
        let cap = model.config.cells_per_page;
        (self.permanent_failures(mode) + transient).min(cap)
    }

    /// Grows failure counts monotonically to match `erases` cycles.
    ///
    /// With `WearConfig::cache_evaluations` on, two shortcuts apply:
    ///
    /// * **Erase-count memo** — failures only grow when a block is
    ///   erased, so re-reads at an unchanged (or lower) count return
    ///   immediately. Bit-exact with the direct path, including RNG
    ///   stream position: the direct evaluation draws nothing when the
    ///   expected-failure budget has not grown (lambdas are stored in
    ///   `f64`, so re-evaluation reproduces them exactly).
    /// * **Failure onset** — below the effective cycle count where
    ///   expected failures reach [`NEGLIGIBLE_FAILURES`], the lognormal
    ///   CDF is not evaluated and no Poisson draw is made. The direct
    ///   oracle burns one uniform on a λ < 1e-12 draw there, so the two
    ///   gate settings consume *different RNG streams* below onset, but
    ///   the drawn failure count differs only with probability ~1e-12
    ///   per skip. Each gate setting remains fully deterministic.
    pub fn advance<R: Rng + ?Sized>(&mut self, model: &WearModel, erases: u64, rng: &mut R) {
        if model.config.cache_evaluations {
            if erases <= self.last_erases {
                return;
            }
            self.last_erases = erases;
            let effective = erases as f64 * self.quality_factor;
            if effective < model.onset_effective {
                return;
            }
            self.grow(model, effective, rng);
        } else {
            let effective = erases as f64 * 10f64.powf(-(self.quality_delta as f64));
            if erases > self.last_erases {
                self.last_erases = erases;
            }
            self.grow(model, effective, rng);
        }
    }

    /// The monotone lambda/failure growth step shared by both gate
    /// settings of [`PageWearState::advance`].
    fn grow<R: Rng + ?Sized>(&mut self, model: &WearModel, effective: f64, rng: &mut R) {
        let lm_new = model.expected_failures_effective(CellMode::Mlc, effective);
        let ls_new = model.expected_failures_effective(CellMode::Slc, effective);
        let lm_old = self.lambda_mlc;
        let ls_old = self.lambda_slc;
        if lm_new > lm_old {
            let d_mlc = poisson(rng, lm_new - lm_old);
            if d_mlc > 0 {
                // Of the newly MLC-failed cells, the fraction that also
                // fail in SLC mode follows the ratio of increments.
                let ratio = if lm_new - lm_old > 0.0 {
                    ((ls_new - ls_old) / (lm_new - lm_old)).clamp(0.0, 1.0)
                } else {
                    0.0
                };
                let d_slc = binomial(rng, d_mlc, ratio);
                let cap = model.config.cells_per_page;
                self.fail_mlc = (self.fail_mlc + d_mlc as u32).min(cap);
                self.fail_slc = (self.fail_slc + d_slc as u32).min(self.fail_mlc);
            }
            self.lambda_mlc = lm_new;
            self.lambda_slc = ls_new.max(ls_old);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fast_model() -> WearModel {
        // Accelerate hard so failures appear within a few hundred erases.
        WearModel::new(WearConfig::default().accelerated(1e4))
    }

    #[test]
    fn fresh_page_reads_clean() {
        let model = WearModel::new(WearConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let mut page = PageWearState::with_quality(0.0);
        let mut total = 0;
        for _ in 0..100 {
            total += page.observe_read_errors(&model, CellMode::Mlc, 10, &mut rng);
        }
        // At 10 real cycles the permanent failure rate is effectively 0;
        // only the tiny transient rate can fire.
        assert!(total <= 1, "observed {total} errors on a fresh page");
    }

    #[test]
    fn failures_grow_with_erase_count() {
        let model = fast_model();
        let mut rng = StdRng::seed_from_u64(2);
        let mut page = PageWearState::with_quality(0.0);
        page.advance(&model, 50, &mut rng);
        let early = page.fail_mlc;
        page.advance(&model, 5_000, &mut rng);
        let late = page.fail_mlc;
        assert!(late > early, "early={early} late={late}");
    }

    #[test]
    fn failures_are_monotonic_and_consistent() {
        let model = fast_model();
        let mut rng = StdRng::seed_from_u64(3);
        let mut page = PageWearState::with_quality(0.0);
        let mut prev = 0;
        for erases in [10u64, 100, 500, 1_000, 2_000, 2_000, 1_000] {
            page.advance(&model, erases, &mut rng);
            assert!(page.fail_mlc >= prev, "non-monotonic at {erases}");
            prev = page.fail_mlc;
        }
    }

    #[test]
    fn slc_failures_never_exceed_mlc() {
        let model = fast_model();
        let mut rng = StdRng::seed_from_u64(4);
        for q in [-0.3f64, 0.0, 0.3] {
            let mut page = PageWearState::with_quality(q);
            for step in 1..40u64 {
                page.advance(&model, step * 250, &mut rng);
                assert!(page.fail_slc <= page.fail_mlc);
            }
        }
    }

    #[test]
    fn slc_mode_observes_fewer_errors_when_aged() {
        let model = fast_model();
        let mut rng = StdRng::seed_from_u64(5);
        let mut mlc_total = 0u64;
        let mut slc_total = 0u64;
        for seed in 0..40 {
            let mut rng2 = StdRng::seed_from_u64(seed);
            let mut page = PageWearState::with_quality(0.0);
            page.advance(&model, 3_000, &mut rng2);
            mlc_total += page.permanent_failures(CellMode::Mlc) as u64;
            slc_total += page.permanent_failures(CellMode::Slc) as u64;
        }
        let _ = &mut rng;
        assert!(
            slc_total < mlc_total,
            "slc={slc_total} mlc={mlc_total}: demotion must help"
        );
    }

    #[test]
    fn better_quality_pages_fail_later() {
        let model = fast_model();
        let mut good_total = 0u64;
        let mut bad_total = 0u64;
        for seed in 0..40 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut good = PageWearState::with_quality(0.5);
            good.advance(&model, 2_000, &mut rng);
            good_total += good.fail_mlc as u64;
            let mut rng = StdRng::seed_from_u64(seed + 1_000);
            let mut bad = PageWearState::with_quality(-0.5);
            bad.advance(&model, 2_000, &mut rng);
            bad_total += bad.fail_mlc as u64;
        }
        assert!(good_total < bad_total, "good={good_total} bad={bad_total}");
    }

    #[test]
    fn expected_failures_monotone_in_mode() {
        let model = WearModel::new(WearConfig::default());
        for erases in [1_000u64, 10_000, 100_000] {
            let slc = model.expected_failures(CellMode::Slc, erases, 0.0);
            let mlc = model.expected_failures(CellMode::Mlc, erases, 0.0);
            assert!(slc <= mlc, "erases={erases}");
        }
    }

    #[test]
    fn median_cycles_reflect_endurance_gap() {
        let model = WearModel::new(WearConfig::default());
        let slc = model.median_cycles_to_failures(CellMode::Slc, 1);
        let mlc = model.median_cycles_to_failures(CellMode::Mlc, 1);
        assert!((slc / mlc - 10.0).abs() < 0.1);
    }

    #[test]
    fn quality_sampling_uses_configured_sigma() {
        let model = WearModel::new(WearConfig {
            spatial_sigma_decades: 0.0,
            ..WearConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..10 {
            assert_eq!(model.sample_quality(&mut rng), 0.0);
        }
    }
}
