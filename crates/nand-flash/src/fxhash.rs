//! A vendored FxHash-style hasher for integer-keyed hot paths.
//!
//! Every map in the simulator keys on trusted integers (disk page
//! numbers, LBAs, block ids), so SipHash's HashDoS resistance buys
//! nothing while costing ~3-4x per lookup. This is the rustc-hash
//! multiply-rotate construction: deterministic across runs and
//! platforms of equal pointer width, one multiply per word. Vendored
//! rather than depended on — the workspace builds offline.
//!
//! The module lives in `nand-flash` (the lowest crate with hashed hot
//! paths: the scheduler's coalescing write buffer, the verified-flash
//! spare store) and is re-exported by `flashcache-core::fxhash` for the
//! cache-layer tables.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Deterministic multiply-rotate hasher (FxHash construction).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

/// Knuth-style odd multiplicative constant (2^64 / golden ratio).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_one(v: u64) -> u64 {
        let mut h = FxHasher::default();
        h.write_u64(v);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_one(42), hash_one(42));
        assert_ne!(hash_one(42), hash_one(43));
    }

    #[test]
    fn byte_writes_match_chunking() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn map_works_as_drop_in() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, i as u32 * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&500), Some(&1000));
    }
}
