//! Flash array geometry and addressing.
//!
//! Mirrors the paper's device (§2.1, Figure 1(a)): 2KB pages with a
//! 64-byte spare area, erased in blocks of 64 SLC pages (128KB). Each
//! physical page can operate in SLC mode (one 2KB page) or MLC mode
//! (two 2KB pages), so a block holds 64 SLC pages *or* 128 MLC pages.
//!
//! Addressing is in terms of *slots*: slot `2k` and `2k+1` are the two
//! MLC halves of physical page `k`. A page programmed in SLC mode uses
//! only the even slot; its odd sibling is unusable until the next erase.

use std::fmt;

/// Cell density mode of a physical page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CellMode {
    /// Single-level cell: 1 bit/cell — faster, 10× more durable.
    Slc,
    /// Multi-level cell: 2 bits/cell — denser, slower, less durable.
    Mlc,
}

impl CellMode {
    /// Number of 2KB logical pages a physical page provides in this mode.
    pub fn pages_per_physical(self) -> u32 {
        match self {
            CellMode::Slc => 1,
            CellMode::Mlc => 2,
        }
    }
}

impl fmt::Display for CellMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellMode::Slc => write!(f, "SLC"),
            CellMode::Mlc => write!(f, "MLC"),
        }
    }
}

/// Identifier of an erase block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "block {}", self.0)
    }
}

/// Address of one 2KB logical page slot.
///
/// `slot` ranges over `0..2*pages_per_block`; slots `2k` and `2k+1`
/// share physical page `k` of the block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageAddr {
    /// The erase block.
    pub block: BlockId,
    /// Slot within the block.
    pub slot: u32,
}

impl PageAddr {
    /// Creates a page address.
    pub fn new(block: BlockId, slot: u32) -> Self {
        PageAddr { block, slot }
    }

    /// Index of the physical page this slot lives on.
    pub fn physical_page(&self) -> u32 {
        self.slot / 2
    }

    /// Whether this is the second (upper) MLC half of its physical page.
    pub fn is_upper_half(&self) -> bool {
        self.slot % 2 == 1
    }

    /// The other slot sharing the same physical page.
    pub fn sibling(&self) -> PageAddr {
        PageAddr {
            block: self.block,
            slot: self.slot ^ 1,
        }
    }
}

impl fmt::Display for PageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "block {} slot {}", self.block.0, self.slot)
    }
}

/// Shape of a flash array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashGeometry {
    /// Number of erase blocks.
    pub blocks: u32,
    /// Physical (SLC-sized) pages per block. The paper uses 64.
    pub pages_per_block: u32,
    /// Data bytes per 2KB logical page.
    pub page_data_bytes: u32,
    /// Spare bytes per logical page (ECC + CRC area).
    pub page_spare_bytes: u32,
}

impl Default for FlashGeometry {
    fn default() -> Self {
        FlashGeometry {
            blocks: 64,
            pages_per_block: 64,
            page_data_bytes: 2048,
            page_spare_bytes: 64,
        }
    }
}

impl FlashGeometry {
    /// Geometry sized to hold `capacity_bytes` of data in MLC mode
    /// (the device's maximum capacity), rounding up to whole blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes` is zero.
    pub fn for_mlc_capacity(capacity_bytes: u64) -> Self {
        assert!(capacity_bytes > 0, "capacity must be nonzero");
        let base = FlashGeometry::default();
        let bytes_per_block = base.pages_per_block as u64 * 2 * base.page_data_bytes as u64;
        let blocks = capacity_bytes.div_ceil(bytes_per_block);
        FlashGeometry {
            blocks: u32::try_from(blocks).expect("capacity too large"),
            ..base
        }
    }

    /// Slots per block (`2 × pages_per_block`; 128 in the paper).
    pub fn slots_per_block(&self) -> u32 {
        self.pages_per_block * 2
    }

    /// Total slots in the device.
    pub fn total_slots(&self) -> u64 {
        self.blocks as u64 * self.slots_per_block() as u64
    }

    /// Total physical pages in the device.
    pub fn total_physical_pages(&self) -> u64 {
        self.blocks as u64 * self.pages_per_block as u64
    }

    /// Device capacity in bytes when every page runs in `mode`.
    pub fn capacity_bytes(&self, mode: CellMode) -> u64 {
        self.total_physical_pages() * mode.pages_per_physical() as u64 * self.page_data_bytes as u64
    }

    /// Bit cells per physical page (data + spare).
    pub fn cells_per_physical_page(&self) -> u32 {
        (self.page_data_bytes + self.page_spare_bytes) * 8
    }

    /// `true` if `addr` lies inside this geometry.
    pub fn contains(&self, addr: PageAddr) -> bool {
        addr.block.0 < self.blocks && addr.slot < self.slots_per_block()
    }

    /// Iterator over all block ids.
    pub fn iter_blocks(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks).map(BlockId)
    }

    /// Flat index of a physical page, for dense side tables.
    pub fn physical_index(&self, addr: PageAddr) -> usize {
        addr.block.0 as usize * self.pages_per_block as usize + addr.physical_page() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_block_shape() {
        let g = FlashGeometry::default();
        assert_eq!(g.slots_per_block(), 128); // 128 MLC pages per block
        assert_eq!(g.pages_per_block, 64); // 64 SLC pages per block
                                           // 128KB block in SLC mode.
        assert_eq!(
            g.pages_per_block as u64 * g.page_data_bytes as u64,
            128 * 1024
        );
    }

    #[test]
    fn capacity_depends_on_mode() {
        let g = FlashGeometry::default();
        assert_eq!(
            g.capacity_bytes(CellMode::Mlc),
            2 * g.capacity_bytes(CellMode::Slc)
        );
    }

    #[test]
    fn for_mlc_capacity_rounds_up() {
        let g = FlashGeometry::for_mlc_capacity(1 << 30); // 1GB
        assert!(g.capacity_bytes(CellMode::Mlc) >= 1 << 30);
        assert!(g.capacity_bytes(CellMode::Mlc) < (1 << 30) + 512 * 1024);
        // One byte still allocates one block.
        assert_eq!(FlashGeometry::for_mlc_capacity(1).blocks, 1);
    }

    #[test]
    fn slot_addressing() {
        let a = PageAddr::new(BlockId(3), 7);
        assert_eq!(a.physical_page(), 3);
        assert!(a.is_upper_half());
        assert_eq!(a.sibling().slot, 6);
        assert_eq!(a.sibling().sibling(), a);
    }

    #[test]
    fn contains_checks_bounds() {
        let g = FlashGeometry::default();
        assert!(g.contains(PageAddr::new(BlockId(0), 0)));
        assert!(g.contains(PageAddr::new(BlockId(63), 127)));
        assert!(!g.contains(PageAddr::new(BlockId(64), 0)));
        assert!(!g.contains(PageAddr::new(BlockId(0), 128)));
    }

    #[test]
    fn physical_index_is_dense_and_unique() {
        let g = FlashGeometry {
            blocks: 4,
            pages_per_block: 8,
            ..FlashGeometry::default()
        };
        let mut seen = std::collections::HashSet::new();
        for b in g.iter_blocks() {
            for slot in 0..g.slots_per_block() {
                let idx = g.physical_index(PageAddr::new(b, slot));
                assert!(idx < g.total_physical_pages() as usize);
                seen.insert((idx, slot % 2));
            }
        }
        assert_eq!(seen.len(), 2 * g.total_physical_pages() as usize);
    }

    #[test]
    fn mode_display_and_density() {
        assert_eq!(CellMode::Slc.to_string(), "SLC");
        assert_eq!(CellMode::Mlc.to_string(), "MLC");
        assert_eq!(CellMode::Mlc.pages_per_physical(), 2);
    }

    #[test]
    fn cells_per_page_matches_reliability_crate() {
        let g = FlashGeometry::default();
        assert_eq!(
            g.cells_per_physical_page() as usize,
            flash_reliability::CELLS_PER_PAGE
        );
    }
}
