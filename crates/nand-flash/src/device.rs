//! The NAND flash device model: a state machine over blocks, physical
//! pages and slots, enforcing erase-before-program, per-page SLC/MLC
//! mode, and out-of-place semantics, with timing, energy, and wear-driven
//! bit-error injection on every operation.

use std::error::Error;
use std::fmt;

use rand::rngs::{SmallRng, StdRng};
use rand::{RngCore, SeedableRng};

use crate::geometry::{BlockId, CellMode, FlashGeometry, PageAddr};
use crate::sampling::NormalSource;
use crate::sched::{build_model, ChannelConfig, OpClass, OpRequest, TimingBackend, TimingModel};
use crate::timing::{FlashPower, FlashTiming};
use crate::wear::{PageWearState, WearConfig, WearModel};

/// Errors returned by flash operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlashOpError {
    /// Address outside the device geometry.
    OutOfRange(PageAddr),
    /// Block id outside the device geometry.
    BlockOutOfRange(BlockId),
    /// Attempt to program a slot that is not erased (out-of-place write
    /// discipline: every write needs a prior erase).
    NotErased(PageAddr),
    /// Attempt to read a slot that holds no data.
    NotProgrammed(PageAddr),
    /// Slot unusable because its physical page was programmed in SLC
    /// mode (the odd half of an SLC page does not exist).
    SlcSibling(PageAddr),
    /// Mode conflicts with data already on the physical page.
    ModeConflict {
        /// The address being programmed.
        addr: PageAddr,
        /// The mode the physical page is already committed to.
        existing: CellMode,
    },
    /// Odd (upper) half cannot be programmed in SLC mode.
    UpperHalfSlc(PageAddr),
    /// Payload length does not match the page size.
    PayloadSize {
        /// Expected bytes.
        expected: usize,
        /// Provided bytes.
        got: usize,
    },
}

impl fmt::Display for FlashOpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlashOpError::OutOfRange(a) => write!(f, "address {a} out of range"),
            FlashOpError::BlockOutOfRange(b) => write!(f, "{b} out of range"),
            FlashOpError::NotErased(a) => {
                write!(
                    f,
                    "program to {a} requires an erased slot (out-of-place writes only)"
                )
            }
            FlashOpError::NotProgrammed(a) => write!(f, "read of {a}: slot not programmed"),
            FlashOpError::SlcSibling(a) => {
                write!(f, "slot {a} unusable: physical page is in SLC mode")
            }
            FlashOpError::ModeConflict { addr, existing } => {
                write!(
                    f,
                    "programming {addr}: physical page already in {existing} mode"
                )
            }
            FlashOpError::UpperHalfSlc(a) => {
                write!(f, "slot {a}: SLC mode must target the even (lower) slot")
            }
            FlashOpError::PayloadSize { expected, got } => {
                write!(f, "payload is {got} bytes, page holds {expected}")
            }
        }
    }
}

impl Error for FlashOpError {}

/// State of one 2KB slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    Erased,
    Programmed,
    /// Sibling of an SLC-programmed slot.
    Unusable,
}

/// Caller context for a device operation, threaded into the timing
/// model: foreground ops block and advance the modeled clock, while
/// background work (GC traffic, cache fills, write-buffer flushes)
/// consumes device time that later foreground ops wait out. The
/// logical address, when known, enables write-buffer coalescing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpContext {
    /// Logical (disk) address the op serves, when known.
    pub lba: Option<u64>,
    /// Whether the op is background work.
    pub background: bool,
}

impl OpContext {
    /// A foreground (blocking) operation.
    pub fn foreground() -> Self {
        OpContext {
            lba: None,
            background: false,
        }
    }

    /// A background (non-blocking) operation.
    pub fn background() -> Self {
        OpContext {
            lba: None,
            background: true,
        }
    }

    /// Tags the operation with the logical address it serves.
    #[must_use]
    pub fn with_lba(mut self, lba: u64) -> Self {
        self.lba = Some(lba);
        self
    }
}

/// Result of a page read.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadOutcome {
    /// Raw latency of the array access, µs (ECC time is the controller's).
    pub latency_us: f64,
    /// Queueing delay before service, µs (zero under the closed-form
    /// backend).
    pub wait_us: f64,
    /// Energy consumed, millijoules.
    pub energy_mj: f64,
    /// Raw bit errors present in the page as read.
    pub raw_bit_errors: u32,
    /// Mode the page was read in.
    pub mode: CellMode,
    /// Stored payload, when the device retains payloads.
    pub data: Option<Vec<u8>>,
}

/// Result of a page program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgramOutcome {
    /// Program latency, µs.
    pub latency_us: f64,
    /// Queueing delay before service, µs (zero under the closed-form
    /// backend).
    pub wait_us: f64,
    /// Energy consumed, millijoules.
    pub energy_mj: f64,
}

/// Result of a block erase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EraseOutcome {
    /// Erase latency, µs.
    pub latency_us: f64,
    /// Queueing delay before service, µs (zero under the closed-form
    /// backend).
    pub wait_us: f64,
    /// Energy consumed, millijoules.
    pub energy_mj: f64,
    /// The block's total erase count after this erase.
    pub erase_count: u64,
}

/// Aggregate operation counters and busy time.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FlashStats {
    /// Page reads serviced.
    pub reads: u64,
    /// Page programs serviced.
    pub programs: u64,
    /// Block erases serviced.
    pub erases: u64,
    /// Raw bit errors observed across all page reads.
    pub bit_errors: u64,
    /// Total µs spent in operations.
    pub busy_us: f64,
    /// Total µs spent queued before service (zero under the
    /// closed-form backend).
    pub wait_us: f64,
    /// Total energy in millijoules.
    pub energy_mj: f64,
}

/// Configuration of a [`FlashDevice`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashConfig {
    /// Array shape.
    pub geometry: FlashGeometry,
    /// Operation latencies.
    pub timing: FlashTiming,
    /// Power constants.
    pub power: FlashPower,
    /// Wear and error-injection model.
    pub wear: WearConfig,
    /// Whether page payloads are stored (costs RAM; simulations that only
    /// need timing/reliability behaviour leave this off).
    pub store_payloads: bool,
    /// RNG seed for quality sampling and error injection.
    pub seed: u64,
    /// Replay fast-path gate: drive error injection with the
    /// minimal-state [`SmallRng`] and sample build-time page qualities
    /// through a pair-keeping [`NormalSource`]. Deterministic per seed
    /// either way; off reproduces the pre-fast-path `StdRng` streams.
    pub fast_rng: bool,
    /// Which timing implementation the device resolves at construction.
    pub timing_backend: TimingBackend,
    /// Channel/plane/queue parameters for the event-driven backend,
    /// including which scheduler core runs it
    /// ([`ChannelConfig::sched_backend`]: the timer wheel by default,
    /// the heap oracle for differential testing).
    pub channel: ChannelConfig,
}

impl Default for FlashConfig {
    fn default() -> Self {
        FlashConfig {
            geometry: FlashGeometry::default(),
            timing: FlashTiming::default(),
            power: FlashPower::default(),
            wear: WearConfig::default(),
            store_payloads: false,
            seed: 0x1507_2008,
            fast_rng: true,
            timing_backend: TimingBackend::default(),
            channel: ChannelConfig::default(),
        }
    }
}

/// The device's error-injection RNG: gated choice between the workspace
/// default and the fast-path minimal-state generator.
#[derive(Debug, Clone)]
enum DeviceRng {
    Std(StdRng),
    Small(SmallRng),
}

impl RngCore for DeviceRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        match self {
            DeviceRng::Std(r) => r.next_u64(),
            DeviceRng::Small(r) => r.next_u64(),
        }
    }
}

/// A dual-mode SLC/MLC NAND flash device.
///
/// # Examples
///
/// ```
/// use nand_flash::{FlashConfig, FlashDevice};
/// use nand_flash::geometry::{BlockId, CellMode, PageAddr};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut flash = FlashDevice::new(FlashConfig::default());
/// let addr = PageAddr::new(BlockId(0), 0);
/// flash.program_page(addr, CellMode::Slc, None)?;
/// let read = flash.read_page(addr)?;
/// assert_eq!(read.mode, CellMode::Slc);
/// // A second write to the same slot must be preceded by an erase.
/// assert!(flash.program_page(addr, CellMode::Slc, None).is_err());
/// flash.erase_block(BlockId(0))?;
/// flash.program_page(addr, CellMode::Mlc, None)?;
/// # Ok(())
/// # }
/// ```
pub struct FlashDevice {
    config: FlashConfig,
    wear_model: WearModel,
    /// The device-timing model, resolved once from
    /// `config.timing_backend`; all op latencies flow through it.
    model: Box<dyn TimingModel + Send>,
    rng: DeviceRng,
    /// Per-block erase counts.
    erase_counts: Vec<u64>,
    /// Worst (slowest-erasing) mode programmed since the last erase.
    block_worst_mode: Vec<Option<CellMode>>,
    /// Per-slot state, indexed `block * slots_per_block + slot`.
    slots: Vec<SlotState>,
    /// Per-physical-page committed mode (None = uncommitted).
    modes: Vec<Option<CellMode>>,
    /// Per-physical-page wear state.
    wear: Vec<PageWearState>,
    /// Optional payload storage per slot.
    payloads: Option<Vec<Option<Box<[u8]>>>>,
    stats: FlashStats,
}

impl fmt::Debug for FlashDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FlashDevice")
            .field("geometry", &self.config.geometry)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl FlashDevice {
    /// Creates a device with all blocks erased and per-page quality
    /// offsets sampled from the wear configuration.
    pub fn new(config: FlashConfig) -> Self {
        let geometry = config.geometry;
        let wear_model = WearModel::new(config.wear);
        let mut rng = if config.fast_rng {
            DeviceRng::Small(SmallRng::seed_from_u64(config.seed))
        } else {
            DeviceRng::Std(StdRng::seed_from_u64(config.seed))
        };
        let phys = geometry.total_physical_pages() as usize;
        let slots = geometry.total_slots() as usize;
        let mut normals = NormalSource::new();
        let wear = (0..phys)
            .map(|_| {
                let q = if config.fast_rng {
                    wear_model.sample_quality_with(&mut normals, &mut rng)
                } else {
                    wear_model.sample_quality(&mut rng)
                };
                PageWearState::with_quality(q)
            })
            .collect();
        FlashDevice {
            wear_model,
            model: build_model(config.timing_backend, config.timing, config.channel),
            rng,
            erase_counts: vec![0; geometry.blocks as usize],
            block_worst_mode: vec![None; geometry.blocks as usize],
            slots: vec![SlotState::Erased; slots],
            modes: vec![None; phys],
            wear,
            payloads: if config.store_payloads {
                Some(vec![None; slots])
            } else {
                None
            },
            stats: FlashStats::default(),
            config,
        }
    }

    /// The device geometry.
    pub fn geometry(&self) -> &FlashGeometry {
        &self.config.geometry
    }

    /// The device configuration.
    pub fn config(&self) -> &FlashConfig {
        &self.config
    }

    /// Aggregate operation statistics.
    pub fn stats(&self) -> FlashStats {
        self.stats
    }

    /// The device-timing model, for latency-table queries and trace
    /// inspection.
    pub fn timing_model(&self) -> &dyn TimingModel {
        self.model.as_ref()
    }

    /// Current modeled device clock, µs. Under the closed-form backend
    /// this is the running sum of service times; under the event
    /// backend it is the foreground completion time.
    pub fn modeled_time_us(&self) -> f64 {
        self.model.now_us()
    }

    /// Drains the event timeline (flushing any buffered writes) and
    /// returns the makespan at which all channels and planes fall
    /// idle, µs.
    pub fn drain_timing(&mut self) -> f64 {
        self.model.drain()
    }

    /// Resets the operation statistics (wear state is untouched).
    pub fn reset_stats(&mut self) {
        self.stats = FlashStats::default();
    }

    /// Number of erases performed on `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn erase_count(&self, block: BlockId) -> u64 {
        self.erase_counts[block.0 as usize]
    }

    /// Committed mode of the physical page under `addr`, if programmed.
    pub fn physical_mode(&self, addr: PageAddr) -> Option<CellMode> {
        self.modes[self.config.geometry.physical_index(addr)]
    }

    /// Permanent failed-cell counts `(slc, mlc)` of the physical page
    /// under `addr`, as currently materialized.
    pub fn permanent_failures(&self, addr: PageAddr) -> (u32, u32) {
        let w = &self.wear[self.config.geometry.physical_index(addr)];
        (w.fail_slc, w.fail_mlc)
    }

    fn slot_index(&self, addr: PageAddr) -> usize {
        addr.block.0 as usize * self.config.geometry.slots_per_block() as usize + addr.slot as usize
    }

    fn check_addr(&self, addr: PageAddr) -> Result<(), FlashOpError> {
        if self.config.geometry.contains(addr) {
            Ok(())
        } else {
            Err(FlashOpError::OutOfRange(addr))
        }
    }

    /// Whether `addr` currently holds programmed data.
    pub fn is_programmed(&self, addr: PageAddr) -> bool {
        self.config.geometry.contains(addr)
            && self.slots[self.slot_index(addr)] == SlotState::Programmed
    }

    /// Whether `addr` can be programmed right now.
    pub fn is_erased(&self, addr: PageAddr) -> bool {
        self.config.geometry.contains(addr)
            && self.slots[self.slot_index(addr)] == SlotState::Erased
    }

    /// Programs one 2KB slot in the given mode.
    ///
    /// `data`, when provided, must be exactly one page; it is retained
    /// only if the device was configured with `store_payloads`.
    ///
    /// # Errors
    ///
    /// Enforces NAND discipline: the slot must be erased; SLC mode must
    /// target the even slot and makes the sibling unusable; both halves
    /// of an MLC physical page must be MLC.
    pub fn program_page(
        &mut self,
        addr: PageAddr,
        mode: CellMode,
        data: Option<&[u8]>,
    ) -> Result<ProgramOutcome, FlashOpError> {
        self.program_page_with(addr, mode, data, OpContext::foreground())
    }

    /// Programs one 2KB slot with an explicit [`OpContext`]: background
    /// ops contend for channel time without advancing the foreground
    /// clock, and LBA-tagged background writes may coalesce in the
    /// event backend's write buffer.
    ///
    /// # Errors
    ///
    /// Same discipline as [`FlashDevice::program_page`].
    pub fn program_page_with(
        &mut self,
        addr: PageAddr,
        mode: CellMode,
        data: Option<&[u8]>,
        ctx: OpContext,
    ) -> Result<ProgramOutcome, FlashOpError> {
        self.check_addr(addr)?;
        if let Some(d) = data {
            let expected = self.config.geometry.page_data_bytes as usize;
            if d.len() != expected {
                return Err(FlashOpError::PayloadSize {
                    expected,
                    got: d.len(),
                });
            }
        }
        let si = self.slot_index(addr);
        match self.slots[si] {
            SlotState::Programmed => return Err(FlashOpError::NotErased(addr)),
            SlotState::Unusable => return Err(FlashOpError::SlcSibling(addr)),
            SlotState::Erased => {}
        }
        let pi = self.config.geometry.physical_index(addr);
        match (mode, self.modes[pi]) {
            (CellMode::Slc, None) => {
                if addr.is_upper_half() {
                    return Err(FlashOpError::UpperHalfSlc(addr));
                }
                // Commit the physical page to SLC; retire the sibling.
                self.modes[pi] = Some(CellMode::Slc);
                let sib = self.slot_index(addr.sibling());
                self.slots[sib] = SlotState::Unusable;
            }
            (CellMode::Slc, Some(existing)) => {
                // Even if existing == Slc the slot would have to be the
                // programmed one; reaching here with Erased means the
                // sibling path, which SLC forbids.
                return Err(FlashOpError::ModeConflict { addr, existing });
            }
            (CellMode::Mlc, None) => {
                self.modes[pi] = Some(CellMode::Mlc);
            }
            (CellMode::Mlc, Some(CellMode::Mlc)) => {}
            (CellMode::Mlc, Some(existing @ CellMode::Slc)) => {
                return Err(FlashOpError::ModeConflict { addr, existing });
            }
        }
        self.slots[si] = SlotState::Programmed;
        if let Some(payloads) = &mut self.payloads {
            payloads[si] = data.map(|d| d.to_vec().into_boxed_slice());
        }
        let b = addr.block.0 as usize;
        self.block_worst_mode[b] = Some(match (self.block_worst_mode[b], mode) {
            (Some(CellMode::Mlc), _) | (_, CellMode::Mlc) => CellMode::Mlc,
            _ => CellMode::Slc,
        });
        let t = self.model.op(&OpRequest {
            class: OpClass::Program,
            mode,
            block: addr.block.0,
            lba: ctx.lba,
            background: ctx.background,
        });
        let latency_us = t.service_us;
        let energy_mj = self.config.power.op_energy_mj(latency_us);
        self.stats.programs += 1;
        self.stats.busy_us += latency_us;
        self.stats.wait_us += t.wait_us;
        self.stats.energy_mj += energy_mj;
        Ok(ProgramOutcome {
            latency_us,
            wait_us: t.wait_us,
            energy_mj,
        })
    }

    /// Reads one programmed slot, injecting wear-driven bit errors.
    ///
    /// # Errors
    ///
    /// [`FlashOpError::NotProgrammed`] if the slot holds no data;
    /// [`FlashOpError::OutOfRange`] for bad addresses.
    pub fn read_page(&mut self, addr: PageAddr) -> Result<ReadOutcome, FlashOpError> {
        self.read_page_with(addr, OpContext::foreground())
    }

    /// Reads one programmed slot with an explicit [`OpContext`];
    /// foreground reads observe queue wait behind in-flight background
    /// traffic under the event backend.
    ///
    /// # Errors
    ///
    /// Same discipline as [`FlashDevice::read_page`].
    pub fn read_page_with(
        &mut self,
        addr: PageAddr,
        ctx: OpContext,
    ) -> Result<ReadOutcome, FlashOpError> {
        self.check_addr(addr)?;
        let si = self.slot_index(addr);
        if self.slots[si] != SlotState::Programmed {
            return Err(FlashOpError::NotProgrammed(addr));
        }
        let pi = self.config.geometry.physical_index(addr);
        let mode = self.modes[pi].expect("programmed slot always has a committed mode");
        let erases = self.erase_counts[addr.block.0 as usize];
        let raw_bit_errors =
            self.wear[pi].observe_read_errors(&self.wear_model, mode, erases, &mut self.rng);
        let t = self.model.op(&OpRequest {
            class: OpClass::Read,
            mode,
            block: addr.block.0,
            lba: ctx.lba,
            background: ctx.background,
        });
        let latency_us = t.service_us;
        let energy_mj = self.config.power.op_energy_mj(latency_us);
        self.stats.reads += 1;
        self.stats.bit_errors += raw_bit_errors as u64;
        self.stats.busy_us += latency_us;
        self.stats.wait_us += t.wait_us;
        self.stats.energy_mj += energy_mj;
        let data = self
            .payloads
            .as_ref()
            .and_then(|p| p[si].as_ref())
            .map(|d| d.to_vec());
        Ok(ReadOutcome {
            latency_us,
            wait_us: t.wait_us,
            energy_mj,
            raw_bit_errors,
            mode,
            data,
        })
    }

    /// Materializes the wear state of the physical page under `addr` at
    /// the block's current erase count and returns its permanent
    /// failed-cell counts `(fail_slc, fail_mlc)`.
    ///
    /// Controllers use this after an erase to decide whether a page can
    /// still be protected at any available configuration, without paying
    /// for a data read.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn probe_page_health(&mut self, addr: PageAddr) -> (u32, u32) {
        assert!(self.config.geometry.contains(addr), "address out of range");
        let pi = self.config.geometry.physical_index(addr);
        let erases = self.erase_counts[addr.block.0 as usize];
        self.wear[pi].advance(&self.wear_model, erases, &mut self.rng);
        (self.wear[pi].fail_slc, self.wear[pi].fail_mlc)
    }

    /// Erases a block: all slots return to the erased state, the erase
    /// count increments, and physical pages become mode-uncommitted.
    ///
    /// # Errors
    ///
    /// [`FlashOpError::BlockOutOfRange`] for bad block ids.
    pub fn erase_block(&mut self, block: BlockId) -> Result<EraseOutcome, FlashOpError> {
        self.erase_block_with(block, OpContext::foreground())
    }

    /// Erases a block with an explicit [`OpContext`]; background erases
    /// (GC) contend for plane time without advancing the foreground
    /// clock.
    ///
    /// # Errors
    ///
    /// [`FlashOpError::BlockOutOfRange`] for bad block ids.
    pub fn erase_block_with(
        &mut self,
        block: BlockId,
        ctx: OpContext,
    ) -> Result<EraseOutcome, FlashOpError> {
        if block.0 >= self.config.geometry.blocks {
            return Err(FlashOpError::BlockOutOfRange(block));
        }
        let b = block.0 as usize;
        let spb = self.config.geometry.slots_per_block() as usize;
        let ppb = self.config.geometry.pages_per_block as usize;
        for s in &mut self.slots[b * spb..(b + 1) * spb] {
            *s = SlotState::Erased;
        }
        for m in &mut self.modes[b * ppb..(b + 1) * ppb] {
            *m = None;
        }
        if let Some(p) = &mut self.payloads {
            for d in &mut p[b * spb..(b + 1) * spb] {
                *d = None;
            }
        }
        self.erase_counts[b] += 1;
        let worst = self.block_worst_mode[b].take().unwrap_or(CellMode::Slc);
        let t = self.model.op(&OpRequest {
            class: OpClass::Erase,
            mode: worst,
            block: block.0,
            lba: ctx.lba,
            background: ctx.background,
        });
        let latency_us = t.service_us;
        let energy_mj = self.config.power.op_energy_mj(latency_us);
        self.stats.erases += 1;
        self.stats.busy_us += latency_us;
        self.stats.wait_us += t.wait_us;
        self.stats.energy_mj += energy_mj;
        Ok(EraseOutcome {
            latency_us,
            wait_us: t.wait_us,
            energy_mj,
            erase_count: self.erase_counts[b],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_device() -> FlashDevice {
        FlashDevice::new(FlashConfig {
            geometry: FlashGeometry {
                blocks: 4,
                pages_per_block: 4,
                ..FlashGeometry::default()
            },
            ..FlashConfig::default()
        })
    }

    #[test]
    fn fresh_device_is_fully_erased() {
        let d = small_device();
        for b in d.geometry().iter_blocks() {
            assert_eq!(d.erase_count(b), 0);
            for slot in 0..d.geometry().slots_per_block() {
                assert!(d.is_erased(PageAddr::new(b, slot)));
            }
        }
    }

    #[test]
    fn program_then_read_roundtrip_with_payload() {
        let mut d = FlashDevice::new(FlashConfig {
            geometry: FlashGeometry {
                blocks: 1,
                pages_per_block: 2,
                ..FlashGeometry::default()
            },
            store_payloads: true,
            ..FlashConfig::default()
        });
        let addr = PageAddr::new(BlockId(0), 0);
        let data = vec![0x5Au8; 2048];
        d.program_page(addr, CellMode::Mlc, Some(&data)).unwrap();
        let out = d.read_page(addr).unwrap();
        assert_eq!(out.data.as_deref(), Some(&data[..]));
        assert_eq!(out.mode, CellMode::Mlc);
        assert_eq!(out.latency_us, 50.0);
    }

    #[test]
    fn out_of_place_discipline_enforced() {
        let mut d = small_device();
        let addr = PageAddr::new(BlockId(1), 2);
        d.program_page(addr, CellMode::Mlc, None).unwrap();
        assert_eq!(
            d.program_page(addr, CellMode::Mlc, None),
            Err(FlashOpError::NotErased(addr))
        );
        d.erase_block(BlockId(1)).unwrap();
        assert!(d.program_page(addr, CellMode::Mlc, None).is_ok());
        assert_eq!(d.erase_count(BlockId(1)), 1);
    }

    #[test]
    fn slc_retires_sibling_slot() {
        let mut d = small_device();
        let lower = PageAddr::new(BlockId(0), 0);
        let upper = lower.sibling();
        d.program_page(lower, CellMode::Slc, None).unwrap();
        assert_eq!(
            d.program_page(upper, CellMode::Mlc, None),
            Err(FlashOpError::SlcSibling(upper))
        );
        // After erase the page may be recommitted in MLC mode.
        d.erase_block(BlockId(0)).unwrap();
        d.program_page(upper, CellMode::Mlc, None).unwrap();
        d.program_page(lower, CellMode::Mlc, None).unwrap();
    }

    #[test]
    fn slc_must_use_lower_slot() {
        let mut d = small_device();
        let upper = PageAddr::new(BlockId(0), 1);
        assert_eq!(
            d.program_page(upper, CellMode::Slc, None),
            Err(FlashOpError::UpperHalfSlc(upper))
        );
    }

    #[test]
    fn mode_conflicts_rejected() {
        let mut d = small_device();
        let a = PageAddr::new(BlockId(0), 4);
        d.program_page(a, CellMode::Mlc, None).unwrap();
        // Sibling in SLC mode would conflict with the committed MLC page.
        assert!(matches!(
            d.program_page(a.sibling(), CellMode::Slc, None),
            Err(FlashOpError::ModeConflict { .. }) | Err(FlashOpError::UpperHalfSlc(_))
        ));
    }

    #[test]
    fn read_of_unwritten_slot_fails() {
        let mut d = small_device();
        let addr = PageAddr::new(BlockId(0), 0);
        assert_eq!(d.read_page(addr), Err(FlashOpError::NotProgrammed(addr)));
    }

    #[test]
    fn bounds_are_checked() {
        let mut d = small_device();
        let bad = PageAddr::new(BlockId(99), 0);
        assert_eq!(
            d.program_page(bad, CellMode::Slc, None),
            Err(FlashOpError::OutOfRange(bad))
        );
        assert_eq!(
            d.erase_block(BlockId(99)),
            Err(FlashOpError::BlockOutOfRange(BlockId(99)))
        );
    }

    #[test]
    fn payload_size_validated() {
        let mut d = small_device();
        let addr = PageAddr::new(BlockId(0), 0);
        assert_eq!(
            d.program_page(addr, CellMode::Slc, Some(&[0u8; 100])),
            Err(FlashOpError::PayloadSize {
                expected: 2048,
                got: 100
            })
        );
    }

    #[test]
    fn erase_latency_tracks_worst_mode() {
        let mut d = small_device();
        // Pure SLC block erases at the SLC latency.
        d.program_page(PageAddr::new(BlockId(0), 0), CellMode::Slc, None)
            .unwrap();
        let out = d.erase_block(BlockId(0)).unwrap();
        assert_eq!(out.latency_us, 1500.0);
        // A block touched by MLC pays the MLC erase cost.
        d.program_page(PageAddr::new(BlockId(0), 0), CellMode::Mlc, None)
            .unwrap();
        let out = d.erase_block(BlockId(0)).unwrap();
        assert_eq!(out.latency_us, 3300.0);
        // Untouched blocks default to the SLC erase cost.
        let out = d.erase_block(BlockId(2)).unwrap();
        assert_eq!(out.latency_us, 1500.0);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut d = small_device();
        d.program_page(PageAddr::new(BlockId(0), 0), CellMode::Slc, None)
            .unwrap();
        d.read_page(PageAddr::new(BlockId(0), 0)).unwrap();
        d.erase_block(BlockId(0)).unwrap();
        let s = d.stats();
        assert_eq!((s.reads, s.programs, s.erases), (1, 1, 1));
        assert!((s.busy_us - (200.0 + 25.0 + 1500.0)).abs() < 1e-9);
        assert!(s.energy_mj > 0.0);
        d.reset_stats();
        assert_eq!(d.stats(), FlashStats::default());
    }

    #[test]
    fn worn_blocks_show_bit_errors() {
        let mut d = FlashDevice::new(FlashConfig {
            geometry: FlashGeometry {
                blocks: 2,
                pages_per_block: 2,
                ..FlashGeometry::default()
            },
            wear: WearConfig::default().accelerated(1e4),
            ..FlashConfig::default()
        });
        let addr = PageAddr::new(BlockId(0), 0);
        // Hammer the block with erase/program cycles.
        let mut total_errors = 0u64;
        for _ in 0..3_000 {
            d.program_page(addr, CellMode::Mlc, None).unwrap();
            d.erase_block(BlockId(0)).unwrap();
        }
        d.program_page(addr, CellMode::Mlc, None).unwrap();
        total_errors += d.read_page(addr).unwrap().raw_bit_errors as u64;
        assert!(total_errors > 0, "3000 accelerated cycles must show wear");
        // The untouched block still reads clean.
        let fresh = PageAddr::new(BlockId(1), 0);
        d.program_page(fresh, CellMode::Mlc, None).unwrap();
        assert_eq!(d.read_page(fresh).unwrap().raw_bit_errors, 0);
    }

    #[test]
    fn debug_is_nonempty() {
        let d = small_device();
        assert!(format!("{d:?}").contains("FlashDevice"));
    }
}
