//! Flash operation timing and power constants (Table 2 / Table 3).

use crate::geometry::CellMode;

/// Per-operation latencies in microseconds, by cell mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashTiming {
    /// SLC random page read latency, µs.
    pub slc_read_us: f64,
    /// MLC random page read latency, µs.
    pub mlc_read_us: f64,
    /// SLC page program latency, µs.
    pub slc_program_us: f64,
    /// MLC page program latency, µs.
    pub mlc_program_us: f64,
    /// SLC block erase latency, µs.
    pub slc_erase_us: f64,
    /// MLC block erase latency, µs.
    pub mlc_erase_us: f64,
}

impl Default for FlashTiming {
    fn default() -> Self {
        // Table 2/3 of the paper.
        FlashTiming {
            slc_read_us: 25.0,
            mlc_read_us: 50.0,
            slc_program_us: 200.0,
            mlc_program_us: 680.0,
            slc_erase_us: 1500.0,
            mlc_erase_us: 3300.0,
        }
    }
}

impl FlashTiming {
    /// Page read latency in `mode`, µs.
    #[deprecated(
        note = "query the device's TimingModel (e.g. FlashDevice::timing_model().read_us) \
                so queueing backends stay in the loop; this free-function shim will go away"
    )]
    pub fn read_us(&self, mode: CellMode) -> f64 {
        match mode {
            CellMode::Slc => self.slc_read_us,
            CellMode::Mlc => self.mlc_read_us,
        }
    }

    /// Page program latency in `mode`, µs.
    #[deprecated(
        note = "query the device's TimingModel (e.g. FlashDevice::timing_model().program_us) \
                so queueing backends stay in the loop; this free-function shim will go away"
    )]
    pub fn program_us(&self, mode: CellMode) -> f64 {
        match mode {
            CellMode::Slc => self.slc_program_us,
            CellMode::Mlc => self.mlc_program_us,
        }
    }

    /// Block erase latency, µs. A block containing any MLC page pays the
    /// MLC erase cost; pure-SLC blocks erase faster.
    #[deprecated(
        note = "query the device's TimingModel (e.g. FlashDevice::timing_model().erase_us) \
                so queueing backends stay in the loop; this free-function shim will go away"
    )]
    pub fn erase_us(&self, worst_mode: CellMode) -> f64 {
        match worst_mode {
            CellMode::Slc => self.slc_erase_us,
            CellMode::Mlc => self.mlc_erase_us,
        }
    }
}

/// Flash power constants (Table 2: 1Gb NAND-SLC at 27mW active, 6µW idle).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashPower {
    /// Power while executing an operation, milliwatts.
    pub active_mw: f64,
    /// Idle power per gigabit of capacity, microwatts.
    pub idle_uw_per_gbit: f64,
}

impl Default for FlashPower {
    fn default() -> Self {
        FlashPower {
            active_mw: 27.0,
            idle_uw_per_gbit: 6.0,
        }
    }
}

impl FlashPower {
    /// Energy of one operation lasting `latency_us`, in millijoules.
    pub fn op_energy_mj(&self, latency_us: f64) -> f64 {
        self.active_mw * latency_us / 1e6
    }

    /// Idle power of a device of `capacity_bytes`, in watts.
    pub fn idle_w(&self, capacity_bytes: u64) -> f64 {
        let gbits = capacity_bytes as f64 * 8.0 / 1e9;
        self.idle_uw_per_gbit * gbits / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(deprecated)]
    fn table2_defaults() {
        let t = FlashTiming::default();
        assert_eq!(t.read_us(CellMode::Slc), 25.0);
        assert_eq!(t.read_us(CellMode::Mlc), 50.0);
        assert_eq!(t.program_us(CellMode::Slc), 200.0);
        assert_eq!(t.program_us(CellMode::Mlc), 680.0);
        assert_eq!(t.erase_us(CellMode::Slc), 1500.0);
        assert_eq!(t.erase_us(CellMode::Mlc), 3300.0);
    }

    #[test]
    #[allow(deprecated)]
    fn slc_is_strictly_faster() {
        let t = FlashTiming::default();
        assert!(t.read_us(CellMode::Slc) < t.read_us(CellMode::Mlc));
        assert!(t.program_us(CellMode::Slc) < t.program_us(CellMode::Mlc));
        assert!(t.erase_us(CellMode::Slc) < t.erase_us(CellMode::Mlc));
    }

    #[test]
    fn op_energy_scales_with_latency() {
        let p = FlashPower::default();
        // 200µs program at 27mW = 5.4µJ = 0.0054mJ.
        assert!((p.op_energy_mj(200.0) - 0.0054).abs() < 1e-9);
        assert_eq!(p.op_energy_mj(0.0), 0.0);
    }

    #[test]
    fn idle_power_tiny_but_nonzero() {
        let p = FlashPower::default();
        let w = p.idle_w(1 << 30); // 1GiB ≈ 8.6Gb -> ~51.5µW
        let expected = 6e-6 * ((1u64 << 30) as f64 * 8.0 / 1e9);
        assert!((w - expected).abs() < 1e-12);
        assert!(w < 1e-4, "flash idle power must be negligible vs DRAM");
    }
}
