//! End-to-end verified flash: real data, real BCH parity in the spare
//! area, real bit corruption.
//!
//! [`VerifiedFlash`] wraps a [`FlashDevice`] configured to retain
//! payloads and closes the loop that the statistical simulator leaves
//! open: programs encode the page with an actual
//! [`flash_ecc::PageCodec`] at a chosen strength, and reads materialize
//! the device's wear-driven error *count* as concrete, repeatable bit
//! flips before running the real decoder. A cell that has failed keeps
//! failing at the same position ("fail consistently", §5.2.1), and data
//! survives wear exactly as long as the code strength covers the
//! failures — the paper's §4.1 contract, demonstrated in software.

use std::error::Error;
use std::fmt;

use crate::fxhash::FxHashMap;

use flash_ecc::page::{
    PageCodec, PageCodecBank, PageDecodeError, PageDecodeOutcome, PAGE_DATA_BYTES, PAGE_SPARE_BYTES,
};

use crate::device::{EraseOutcome, FlashConfig, FlashDevice, FlashOpError, ProgramOutcome};
use crate::geometry::{BlockId, CellMode, PageAddr};

/// Errors from the verified-flash layer.
#[derive(Debug)]
pub enum VerifiedError {
    /// The underlying device rejected the operation.
    Device(FlashOpError),
    /// Wear has corrupted more bits than the page's code can correct;
    /// the data is lost (CRC/BCH detected it).
    Uncorrectable {
        /// Raw bit errors the device reported.
        raw_bit_errors: u32,
        /// Strength the page was protected with.
        strength: u8,
    },
    /// Requested ECC strength outside 1..=12.
    BadStrength(u8),
}

impl fmt::Display for VerifiedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifiedError::Device(e) => write!(f, "device error: {e}"),
            VerifiedError::Uncorrectable {
                raw_bit_errors,
                strength,
            } => write!(
                f,
                "uncorrectable: {raw_bit_errors} raw bit errors exceed BCH t={strength}"
            ),
            VerifiedError::BadStrength(t) => write!(f, "ECC strength {t} outside 1..=12"),
        }
    }
}

impl Error for VerifiedError {}

impl From<FlashOpError> for VerifiedError {
    fn from(e: FlashOpError) -> Self {
        VerifiedError::Device(e)
    }
}

/// Result of a verified read.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifiedRead {
    /// The recovered page payload.
    pub data: Vec<u8>,
    /// Bit errors the decoder fixed.
    pub corrected: usize,
    /// Raw bit errors present before decoding.
    pub raw_bit_errors: u32,
    /// Array latency plus nothing — ECC time is the caller's model.
    pub latency_us: f64,
    /// Mode the page was stored in.
    pub mode: CellMode,
}

/// A flash device with a real software ECC pipeline attached.
///
/// # Examples
///
/// ```
/// use nand_flash::verified::VerifiedFlash;
/// use nand_flash::{FlashConfig, BlockId, CellMode, PageAddr};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut flash = VerifiedFlash::new(FlashConfig::default());
/// let addr = PageAddr::new(BlockId(0), 0);
/// let data = vec![0xAB; 2048];
/// flash.program(addr, CellMode::Slc, 4, &data)?;
/// let read = flash.read(addr)?;
/// assert_eq!(read.data, data);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct VerifiedFlash {
    device: FlashDevice,
    codecs: PageCodecBank,
    /// Per-slot (strength, spare bytes) for programmed pages.
    spares: FxHashMap<u64, (u8, Vec<u8>)>,
    /// Reusable spare-area scratch for the read path, so each read does
    /// not clone the stored spare into a fresh allocation.
    spare_buf: Vec<u8>,
}

impl VerifiedFlash {
    /// Creates the device; payload storage is forced on.
    pub fn new(mut config: FlashConfig) -> Self {
        config.store_payloads = true;
        VerifiedFlash {
            device: FlashDevice::new(config),
            codecs: PageCodecBank::new(),
            spares: FxHashMap::default(),
            spare_buf: vec![0u8; PAGE_SPARE_BYTES],
        }
    }

    /// The wrapped device.
    pub fn device(&self) -> &FlashDevice {
        &self.device
    }

    fn gidx(&self, addr: PageAddr) -> u64 {
        addr.block.0 as u64 * self.device.geometry().slots_per_block() as u64 + addr.slot as u64
    }

    fn codec(&self, strength: u8) -> Result<std::sync::Arc<PageCodec>, VerifiedError> {
        self.codecs
            .codec(strength as usize)
            .map_err(|_| VerifiedError::BadStrength(strength))
    }

    /// Encodes and programs one page at the given BCH strength.
    ///
    /// # Errors
    ///
    /// [`VerifiedError::BadStrength`] for strengths outside 1..=12, or
    /// the underlying [`FlashOpError`] (erase-before-program, mode
    /// conflicts, bounds).
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly one page (2048 bytes).
    pub fn program(
        &mut self,
        addr: PageAddr,
        mode: CellMode,
        strength: u8,
        data: &[u8],
    ) -> Result<ProgramOutcome, VerifiedError> {
        assert_eq!(data.len(), PAGE_DATA_BYTES, "payload must be one 2KB page");
        let codec = self.codec(strength)?;
        let outcome = self.device.program_page(addr, mode, Some(data))?;
        // Encode straight into the slot's spare record, reusing its
        // allocation when the slot is reprogrammed.
        let gidx = self.gidx(addr);
        let entry = self
            .spares
            .entry(gidx)
            .or_insert_with(|| (strength, vec![0u8; PAGE_SPARE_BYTES]));
        entry.0 = strength;
        entry.1.resize(PAGE_SPARE_BYTES, 0);
        codec.encode_into(data, &mut entry.1);
        Ok(outcome)
    }

    /// Reads one page: fetches the stored payload, applies the device's
    /// wear-driven corruption as concrete bit flips, and runs the real
    /// decoder.
    ///
    /// # Errors
    ///
    /// [`VerifiedError::Uncorrectable`] when wear exceeded the code
    /// strength (the data is genuinely lost and the CRC knows it), or a
    /// device error for unprogrammed/out-of-range addresses.
    pub fn read(&mut self, addr: PageAddr) -> Result<VerifiedRead, VerifiedError> {
        let out = self.device.read_page(addr)?;
        // The payload is moved out of the read outcome (it becomes the
        // returned buffer), not cloned a second time.
        let mut data = out
            .data
            .expect("store_payloads is forced on; programmed pages have data");
        let gidx = self.gidx(addr);
        let (strength, stored_spare) = self
            .spares
            .get(&gidx)
            .expect("programmed pages have recorded parity");
        let strength = *strength;
        // Copy the stored spare into the reusable scratch (zero-padded to
        // the full spare area) instead of cloning it.
        self.spare_buf.clear();
        self.spare_buf.extend_from_slice(stored_spare);
        self.spare_buf.resize(PAGE_SPARE_BYTES, 0);
        // Materialize the error count as consistent bit positions.
        corrupt_bits(
            &mut data,
            &mut self.spare_buf,
            out.raw_bit_errors,
            page_corruption_seed(self.device.config().seed, addr),
        );
        let codec = self.codec(strength)?;
        match codec.decode(&mut data, &self.spare_buf) {
            Ok(PageDecodeOutcome::Clean) => Ok(VerifiedRead {
                data,
                corrected: 0,
                raw_bit_errors: out.raw_bit_errors,
                latency_us: out.latency_us,
                mode: out.mode,
            }),
            Ok(PageDecodeOutcome::Corrected { corrected }) => Ok(VerifiedRead {
                data,
                corrected,
                raw_bit_errors: out.raw_bit_errors,
                latency_us: out.latency_us,
                mode: out.mode,
            }),
            Err(PageDecodeError::Uncorrectable | PageDecodeError::CrcMismatch) => {
                Err(VerifiedError::Uncorrectable {
                    raw_bit_errors: out.raw_bit_errors,
                    strength,
                })
            }
            Err(PageDecodeError::BadLength(e)) => {
                unreachable!("fixed page geometry cannot mismatch: {e}")
            }
        }
    }

    /// Erases a block, discarding its parity records.
    ///
    /// # Errors
    ///
    /// Propagates device bounds errors.
    pub fn erase(&mut self, block: BlockId) -> Result<EraseOutcome, VerifiedError> {
        let outcome = self.device.erase_block(block)?;
        let spb = self.device.geometry().slots_per_block() as u64;
        let base = block.0 as u64 * spb;
        for slot in 0..spb {
            self.spares.remove(&(base + slot));
        }
        Ok(outcome)
    }
}

/// Stable per-page corruption seed: the same page always fails at the
/// same bit positions, and growing error counts extend the same
/// sequence.
fn page_corruption_seed(device_seed: u64, addr: PageAddr) -> u64 {
    let mut x = device_seed
        ^ (addr.block.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ ((addr.physical_page() as u64) << 32);
    // SplitMix64 finalizer.
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Flips `count` distinct bits across data and spare, positions drawn
/// from a deterministic SplitMix64 stream.
///
/// Duplicate positions are tracked in a stack-allocated bitset (heap only
/// for geometries larger than a page plus spare), so the hot read path
/// does no hashing and no per-call allocation. The position stream and
/// skip-duplicates rule are unchanged, preserving every historical
/// corruption pattern (same-seed determinism and the prefix-subset
/// property of growing counts).
fn corrupt_bits(data: &mut [u8], spare: &mut [u8], count: u32, seed: u64) {
    let total_bits = (data.len() + spare.len()) * 8;
    const STACK_WORDS: usize = (PAGE_DATA_BYTES + PAGE_SPARE_BYTES) * 8 / 64;
    let words = total_bits.div_ceil(64);
    let mut stack = [0u64; STACK_WORDS];
    let mut heap;
    let seen: &mut [u64] = if words <= STACK_WORDS {
        &mut stack[..words]
    } else {
        heap = vec![0u64; words];
        &mut heap
    };
    let target = (count as usize).min(total_bits);
    let mut flipped = 0usize;
    let mut state = seed;
    while flipped < target {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let bit = (z as usize) % total_bits;
        let (w, mask) = (bit / 64, 1u64 << (bit % 64));
        if seen[w] & mask != 0 {
            continue;
        }
        seen[w] |= mask;
        flipped += 1;
        if bit < data.len() * 8 {
            data[bit / 8] ^= 1 << (7 - bit % 8);
        } else {
            let b = bit - data.len() * 8;
            spare[b / 8] ^= 1 << (7 - b % 8);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::FlashGeometry;
    use crate::wear::WearConfig;

    fn fresh() -> VerifiedFlash {
        VerifiedFlash::new(FlashConfig {
            geometry: FlashGeometry {
                blocks: 2,
                pages_per_block: 4,
                ..FlashGeometry::default()
            },
            ..FlashConfig::default()
        })
    }

    fn page(fill: u8) -> Vec<u8> {
        (0..PAGE_DATA_BYTES)
            .map(|i| (i as u8).wrapping_mul(7).wrapping_add(fill))
            .collect()
    }

    #[test]
    fn clean_roundtrip() {
        let mut f = fresh();
        let addr = PageAddr::new(BlockId(0), 0);
        let data = page(1);
        f.program(addr, CellMode::Mlc, 4, &data).unwrap();
        let r = f.read(addr).unwrap();
        assert_eq!(r.data, data);
        assert_eq!(r.corrected, 0);
        assert_eq!(r.raw_bit_errors, 0);
    }

    #[test]
    fn device_discipline_still_enforced() {
        let mut f = fresh();
        let addr = PageAddr::new(BlockId(0), 0);
        f.program(addr, CellMode::Slc, 2, &page(2)).unwrap();
        assert!(matches!(
            f.program(addr, CellMode::Slc, 2, &page(3)),
            Err(VerifiedError::Device(FlashOpError::NotErased(_)))
        ));
        f.erase(BlockId(0)).unwrap();
        f.program(addr, CellMode::Slc, 2, &page(3)).unwrap();
        assert_eq!(f.read(addr).unwrap().data, page(3));
    }

    #[test]
    fn bad_strength_rejected() {
        let mut f = fresh();
        let addr = PageAddr::new(BlockId(0), 0);
        assert!(matches!(
            f.program(addr, CellMode::Slc, 0, &page(0)),
            Err(VerifiedError::BadStrength(0))
        ));
        assert!(matches!(
            f.program(addr, CellMode::Slc, 13, &page(0)),
            Err(VerifiedError::BadStrength(13))
        ));
    }

    #[test]
    fn wear_errors_are_really_corrected_until_strength_is_exceeded() {
        // Accelerate wear so bit errors appear, protect at t=12, and
        // check that real decoding recovers the data as long as the
        // error count stays within strength.
        let mut f = VerifiedFlash::new(FlashConfig {
            geometry: FlashGeometry {
                blocks: 1,
                pages_per_block: 2,
                ..FlashGeometry::default()
            },
            // Acceleration tuned so the 1..12-error band spans tens of
            // integer erase cycles rather than being jumped over.
            wear: WearConfig {
                spatial_sigma_decades: 0.0,
                ..WearConfig::default()
            }
            .accelerated(3e4),
            ..FlashConfig::default()
        });
        let addr = PageAddr::new(BlockId(0), 0);
        let data = page(9);
        let mut saw_corrected = false;
        let mut saw_uncorrectable = false;
        for _ in 0..600 {
            f.program(addr, CellMode::Mlc, 12, &data).unwrap();
            match f.read(addr) {
                Ok(r) => {
                    assert_eq!(r.data, data, "corrected data must be exact");
                    if r.corrected > 0 {
                        saw_corrected = true;
                        assert!(r.corrected as u32 <= r.raw_bit_errors.max(12));
                    }
                }
                Err(VerifiedError::Uncorrectable {
                    raw_bit_errors,
                    strength,
                }) => {
                    assert!(raw_bit_errors > strength as u32);
                    saw_uncorrectable = true;
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
            f.erase(BlockId(0)).unwrap();
        }
        assert!(saw_corrected, "wear must produce correctable errors first");
        assert!(
            saw_uncorrectable,
            "600 accelerated cycles must exceed t=12 eventually"
        );
    }

    #[test]
    fn corruption_is_consistent_across_reads() {
        // The same worn page shows the same failed bits on every read
        // (transient noise aside — disabled here).
        let mut f = VerifiedFlash::new(FlashConfig {
            geometry: FlashGeometry {
                blocks: 1,
                pages_per_block: 2,
                ..FlashGeometry::default()
            },
            wear: WearConfig {
                transient_errors_per_read: 0.0,
                spatial_sigma_decades: 0.0,
                ..WearConfig::default()
            }
            .accelerated(1e6),
            ..FlashConfig::default()
        });
        let addr = PageAddr::new(BlockId(0), 0);
        // Age the block until a moderate error count appears.
        for _ in 0..60 {
            f.program(addr, CellMode::Mlc, 12, &page(5)).unwrap();
            let errs = f.device.read_page(addr).unwrap().raw_bit_errors;
            f.erase(BlockId(0)).unwrap();
            if errs >= 2 {
                break;
            }
        }
        f.program(addr, CellMode::Mlc, 12, &page(5)).unwrap();
        let a = f.read(addr);
        let b = f.read(addr);
        match (a, b) {
            (Ok(x), Ok(y)) => {
                assert_eq!(x.raw_bit_errors, y.raw_bit_errors);
                assert_eq!(x.corrected, y.corrected);
            }
            (Err(_), Err(_)) => {}
            other => panic!("reads disagreed: {other:?}"),
        }
    }

    #[test]
    fn corrupt_bits_flips_exactly_count_distinct_bits() {
        let mut data = vec![0u8; 64];
        let mut spare = vec![0u8; 8];
        corrupt_bits(&mut data, &mut spare, 17, 42);
        let ones: u32 = data.iter().map(|b| b.count_ones()).sum::<u32>()
            + spare.iter().map(|b| b.count_ones()).sum::<u32>();
        assert_eq!(ones, 17);
        // Deterministic: same seed, same flips.
        let mut d2 = vec![0u8; 64];
        let mut s2 = vec![0u8; 8];
        corrupt_bits(&mut d2, &mut s2, 17, 42);
        assert_eq!(data, d2);
        assert_eq!(spare, s2);
        // Prefix property: 5 flips are a subset of 17.
        let mut d3 = vec![0u8; 64];
        let mut s3 = vec![0u8; 8];
        corrupt_bits(&mut d3, &mut s3, 5, 42);
        for (a, b) in d3.iter().zip(&data) {
            assert_eq!(a & !b, 0, "smaller count must be a subset");
        }
    }
}
