//! Property-based tests of the device-timing API (`nand_flash::sched`).
//!
//! Three contracts are pinned here:
//!
//! 1. **Oracle**: for *any* operation sequence, the event-driven backend
//!    under the serial default config reports byte-identical `(wait,
//!    service)` pairs, clock, and makespan to the closed-form model.
//! 2. **Determinism**: for *any* operation sequence and *any* valid
//!    channel configuration, replaying the run yields a byte-identical
//!    event trace and makespan — the scheduler is RNG-free and its
//!    event queue pops in `(time, seq)` order.
//! 3. **Backend equivalence**: for *any* operation sequence and channel
//!    configuration, the timer-wheel scheduler reports byte-identical
//!    per-op timings, clock, trace, and makespan to the retained
//!    heap-based oracle — quantized bucketing never alters event order.

use proptest::prelude::*;

use nand_flash::{
    CellMode, ChannelConfig, ClosedForm, EventDriven, FlashTiming, OpClass, OpRequest,
    SchedBackend, TimingModel,
};

fn op_strategy() -> impl Strategy<Value = OpRequest> {
    (
        prop_oneof![
            4 => Just(OpClass::Read),
            4 => Just(OpClass::Program),
            1 => Just(OpClass::Erase),
        ],
        any::<bool>(),
        0..64u32,
        (any::<bool>(), 0..16u64),
        any::<bool>(),
    )
        .prop_map(
            |(class, slc, block, (with_lba, lba), background)| OpRequest {
                class,
                mode: if slc { CellMode::Slc } else { CellMode::Mlc },
                block,
                lba: with_lba.then_some(lba),
                background,
            },
        )
}

fn channel_strategy() -> impl Strategy<Value = ChannelConfig> {
    (
        1..6u32,
        1..4u32,
        1..8u32,
        prop_oneof![Just(0.0f64), Just(100.0), Just(750.0)],
        prop_oneof![Just(0.0f64), Just(10.0)],
        prop_oneof![Just(SchedBackend::Heap), Just(SchedBackend::Wheel)],
    )
        .prop_map(
            |(channels, planes, queue_depth, writeback_us, xfer_us, sched_backend)| {
                ChannelConfig::builder()
                    .channels(channels)
                    .planes(planes)
                    .queue_depth(queue_depth)
                    .writeback_us(writeback_us)
                    .xfer_us(xfer_us)
                    .trace_capacity(4096)
                    .sched_backend(sched_backend)
                    .build()
                    .expect("strategy only emits valid configs")
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Oracle contract: serial-mimic event scheduling *is* the closed
    /// form, bit for bit, for arbitrary op sequences.
    #[test]
    fn serial_event_backend_is_the_closed_form_oracle(
        ops in prop::collection::vec(op_strategy(), 1..200),
    ) {
        let timing = FlashTiming::default();
        for backend in [SchedBackend::Heap, SchedBackend::Wheel] {
            let mut oracle = ClosedForm::new(timing);
            let cfg = ChannelConfig { sched_backend: backend, ..ChannelConfig::default() };
            let mut event = EventDriven::new(timing, cfg);
            for (i, op) in ops.iter().enumerate() {
                let a = oracle.op(op);
                let b = event.op(op);
                prop_assert_eq!(
                    a.wait_us.to_bits(), b.wait_us.to_bits(),
                    "wait diverged at op {} ({:?}) on {:?}", i, op, backend
                );
                prop_assert_eq!(
                    a.service_us.to_bits(), b.service_us.to_bits(),
                    "service diverged at op {} ({:?}) on {:?}", i, op, backend
                );
                prop_assert_eq!(oracle.now_us().to_bits(), event.now_us().to_bits());
            }
            prop_assert_eq!(oracle.drain().to_bits(), event.drain().to_bits());
            prop_assert_eq!(oracle.now_us().to_bits(), event.now_us().to_bits());
        }
    }

    /// Backend-equivalence contract: the timer-wheel scheduler *is* the
    /// heap scheduler, bit for bit — per-op waits and services, the
    /// clock after every op, the full event trace, and the drained
    /// makespan — across arbitrary op mixes, queue depths, writeback
    /// windows, and channel shapes.
    #[test]
    fn wheel_backend_matches_the_heap_oracle(
        ops in prop::collection::vec(op_strategy(), 1..200),
        cfg in channel_strategy(),
    ) {
        let timing = FlashTiming::default();
        let mut heap = EventDriven::new(
            timing,
            ChannelConfig { sched_backend: SchedBackend::Heap, ..cfg },
        );
        let mut wheel = EventDriven::new(
            timing,
            ChannelConfig { sched_backend: SchedBackend::Wheel, ..cfg },
        );
        for (i, op) in ops.iter().enumerate() {
            let a = heap.op(op);
            let b = wheel.op(op);
            prop_assert_eq!(
                a.wait_us.to_bits(), b.wait_us.to_bits(),
                "wait diverged at op {} ({:?})", i, op
            );
            prop_assert_eq!(
                a.service_us.to_bits(), b.service_us.to_bits(),
                "service diverged at op {} ({:?})", i, op
            );
            prop_assert_eq!(
                heap.now_us().to_bits(), wheel.now_us().to_bits(),
                "clock diverged at op {}", i
            );
        }
        prop_assert_eq!(heap.buffered_writes(), wheel.buffered_writes());
        prop_assert_eq!(heap.drain().to_bits(), wheel.drain().to_bits(), "makespan diverged");
        prop_assert_eq!(heap.trace(), wheel.trace(), "event trace diverged");
    }

    /// Determinism contract: same config + same ops ⇒ byte-identical
    /// event trace, clock, and makespan across independent runs.
    #[test]
    fn event_backend_is_deterministic(
        ops in prop::collection::vec(op_strategy(), 1..200),
        cfg in channel_strategy(),
    ) {
        let timing = FlashTiming::default();
        let run = || {
            let mut model = EventDriven::new(timing, cfg);
            let timings: Vec<(u64, u64)> = ops
                .iter()
                .map(|op| {
                    let t = model.op(op);
                    (t.wait_us.to_bits(), t.service_us.to_bits())
                })
                .collect();
            let makespan = model.drain().to_bits();
            (timings, makespan, model.trace().to_vec())
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.0, b.0, "per-op timings diverged");
        prop_assert_eq!(a.1, b.1, "makespan diverged");
        prop_assert_eq!(a.2, b.2, "event trace diverged");
    }

    /// Sanity envelope for every backend/config: waits are non-negative
    /// and finite, service times are positive table sums, the clock
    /// never runs backwards, and the drained makespan bounds the clock.
    #[test]
    fn timings_stay_in_the_physical_envelope(
        ops in prop::collection::vec(op_strategy(), 1..200),
        cfg in channel_strategy(),
    ) {
        let timing = FlashTiming::default();
        let mut model = EventDriven::new(timing, cfg);
        let mut last_now = model.now_us();
        for op in &ops {
            let t = model.op(op);
            prop_assert!(t.wait_us >= 0.0 && t.wait_us.is_finite(), "wait {}", t.wait_us);
            prop_assert!(t.service_us > 0.0 && t.service_us.is_finite());
            let now = model.now_us();
            prop_assert!(now >= last_now, "clock ran backwards: {} -> {}", last_now, now);
            last_now = now;
        }
        let before = model.now_us();
        let makespan = model.drain();
        prop_assert!(makespan >= before);
        prop_assert_eq!(model.now_us().to_bits(), makespan.to_bits());
        prop_assert_eq!(model.buffered_writes(), 0, "drain must flush the write buffer");
    }
}
