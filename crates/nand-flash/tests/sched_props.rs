//! Property-based tests of the device-timing API (`nand_flash::sched`).
//!
//! Two contracts are pinned here:
//!
//! 1. **Oracle**: for *any* operation sequence, the event-driven backend
//!    under the serial default config reports byte-identical `(wait,
//!    service)` pairs, clock, and makespan to the closed-form model.
//! 2. **Determinism**: for *any* operation sequence and *any* valid
//!    channel configuration, replaying the run yields a byte-identical
//!    event trace and makespan — the scheduler is RNG-free and its heap
//!    pops in `(time, seq)` order.

use proptest::prelude::*;

use nand_flash::{
    CellMode, ChannelConfig, ClosedForm, EventDriven, FlashTiming, OpClass, OpRequest, TimingModel,
};

fn op_strategy() -> impl Strategy<Value = OpRequest> {
    (
        prop_oneof![
            4 => Just(OpClass::Read),
            4 => Just(OpClass::Program),
            1 => Just(OpClass::Erase),
        ],
        any::<bool>(),
        0..64u32,
        (any::<bool>(), 0..16u64),
        any::<bool>(),
    )
        .prop_map(
            |(class, slc, block, (with_lba, lba), background)| OpRequest {
                class,
                mode: if slc { CellMode::Slc } else { CellMode::Mlc },
                block,
                lba: with_lba.then_some(lba),
                background,
            },
        )
}

fn channel_strategy() -> impl Strategy<Value = ChannelConfig> {
    (
        1..6u32,
        1..4u32,
        1..8u32,
        prop_oneof![Just(0.0f64), Just(100.0), Just(750.0)],
        prop_oneof![Just(0.0f64), Just(10.0)],
    )
        .prop_map(|(channels, planes, queue_depth, writeback_us, xfer_us)| {
            ChannelConfig::builder()
                .channels(channels)
                .planes(planes)
                .queue_depth(queue_depth)
                .writeback_us(writeback_us)
                .xfer_us(xfer_us)
                .trace_capacity(4096)
                .build()
                .expect("strategy only emits valid configs")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Oracle contract: serial-mimic event scheduling *is* the closed
    /// form, bit for bit, for arbitrary op sequences.
    #[test]
    fn serial_event_backend_is_the_closed_form_oracle(
        ops in prop::collection::vec(op_strategy(), 1..200),
    ) {
        let timing = FlashTiming::default();
        let mut oracle = ClosedForm::new(timing);
        let mut event = EventDriven::new(timing, ChannelConfig::default());
        for (i, op) in ops.iter().enumerate() {
            let a = oracle.op(op);
            let b = event.op(op);
            prop_assert_eq!(
                a.wait_us.to_bits(), b.wait_us.to_bits(),
                "wait diverged at op {} ({:?})", i, op
            );
            prop_assert_eq!(
                a.service_us.to_bits(), b.service_us.to_bits(),
                "service diverged at op {} ({:?})", i, op
            );
            prop_assert_eq!(oracle.now_us().to_bits(), event.now_us().to_bits());
        }
        prop_assert_eq!(oracle.drain().to_bits(), event.drain().to_bits());
        prop_assert_eq!(oracle.now_us().to_bits(), event.now_us().to_bits());
    }

    /// Determinism contract: same config + same ops ⇒ byte-identical
    /// event trace, clock, and makespan across independent runs.
    #[test]
    fn event_backend_is_deterministic(
        ops in prop::collection::vec(op_strategy(), 1..200),
        cfg in channel_strategy(),
    ) {
        let timing = FlashTiming::default();
        let run = || {
            let mut model = EventDriven::new(timing, cfg);
            let timings: Vec<(u64, u64)> = ops
                .iter()
                .map(|op| {
                    let t = model.op(op);
                    (t.wait_us.to_bits(), t.service_us.to_bits())
                })
                .collect();
            let makespan = model.drain().to_bits();
            (timings, makespan, model.trace().to_vec())
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.0, b.0, "per-op timings diverged");
        prop_assert_eq!(a.1, b.1, "makespan diverged");
        prop_assert_eq!(a.2, b.2, "event trace diverged");
    }

    /// Sanity envelope for every backend/config: waits are non-negative
    /// and finite, service times are positive table sums, the clock
    /// never runs backwards, and the drained makespan bounds the clock.
    #[test]
    fn timings_stay_in_the_physical_envelope(
        ops in prop::collection::vec(op_strategy(), 1..200),
        cfg in channel_strategy(),
    ) {
        let timing = FlashTiming::default();
        let mut model = EventDriven::new(timing, cfg);
        let mut last_now = model.now_us();
        for op in &ops {
            let t = model.op(op);
            prop_assert!(t.wait_us >= 0.0 && t.wait_us.is_finite(), "wait {}", t.wait_us);
            prop_assert!(t.service_us > 0.0 && t.service_us.is_finite());
            let now = model.now_us();
            prop_assert!(now >= last_now, "clock ran backwards: {} -> {}", last_now, now);
            last_now = now;
        }
        let before = model.now_us();
        let makespan = model.drain();
        prop_assert!(makespan >= before);
        prop_assert_eq!(model.now_us().to_bits(), makespan.to_bits());
        prop_assert_eq!(model.buffered_writes(), 0, "drain must flush the write buffer");
    }
}
