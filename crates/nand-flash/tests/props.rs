//! Property-based tests of the NAND device state machine: arbitrary
//! operation sequences never panic, never violate the erase-before-
//! program discipline, and wear only accumulates.

use proptest::prelude::*;

use nand_flash::{
    BlockId, CellMode, FlashConfig, FlashDevice, FlashGeometry, PageAddr, WearConfig,
};

#[derive(Debug, Clone, Copy)]
enum DevOp {
    Program { block: u32, slot: u32, slc: bool },
    Read { block: u32, slot: u32 },
    Erase { block: u32 },
    Probe { block: u32, page: u32 },
}

fn op_strategy(blocks: u32, spb: u32) -> impl Strategy<Value = DevOp> {
    let ppb = spb / 2;
    prop_oneof![
        4 => (0..blocks, 0..spb, any::<bool>())
            .prop_map(|(block, slot, slc)| DevOp::Program { block, slot, slc }),
        3 => (0..blocks, 0..spb).prop_map(|(block, slot)| DevOp::Read { block, slot }),
        1 => (0..blocks).prop_map(|block| DevOp::Erase { block }),
        1 => (0..blocks, 0..ppb).prop_map(|(block, page)| DevOp::Probe { block, page }),
    ]
}

fn device() -> FlashDevice {
    FlashDevice::new(FlashConfig {
        geometry: FlashGeometry {
            blocks: 4,
            pages_per_block: 3,
            ..FlashGeometry::default()
        },
        wear: WearConfig::default().accelerated(1e5),
        ..FlashConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The device accepts any op sequence without panicking, and its
    /// observable state stays consistent with a shadow model of which
    /// slots hold data.
    #[test]
    fn device_state_machine_is_sound(
        ops in prop::collection::vec(op_strategy(4, 6), 1..250),
    ) {
        let mut dev = device();
        // Shadow model: Some(mode) per programmed slot.
        let mut shadow = [[None::<CellMode>; 6]; 4];
        for op in ops {
            match op {
                DevOp::Program { block, slot, slc } => {
                    let addr = PageAddr::new(BlockId(block), slot);
                    let mode = if slc { CellMode::Slc } else { CellMode::Mlc };
                    let result = dev.program_page(addr, mode, None);
                    if result.is_ok() {
                        prop_assert!(shadow[block as usize][slot as usize].is_none(),
                            "programming over data must fail");
                        shadow[block as usize][slot as usize] = Some(mode);
                    }
                }
                DevOp::Read { block, slot } => {
                    let addr = PageAddr::new(BlockId(block), slot);
                    let result = dev.read_page(addr);
                    match shadow[block as usize][slot as usize] {
                        Some(mode) => {
                            let out = result.expect("programmed slot must read");
                            prop_assert_eq!(out.mode, mode);
                        }
                        None => prop_assert!(result.is_err(), "unwritten slot must not read"),
                    }
                }
                DevOp::Erase { block } => {
                    let before = dev.erase_count(BlockId(block));
                    let out = dev.erase_block(BlockId(block)).unwrap();
                    prop_assert_eq!(out.erase_count, before + 1);
                    for s in &mut shadow[block as usize] {
                        *s = None;
                    }
                }
                DevOp::Probe { block, page } => {
                    let addr = PageAddr::new(BlockId(block), page * 2);
                    let (slc, mlc) = dev.probe_page_health(addr);
                    prop_assert!(slc <= mlc, "SLC failures are a subset of MLC failures");
                }
            }
        }
        // Device agrees with the shadow on programmed state everywhere.
        for b in 0..4u32 {
            for s in 0..6u32 {
                let addr = PageAddr::new(BlockId(b), s);
                prop_assert_eq!(
                    dev.is_programmed(addr),
                    shadow[b as usize][s as usize].is_some()
                );
            }
        }
    }

    /// Erase counts equal the number of successful erases, and device
    /// stats count every accepted operation exactly once.
    #[test]
    fn stats_count_exactly_the_accepted_ops(
        ops in prop::collection::vec(op_strategy(4, 6), 1..150),
    ) {
        let mut dev = device();
        let (mut programs, mut reads, mut erases) = (0u64, 0u64, 0u64);
        for op in ops {
            match op {
                DevOp::Program { block, slot, slc } => {
                    let mode = if slc { CellMode::Slc } else { CellMode::Mlc };
                    if dev
                        .program_page(PageAddr::new(BlockId(block), slot), mode, None)
                        .is_ok()
                    {
                        programs += 1;
                    }
                }
                DevOp::Read { block, slot } => {
                    if dev.read_page(PageAddr::new(BlockId(block), slot)).is_ok() {
                        reads += 1;
                    }
                }
                DevOp::Erase { block } => {
                    dev.erase_block(BlockId(block)).unwrap();
                    erases += 1;
                }
                DevOp::Probe { .. } => {}
            }
        }
        let s = dev.stats();
        prop_assert_eq!(s.programs, programs);
        prop_assert_eq!(s.reads, reads);
        prop_assert_eq!(s.erases, erases);
        prop_assert!(s.busy_us > 0.0 || programs + reads + erases == 0);
    }

    /// Wear is monotone: probing after more erases never reports fewer
    /// permanent failures.
    #[test]
    fn wear_is_monotone_in_erase_count(extra_erases in 1u32..200) {
        let mut dev = FlashDevice::new(FlashConfig {
            geometry: FlashGeometry {
                blocks: 1,
                pages_per_block: 1,
                ..FlashGeometry::default()
            },
            wear: WearConfig::default().accelerated(3e6),
            ..FlashConfig::default()
        });
        let addr = PageAddr::new(BlockId(0), 0);
        let mut last = (0u32, 0u32);
        for _ in 0..extra_erases {
            dev.erase_block(BlockId(0)).unwrap();
            let now = dev.probe_page_health(addr);
            prop_assert!(now.0 >= last.0 && now.1 >= last.1);
            last = now;
        }
    }
}
