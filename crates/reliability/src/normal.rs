//! Standard normal distribution math: CDF, quantile, and Poisson tails.
//!
//! Implemented from scratch (no external stats crates): the CDF via a
//! high-accuracy `erfc` rational approximation and the quantile via
//! Acklam's inverse-normal algorithm refined with one Halley step.

use std::f64::consts::SQRT_2;

/// Complementary error function, accurate to better than 1e-12 relative
/// over the useful range. Uses the Maclaurin series of `erf` for small
/// arguments and the classical continued fraction for the tail.
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    if x < 1.5 {
        1.0 - erf_series(x)
    } else {
        (-x * x).exp() * cf_erfc_scaled(x)
    }
}

/// Scaled complementary error function: `erfc(x)·exp(x²)` via the
/// Laplace continued fraction
/// `√π·erfc(x)·exp(x²) = 1/(x + (1/2)/(x + 1/(x + (3/2)/(x + ...))))`,
/// evaluated bottom-up. Accurate for `x ≥ 1.5` at the depth used.
fn cf_erfc_scaled(x: f64) -> f64 {
    let depth = 80;
    let mut f = 0.0;
    for k in (1..=depth).rev() {
        f = (k as f64 / 2.0) / (x + f);
    }
    (1.0 / (x + f)) / std::f64::consts::PI.sqrt()
}

/// erf via its Maclaurin series (rapid convergence for |x| ≲ 1.5).
fn erf_series(x: f64) -> f64 {
    let mut term = x;
    let mut sum = x;
    let x2 = x * x;
    for n in 1..60 {
        term *= -x2 / n as f64;
        let add = term / (2 * n + 1) as f64;
        sum += add;
        if add.abs() < 1e-17 * sum.abs() {
            break;
        }
    }
    sum * 2.0 / std::f64::consts::PI.sqrt()
}

/// Standard normal cumulative distribution function Φ(z).
///
/// # Examples
///
/// ```
/// use flash_reliability::normal::phi;
/// assert!((phi(0.0) - 0.5).abs() < 1e-12);
/// assert!((phi(1.959963984540054) - 0.975).abs() < 1e-9);
/// ```
pub fn phi(z: f64) -> f64 {
    0.5 * erfc(-z / SQRT_2)
}

/// Inverse standard normal CDF (the quantile function Φ⁻¹).
///
/// Uses Acklam's rational approximation refined with one Halley step,
/// giving ~1e-13 accuracy across (0, 1).
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)`.
pub fn phi_inv(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "phi_inv requires 0 < p < 1, got {p}");
    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley refinement step using the true CDF.
    let e = phi(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Standard normal probability density function.
pub fn pdf(z: f64) -> f64 {
    (-z * z / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Upper tail of a Poisson distribution: `P(X > k)` for `X ~ Poisson(λ)`.
///
/// Used as the page-unrecoverability probability when `N·p` cell failures
/// are expected and the ECC corrects up to `k` of them. Computed by
/// summing the lower tail in stable log space for small λ, and via a
/// normal approximation with continuity correction for large λ.
pub fn poisson_upper_tail(lambda: f64, k: usize) -> f64 {
    if lambda <= 0.0 {
        return 0.0;
    }
    if lambda < 700.0 {
        // Direct summation of P(X <= k).
        let mut term = (-lambda).exp(); // P(X=0)
        let mut cdf = term;
        for i in 1..=k {
            term *= lambda / i as f64;
            cdf += term;
            if term < 1e-320 {
                break;
            }
        }
        (1.0 - cdf).max(0.0)
    } else {
        // Normal approximation.
        let z = (k as f64 + 0.5 - lambda) / lambda.sqrt();
        1.0 - phi(z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phi_known_values() {
        // Classic z-table anchors.
        let cases = [
            (0.0, 0.5),
            (1.0, 0.8413447460685429),
            (-1.0, 0.15865525393145707),
            (2.0, 0.9772498680518208),
            (-3.0, 0.0013498980316300933),
            (-3.719016485455709, 1e-4),
        ];
        for (z, p) in cases {
            let got = phi(z);
            assert!((got - p).abs() < 2e-9, "phi({z}) = {got}, expected {p}");
        }
    }

    #[test]
    fn phi_inv_round_trips() {
        for &p in &[1e-9, 1e-6, 1e-4, 0.01, 0.3, 0.5, 0.7, 0.99, 1.0 - 1e-6] {
            let z = phi_inv(p);
            assert!((phi(z) - p).abs() < 1e-9 * p.max(1e-3), "p={p} z={z}");
        }
    }

    #[test]
    fn phi_inv_symmetry() {
        for &p in &[0.01, 0.1, 0.25, 0.4] {
            assert!((phi_inv(p) + phi_inv(1.0 - p)).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "requires 0 < p < 1")]
    fn phi_inv_rejects_zero() {
        phi_inv(0.0);
    }

    #[test]
    fn erfc_basic_identities() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-12);
        for &x in &[0.1, 0.5, 1.0, 2.0, 3.0] {
            assert!((erfc(x) + erfc(-x) - 2.0).abs() < 1e-10, "x={x}");
        }
        // erfc(1) = 0.15729920705028513...
        assert!((erfc(1.0) - 0.157299207050285).abs() < 1e-9);
    }

    #[test]
    fn poisson_tail_matches_exact_small_cases() {
        // lambda=1, k=0: P(X>0) = 1 - e^-1
        assert!((poisson_upper_tail(1.0, 0) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        // lambda=2, k=2: 1 - e^-2 (1 + 2 + 2)
        let expect = 1.0 - (-2.0f64).exp() * 5.0;
        assert!((poisson_upper_tail(2.0, 2) - expect).abs() < 1e-12);
        // Zero lambda never fails.
        assert_eq!(poisson_upper_tail(0.0, 3), 0.0);
    }

    #[test]
    fn poisson_tail_monotonic() {
        // Tail decreases with k, increases with lambda.
        let mut prev = 1.0;
        for k in 0..20 {
            let p = poisson_upper_tail(3.0, k);
            assert!(p < prev);
            prev = p;
        }
        let mut prev = 0.0;
        for i in 1..50 {
            let p = poisson_upper_tail(i as f64 * 0.5, 5);
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    fn pdf_integrates_to_cdf_increment() {
        // Midpoint-rule check of d(phi) ≈ pdf over a small interval.
        let a = 0.7;
        let h = 1e-5;
        let numeric = (phi(a + h) - phi(a - h)) / (2.0 * h);
        assert!((numeric - pdf(a)).abs() < 1e-7);
    }
}
