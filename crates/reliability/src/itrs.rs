//! The 2007 ITRS roadmap constants reproduced in the paper's Table 1,
//! plus endurance specifications per cell density.

/// Memory technology generations covered by Table 1.
pub const ROADMAP_YEARS: [u32; 5] = [2007, 2009, 2011, 2013, 2015];

/// One row set of the ITRS 2007 roadmap (Table 1) for a given year.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ItrsEntry {
    /// Technology year.
    pub year: u32,
    /// NAND SLC cell density, µm²/bit.
    pub nand_slc_um2_per_bit: f64,
    /// NAND MLC cell density, µm²/bit.
    pub nand_mlc_um2_per_bit: f64,
    /// DRAM cell density, µm²/bit.
    pub dram_um2_per_bit: f64,
    /// SLC write/erase endurance, cycles.
    pub slc_we_cycles: f64,
    /// MLC write/erase endurance, cycles.
    pub mlc_we_cycles: f64,
    /// Data retention, years (lower bound of the quoted range).
    pub retention_years: f64,
}

/// The full Table 1 as published.
pub const ITRS_2007: [ItrsEntry; 5] = [
    ItrsEntry {
        year: 2007,
        nand_slc_um2_per_bit: 0.0130,
        nand_mlc_um2_per_bit: 0.0065,
        dram_um2_per_bit: 0.0324,
        slc_we_cycles: 1e5,
        mlc_we_cycles: 1e4,
        retention_years: 10.0,
    },
    ItrsEntry {
        year: 2009,
        nand_slc_um2_per_bit: 0.0081,
        nand_mlc_um2_per_bit: 0.0041,
        dram_um2_per_bit: 0.0153,
        slc_we_cycles: 1e5,
        mlc_we_cycles: 1e4,
        retention_years: 10.0,
    },
    ItrsEntry {
        year: 2011,
        nand_slc_um2_per_bit: 0.0052,
        nand_mlc_um2_per_bit: 0.0013,
        dram_um2_per_bit: 0.0096,
        slc_we_cycles: 1e6,
        mlc_we_cycles: 1e4,
        retention_years: 10.0,
    },
    ItrsEntry {
        year: 2013,
        nand_slc_um2_per_bit: 0.0031,
        nand_mlc_um2_per_bit: 0.0008,
        dram_um2_per_bit: 0.0061,
        slc_we_cycles: 1e6,
        mlc_we_cycles: 1e4,
        retention_years: 20.0,
    },
    ItrsEntry {
        year: 2015,
        nand_slc_um2_per_bit: 0.0021,
        nand_mlc_um2_per_bit: 0.0005,
        dram_um2_per_bit: 0.0038,
        slc_we_cycles: 1e6,
        mlc_we_cycles: 1e4,
        retention_years: 20.0,
    },
];

/// Looks up the roadmap entry for a given year.
pub fn entry_for_year(year: u32) -> Option<&'static ItrsEntry> {
    ITRS_2007.iter().find(|e| e.year == year)
}

/// Nominal write/erase endurance per cell mode (2007 generation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnduranceSpec {
    /// SLC endurance in W/E cycles.
    pub slc_cycles: f64,
    /// MLC endurance in W/E cycles.
    pub mlc_cycles: f64,
}

impl Default for EnduranceSpec {
    fn default() -> Self {
        EnduranceSpec {
            slc_cycles: 1e5,
            mlc_cycles: 1e4,
        }
    }
}

impl EnduranceSpec {
    /// Ratio of SLC to MLC endurance (10× for the 2007 generation).
    pub fn slc_advantage(&self) -> f64 {
        self.slc_cycles / self.mlc_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_generations_in_order() {
        assert_eq!(ITRS_2007.len(), 5);
        for w in ITRS_2007.windows(2) {
            assert!(w[0].year < w[1].year);
        }
        assert_eq!(ITRS_2007.map(|e| e.year), ROADMAP_YEARS);
    }

    #[test]
    fn density_improves_every_generation() {
        for w in ITRS_2007.windows(2) {
            assert!(w[1].nand_slc_um2_per_bit < w[0].nand_slc_um2_per_bit);
            assert!(w[1].nand_mlc_um2_per_bit < w[0].nand_mlc_um2_per_bit);
            assert!(w[1].dram_um2_per_bit < w[0].dram_um2_per_bit);
        }
    }

    #[test]
    fn nand_is_denser_than_dram_and_widening() {
        // §2.1: "reasonable to expect NAND Flash to be as much as 8x denser
        // than DRAM by 2015" (MLC).
        let e2007 = entry_for_year(2007).unwrap();
        let e2015 = entry_for_year(2015).unwrap();
        assert!(e2007.dram_um2_per_bit / e2007.nand_mlc_um2_per_bit >= 4.0);
        assert!(e2015.dram_um2_per_bit / e2015.nand_mlc_um2_per_bit >= 7.0);
    }

    #[test]
    fn slc_mlc_endurance_gap() {
        let spec = EnduranceSpec::default();
        assert_eq!(spec.slc_advantage(), 10.0);
        for e in &ITRS_2007 {
            assert!(e.slc_we_cycles >= 10.0 * e.mlc_we_cycles);
        }
    }

    #[test]
    fn lookup_misses_return_none() {
        assert!(entry_for_year(2008).is_none());
        assert!(entry_for_year(2015).is_some());
    }
}
