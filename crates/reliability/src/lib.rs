//! Flash cell wear-out and lifetime modelling.
//!
//! Implements the reliability analysis of *Improving NAND Flash Based
//! Disk Caches* (ISCA 2008, §4.1.3):
//!
//! * [`normal`] — standard-normal CDF/quantile and Poisson tails,
//!   implemented from scratch;
//! * [`lifetime`] — the exponential cell-lifetime model
//!   `W = 10^(C1·tox)` with normally distributed oxide thickness, plus
//!   the page-level "max tolerable W/E cycles vs ECC strength" analysis
//!   behind Figure 6(b), including spatial (page-to-page) variation;
//! * [`itrs`] — the 2007 ITRS roadmap constants of Table 1.
//!
//! # Examples
//!
//! Reproduce a point of Figure 6(b):
//!
//! ```
//! use flash_reliability::lifetime::PageLifetimeModel;
//!
//! let page = PageLifetimeModel::default();
//! let w_weak = page.max_tolerable_cycles(1);
//! let w_strong = page.max_tolerable_cycles(8);
//! // Stronger ECC tolerates materially more write/erase cycles.
//! assert!(w_strong > 3.0 * w_weak);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod itrs;
pub mod lifetime;
pub mod normal;

pub use itrs::{EnduranceSpec, ItrsEntry, ITRS_2007};
pub use lifetime::{CellLifetimeModel, PageLifetimeModel, CELLS_PER_PAGE};
