//! Flash wear-out lifetime models (paper §4.1.3, Figure 6(b)).
//!
//! The paper models cell lifetime as an exponential function of oxide
//! thickness, `W = 10^(C1·tox)`, with `tox` normally distributed. Under
//! that model `log10(lifetime)` is itself normal, so we parameterize
//! directly in *decades*: a cell's lifetime in W/E cycles is
//! `10^(m + s·Z)` with `Z ~ N(0,1)`.
//!
//! Two calibrations are provided:
//!
//! * [`CellLifetimeModel::strict_paper`] — the literal §4.1.3 reading:
//!   `P(cell fails by 100,000 cycles) = 1e-4` and oxide thickness with
//!   3σ = 15% of mean, giving `m = 6.142`, `s = 0.307`.
//! * [`CellLifetimeModel::figure_calibrated`] (the default) — anchored on
//!   the published page-level curve instead: ≈1e5 cycles at t=0 rising to
//!   ≈8e6 at t=10 for zero spatial variation, giving `m = 10.21`,
//!   `s = 0.917`. The paper's full derivation lives in a thesis we cannot
//!   consult; this calibration recovers the published curve exactly where
//!   the paper reports it.

use crate::normal::{phi, phi_inv, poisson_upper_tail};

/// Number of bit cells protected together in one 2KB flash page
/// (2048 data + 64 spare bytes).
pub const CELLS_PER_PAGE: usize = (2048 + 64) * 8;

/// Lognormal (base-10) lifetime distribution of a single flash cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellLifetimeModel {
    /// Median of `log10(lifetime in W/E cycles)`.
    pub log10_median: f64,
    /// Standard deviation of `log10(lifetime)`, in decades.
    pub sigma_decades: f64,
}

/// z-score of the 1e-4 quantile, used by both calibrations.
const Z_1E4: f64 = -3.719016485455709;

impl CellLifetimeModel {
    /// Literal §4.1.3 calibration: `P(fail by 1e5) = 1e-4`, oxide
    /// thickness 3σ = 15% of mean (`σ/µ = 0.05`).
    pub fn strict_paper() -> Self {
        // 5 = m·(1 + 0.05·z) with z = z(1e-4)  =>  m = 5 / (1 + 0.05·z).
        let m = 5.0 / (1.0 + 0.05 * Z_1E4);
        CellLifetimeModel {
            log10_median: m,
            sigma_decades: 0.05 * m,
        }
    }

    /// Calibration matched to Figure 6(b): the paper states "first point
    /// of failure to occur at 100,000 W/E cycles" for a 2KB page, and its
    /// published curve rises to ≈8e6 cycles at t = 10. Solving the
    /// two-point system under the page-level 1e-4 reliability target
    /// (`W(t=0) = 1e5`, `W(t=10) = 8e6` in [`PageLifetimeModel`]) gives
    /// `m = 10.214`, `s = 0.9165` decades. The implied relative oxide
    /// spread is ~9% of mean rather than the strict 5%; the paper's full
    /// derivation is in a thesis (reference \[15\]) we cannot consult, so we anchor on
    /// the published curve itself.
    pub fn figure_calibrated() -> Self {
        CellLifetimeModel {
            log10_median: 10.214,
            sigma_decades: 0.9165,
        }
    }

    /// Probability that a cell has failed by `cycles` W/E cycles.
    ///
    /// Returns 0 for non-positive cycle counts.
    pub fn failure_prob(&self, cycles: f64) -> f64 {
        if cycles <= 0.0 {
            return 0.0;
        }
        phi((cycles.log10() - self.log10_median) / self.sigma_decades)
    }

    /// Inverse of [`Self::failure_prob`]: the W/E cycle count by which a
    /// fraction `p` of cells has failed.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not strictly inside `(0, 1)`.
    pub fn quantile(&self, p: f64) -> f64 {
        10f64.powf(self.log10_median + self.sigma_decades * phi_inv(p))
    }

    /// Returns this model with every lifetime divided by `factor`.
    ///
    /// Used for accelerated-wear simulation (Figure 12): normalized
    /// lifetime ratios are invariant under uniform scaling, so dividing
    /// endurance by e.g. 1000 makes whole-device-lifetime simulations
    /// tractable without changing any reported ratio.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    #[must_use]
    pub fn accelerated(self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "acceleration factor must be positive, got {factor}"
        );
        CellLifetimeModel {
            log10_median: self.log10_median - factor.log10(),
            ..self
        }
    }

    /// The MLC variant of this (SLC) model: Table 1 gives MLC endurance
    /// as 10× worse than SLC (1e4 vs 1e5 W/E cycles).
    #[must_use]
    pub fn mlc(self) -> Self {
        self.accelerated(10.0)
    }
}

impl Default for CellLifetimeModel {
    fn default() -> Self {
        CellLifetimeModel::figure_calibrated()
    }
}

/// Page-level lifetime under a given ECC strength, including page-to-page
/// spatial variation (Figure 6(b)).
///
/// A page is *unrecoverable* once more cells have failed than the ECC can
/// correct. Spatial correlation is modelled as a per-page lifetime offset
/// `δ` (in decades) drawn from `N(0, spatial_sigma_decades)`: a bad page
/// has *all* its cells shifted toward early failure, which is exactly the
/// clustering effect the paper describes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageLifetimeModel {
    /// Per-cell lifetime distribution.
    pub cell: CellLifetimeModel,
    /// Cells protected together by one ECC codeword.
    pub cells_per_page: usize,
    /// Spatial (page-to-page) standard deviation, in decades of lifetime.
    pub spatial_sigma_decades: f64,
    /// Maximum acceptable probability that a page is unrecoverable —
    /// the reliability target used to define "max tolerable W/E cycles".
    pub target_unrecoverable_prob: f64,
}

impl PageLifetimeModel {
    /// A page model over `cell` with no spatial variation and the paper's
    /// 1e-4 reliability target.
    pub fn new(cell: CellLifetimeModel) -> Self {
        PageLifetimeModel {
            cell,
            cells_per_page: CELLS_PER_PAGE,
            spatial_sigma_decades: 0.0,
            target_unrecoverable_prob: 1e-4,
        }
    }

    /// Sets the spatial standard deviation as a *fraction of the mean*
    /// oxide thickness, matching Figure 6(b)'s "stdev = x% of mean"
    /// series. Internally converted to decades via `C1·(frac·µ)
    /// = frac·log10_median`.
    #[must_use]
    pub fn with_spatial_stdev_frac(mut self, frac: f64) -> Self {
        assert!(frac >= 0.0, "spatial stdev fraction must be non-negative");
        self.spatial_sigma_decades = frac * self.cell.log10_median;
        self
    }

    /// Probability that a page protected by strength-`t` ECC is
    /// unrecoverable after `cycles` W/E cycles.
    ///
    /// Computed as `E_δ[ P(Poisson(N·p(cycles·10^δ)) > t) ]`, integrating
    /// the per-page offset `δ` over ±5σ with a trapezoid rule (the Poisson
    /// approximation to the binomial is excellent at these cell-failure
    /// probabilities).
    pub fn unrecoverable_prob(&self, t: usize, cycles: f64) -> f64 {
        if cycles <= 0.0 {
            return 0.0;
        }
        let n = self.cells_per_page as f64;
        let page_fail = |delta: f64| {
            // Shifting the page's lifetime by +delta decades is the same
            // as evaluating the cell CDF at cycles·10^(-delta).
            let eff = cycles.log10() - delta;
            let p = phi((eff - self.cell.log10_median) / self.cell.sigma_decades);
            poisson_upper_tail(n * p, t)
        };
        if self.spatial_sigma_decades == 0.0 {
            return page_fail(0.0);
        }
        // Trapezoid over the normal weight; 401 points over ±5σ.
        let sigma = self.spatial_sigma_decades;
        let steps = 400;
        let lo = -5.0 * sigma;
        let hi = 5.0 * sigma;
        let h = (hi - lo) / steps as f64;
        let mut acc = 0.0;
        for i in 0..=steps {
            let d = lo + h * i as f64;
            let w = crate::normal::pdf(d / sigma) / sigma;
            let v = w * page_fail(d);
            acc += if i == 0 || i == steps { v / 2.0 } else { v };
        }
        (acc * h).min(1.0)
    }

    /// Maximum W/E cycles at which a strength-`t` page still meets the
    /// reliability target — the y-axis of Figure 6(b).
    ///
    /// Found by bisection over `log10(cycles)`; returns 0 if even a
    /// single cycle violates the target (possible with extreme spatial
    /// variation).
    pub fn max_tolerable_cycles(&self, t: usize) -> f64 {
        let target = self.target_unrecoverable_prob;
        let mut lo = -2.0f64; // log10 cycles
        let mut hi = self.cell.log10_median + 6.0;
        if self.unrecoverable_prob(t, 10f64.powf(lo)) > target {
            return 0.0;
        }
        debug_assert!(self.unrecoverable_prob(t, 10f64.powf(hi)) > target);
        for _ in 0..60 {
            let mid = (lo + hi) / 2.0;
            if self.unrecoverable_prob(t, 10f64.powf(mid)) > target {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        10f64.powf(lo)
    }
}

impl Default for PageLifetimeModel {
    fn default() -> Self {
        PageLifetimeModel::new(CellLifetimeModel::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_calibration_hits_anchor() {
        let m = CellLifetimeModel::strict_paper();
        assert!((m.failure_prob(1e5) - 1e-4).abs() < 1e-6);
        // sigma is 5% of the median decades (3σ = 15%).
        assert!((m.sigma_decades / m.log10_median - 0.05).abs() < 1e-12);
    }

    #[test]
    fn figure_calibration_hits_page_anchor() {
        // "First point of failure at 100,000 W/E cycles" for a 2KB page:
        // the t=0 max-tolerable-cycles of the page model lands near 1e5.
        let page = PageLifetimeModel::new(CellLifetimeModel::figure_calibrated());
        let w0 = page.max_tolerable_cycles(0);
        assert!((0.5e5..=2.0e5).contains(&w0), "W(0) = {w0:.3e}");
    }

    #[test]
    fn failure_prob_is_monotonic_cdf() {
        let m = CellLifetimeModel::default();
        assert_eq!(m.failure_prob(0.0), 0.0);
        assert_eq!(m.failure_prob(-5.0), 0.0);
        let mut prev = 0.0;
        for i in 1..60 {
            let w = 10f64.powf(i as f64 / 5.0);
            let p = m.failure_prob(w);
            assert!(p >= prev);
            prev = p;
        }
        assert!((m.failure_prob(1e30) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_inverts_failure_prob() {
        let m = CellLifetimeModel::default();
        for &p in &[1e-6, 1e-4, 0.01, 0.5, 0.99] {
            let w = m.quantile(p);
            assert!((m.failure_prob(w) - p).abs() / p < 1e-6, "p={p}");
        }
    }

    #[test]
    fn acceleration_scales_lifetimes_uniformly() {
        let m = CellLifetimeModel::default();
        let fast = m.accelerated(1000.0);
        for &p in &[1e-4, 0.1, 0.5] {
            let ratio = m.quantile(p) / fast.quantile(p);
            assert!((ratio - 1000.0).abs() < 1e-6, "p={p} ratio={ratio}");
        }
    }

    #[test]
    fn mlc_is_ten_times_worse() {
        let slc = CellLifetimeModel::default();
        let mlc = slc.mlc();
        assert!((slc.quantile(1e-4) / mlc.quantile(1e-4) - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn acceleration_rejects_zero() {
        let _ = CellLifetimeModel::default().accelerated(0.0);
    }

    #[test]
    fn figure_6b_zero_stdev_range() {
        // The published curve: ~1e5 at t=0 rising to ~8e6 at t=10.
        let page = PageLifetimeModel::default();
        let w0 = page.max_tolerable_cycles(0);
        let w10 = page.max_tolerable_cycles(10);
        assert!(
            (0.4e5..=2.5e5).contains(&w0),
            "t=0 gives {w0:.3e}, expected ~1e5"
        );
        assert!(
            (4e6..=1.6e7).contains(&w10),
            "t=10 gives {w10:.3e}, expected ~8e6"
        );
    }

    #[test]
    fn lifetime_increases_with_strength_with_diminishing_returns() {
        let page = PageLifetimeModel::default();
        let w: Vec<f64> = (0..=10).map(|t| page.max_tolerable_cycles(t)).collect();
        for i in 1..w.len() {
            assert!(w[i] > w[i - 1], "t={i}");
        }
        // Diminishing returns in ratio terms.
        let early_gain = w[2] / w[1];
        let late_gain = w[10] / w[9];
        assert!(late_gain < early_gain);
    }

    #[test]
    fn spatial_variation_lowers_the_curve() {
        let base = PageLifetimeModel::default();
        let s05 = base.with_spatial_stdev_frac(0.05);
        let s20 = base.with_spatial_stdev_frac(0.20);
        for t in [1usize, 5, 10] {
            let w0 = base.max_tolerable_cycles(t);
            let w5 = s05.max_tolerable_cycles(t);
            let w20 = s20.max_tolerable_cycles(t);
            assert!(w5 < w0, "t={t}: stdev 5% should lower lifetime");
            assert!(w20 < w5, "t={t}: stdev 20% should be lower still");
        }
    }

    #[test]
    fn unrecoverable_prob_monotonic_in_cycles_and_strength() {
        let page = PageLifetimeModel::default().with_spatial_stdev_frac(0.05);
        let mut prev = 0.0;
        for i in 0..20 {
            let w = 10f64.powf(3.0 + i as f64 * 0.25);
            let p = page.unrecoverable_prob(3, w);
            assert!(p >= prev - 1e-12);
            prev = p;
        }
        let w = 2e5;
        let mut prev = 1.0;
        for t in 0..8 {
            let p = page.unrecoverable_prob(t, w);
            assert!(p <= prev + 1e-12, "t={t}");
            prev = p;
        }
    }
}
