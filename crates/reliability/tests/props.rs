//! Property-based tests of the reliability math.

use proptest::prelude::*;

use flash_reliability::lifetime::{CellLifetimeModel, PageLifetimeModel};
use flash_reliability::normal::{phi, phi_inv, poisson_upper_tail};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Φ and Φ⁻¹ are inverse bijections over the practical range.
    /// (Beyond |z| ≈ 6.5 the upper tail 1-p loses float precision, so
    /// the roundtrip is inherently limited there.)
    #[test]
    fn phi_roundtrip(z in -6.5f64..6.5) {
        let p = phi(z);
        prop_assume!(p > 1e-15 && p < 1.0 - 1e-15);
        let z2 = phi_inv(p);
        prop_assert!((z - z2).abs() < 1e-5, "z={} -> p={} -> z'={}", z, p, z2);
    }

    /// Φ is a monotone CDF.
    #[test]
    fn phi_monotone(a in -10.0f64..10.0, b in -10.0f64..10.0) {
        if a < b {
            prop_assert!(phi(a) <= phi(b));
        }
        prop_assert!((0.0..=1.0).contains(&phi(a)));
    }

    /// Poisson tails are proper probabilities, monotone in both
    /// arguments.
    #[test]
    fn poisson_tail_properties(lambda in 0.0f64..500.0, k in 0usize..60) {
        let t = poisson_upper_tail(lambda, k);
        prop_assert!((0.0..=1.0).contains(&t));
        prop_assert!(poisson_upper_tail(lambda, k + 1) <= t + 1e-12);
        prop_assert!(poisson_upper_tail(lambda + 1.0, k) + 1e-12 >= t);
    }

    /// Cell failure probability is a monotone CDF in cycles, and the
    /// quantile inverts it.
    #[test]
    fn cell_model_cdf(cycles in 1.0f64..1e9, p in 1e-6f64..0.999) {
        let m = CellLifetimeModel::default();
        prop_assert!(m.failure_prob(cycles) <= m.failure_prob(cycles * 2.0) + 1e-15);
        let w = m.quantile(p);
        prop_assert!((m.failure_prob(w) - p).abs() < 1e-6);
    }

    /// Stronger ECC never reduces the max tolerable cycles, and spatial
    /// variation never increases them.
    #[test]
    fn page_lifetime_monotonicity(t in 0usize..8, stdev in 0.0f64..0.15) {
        let base = PageLifetimeModel::default();
        let varied = base.with_spatial_stdev_frac(stdev);
        prop_assert!(base.max_tolerable_cycles(t + 1) >= base.max_tolerable_cycles(t));
        prop_assert!(varied.max_tolerable_cycles(t) <= base.max_tolerable_cycles(t) * 1.0001);
    }

    /// Unrecoverability is monotone in wear for any strength/variation.
    #[test]
    fn unrecoverable_monotone(
        t in 0usize..10,
        stdev in 0.0f64..0.1,
        log_w in 2.0f64..7.0,
    ) {
        let page = PageLifetimeModel::default().with_spatial_stdev_frac(stdev);
        let w = 10f64.powf(log_w);
        let p1 = page.unrecoverable_prob(t, w);
        let p2 = page.unrecoverable_prob(t, w * 1.5);
        prop_assert!(p2 >= p1 - 1e-9);
        prop_assert!((0.0..=1.0).contains(&p1));
    }
}
