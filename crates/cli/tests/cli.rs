//! End-to-end tests of the CLI binary: every subcommand runs, prints the
//! expected surfaces, and fails cleanly on bad input.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let exe = env!("CARGO_BIN_EXE_flashcache");
    let out = Command::new(exe).args(args).output().expect("spawn CLI");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_prints_usage() {
    let (ok, stdout, _) = run(&["help"]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("simulate"));
    let (ok2, stdout2, _) = run(&[]);
    assert!(ok2);
    assert!(stdout2.contains("USAGE"));
}

#[test]
fn simulate_synthetic_workload() {
    let (ok, stdout, stderr) = run(&[
        "simulate",
        "--workload",
        "exp2",
        "--scale",
        "512",
        "--requests",
        "5000",
        "--dram-mb",
        "1",
        "--flash-mb",
        "4",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("requests          : 5000"), "{stdout}");
    assert!(stdout.contains("served by"));
    assert!(stdout.contains("flash cache:"));
    assert!(stdout.contains("p99"));
}

#[test]
fn simulate_dram_only_baseline() {
    let (ok, stdout, _) = run(&[
        "simulate",
        "--workload",
        "alpha2",
        "--scale",
        "1024",
        "--requests",
        "2000",
        "--dram-mb",
        "1",
        "--flash-mb",
        "0",
    ]);
    assert!(ok);
    assert!(
        !stdout.contains("flash cache:"),
        "no flash section expected"
    );
}

#[test]
fn sweep_prints_each_size() {
    let (ok, stdout, stderr) = run(&[
        "sweep",
        "--workload",
        "dbt2",
        "--scale",
        "1024",
        "--requests",
        "8000",
        "--sizes-mb",
        "2,4",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("2MB"), "{stdout}");
    assert!(stdout.contains("4MB"));
    assert!(stdout.contains("unified miss"));
}

#[test]
fn lifetime_compares_policies() {
    let (ok, stdout, stderr) = run(&[
        "lifetime",
        "--workload",
        "alpha2",
        "--scale",
        "4096",
        "--acceleration",
        "1e6",
        "--budget",
        "3000000",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("bch1"));
    assert!(stdout.contains("programmable"));
    assert!(
        stdout.contains("x)"),
        "improvement factors printed: {stdout}"
    );
}

#[test]
fn export_then_simulate_roundtrip() {
    let dir = std::env::temp_dir().join("flashcache_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.spc");
    let path_str = path.to_str().unwrap();
    let (ok, _, stderr) = run(&[
        "export",
        "--workload",
        "financial2",
        "--scale",
        "1024",
        "--requests",
        "3000",
        "--out",
        path_str,
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stderr.contains("wrote 3000 records"));
    // The exported trace replays through simulate --spc.
    let (ok2, stdout, stderr2) = run(&[
        "simulate",
        "--spc",
        path_str,
        "--requests",
        "3000",
        "--dram-mb",
        "1",
        "--flash-mb",
        "4",
    ]);
    assert!(ok2, "stderr: {stderr2}");
    assert!(stdout.contains("replayed 3000 SPC records"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn bad_input_fails_with_nonzero_status() {
    let (ok, _, stderr) = run(&["simulate", "--workload", "nosuch"]);
    assert!(!ok);
    assert!(stderr.contains("unknown workload"));
    let (ok2, _, stderr2) = run(&["frobnicate"]);
    assert!(!ok2);
    assert!(stderr2.contains("unknown command"));
    let (ok3, _, stderr3) = run(&["simulate", "--dram-mb"]);
    assert!(!ok3);
    assert!(stderr3.contains("needs a value"));
}
