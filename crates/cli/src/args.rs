//! Hand-rolled argument parsing for the `flashcache` CLI — kept
//! dependency-free per the workspace policy.

use std::collections::HashMap;
use std::fmt;

/// A parsed command line: a subcommand plus `--key value` / `--flag`
/// options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: String,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

/// Argument error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

/// Option keys that take a value; everything else double-dashed is a
/// boolean flag.
const VALUE_KEYS: &[&str] = &[
    "workload",
    "spc",
    "dram-mb",
    "flash-mb",
    "requests",
    "seed",
    "scale",
    "out",
    "sizes-mb",
    "controller",
    "acceleration",
    "budget",
    "write-fraction",
    "json-metrics",
    "trace-events",
    "shards",
    "batch",
    "workers",
    "channels",
    "planes",
    "writeback-us",
    "queue-depth",
    "sched-backend",
    "admission",
    "longevity-buckets",
];

impl Args {
    /// Parses an iterator of arguments (excluding the program name).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] for a missing subcommand, an option missing
    /// its value, or an unknown `--option`.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Args, ArgError> {
        let mut out = Args::default();
        let mut iter = args.into_iter();
        let mut positional = Vec::new();
        while let Some(a) = iter.next() {
            if let Some(key) = a.strip_prefix("--") {
                if VALUE_KEYS.contains(&key) {
                    let value = iter
                        .next()
                        .ok_or_else(|| ArgError(format!("--{key} needs a value")))?;
                    out.options.insert(key.to_string(), value);
                } else if ["unified", "paper", "help"].contains(&key) {
                    out.flags.push(key.to_string());
                } else {
                    return Err(ArgError(format!("unknown option --{key}")));
                }
            } else {
                positional.push(a);
            }
        }
        out.command = positional.first().cloned().unwrap_or_default();
        if positional.len() > 1 {
            return Err(ArgError(format!("unexpected argument `{}`", positional[1])));
        }
        Ok(out)
    }

    /// A string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// A boolean flag.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// A numeric option with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] if the value does not parse.
    pub fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{key}: cannot parse `{v}`"))),
        }
    }

    /// A comma-separated numeric list with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] if any element does not parse.
    pub fn num_list(&self, key: &str, default: &[u64]) -> Result<Vec<u64>, ArgError> {
        match self.get(key) {
            None => Ok(default.to_vec()),
            Some(v) => v
                .split(',')
                .map(|s| {
                    s.trim()
                        .parse()
                        .map_err(|_| ArgError(format!("--{key}: cannot parse `{s}`")))
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, ArgError> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_command_options_and_flags() {
        let a = parse("simulate --workload dbt2 --dram-mb 64 --unified").unwrap();
        assert_eq!(a.command, "simulate");
        assert_eq!(a.get("workload"), Some("dbt2"));
        assert_eq!(a.num("dram-mb", 0u64).unwrap(), 64);
        assert!(a.flag("unified"));
        assert!(!a.flag("paper"));
    }

    #[test]
    fn defaults_apply_when_absent() {
        let a = parse("sweep").unwrap();
        assert_eq!(a.num("seed", 7u64).unwrap(), 7);
        assert_eq!(a.num_list("sizes-mb", &[1, 2]).unwrap(), vec![1, 2]);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse("simulate --dram-mb").is_err());
        assert!(parse("simulate --no-such-option 3").is_err());
        assert!(parse("simulate extra-positional").is_err());
        let a = parse("simulate --dram-mb notanumber").unwrap();
        assert!(a.num("dram-mb", 0u64).is_err());
    }

    #[test]
    fn num_list_parses_csv() {
        let b = parse("sweep --sizes-mb 16,32,64").unwrap();
        assert_eq!(b.num_list("sizes-mb", &[]).unwrap(), vec![16, 32, 64]);
        let bad = parse("sweep --sizes-mb 16,x").unwrap();
        assert!(bad.num_list("sizes-mb", &[]).is_err());
    }
}
