//! Subcommand implementations for the `flashcache` CLI.

use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::sync::Arc;

use flashcache::nand::FlashConfig;
use flashcache::nand::FlashGeometry;
use flashcache::nand::{ChannelConfig, SchedBackend, TimingBackend};
use flashcache::obs;
use flashcache::sim::hierarchy::{Hierarchy, HierarchyConfig};
use flashcache::trace::spc::{write_spc, SpcReader};
use flashcache::EngineConfig;
use flashcache::ObsSink;
use flashcache::{
    AdmissionPolicyConfig, CacheOp, ControllerPolicy, DiskRequest, FlashCache, FlashCacheConfig,
    SplitPolicy, WorkloadSpec,
};

/// Top-level usage text.
pub const USAGE: &str = "\
flashcache — NAND flash disk cache simulator (ISCA 2008 reproduction)

USAGE:
  flashcache <command> [options]

COMMANDS:
  simulate   replay a workload (or SPC trace) through DRAM + flash + HDD
  sweep      miss rate vs flash size, unified vs split (Figure 4 style)
  lifetime   accesses-to-failure per controller policy (Figure 12 style)
  export     generate a synthetic workload as an SPC trace file
  help       show this text

COMMON OPTIONS:
  --workload NAME     uniform|alpha1|alpha2|alpha3|exp1|exp2|dbt2|
                      specweb99|websearch1|websearch2|financial1|financial2
  --scale N           divide the workload footprint by N (default 64)
  --seed S            RNG seed (default 352321544)
  --requests N        requests to replay (default 100000)

SIMULATE:
  --spc FILE          replay an SPC trace instead of a synthetic workload
  --dram-mb N         primary disk cache size (default 16)
  --flash-mb N        flash cache size; 0 = DRAM-only baseline (default 64)
  --unified           use one shared region instead of the 90/10 split
  --shards N          hash-partition the flash cache into N shards (default 1)
  --batch N           submit requests in concurrent batches of N (default 1)
  --workers N         worker threads for the shard runtime (default: host
                      parallelism, capped by the shard count)

ADMISSION (simulate, sweep, lifetime):
  --admission P       flash admission policy: all (default, paper-faithful)
                      | reref (admit after a re-read in a decay window)
                      | writecap (token-bucket write cap + dirty coalescing)
  --longevity-buckets N  route writes into N longevity-bucketed open
                      blocks in the write region (default 1 = off)

DEVICE PARALLELISM (simulate, sweep, lifetime — any of these flags
switches flash timing to the event-driven backend):
  --channels N        independent NAND channels (default 1)
  --planes N          planes per channel (default 1)
  --queue-depth N     outstanding ops admitted per channel (default 4)
  --writeback-us T    write-buffer flush delay in µs; rewrites within the
                      window coalesce (default 0 = write-through)
  --sched-backend B   event-queue implementation: wheel (default, timer
                      wheel) or heap (the differential oracle)

SWEEP:
  --sizes-mb A,B,C    flash sizes to evaluate (default 8,16,32,64)

LIFETIME:
  --acceleration X    wear acceleration factor (default 2e5)
  --budget N          access budget per run (default 30000000)
  --controller NAME   only run one: programmable|bch1|ecc-only|density-only

EXPORT:
  --out FILE          destination path (default: stdout)
  --write-fraction F  override the workload's write fraction

OBSERVABILITY (simulate, sweep, lifetime):
  --json-metrics FILE write a deterministic JSON telemetry snapshot
                      (metrics + trace events) to FILE on completion
  --trace-events N    retain the newest N trace events (default 256)
";

fn workload_by_name(name: &str) -> Result<WorkloadSpec, String> {
    WorkloadSpec::all()
        .into_iter()
        .find(|w| w.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown workload `{name}` (see `flashcache help`)"))
}

fn load_workload(args: &super::Args) -> Result<WorkloadSpec, String> {
    let name = args.get("workload").unwrap_or("dbt2");
    let scale: u64 = args.num("scale", 64).map_err(|e| e.to_string())?;
    let spec = workload_by_name(name)?;
    Ok(if scale > 1 { spec.scaled(scale) } else { spec })
}

/// Reads the device-parallelism options. Returns `None` when no channel
/// flag was given (keep the closed-form oracle backend); otherwise the
/// built [`ChannelConfig`] that switches the device to the event-driven
/// backend.
fn channel_config(args: &super::Args) -> Result<Option<ChannelConfig>, String> {
    let given = [
        "channels",
        "planes",
        "writeback-us",
        "queue-depth",
        "sched-backend",
    ]
    .iter()
    .any(|k| args.get(k).is_some());
    if !given {
        return Ok(None);
    }
    let channels: u32 = args.num("channels", 1u32).map_err(|e| e.to_string())?;
    let planes: u32 = args.num("planes", 1u32).map_err(|e| e.to_string())?;
    let queue_depth: u32 = args.num("queue-depth", 4u32).map_err(|e| e.to_string())?;
    let writeback_us: f64 = args
        .num("writeback-us", 0.0f64)
        .map_err(|e| e.to_string())?;
    let sched_backend = match args.get("sched-backend").unwrap_or("wheel") {
        "heap" => SchedBackend::Heap,
        "wheel" => SchedBackend::Wheel,
        other => {
            return Err(format!(
                "--sched-backend must be heap or wheel, got {other}"
            ))
        }
    };
    ChannelConfig::builder()
        .channels(channels)
        .planes(planes)
        .queue_depth(queue_depth)
        .writeback_us(writeback_us)
        .sched_backend(sched_backend)
        .build()
        .map(Some)
        .map_err(|e| e.to_string())
}

/// Reads the `--admission` / `--longevity-buckets` options shared by
/// `simulate`, `sweep`, and `lifetime`. The `reref` and `writecap`
/// presets carry windows sized for the standard 100k-request replays;
/// fine-grained knobs stay library-level (`FlashCacheConfig::builder`).
fn admission_config(args: &super::Args) -> Result<(AdmissionPolicyConfig, u32), String> {
    let admission = match args.get("admission").unwrap_or("all") {
        "all" => AdmissionPolicyConfig::AdmitAll,
        "reref" => AdmissionPolicyConfig::ReReference {
            k: 1,
            window: 65_536,
        },
        "writecap" => AdmissionPolicyConfig::WriteCap {
            pages_per_window: 2048,
            window: 4096,
            coalesce: true,
        },
        other => {
            return Err(format!(
                "--admission must be all, reref or writecap, got {other}"
            ))
        }
    };
    let buckets: u32 = args
        .num("longevity-buckets", 1u32)
        .map_err(|e| e.to_string())?;
    Ok((admission, buckets))
}

fn flash_config(
    flash_mb: u64,
    unified: bool,
    channel: Option<ChannelConfig>,
    admission: AdmissionPolicyConfig,
    longevity_buckets: u32,
) -> Result<FlashCacheConfig, String> {
    let mut flash = FlashConfig {
        geometry: FlashGeometry::for_mlc_capacity(flash_mb << 20),
        ..FlashConfig::default()
    };
    if let Some(channel) = channel {
        flash.channel = channel;
        flash.timing_backend = TimingBackend::EventDriven;
    }
    let builder = FlashCacheConfig::builder()
        .flash(flash)
        .admission(admission)
        .longevity_buckets(longevity_buckets);
    let builder = if unified {
        builder.unified()
    } else {
        builder.split(SplitPolicy::default())
    };
    builder.build().map_err(|e| format!("{flash_mb}MB: {e}"))
}

/// When `--json-metrics` was given, installs the process-global
/// [`ObsSink`] (so every cache built afterwards attaches to it) and
/// returns the destination path plus the sink.
///
/// Must run *before* any [`FlashCache`] or [`Hierarchy`] is built.
fn install_obs(args: &super::Args) -> Result<Option<(String, Arc<ObsSink>)>, String> {
    let Some(path) = args.get("json-metrics") else {
        return Ok(None);
    };
    let capacity: usize = args
        .num("trace-events", 256usize)
        .map_err(|e| e.to_string())?;
    let sink = Arc::new(ObsSink::with_capacity(capacity));
    obs::install_global_sink(Arc::clone(&sink));
    Ok(Some((path.to_string(), sink)))
}

/// Writes a snapshot JSON document to `path`.
fn write_obs(path: &str, json: &str) -> Result<(), String> {
    std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
    eprintln!("wrote metrics snapshot to {path}");
    Ok(())
}

/// `flashcache simulate`.
pub fn simulate(args: &super::Args) -> Result<(), String> {
    let obs_out = install_obs(args)?;
    let seed: u64 = args
        .num("seed", 0x1507_2008u64)
        .map_err(|e| e.to_string())?;
    let requests: u64 = args
        .num("requests", 100_000u64)
        .map_err(|e| e.to_string())?;
    let dram_mb: u64 = args.num("dram-mb", 16u64).map_err(|e| e.to_string())?;
    let flash_mb: u64 = args.num("flash-mb", 64u64).map_err(|e| e.to_string())?;
    let shards: usize = args.num("shards", 1usize).map_err(|e| e.to_string())?;
    let batch: usize = args.num("batch", 1usize).map_err(|e| e.to_string())?;
    let workers: usize = args.num("workers", 0usize).map_err(|e| e.to_string())?;
    let channel = channel_config(args)?;
    let (admission, longevity_buckets) = admission_config(args)?;
    let flash = if flash_mb > 0 {
        Some(flash_config(
            flash_mb,
            args.flag("unified"),
            channel,
            admission,
            longevity_buckets,
        )?)
    } else {
        None
    };
    let engine_cfg = EngineConfig {
        workers: (workers > 0).then_some(workers),
        ..EngineConfig::default()
    };
    let mut hierarchy = Hierarchy::try_new(HierarchyConfig {
        dram_bytes: dram_mb << 20,
        flash,
        flash_shards: shards,
        engine: engine_cfg,
        ..HierarchyConfig::default()
    })
    .map_err(|e| e.to_string())?;

    let batch = batch.max(1);
    let mut pending: Vec<DiskRequest> = Vec::with_capacity(batch);
    let replayed = if let Some(path) = args.get("spc") {
        let file = File::open(path).map_err(|e| format!("{path}: {e}"))?;
        let mut n = 0u64;
        for record in SpcReader::new(BufReader::new(file)) {
            let record = record.map_err(|e| e.to_string())?;
            pending.push(record.to_request());
            if pending.len() >= batch {
                hierarchy.submit_batch(&pending);
                pending.clear();
            }
            n += 1;
            if n >= requests {
                break;
            }
        }
        hierarchy.submit_batch(&pending);
        pending.clear();
        println!("replayed {n} SPC records from {path}");
        n
    } else {
        let workload = load_workload(args)?;
        let mut generator = workload.generator(seed);
        for _ in 0..requests {
            pending.push(generator.next_request());
            if pending.len() >= batch {
                hierarchy.submit_batch(&pending);
                pending.clear();
            }
        }
        hierarchy.submit_batch(&pending);
        pending.clear();
        println!(
            "replayed {requests} requests of {} ({}MB footprint, seed {seed})",
            workload.name,
            workload.footprint_bytes() >> 20
        );
        requests
    };
    hierarchy.drain();
    let report = hierarchy.report();
    println!();
    println!("requests          : {}", report.requests);
    println!("pages touched     : {}", report.pages);
    println!(
        "latency           : mean {:.1} us | p50 {:.1} us | p99 {:.1} us | max {:.1} us",
        report.avg_latency_us(),
        report.latency.percentile_us(0.50),
        report.latency.percentile_us(0.99),
        report.latency.max_us(),
    );
    println!(
        "served by         : DRAM {:.1}% | flash {:.1}% | disk {:.1}%",
        pct(report.dram_hit_pages, report.pages),
        pct(report.flash_hit_pages, report.pages),
        pct(report.disk_read_pages, report.pages),
    );
    println!(
        "disk traffic      : {} page reads, {} page writes ({:.2}s busy)",
        report.disk_read_pages, report.disk_write_pages, report.disk.busy_s
    );
    if let Some(engine) = hierarchy.flash_engine() {
        println!();
        if engine.shard_count() > 1 {
            println!("flash cache ({} shards, merged):", engine.shard_count());
            println!("{}", engine.stats());
            println!("usable slots {}", engine.usable_slots());
            for (i, shard) in engine.shards().iter().enumerate() {
                println!(
                    "  shard {i}: {} reads | SLC {:.1}% | erase spread {:?}",
                    shard.stats().reads,
                    shard.slc_fraction() * 100.0,
                    shard.erase_spread(),
                );
            }
        } else {
            let flash = &engine.shards()[0];
            println!("flash cache:");
            println!("{}", flash.stats());
            println!(
                "SLC fraction {:.1}% | usable slots {} | erase spread {:?}",
                flash.slc_fraction() * 100.0,
                flash.usable_slots(),
                flash.erase_spread(),
            );
        }
    }
    if let Some((path, _sink)) = &obs_out {
        write_obs(path, &hierarchy.obs_snapshot().to_json())?;
    }
    let _ = replayed;
    Ok(())
}

/// `flashcache sweep`.
pub fn sweep(args: &super::Args) -> Result<(), String> {
    let obs_out = install_obs(args)?;
    let workload = load_workload(args)?;
    let seed: u64 = args
        .num("seed", 0x1507_2008u64)
        .map_err(|e| e.to_string())?;
    let requests: u64 = args
        .num("requests", 100_000u64)
        .map_err(|e| e.to_string())?;
    let sizes = args
        .num_list("sizes-mb", &[8, 16, 32, 64])
        .map_err(|e| e.to_string())?;
    println!(
        "workload {} ({}MB) | {} page accesses per point | seed {seed}\n",
        workload.name,
        workload.footprint_bytes() >> 20,
        requests
    );
    println!(
        "{:>10}{:>16}{:>16}{:>14}{:>14}",
        "flash", "unified miss", "split miss", "unified GC", "split GC"
    );
    let channel = channel_config(args)?;
    let (admission, longevity_buckets) = admission_config(args)?;
    for &mb in &sizes {
        let mut row = Vec::new();
        for unified in [true, false] {
            let mut cache = FlashCache::new(flash_config(
                mb,
                unified,
                channel,
                admission,
                longevity_buckets,
            )?)
            .map_err(|e| format!("{mb}MB: {e}"))?;
            let mut generator = workload.generator(seed);
            let mut done = 0u64;
            while done < requests {
                let req = generator.next_request();
                for page in req.pages() {
                    if req.is_write() {
                        cache.op(CacheOp::write(page));
                    } else {
                        cache.op(CacheOp::read(page));
                    }
                    done += 1;
                    if done >= requests {
                        break;
                    }
                }
            }
            row.push((cache.stats().read_miss_rate(), cache.stats().gc_overhead()));
        }
        println!(
            "{:>8}MB{:>15.1}%{:>15.1}%{:>13.1}%{:>13.1}%",
            mb,
            row[0].0 * 100.0,
            row[1].0 * 100.0,
            row[0].1 * 100.0,
            row[1].1 * 100.0
        );
    }
    if let Some((path, sink)) = &obs_out {
        write_obs(path, &sink.snapshot().to_json())?;
    }
    Ok(())
}

/// `flashcache lifetime`.
pub fn lifetime(args: &super::Args) -> Result<(), String> {
    let obs_out = install_obs(args)?;
    let workload = load_workload(args)?;
    let seed: u64 = args
        .num("seed", 0x1507_2008u64)
        .map_err(|e| e.to_string())?;
    let acceleration: f64 = args.num("acceleration", 2e5).map_err(|e| e.to_string())?;
    let budget: u64 = args
        .num("budget", 30_000_000u64)
        .map_err(|e| e.to_string())?;
    let policies: Vec<(&str, ControllerPolicy)> = match args.get("controller") {
        None => vec![
            ("bch1", ControllerPolicy::FixedEcc { strength: 1 }),
            ("ecc-only", ControllerPolicy::EccOnly),
            ("density-only", ControllerPolicy::DensityOnly),
            ("programmable", ControllerPolicy::Programmable),
        ],
        Some(name) => vec![(
            name,
            match name {
                "programmable" => ControllerPolicy::Programmable,
                "bch1" => ControllerPolicy::FixedEcc { strength: 1 },
                "ecc-only" => ControllerPolicy::EccOnly,
                "density-only" => ControllerPolicy::DensityOnly,
                other => return Err(format!("unknown controller `{other}`")),
            },
        )],
    };
    println!(
        "workload {} | flash = half working set | acceleration {acceleration:.0}x | seed {seed}\n",
        workload.name
    );
    println!(
        "{:<16}{:>16}{:>12}{:>12}",
        "controller", "accesses", "erases", "retired"
    );
    let mut baseline = None;
    let (admission, longevity_buckets) = admission_config(args)?;
    for (name, policy) in policies {
        let flash_bytes =
            (workload.footprint_pages * flashcache::trace::PAGE_BYTES / 2).max(8 * 256 * 1024);
        let mut config = flash_config(
            flash_bytes >> 20,
            false,
            channel_config(args)?,
            admission,
            longevity_buckets,
        )?;
        config.flash.geometry = FlashGeometry::for_mlc_capacity(flash_bytes);
        config.controller = policy;
        if let ControllerPolicy::FixedEcc { strength } = policy {
            config.initial_ecc = strength;
            config.max_ecc = strength;
        }
        config.flash.wear = nand_flash::WearConfig::default().accelerated(acceleration);
        let mut cache = FlashCache::new(config).map_err(|e| e.to_string())?;
        let mut generator = workload.generator(seed);
        let mut accesses = 0u64;
        'run: while !cache.is_dead() && accesses < budget {
            let req = generator.next_request();
            for page in req.pages() {
                if req.is_write() {
                    cache.op(CacheOp::write(page));
                } else {
                    cache.op(CacheOp::read(page));
                }
                accesses += 1;
                if cache.is_dead() || accesses >= budget {
                    break 'run;
                }
            }
        }
        let s = cache.stats();
        let gain = baseline
            .map(|b: u64| format!("  ({:.1}x)", accesses as f64 / b.max(1) as f64))
            .unwrap_or_default();
        println!(
            "{:<16}{:>16}{:>12}{:>12}{}{}",
            name,
            accesses,
            s.erases,
            s.retired_blocks,
            gain,
            if cache.is_dead() {
                ""
            } else {
                "  [budget hit]"
            }
        );
        baseline.get_or_insert(accesses);
    }
    if let Some((path, sink)) = &obs_out {
        write_obs(path, &sink.snapshot().to_json())?;
    }
    Ok(())
}

/// `flashcache export`.
pub fn export(args: &super::Args) -> Result<(), String> {
    let mut workload = load_workload(args)?;
    if let Some(wf) = args.get("write-fraction") {
        workload.write_fraction = wf
            .parse()
            .map_err(|_| format!("--write-fraction: cannot parse `{wf}`"))?;
    }
    let seed: u64 = args
        .num("seed", 0x1507_2008u64)
        .map_err(|e| e.to_string())?;
    let requests: u64 = args
        .num("requests", 100_000u64)
        .map_err(|e| e.to_string())?;
    let mut generator = workload.generator(seed);
    let reqs: Vec<DiskRequest> = (0..requests).map(|_| generator.next_request()).collect();
    let written = match args.get("out") {
        Some(path) => {
            let file = File::create(path).map_err(|e| format!("{path}: {e}"))?;
            let n = write_spc(BufWriter::new(file), reqs).map_err(|e| e.to_string())?;
            eprintln!("wrote {n} records to {path}");
            n
        }
        None => {
            let stdout = std::io::stdout();
            let mut lock = BufWriter::new(stdout.lock());
            let n = write_spc(&mut lock, reqs).map_err(|e| e.to_string())?;
            lock.flush().map_err(|e| e.to_string())?;
            n
        }
    };
    let _ = written;
    Ok(())
}

fn pct(n: u64, d: u64) -> f64 {
    if d == 0 {
        0.0
    } else {
        100.0 * n as f64 / d as f64
    }
}
