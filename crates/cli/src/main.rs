//! `flashcache` — command-line front end for the NAND flash disk cache
//! reproduction (ISCA 2008).
//!
//! ```text
//! flashcache simulate  --workload dbt2 --scale 64 --dram-mb 8 --flash-mb 32
//! flashcache simulate  --spc trace.spc --dram-mb 256 --flash-mb 1024
//! flashcache sweep     --workload specweb99 --scale 64 --sizes-mb 8,16,32
//! flashcache lifetime  --workload alpha2 --scale 1024 --acceleration 2e5
//! flashcache export    --workload financial1 --scale 256 --requests 10000 --out t.spc
//! ```

mod args;
mod commands;

use args::Args;

fn main() {
    let parsed = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", commands::USAGE);
            std::process::exit(2);
        }
    };
    if parsed.flag("help") || parsed.command.is_empty() || parsed.command == "help" {
        println!("{}", commands::USAGE);
        return;
    }
    let result = match parsed.command.as_str() {
        "simulate" => commands::simulate(&parsed),
        "sweep" => commands::sweep(&parsed),
        "lifetime" => commands::lifetime(&parsed),
        "export" => commands::export(&parsed),
        other => Err(format!("unknown command `{other}`\n\n{}", commands::USAGE)),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
