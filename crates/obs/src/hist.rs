//! Bounded-memory latency statistics: a log-scaled histogram good for
//! percentile queries over microsecond-to-seconds request latencies.
//!
//! Promoted here from `flashcache-sim` so every layer of the stack can
//! record latency distributions; the simulator re-exports it for
//! compatibility.

/// Log-scaled latency histogram covering 0.01µs to ~100s.
///
/// Buckets are spaced at 5% multiplicative steps, bounding percentile
/// error to one step while using a few hundred counters regardless of
/// sample count.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum_us: f64,
    min_us: f64,
    max_us: f64,
}

const MIN_US: f64 = 0.01;
const GROWTH: f64 = 1.05;
const NUM_BUCKETS: usize = 512;

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum_us: 0.0,
            min_us: f64::INFINITY,
            max_us: 0.0,
        }
    }

    fn bucket_of(us: f64) -> usize {
        if us <= MIN_US {
            return 0;
        }
        let idx = (us / MIN_US).ln() / GROWTH.ln();
        (idx as usize).min(NUM_BUCKETS - 1)
    }

    /// Lower bound of a bucket, µs.
    fn bucket_floor(idx: usize) -> f64 {
        MIN_US * GROWTH.powi(idx as i32)
    }

    /// Records one latency sample in microseconds.
    ///
    /// Non-finite or negative samples are ignored.
    pub fn record(&mut self, us: f64) {
        if !us.is_finite() || us < 0.0 {
            return;
        }
        self.buckets[Self::bucket_of(us)] += 1;
        self.count += 1;
        self.sum_us += us;
        self.min_us = self.min_us.min(us);
        self.max_us = self.max_us.max(us);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean latency, µs (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us / self.count as f64
        }
    }

    /// Minimum sample, µs (0 when empty).
    pub fn min_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min_us
        }
    }

    /// Maximum sample, µs.
    pub fn max_us(&self) -> f64 {
        self.max_us
    }

    /// The `p`-quantile (`0 <= p <= 1`), µs.
    ///
    /// Edge behaviour: an empty histogram returns 0 for every `p`;
    /// `p = 0` returns the minimum recorded sample; `p = 1` returns the
    /// maximum recorded sample exactly. Interior quantiles are bucket
    /// midpoints, clamped to the observed maximum.
    ///
    /// # Panics
    ///
    /// Panics if `p` is NaN or outside `[0, 1]`.
    pub fn percentile_us(&self, p: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&p),
            "percentile must be in [0,1], got {p}"
        );
        if self.count == 0 {
            return 0.0;
        }
        if p == 0.0 {
            return self.min_us;
        }
        if p == 1.0 {
            return self.max_us;
        }
        let target = (p * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return (Self::bucket_floor(i) * (1.0 + GROWTH) / 2.0).min(self.max_us);
            }
        }
        self.max_us
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_us += other.sum_us;
        self.min_us = self.min_us.min(other.min_us);
        self.max_us = self.max_us.max(other.max_us);
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.is_empty());
        assert_eq!(h.mean_us(), 0.0);
        assert_eq!(h.min_us(), 0.0);
        // Every percentile of an empty histogram is 0, including the
        // boundary values.
        assert_eq!(h.percentile_us(0.0), 0.0);
        assert_eq!(h.percentile_us(0.99), 0.0);
        assert_eq!(h.percentile_us(1.0), 0.0);
    }

    #[test]
    fn boundary_percentiles_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in [3.0, 8.0, 21.0, 100.0] {
            h.record(v);
        }
        assert_eq!(h.percentile_us(0.0), 3.0, "p0 is the exact minimum");
        assert_eq!(h.percentile_us(1.0), 100.0, "p100 is the exact maximum");
        assert!(h.percentile_us(0.5) <= h.percentile_us(1.0));
    }

    #[test]
    fn interior_percentiles_never_exceed_max() {
        let mut h = LatencyHistogram::new();
        for _ in 0..10 {
            h.record(4200.0);
        }
        for &p in &[0.01, 0.5, 0.9, 0.999] {
            assert!(h.percentile_us(p) <= 4200.0, "p={p}");
        }
    }

    #[test]
    fn percentiles_bracket_known_distribution() {
        let mut h = LatencyHistogram::new();
        // 90 fast DRAM-ish hits, 10 slow disk-ish misses.
        for _ in 0..90 {
            h.record(0.5);
        }
        for _ in 0..10 {
            h.record(4200.0);
        }
        let p50 = h.percentile_us(0.50);
        let p99 = h.percentile_us(0.99);
        assert!((0.4..0.7).contains(&p50), "p50={p50}");
        assert!((3500.0..5000.0).contains(&p99), "p99={p99}");
        assert!((h.mean_us() - (90.0 * 0.5 + 10.0 * 4200.0) / 100.0).abs() < 1.0);
        assert_eq!(h.max_us(), 4200.0);
        assert_eq!(h.min_us(), 0.5);
    }

    #[test]
    fn percentile_error_is_bounded_by_bucket_width() {
        let mut h = LatencyHistogram::new();
        for i in 1..=10_000 {
            h.record(i as f64);
        }
        for &p in &[0.1, 0.5, 0.9, 0.999] {
            let exact = p * 10_000.0;
            let est = h.percentile_us(p);
            assert!(
                (est / exact - 1.0).abs() < 0.06,
                "p={p}: est {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut c = LatencyHistogram::new();
        for i in 0..1_000 {
            let v = (i % 37) as f64 + 0.1;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            c.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert!((a.percentile_us(0.9) - c.percentile_us(0.9)).abs() < 1e-9);
        assert!((a.mean_us() - c.mean_us()).abs() < 1e-9);
        assert_eq!(a.min_us(), c.min_us());
    }

    #[test]
    fn merge_into_empty_preserves_min() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        b.record(7.0);
        a.merge(&b);
        assert_eq!(a.min_us(), 7.0);
        assert_eq!(a.percentile_us(0.0), 7.0);
    }

    #[test]
    fn ignores_garbage_samples() {
        let mut h = LatencyHistogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(-1.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    #[should_panic(expected = "percentile must be in")]
    fn rejects_percentile_above_one() {
        LatencyHistogram::new().percentile_us(1.5);
    }

    #[test]
    #[should_panic(expected = "percentile must be in")]
    fn rejects_negative_percentile() {
        LatencyHistogram::new().percentile_us(-0.1);
    }

    #[test]
    #[should_panic(expected = "percentile must be in")]
    fn rejects_nan_percentile() {
        LatencyHistogram::new().percentile_us(f64::NAN);
    }
}
