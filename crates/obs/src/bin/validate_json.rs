//! Tiny JSON validator for CI: parses each file argument with the
//! `flash-obs` parser and exits non-zero on the first failure.
//!
//! ```text
//! cargo run -p flash-obs --bin validate_json -- snapshot.json [...]
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: validate_json <file.json>...");
        return ExitCode::from(2);
    }
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match flash_obs::json::parse(&text) {
            Ok(doc) => {
                let metrics = doc
                    .get("metrics")
                    .and_then(|m| m.as_object())
                    .map(|p| p.len())
                    .unwrap_or(0);
                println!("{path}: valid JSON ({metrics} metrics)");
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
