//! # flash-obs — workspace-wide observability layer
//!
//! A lightweight, dependency-free telemetry substrate for the flash
//! disk cache stack:
//!
//! * [`registry`] — named monotonic counters, gauges and latency
//!   histograms, exported at snapshot time from each component's cheap
//!   plain-struct stats;
//! * [`event`] — structured trace events ([`Event::GcCompaction`],
//!   [`Event::EccStrengthBump`], [`Event::DensityMlcToSlc`],
//!   [`Event::WearMigration`], [`Event::BlockRetired`],
//!   [`Event::BlockErased`], …) in a bounded [`EventRing`];
//! * [`hist`] — the log-scaled [`LatencyHistogram`] (promoted from
//!   `flashcache-sim`);
//! * [`json`] — a serde-free JSON encoder/parser with deterministic
//!   output;
//! * [`sink`] — the attachable [`ObsSink`] plus a process-global
//!   default, à la `tracing`'s global subscriber;
//! * [`snapshot`] — the versioned [`Snapshot`] document tying it all
//!   together.
//!
//! ## Determinism rule
//!
//! Instrumentation never reads wall-clock time. Events are keyed to
//! the emitting component's logical tick, metric names serialize in
//! sorted order, and floats format via Rust's shortest-roundtrip
//! `Display` — so two runs of the same seeded simulation produce
//! byte-identical snapshots.
//!
//! ## Cost rule
//!
//! With no sink attached, instrumentation is a branch on an `Option`
//! on the *rare* paths only (GC, reconfiguration, erase); per-access
//! fast paths are untouched. Counter export happens only at snapshot
//! or drop time.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod event;
pub mod hist;
pub mod json;
pub mod registry;
pub mod sink;
pub mod snapshot;

pub use event::{Event, EventKind, EventRing};
pub use hist::LatencyHistogram;
pub use json::{JsonError, JsonValue};
pub use registry::{CounterId, Metric, Registry};
pub use sink::{global_sink, install_global_sink, ObsSink};
pub use snapshot::Snapshot;

/// The storage tier that serviced (or must service) a request.
///
/// Shared by `flashcache-core::AccessOutcome` and
/// `flashcache-sim::RequestOutcome` so callers see one vocabulary for
/// "where did this request land" across the whole stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ServiceTier {
    /// Served from the DRAM primary disk cache.
    Dram,
    /// Served from the flash secondary disk cache.
    Flash,
    /// Had to reach the hard disk.
    #[default]
    Disk,
}

impl ServiceTier {
    /// The snake_case name used in metrics and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            ServiceTier::Dram => "dram",
            ServiceTier::Flash => "flash",
            ServiceTier::Disk => "disk",
        }
    }
}

impl std::fmt::Display for ServiceTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_names_and_default() {
        assert_eq!(ServiceTier::default(), ServiceTier::Disk);
        assert_eq!(ServiceTier::Dram.to_string(), "dram");
        assert_eq!(ServiceTier::Flash.name(), "flash");
    }
}
