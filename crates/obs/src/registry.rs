//! A lightweight, dependency-free metrics registry: named monotonic
//! counters, gauges, and latency histograms.
//!
//! The registry is a snapshot-time container, not a hot-path
//! abstraction: components keep their own cheap plain-struct counters
//! (e.g. `CacheStats`) and *export* them into a registry when a
//! snapshot is taken. Names are dotted paths (`flash.reads`,
//! `hierarchy.request_latency`). Metrics live in an insertion-ordered
//! arena indexed by a name→slot `BTreeMap`; iteration and
//! serialization walk the map, so snapshot bytes stay deterministic
//! (name-sorted) regardless of registration order.
//!
//! Callers that touch the same counter repeatedly can pre-resolve the
//! name once with [`Registry::handle`] and then use the O(1), string-
//! free [`Registry::add`] — the handle-based half of the replay fast
//! path's export pipeline.

use std::collections::BTreeMap;

use crate::hist::LatencyHistogram;
use crate::json::JsonValue;

/// One named metric.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// A monotonic event count.
    Counter(u64),
    /// A point-in-time measurement.
    Gauge(f64),
    /// A latency distribution.
    Histogram(LatencyHistogram),
}

impl Metric {
    /// The counter value, if this is a counter.
    pub fn as_counter(&self) -> Option<u64> {
        match self {
            Metric::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// The gauge value, if this is a gauge.
    pub fn as_gauge(&self) -> Option<f64> {
        match self {
            Metric::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// The histogram, if this is a histogram.
    pub fn as_histogram(&self) -> Option<&LatencyHistogram> {
        match self {
            Metric::Histogram(h) => Some(h),
            _ => None,
        }
    }

    fn to_json(&self) -> JsonValue {
        match self {
            Metric::Counter(v) => JsonValue::UInt(*v),
            Metric::Gauge(v) => JsonValue::Number(*v),
            Metric::Histogram(h) => JsonValue::Object(vec![
                ("count".to_string(), JsonValue::UInt(h.count())),
                ("mean_us".to_string(), JsonValue::Number(h.mean_us())),
                ("min_us".to_string(), JsonValue::Number(h.min_us())),
                (
                    "p50_us".to_string(),
                    JsonValue::Number(h.percentile_us(0.50)),
                ),
                (
                    "p90_us".to_string(),
                    JsonValue::Number(h.percentile_us(0.90)),
                ),
                (
                    "p99_us".to_string(),
                    JsonValue::Number(h.percentile_us(0.99)),
                ),
                ("max_us".to_string(), JsonValue::Number(h.max_us())),
            ]),
        }
    }
}

/// A pre-resolved counter slot from [`Registry::handle`].
///
/// Handles are only meaningful for the registry that issued them;
/// using one against another registry indexes an unrelated slot (or
/// panics on kind/bounds mismatch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// A named collection of metrics with deterministic iteration order.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    /// Name → arena slot. The map orders iteration; the arena makes
    /// handle-based access an indexed load.
    names: BTreeMap<String, usize>,
    metrics: Vec<Metric>,
}

/// Registries are equal when they hold the same name→metric mapping;
/// arena slot numbers (registration order) are an implementation
/// detail and do not participate.
impl PartialEq for Registry {
    fn eq(&self, other: &Self) -> bool {
        self.names.len() == other.names.len() && self.iter().eq(other.iter())
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Resolves `name` to its arena slot, creating it with `init` if
    /// absent.
    fn slot_or_insert(&mut self, name: &str, init: impl FnOnce() -> Metric) -> usize {
        if let Some(&i) = self.names.get(name) {
            return i;
        }
        let i = self.metrics.len();
        self.metrics.push(init());
        self.names.insert(name.to_string(), i);
        i
    }

    /// Pre-resolves `name` to an O(1) counter handle, creating the
    /// counter at 0 if absent. Resolve once, then count through
    /// [`Registry::add`] without further string hashing or tree walks.
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered as a different kind.
    pub fn handle(&mut self, name: &str) -> CounterId {
        let i = self.slot_or_insert(name, || Metric::Counter(0));
        match self.metrics[i] {
            Metric::Counter(_) => CounterId(i),
            ref other => panic!("metric `{name}` is not a counter: {other:?}"),
        }
    }

    /// Adds `delta` to a counter by pre-resolved handle: one indexed
    /// load, no string work.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this registry's
    /// [`Registry::handle`] (out of bounds or non-counter slot).
    #[inline]
    pub fn add(&mut self, id: CounterId, delta: u64) {
        match &mut self.metrics[id.0] {
            Metric::Counter(v) => *v += delta,
            other => panic!("counter handle resolves to a non-counter: {other:?}"),
        }
    }

    /// Adds `delta` to the named counter (created at 0).
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered as a different kind.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        let i = self.slot_or_insert(name, || Metric::Counter(0));
        match &mut self.metrics[i] {
            Metric::Counter(v) => *v += delta,
            other => panic!("metric `{name}` is not a counter: {other:?}"),
        }
    }

    /// Sets the named gauge (last write wins).
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered as a different kind.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        let i = self.slot_or_insert(name, || Metric::Gauge(value));
        match &mut self.metrics[i] {
            Metric::Gauge(v) => *v = value,
            other => panic!("metric `{name}` is not a gauge: {other:?}"),
        }
    }

    /// Merges a histogram into the named histogram metric.
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered as a different kind.
    pub fn histogram_merge(&mut self, name: &str, h: &LatencyHistogram) {
        let i = self.slot_or_insert(name, || Metric::Histogram(LatencyHistogram::new()));
        match &mut self.metrics[i] {
            Metric::Histogram(existing) => existing.merge(h),
            other => panic!("metric `{name}` is not a histogram: {other:?}"),
        }
    }

    /// Looks up a metric by name.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.names.get(name).map(|&i| &self.metrics[i])
    }

    /// The named counter's value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.get(name).and_then(Metric::as_counter).unwrap_or(0)
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates metrics in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.names
            .iter()
            .map(|(k, &i)| (k.as_str(), &self.metrics[i]))
    }

    /// Merges another registry into this one: counters add, gauges take
    /// the other's value, histograms merge.
    pub fn merge(&mut self, other: &Registry) {
        for (name, metric) in other.iter() {
            match metric {
                Metric::Counter(v) => self.counter_add(name, *v),
                Metric::Gauge(v) => self.gauge_set(name, *v),
                Metric::Histogram(h) => self.histogram_merge(name, h),
            }
        }
    }

    /// Serializes every metric, sorted by name.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(
            self.names
                .iter()
                .map(|(k, &i)| (k.clone(), self.metrics[i].to_json()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut r = Registry::new();
        r.counter_add("flash.reads", 3);
        r.counter_add("flash.reads", 4);
        assert_eq!(r.counter("flash.reads"), 7);
        assert_eq!(r.counter("missing"), 0);
    }

    #[test]
    fn gauges_last_write_wins() {
        let mut r = Registry::new();
        r.gauge_set("cache.occupancy", 0.5);
        r.gauge_set("cache.occupancy", 0.75);
        assert_eq!(r.get("cache.occupancy").unwrap().as_gauge(), Some(0.75));
    }

    #[test]
    fn histograms_merge() {
        let mut h = LatencyHistogram::new();
        h.record(10.0);
        let mut r = Registry::new();
        r.histogram_merge("latency", &h);
        r.histogram_merge("latency", &h);
        assert_eq!(r.get("latency").unwrap().as_histogram().unwrap().count(), 2);
    }

    #[test]
    #[should_panic(expected = "is not a counter")]
    fn kind_conflicts_panic() {
        let mut r = Registry::new();
        r.gauge_set("x", 1.0);
        r.counter_add("x", 1);
    }

    #[test]
    fn merge_combines_registries() {
        let mut a = Registry::new();
        a.counter_add("c", 1);
        a.gauge_set("g", 1.0);
        let mut b = Registry::new();
        b.counter_add("c", 2);
        b.gauge_set("g", 2.0);
        let mut h = LatencyHistogram::new();
        h.record(5.0);
        b.histogram_merge("h", &h);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.get("g").unwrap().as_gauge(), Some(2.0));
        assert_eq!(a.get("h").unwrap().as_histogram().unwrap().count(), 1);
    }

    #[test]
    fn json_is_sorted_by_name() {
        let mut r = Registry::new();
        r.counter_add("b", 1);
        r.counter_add("a", 2);
        assert_eq!(r.to_json().render(), r#"{"a":2,"b":1}"#);
    }

    #[test]
    fn handles_count_without_names() {
        let mut r = Registry::new();
        let reads = r.handle("flash.reads");
        let hits = r.handle("flash.read_hits");
        r.add(reads, 3);
        r.add(hits, 1);
        r.add(reads, 4);
        assert_eq!(r.counter("flash.reads"), 7);
        assert_eq!(r.counter("flash.read_hits"), 1);
        // A handle for an existing name resolves to the same slot.
        let again = r.handle("flash.reads");
        assert_eq!(again, reads);
        r.add(again, 1);
        assert_eq!(r.counter("flash.reads"), 8);
        // Mixed-path updates agree.
        r.counter_add("flash.reads", 2);
        assert_eq!(r.counter("flash.reads"), 10);
    }

    #[test]
    #[should_panic(expected = "is not a counter")]
    fn handle_of_non_counter_panics() {
        let mut r = Registry::new();
        r.gauge_set("g", 1.0);
        let _ = r.handle("g");
    }

    #[test]
    fn equality_ignores_registration_order() {
        let mut a = Registry::new();
        a.counter_add("x", 1);
        a.counter_add("y", 2);
        let mut b = Registry::new();
        b.counter_add("y", 2);
        b.counter_add("x", 1);
        assert_eq!(a, b);
        b.counter_add("x", 1);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "is not a gauge")]
    fn gauge_over_counter_panics() {
        let mut r = Registry::new();
        r.counter_add("x", 1);
        r.gauge_set("x", 1.0);
    }
}
