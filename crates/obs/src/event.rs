//! Structured trace events and the bounded ring buffer that records
//! them.
//!
//! Events describe the *rare, interesting* transitions of the flash
//! cache stack — garbage collection, controller reconfiguration
//! (§5.2's Δtcs vs Δtd decisions), wear migration, block retirement —
//! not the per-access fast path. Every event is keyed to the emitting
//! component's deterministic logical tick (never wall-clock time), so a
//! trace is byte-stable across runs at a fixed seed.

use std::collections::VecDeque;

use crate::json::JsonValue;

/// One structured trace event.
///
/// Block/slot identifiers are raw integers so this crate stays at the
/// bottom of the dependency graph (no `nand-flash` types).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A GC pass compacted a victim block's valid pages (Figure 8).
    GcCompaction {
        /// Logical tick of the emitting cache.
        tick: u64,
        /// Victim block id.
        block: u32,
        /// Valid pages relocated out of the victim.
        moved_pages: u32,
    },
    /// The controller raised a page's BCH strength (§5.2.1).
    EccStrengthBump {
        /// Logical tick of the emitting cache.
        tick: u64,
        /// Block id of the reconfigured page.
        block: u32,
        /// Slot within the block.
        slot: u32,
        /// Strength before the bump.
        old_strength: u8,
        /// Strength after the bump.
        new_strength: u8,
    },
    /// The controller demoted a physical page from MLC to SLC density
    /// in response to errors (§5.2.1).
    DensityMlcToSlc {
        /// Logical tick of the emitting cache.
        tick: u64,
        /// Block id of the reconfigured page.
        block: u32,
        /// Even (lower-half) slot of the physical page.
        slot: u32,
    },
    /// A hot page was promoted into SLC mode (§5.2.2) — counted as a
    /// density reconfiguration in the Figure 11 breakdown.
    HotPromotion {
        /// Logical tick of the emitting cache.
        tick: u64,
        /// Destination block of the promoted copy.
        block: u32,
        /// Destination slot of the promoted copy.
        slot: u32,
    },
    /// Wear-level-aware replacement migrated the newest block's content
    /// into a worn block (§3.6).
    WearMigration {
        /// Logical tick of the emitting cache.
        tick: u64,
        /// The worn (old, LRU) block that absorbed the content.
        worn_block: u32,
        /// The newest block whose content moved.
        newest_block: u32,
    },
    /// A block was erased.
    BlockErased {
        /// Logical tick of the emitting cache.
        tick: u64,
        /// Erased block id.
        block: u32,
        /// The block's total erase count after this erase.
        erase_count: u64,
    },
    /// A block was permanently retired: a physical page can no longer be
    /// protected at any configuration the policy can reach (§5.2).
    BlockRetired {
        /// Logical tick of the emitting cache.
        tick: u64,
        /// Retired block id.
        block: u32,
    },
    /// A read found more raw bit errors than the page's live ECC
    /// strength could correct — the cached copy was lost.
    UncorrectableRead {
        /// Logical tick of the emitting cache.
        tick: u64,
        /// Block id of the lost page.
        block: u32,
        /// Slot within the block.
        slot: u32,
        /// Raw bit errors observed.
        bit_errors: u32,
    },
}

/// Discriminant of an [`Event`], used for per-kind counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// [`Event::GcCompaction`].
    GcCompaction,
    /// [`Event::EccStrengthBump`].
    EccStrengthBump,
    /// [`Event::DensityMlcToSlc`].
    DensityMlcToSlc,
    /// [`Event::HotPromotion`].
    HotPromotion,
    /// [`Event::WearMigration`].
    WearMigration,
    /// [`Event::BlockErased`].
    BlockErased,
    /// [`Event::BlockRetired`].
    BlockRetired,
    /// [`Event::UncorrectableRead`].
    UncorrectableRead,
}

impl EventKind {
    /// Every kind, in stable serialization order.
    pub const ALL: [EventKind; 8] = [
        EventKind::GcCompaction,
        EventKind::EccStrengthBump,
        EventKind::DensityMlcToSlc,
        EventKind::HotPromotion,
        EventKind::WearMigration,
        EventKind::BlockErased,
        EventKind::BlockRetired,
        EventKind::UncorrectableRead,
    ];

    /// The snake_case name used in JSON snapshots.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::GcCompaction => "gc_compaction",
            EventKind::EccStrengthBump => "ecc_strength_bump",
            EventKind::DensityMlcToSlc => "density_mlc_to_slc",
            EventKind::HotPromotion => "hot_promotion",
            EventKind::WearMigration => "wear_migration",
            EventKind::BlockErased => "block_erased",
            EventKind::BlockRetired => "block_retired",
            EventKind::UncorrectableRead => "uncorrectable_read",
        }
    }

    fn index(self) -> usize {
        EventKind::ALL
            .iter()
            .position(|k| *k == self)
            .expect("every kind is listed in ALL")
    }
}

impl Event {
    /// The event's kind.
    pub fn kind(&self) -> EventKind {
        match self {
            Event::GcCompaction { .. } => EventKind::GcCompaction,
            Event::EccStrengthBump { .. } => EventKind::EccStrengthBump,
            Event::DensityMlcToSlc { .. } => EventKind::DensityMlcToSlc,
            Event::HotPromotion { .. } => EventKind::HotPromotion,
            Event::WearMigration { .. } => EventKind::WearMigration,
            Event::BlockErased { .. } => EventKind::BlockErased,
            Event::BlockRetired { .. } => EventKind::BlockRetired,
            Event::UncorrectableRead { .. } => EventKind::UncorrectableRead,
        }
    }

    /// The logical tick the event was emitted at.
    pub fn tick(&self) -> u64 {
        match *self {
            Event::GcCompaction { tick, .. }
            | Event::EccStrengthBump { tick, .. }
            | Event::DensityMlcToSlc { tick, .. }
            | Event::HotPromotion { tick, .. }
            | Event::WearMigration { tick, .. }
            | Event::BlockErased { tick, .. }
            | Event::BlockRetired { tick, .. }
            | Event::UncorrectableRead { tick, .. } => tick,
        }
    }

    /// Serializes the event as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        let mut pairs = vec![
            (
                "kind".to_string(),
                JsonValue::String(self.kind().name().to_string()),
            ),
            ("tick".to_string(), JsonValue::UInt(self.tick())),
        ];
        let mut field = |name: &str, v: u64| pairs.push((name.to_string(), JsonValue::UInt(v)));
        match *self {
            Event::GcCompaction {
                block, moved_pages, ..
            } => {
                field("block", block as u64);
                field("moved_pages", moved_pages as u64);
            }
            Event::EccStrengthBump {
                block,
                slot,
                old_strength,
                new_strength,
                ..
            } => {
                field("block", block as u64);
                field("slot", slot as u64);
                field("old_strength", old_strength as u64);
                field("new_strength", new_strength as u64);
            }
            Event::DensityMlcToSlc { block, slot, .. } => {
                field("block", block as u64);
                field("slot", slot as u64);
            }
            Event::HotPromotion { block, slot, .. } => {
                field("block", block as u64);
                field("slot", slot as u64);
            }
            Event::WearMigration {
                worn_block,
                newest_block,
                ..
            } => {
                field("worn_block", worn_block as u64);
                field("newest_block", newest_block as u64);
            }
            Event::BlockErased {
                block, erase_count, ..
            } => {
                field("block", block as u64);
                field("erase_count", erase_count);
            }
            Event::BlockRetired { block, .. } => {
                field("block", block as u64);
            }
            Event::UncorrectableRead {
                block,
                slot,
                bit_errors,
                ..
            } => {
                field("block", block as u64);
                field("slot", slot as u64);
                field("bit_errors", bit_errors as u64);
            }
        }
        JsonValue::Object(pairs)
    }
}

/// A bounded ring buffer of trace events.
///
/// Per-kind totals are counted for *every* emitted event; the trace
/// itself keeps only the most recent `capacity` events (oldest dropped
/// first), so counts stay exact even when the trace wraps.
#[derive(Debug, Clone)]
pub struct EventRing {
    capacity: usize,
    buf: VecDeque<Event>,
    counts: [u64; EventKind::ALL.len()],
    dropped: u64,
}

impl EventRing {
    /// A ring holding up to `capacity` events (0 disables the trace but
    /// keeps per-kind counts).
    pub fn new(capacity: usize) -> Self {
        EventRing {
            capacity,
            buf: VecDeque::with_capacity(capacity.min(4096)),
            counts: [0; EventKind::ALL.len()],
            dropped: 0,
        }
    }

    /// Records one event.
    pub fn push(&mut self, ev: Event) {
        self.counts[ev.kind().index()] += 1;
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events emitted (including dropped ones).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Events that fell out of the bounded trace.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Exact count of one kind (unaffected by trace wrapping).
    pub fn count(&self, kind: EventKind) -> u64 {
        self.counts[kind.index()]
    }

    /// The retained trace, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.buf.iter()
    }

    /// Serializes counts plus the retained trace.
    pub fn to_json(&self) -> JsonValue {
        let counts = EventKind::ALL
            .iter()
            .map(|k| (k.name().to_string(), JsonValue::UInt(self.count(*k))))
            .collect();
        JsonValue::Object(vec![
            (
                "capacity".to_string(),
                JsonValue::UInt(self.capacity as u64),
            ),
            ("total".to_string(), JsonValue::UInt(self.total())),
            ("dropped".to_string(), JsonValue::UInt(self.dropped)),
            ("counts".to_string(), JsonValue::Object(counts)),
            (
                "trace".to_string(),
                JsonValue::Array(self.buf.iter().map(Event::to_json).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn erased(tick: u64) -> Event {
        Event::BlockErased {
            tick,
            block: 1,
            erase_count: tick,
        }
    }

    #[test]
    fn ring_bounds_trace_but_counts_everything() {
        let mut r = EventRing::new(3);
        for t in 0..10 {
            r.push(erased(t));
        }
        r.push(Event::BlockRetired { tick: 10, block: 1 });
        assert_eq!(r.total(), 11);
        assert_eq!(r.count(EventKind::BlockErased), 10);
        assert_eq!(r.count(EventKind::BlockRetired), 1);
        assert_eq!(r.dropped(), 8);
        let kept: Vec<u64> = r.iter().map(Event::tick).collect();
        assert_eq!(kept, vec![8, 9, 10], "oldest events fall out first");
    }

    #[test]
    fn zero_capacity_disables_trace_keeps_counts() {
        let mut r = EventRing::new(0);
        r.push(erased(1));
        assert_eq!(r.total(), 1);
        assert_eq!(r.iter().count(), 0);
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn event_json_carries_kind_and_tick() {
        let ev = Event::EccStrengthBump {
            tick: 42,
            block: 3,
            slot: 7,
            old_strength: 1,
            new_strength: 4,
        };
        let j = ev.to_json();
        assert_eq!(j.get("kind").unwrap().as_str(), Some("ecc_strength_bump"));
        assert_eq!(j.get("tick").unwrap().as_u64(), Some(42));
        assert_eq!(j.get("new_strength").unwrap().as_u64(), Some(4));
    }

    #[test]
    fn every_kind_has_a_distinct_name() {
        let mut names: Vec<&str> = EventKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), EventKind::ALL.len());
    }

    #[test]
    fn ring_json_shape() {
        let mut r = EventRing::new(2);
        r.push(erased(1));
        let j = r.to_json();
        assert_eq!(j.get("total").unwrap().as_u64(), Some(1));
        assert_eq!(j.path("counts.block_erased").unwrap().as_u64(), Some(1));
        assert_eq!(j.get("trace").unwrap().as_array().unwrap().len(), 1);
    }
}
