//! The attachable observability sink and the process-wide default sink.
//!
//! An [`ObsSink`] couples a bounded [`EventRing`] with an accumulated
//! [`Registry`]. Instrumented components hold an
//! `Option<Arc<ObsSink>>`: when none is attached, instrumentation costs
//! one branch on the rare paths that emit events — the fast path pays
//! nothing. When a sink is attached, components emit events live and
//! flush their counters into the sink's registry when they are dropped
//! (or explicitly flushed), so a snapshot taken at process exit covers
//! every cache that ever lived.
//!
//! The *global* sink mirrors the design of `tracing`'s global
//! subscriber and Prometheus' default registry: a CLI installs it once
//! before constructing any caches, and every component constructed
//! afterwards attaches automatically.

use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

use crate::event::{Event, EventRing};
use crate::registry::Registry;
use crate::snapshot::Snapshot;

/// A shared sink for trace events and flushed metrics.
pub struct ObsSink {
    ring: Mutex<EventRing>,
    registry: Mutex<Registry>,
}

impl fmt::Debug for ObsSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ring = self.ring.lock().expect("obs ring poisoned");
        f.debug_struct("ObsSink")
            .field("capacity", &ring.capacity())
            .field("total_events", &ring.total())
            .finish_non_exhaustive()
    }
}

impl ObsSink {
    /// A sink whose trace retains up to `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        ObsSink {
            ring: Mutex::new(EventRing::new(capacity)),
            registry: Mutex::new(Registry::new()),
        }
    }

    /// Records one trace event.
    pub fn emit(&self, ev: Event) {
        self.ring.lock().expect("obs ring poisoned").push(ev);
    }

    /// Merges a component's exported metrics into the accumulated
    /// registry (counters add, gauges overwrite, histograms merge).
    pub fn merge_registry(&self, reg: &Registry) {
        self.registry
            .lock()
            .expect("obs registry poisoned")
            .merge(reg);
    }

    /// A copy of the accumulated registry.
    pub fn registry(&self) -> Registry {
        self.registry.lock().expect("obs registry poisoned").clone()
    }

    /// A copy of the event ring.
    pub fn events(&self) -> EventRing {
        self.ring.lock().expect("obs ring poisoned").clone()
    }

    /// Exact count of one event kind seen so far.
    pub fn event_count(&self, kind: crate::event::EventKind) -> u64 {
        self.ring.lock().expect("obs ring poisoned").count(kind)
    }

    /// A full snapshot: the accumulated registry plus the event ring.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::new(self.registry(), self.events())
    }
}

static GLOBAL: OnceLock<Arc<ObsSink>> = OnceLock::new();

/// Installs the process-wide default sink. Returns `false` (leaving the
/// existing sink in place) if one was already installed.
pub fn install_global_sink(sink: Arc<ObsSink>) -> bool {
    GLOBAL.set(sink).is_ok()
}

/// The process-wide default sink, if one was installed.
pub fn global_sink() -> Option<Arc<ObsSink>> {
    GLOBAL.get().cloned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn sink_records_events_and_metrics() {
        let sink = ObsSink::with_capacity(8);
        sink.emit(Event::BlockErased {
            tick: 1,
            block: 0,
            erase_count: 1,
        });
        let mut reg = Registry::new();
        reg.counter_add("flash.reads", 5);
        sink.merge_registry(&reg);
        sink.merge_registry(&reg);
        let snap = sink.snapshot();
        assert_eq!(snap.registry.counter("flash.reads"), 10);
        assert_eq!(snap.events.count(EventKind::BlockErased), 1);
    }

    #[test]
    fn sink_is_shareable_across_threads() {
        let sink = Arc::new(ObsSink::with_capacity(1024));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let s = Arc::clone(&sink);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        s.emit(Event::BlockErased {
                            tick: i,
                            block: t,
                            erase_count: i,
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sink.events().total(), 400);
    }

    // The global sink is intentionally NOT exercised here: `OnceLock`
    // state is process-wide and unit tests share one process, so
    // installing it would leak into unrelated tests. The CLI and figure
    // binaries cover the install path end-to-end.
}
