//! The top-level telemetry snapshot: metrics registry + event trace,
//! rendered as one deterministic JSON document.

use crate::event::EventRing;
use crate::json::JsonValue;
use crate::registry::Registry;

/// Format version stamped into every snapshot, bumped on breaking
/// shape changes.
pub const SNAPSHOT_VERSION: u64 = 1;

/// A complete telemetry snapshot.
///
/// # Examples
///
/// ```
/// use flash_obs::{EventRing, Registry, Snapshot};
///
/// let mut reg = Registry::new();
/// reg.counter_add("flash.reads", 42);
/// let snap = Snapshot::new(reg, EventRing::new(16));
/// let json = snap.to_json();
/// let parsed = flash_obs::json::parse(&json).unwrap();
/// assert_eq!(parsed.path("metrics.flash.reads"), None); // dotted name, single key
/// assert_eq!(
///     parsed.get("metrics").unwrap().get("flash.reads").unwrap().as_u64(),
///     Some(42)
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Exported metrics.
    pub registry: Registry,
    /// The bounded event trace and per-kind counts.
    pub events: EventRing,
}

impl Snapshot {
    /// Builds a snapshot from its parts.
    pub fn new(registry: Registry, events: EventRing) -> Self {
        Snapshot { registry, events }
    }

    /// Serializes to a compact JSON string.
    ///
    /// Output is byte-stable for identical inputs: metric names are
    /// sorted, event order follows emission order, and floats use
    /// Rust's deterministic shortest-roundtrip formatting. No
    /// wall-clock timestamp is included — snapshots of deterministic
    /// runs must themselves be deterministic.
    pub fn to_json(&self) -> String {
        JsonValue::Object(vec![
            ("version".to_string(), JsonValue::UInt(SNAPSHOT_VERSION)),
            ("metrics".to_string(), self.registry.to_json()),
            ("events".to_string(), self.events.to_json()),
        ])
        .render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::json;

    #[test]
    fn snapshot_roundtrips_through_own_parser() {
        let mut reg = Registry::new();
        reg.counter_add("a.count", 7);
        reg.gauge_set("a.rate", 0.25);
        let mut h = crate::hist::LatencyHistogram::new();
        h.record(100.0);
        reg.histogram_merge("a.latency", &h);
        let mut ring = EventRing::new(4);
        ring.push(Event::GcCompaction {
            tick: 3,
            block: 1,
            moved_pages: 9,
        });
        let snap = Snapshot::new(reg, ring);
        let text = snap.to_json();
        let v = json::parse(&text).expect("snapshot must be valid JSON");
        assert_eq!(v.get("version").unwrap().as_u64(), Some(1));
        assert_eq!(
            v.get("metrics").unwrap().get("a.count").unwrap().as_u64(),
            Some(7)
        );
        assert_eq!(
            v.path("events.counts.gc_compaction").unwrap().as_u64(),
            Some(1)
        );
    }

    #[test]
    fn identical_snapshots_serialize_identically() {
        let build = || {
            let mut reg = Registry::new();
            reg.counter_add("z", 1);
            reg.counter_add("a", 2);
            reg.gauge_set("m", 1.0 / 3.0);
            let mut ring = EventRing::new(2);
            ring.push(Event::BlockRetired { tick: 9, block: 2 });
            Snapshot::new(reg, ring).to_json()
        };
        assert_eq!(build(), build());
    }
}
