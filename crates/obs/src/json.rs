//! A serde-free JSON value tree with a deterministic encoder and a
//! minimal recursive-descent parser.
//!
//! The workspace is dependency-free by policy, so snapshots are encoded
//! by hand. Two properties matter more than generality:
//!
//! * **Determinism** — objects preserve insertion order (they are backed
//!   by a `Vec` of pairs, and snapshot producers insert in sorted
//!   order), and floats render via Rust's shortest-roundtrip `Display`,
//!   so the same simulator state always serializes to the same bytes.
//! * **Self-validation** — the parser exists so tests and the
//!   `validate_json` binary can check emitted snapshots without external
//!   tooling.

use std::fmt;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null` (also used for non-finite floats, which JSON cannot carry).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An exact unsigned integer (counters must not round-trip through
    /// `f64`).
    UInt(u64),
    /// A floating-point number.
    Number(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object; pairs keep insertion order for byte-stable output.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Follows a dotted path of object keys, e.g. `events.counts`.
    pub fn path(&self, dotted: &str) -> Option<&JsonValue> {
        dotted.split('.').try_fold(self, |v, k| v.get(k))
    }

    /// The value as an `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            JsonValue::UInt(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as an exact `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(n) => Some(*n),
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object pairs.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Renders the tree as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::UInt(n) => {
                out.push_str(&n.to_string());
            }
            JsonValue::Number(n) => out.push_str(&fmt_f64(*n)),
            JsonValue::String(s) => escape_into(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Formats an `f64` as a JSON number; non-finite values become `null`
/// (JSON has no NaN/Infinity).
pub fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    let s = v.to_string();
    // `Display` for f64 never emits an exponent, so the output is always
    // a valid JSON number already.
    s
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns [`JsonError`] on malformed input or trailing garbage.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogates are not produced by our encoder;
                            // map unpaired ones to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so slicing
                    // at char boundaries is safe via chars()).
                    let rest = &self.bytes[self.pos..];
                    let ch = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8"))?
                        .chars()
                        .next()
                        .unwrap();
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_deterministic_output() {
        let v = JsonValue::Object(vec![
            ("a".into(), JsonValue::UInt(3)),
            ("b".into(), JsonValue::Number(0.5)),
            (
                "c".into(),
                JsonValue::Array(vec![JsonValue::Bool(true), JsonValue::Null]),
            ),
        ]);
        assert_eq!(v.render(), r#"{"a":3,"b":0.5,"c":[true,null]}"#);
    }

    #[test]
    fn escapes_strings() {
        let v = JsonValue::String("a\"b\\c\nd\u{1}".into());
        assert_eq!(v.render(), r#""a\"b\\c\nd\u0001""#);
        let back = parse(&v.render()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(JsonValue::Number(f64::NAN).render(), "null");
        assert_eq!(JsonValue::Number(f64::INFINITY).render(), "null");
        assert_eq!(fmt_f64(1.5), "1.5");
    }

    #[test]
    fn roundtrips_nested_documents() {
        let text = r#"{"metrics":{"flash.reads":120,"rate":0.25},"events":[{"kind":"gc","tick":7}],"ok":true,"none":null}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.render(), text);
        assert_eq!(v.path("metrics.flash.reads"), None); // dotted key, not path
        assert_eq!(
            v.get("metrics").unwrap().get("flash.reads").unwrap(),
            &JsonValue::UInt(120)
        );
        assert_eq!(v.path("events").unwrap().as_array().unwrap().len(), 1);
    }

    #[test]
    fn parses_numbers_exactly() {
        assert_eq!(
            parse("18446744073709551615").unwrap().as_u64(),
            Some(u64::MAX)
        );
        assert_eq!(parse("-2.5e3").unwrap().as_f64(), Some(-2500.0));
        assert_eq!(parse("42").unwrap(), JsonValue::UInt(42));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a":1} trailing"#).is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        let v = parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.render(), r#"{"a":[1,2]}"#);
    }
}
