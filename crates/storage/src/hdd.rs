//! Hard disk drive timing and power model.
//!
//! The paper's simulator uses a 4.2ms average access latency IDE disk
//! (Table 3, the Hitachi Travelstar 7K60 laptop drive) and quotes a
//! 750GB desktop drive (Seagate Barracuda) in Table 2 at 13W active /
//! 9.3W idle. Both profiles are provided; the methodology section says
//! laptop-drive power numbers were used because the simulated disks are
//! small, so [`HddModel::travelstar`] is the default.

/// Disk power states tracked by the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HddPowerState {
    /// Actively seeking/reading/writing.
    Active,
    /// Spinning but idle.
    Idle,
    /// Spun down.
    Standby,
}

/// A hard disk drive model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HddModel {
    /// Average random access latency (seek + rotation), microseconds.
    pub avg_access_latency_us: f64,
    /// Sustained media transfer rate, bytes per second.
    pub transfer_bytes_per_s: f64,
    /// Power while seeking/transferring, watts.
    pub active_w: f64,
    /// Power while spinning idle, watts.
    pub idle_w: f64,
    /// Power while spun down, watts.
    pub standby_w: f64,
}

impl HddModel {
    /// The Hitachi Travelstar 7K60 2.5" laptop profile used by the
    /// paper's power evaluation: ~2.5W active, ~0.85W idle.
    pub fn travelstar() -> Self {
        HddModel {
            avg_access_latency_us: 4200.0,
            transfer_bytes_per_s: 44e6,
            active_w: 2.5,
            idle_w: 0.85,
            standby_w: 0.25,
        }
    }

    /// The Seagate Barracuda 750GB desktop profile of Table 2:
    /// 13W active, 9.3W idle, 8.5ms average read access.
    pub fn barracuda() -> Self {
        HddModel {
            avg_access_latency_us: 8500.0,
            transfer_bytes_per_s: 78e6,
            active_w: 13.0,
            idle_w: 9.3,
            standby_w: 0.8,
        }
    }

    /// Latency in microseconds to service one random request of `bytes`.
    pub fn access_latency_us(&self, bytes: u64) -> f64 {
        self.avg_access_latency_us + bytes as f64 / self.transfer_bytes_per_s * 1e6
    }

    /// Average power over an interval where the disk was busy for
    /// `busy_s` out of `elapsed_s` seconds (idle the rest).
    ///
    /// # Panics
    ///
    /// Panics if `elapsed_s` is not positive or `busy_s` is negative.
    pub fn average_power_w(&self, busy_s: f64, elapsed_s: f64) -> f64 {
        assert!(elapsed_s > 0.0, "elapsed time must be positive");
        assert!(busy_s >= 0.0, "busy time must be non-negative");
        let busy_frac = (busy_s / elapsed_s).min(1.0);
        self.active_w * busy_frac + self.idle_w * (1.0 - busy_frac)
    }

    /// Power draw in the given steady state, watts.
    pub fn state_power_w(&self, state: HddPowerState) -> f64 {
        match state {
            HddPowerState::Active => self.active_w,
            HddPowerState::Idle => self.idle_w,
            HddPowerState::Standby => self.standby_w,
        }
    }
}

impl Default for HddModel {
    fn default() -> Self {
        HddModel::travelstar()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_laptop_profile() {
        let d = HddModel::default();
        assert_eq!(d, HddModel::travelstar());
        assert!((d.avg_access_latency_us - 4200.0).abs() < 1e-9);
    }

    #[test]
    fn access_latency_includes_transfer() {
        let d = HddModel::travelstar();
        let small = d.access_latency_us(512);
        let big = d.access_latency_us(1 << 20);
        assert!(small < big);
        // A 1MB transfer at 44MB/s adds ~23.8ms.
        assert!((big - small - 23831.0).abs() < 100.0);
    }

    #[test]
    fn average_power_interpolates_between_states() {
        let d = HddModel::barracuda();
        assert!((d.average_power_w(0.0, 10.0) - d.idle_w).abs() < 1e-12);
        assert!((d.average_power_w(10.0, 10.0) - d.active_w).abs() < 1e-12);
        let half = d.average_power_w(5.0, 10.0);
        assert!((half - (d.active_w + d.idle_w) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn busy_fraction_saturates() {
        let d = HddModel::travelstar();
        assert!((d.average_power_w(20.0, 10.0) - d.active_w).abs() < 1e-12);
    }

    #[test]
    fn state_power_ordering() {
        for d in [HddModel::travelstar(), HddModel::barracuda()] {
            assert!(d.state_power_w(HddPowerState::Active) > d.state_power_w(HddPowerState::Idle));
            assert!(d.state_power_w(HddPowerState::Idle) > d.state_power_w(HddPowerState::Standby));
        }
    }

    #[test]
    #[should_panic(expected = "elapsed time must be positive")]
    fn rejects_bad_interval() {
        HddModel::default().average_power_w(1.0, 0.0);
    }
}
