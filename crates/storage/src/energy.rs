//! Simple energy/activity accounting used by the simulator to turn
//! per-device busy time into the average-power breakdowns of Figure 9.

/// Accumulates energy in joules.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyAccount {
    joules: f64,
}

impl EnergyAccount {
    /// A fresh, empty account.
    pub fn new() -> Self {
        EnergyAccount::default()
    }

    /// Adds energy drawn at `watts` for `seconds`.
    ///
    /// # Panics
    ///
    /// Panics if either argument is negative.
    pub fn add_power_time(&mut self, watts: f64, seconds: f64) {
        assert!(watts >= 0.0 && seconds >= 0.0, "negative energy");
        self.joules += watts * seconds;
    }

    /// Adds raw joules.
    pub fn add_joules(&mut self, joules: f64) {
        assert!(joules >= 0.0, "negative energy");
        self.joules += joules;
    }

    /// Total accumulated energy in joules.
    pub fn joules(&self) -> f64 {
        self.joules
    }

    /// Average power over `elapsed_s` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `elapsed_s` is not positive.
    pub fn average_power_w(&self, elapsed_s: f64) -> f64 {
        assert!(elapsed_s > 0.0, "elapsed time must be positive");
        self.joules / elapsed_s
    }
}

/// Busy-time and byte-count tracker for one device.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ActivityTracker {
    /// Seconds the device spent actively servicing requests.
    pub busy_s: f64,
    /// Bytes read from the device.
    pub read_bytes: u64,
    /// Bytes written to the device.
    pub write_bytes: u64,
    /// Number of operations serviced.
    pub ops: u64,
}

impl ActivityTracker {
    /// Records one operation of `bytes` that kept the device busy for
    /// `seconds`; `is_write` selects the byte counter.
    pub fn record(&mut self, seconds: f64, bytes: u64, is_write: bool) {
        assert!(seconds >= 0.0, "negative busy time");
        self.busy_s += seconds;
        if is_write {
            self.write_bytes += bytes;
        } else {
            self.read_bytes += bytes;
        }
        self.ops += 1;
    }

    /// Utilization over `elapsed_s` seconds, clamped to 1.
    pub fn utilization(&self, elapsed_s: f64) -> f64 {
        assert!(elapsed_s > 0.0, "elapsed time must be positive");
        (self.busy_s / elapsed_s).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_accumulates() {
        let mut e = EnergyAccount::new();
        e.add_power_time(2.0, 3.0);
        e.add_joules(4.0);
        assert!((e.joules() - 10.0).abs() < 1e-12);
        assert!((e.average_power_w(5.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "negative energy")]
    fn rejects_negative_power() {
        EnergyAccount::new().add_power_time(-1.0, 1.0);
    }

    #[test]
    fn tracker_records_reads_and_writes() {
        let mut t = ActivityTracker::default();
        t.record(0.5, 100, false);
        t.record(0.25, 200, true);
        assert_eq!(t.read_bytes, 100);
        assert_eq!(t.write_bytes, 200);
        assert_eq!(t.ops, 2);
        assert!((t.utilization(1.0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn utilization_clamps() {
        let mut t = ActivityTracker::default();
        t.record(5.0, 1, false);
        assert_eq!(t.utilization(1.0), 1.0);
    }
}
