//! DDR2 DRAM timing and power model.
//!
//! Constants follow Table 2 of the paper (1Gb DDR2 device: 878mW active,
//! 80mW active-standby idle, 18mW powerdown idle, 55ns access) and the
//! Micron system-power-calculator methodology the paper cites: power is
//! the idle floor of the populated DIMMs plus read/write activity terms
//! proportional to bandwidth utilization.

/// Capacity of the reference DDR2 device in bits (1Gb).
pub const REFERENCE_DEVICE_BITS: u64 = 1 << 30;

/// DDR2 DRAM model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramModel {
    /// Row-cycle-limited random access latency, ns (Table 3: tRC = 50ns).
    pub access_latency_ns: f64,
    /// Peak transfer bandwidth per channel, bytes/s (DDR2-667: ~5.3GB/s).
    pub peak_bandwidth_bytes_per_s: f64,
    /// Active (read or write streaming) power of a 1Gb device, mW.
    pub active_mw_per_gbit: f64,
    /// Idle power of a 1Gb device in active-standby mode, mW.
    pub idle_mw_per_gbit: f64,
    /// Idle power of a 1Gb device in powerdown mode, mW.
    pub powerdown_mw_per_gbit: f64,
}

impl Default for DramModel {
    fn default() -> Self {
        DramModel {
            access_latency_ns: 50.0,
            peak_bandwidth_bytes_per_s: 5.3e9,
            active_mw_per_gbit: 878.0,
            idle_mw_per_gbit: 80.0,
            powerdown_mw_per_gbit: 18.0,
        }
    }
}

/// Split of DRAM power into the components reported in Figure 9.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DramPowerBreakdown {
    /// Power attributable to reads, watts.
    pub read_w: f64,
    /// Power attributable to writes, watts.
    pub write_w: f64,
    /// Idle (standby/refresh) power of the populated capacity, watts.
    pub idle_w: f64,
}

impl DramPowerBreakdown {
    /// Total DRAM power in watts.
    pub fn total_w(&self) -> f64 {
        self.read_w + self.write_w + self.idle_w
    }
}

impl DramModel {
    /// Latency to service a random access of `bytes` from DRAM, in
    /// microseconds: one row cycle plus streaming at peak bandwidth.
    pub fn access_latency_us(&self, bytes: u64) -> f64 {
        self.access_latency_ns / 1000.0 + bytes as f64 / self.peak_bandwidth_bytes_per_s * 1e6
    }

    /// Number of 1Gb reference devices needed for `capacity_bytes`.
    fn devices(&self, capacity_bytes: u64) -> f64 {
        (capacity_bytes as f64 * 8.0) / REFERENCE_DEVICE_BITS as f64
    }

    /// Power breakdown for a DRAM of `capacity_bytes` observing
    /// `read_bytes`/`write_bytes` of traffic over `elapsed_s` seconds.
    ///
    /// The activity terms charge the *active-minus-idle* increment for
    /// the time the devices spend bursting, so `idle_w` is always the
    /// full standby floor of the populated capacity (how the Micron
    /// calculator and Figure 9 split it).
    ///
    /// # Panics
    ///
    /// Panics if `elapsed_s` is not positive.
    pub fn power_breakdown(
        &self,
        capacity_bytes: u64,
        read_bytes: u64,
        write_bytes: u64,
        elapsed_s: f64,
    ) -> DramPowerBreakdown {
        assert!(elapsed_s > 0.0, "elapsed time must be positive");
        let devices = self.devices(capacity_bytes);
        let active_increment_mw = self.active_mw_per_gbit - self.idle_mw_per_gbit;
        // Fraction of wall time the array spends bursting reads/writes.
        // One rank bursts at a time, so the increment applies to a single
        // device-row's worth of width; scale by a fixed rank width of 8
        // devices (64-bit channel of x8 parts).
        let rank_devices = 8.0f64.min(devices.max(1.0));
        let read_frac = (read_bytes as f64 / self.peak_bandwidth_bytes_per_s / elapsed_s).min(1.0);
        let write_frac =
            (write_bytes as f64 / self.peak_bandwidth_bytes_per_s / elapsed_s).min(1.0);
        DramPowerBreakdown {
            read_w: active_increment_mw * rank_devices * read_frac / 1000.0,
            write_w: active_increment_mw * rank_devices * write_frac / 1000.0,
            idle_w: self.idle_mw_per_gbit * devices / 1000.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIB: u64 = 1 << 20;

    #[test]
    fn latency_dominated_by_trc_for_small_access() {
        let m = DramModel::default();
        let lat = m.access_latency_us(64);
        assert!((0.05..0.07).contains(&lat), "{lat}");
        // 2KB page adds measurable streaming time.
        assert!(m.access_latency_us(2048) > lat);
    }

    #[test]
    fn idle_power_scales_with_capacity() {
        let m = DramModel::default();
        let p512 = m.power_breakdown(512 * MIB, 0, 0, 1.0);
        let p256 = m.power_breakdown(256 * MIB, 0, 0, 1.0);
        assert!((p512.idle_w / p256.idle_w - 2.0).abs() < 1e-9);
        assert_eq!(p512.read_w, 0.0);
        assert_eq!(p512.write_w, 0.0);
        // 512MB = 4 x 1Gb devices: idle = 4 * 80mW = 0.32W.
        assert!((p512.idle_w - 0.32).abs() < 1e-9);
    }

    #[test]
    fn activity_power_increases_with_traffic() {
        let m = DramModel::default();
        let quiet = m.power_breakdown(512 * MIB, 100 * MIB, 0, 1.0);
        let busy = m.power_breakdown(512 * MIB, 1000 * MIB, 0, 1.0);
        assert!(busy.read_w > quiet.read_w);
        assert_eq!(busy.write_w, 0.0);
        assert!(busy.total_w() > quiet.total_w());
    }

    #[test]
    fn activity_power_saturates_at_peak_bandwidth() {
        let m = DramModel::default();
        let sat = m.power_breakdown(512 * MIB, u64::MAX / 2, 0, 1.0);
        // Increment capped at one rank's active-idle delta.
        let cap = (m.active_mw_per_gbit - m.idle_mw_per_gbit) * 4.0 / 1000.0;
        assert!(sat.read_w <= cap + 1e-9);
    }

    #[test]
    #[should_panic(expected = "elapsed time must be positive")]
    fn rejects_zero_elapsed() {
        DramModel::default().power_breakdown(MIB, 0, 0, 0.0);
    }
}
