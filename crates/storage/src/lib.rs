//! Storage-hierarchy device models: DDR2 DRAM and hard disk drives.
//!
//! Provides the timing and power constants of Table 2/3 of *Improving
//! NAND Flash Based Disk Caches* (ISCA 2008), plus small accounting
//! helpers the simulator uses to produce the power breakdowns of
//! Figure 9. The NAND flash device itself lives in the `nand-flash`
//! crate; this crate covers the devices flash is compared against.
//!
//! # Examples
//!
//! ```
//! use storage_model::{DramModel, HddModel};
//!
//! let dram = DramModel::default();
//! let disk = HddModel::travelstar();
//! // The latency gap flash bridges: DRAM ~55ns vs disk ~4.2ms.
//! assert!(disk.access_latency_us(2048) > 1000.0 * dram.access_latency_us(2048));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dram;
pub mod energy;
pub mod hdd;

pub use dram::{DramModel, DramPowerBreakdown};
pub use energy::{ActivityTracker, EnergyAccount};
pub use hdd::{HddModel, HddPowerState};
