//! End-to-end replay throughput benchmark: the single-shard fast path.
//!
//! Streams the 200k-request Zipf trace (alpha1 with a 5% write mix —
//! the same workload `bench_shard` uses) straight from the generator
//! into [`ShardedCache::submit`] batches, with no intermediate
//! full-trace materialization, and reports wall-clock **pages per
//! second** of the whole pipeline (trace generation + cache servicing)
//! across a shard matrix (1, 2, 4 and 8 shards by default), one output
//! point per shard count.
//!
//! Unlike `bench_shard`, which reports *modeled* flash-channel time,
//! this benchmark measures how fast the simulator itself runs — the
//! quantity that bounds every whole-lifetime replay (Figure 12) and
//! figure sweep. The committed `BENCH_replay.json` pins the pre-PR
//! baseline (measured before the replay fast path landed) and the
//! fast/slow-path numbers of the machine that produced it; each point
//! records the worker count it ran with and the document records
//! `host_cpus`, so scale-out numbers are read against the parallelism
//! that was actually available.
//!
//! Usage: `bench_replay [--requests N] [--shards 1,2,4,8] [--batch N]
//! [--seed N] [--repeat N] [--slow] [--batch-pipeline on|off] [--smoke]
//! [--floor PAGES_PER_SEC] [--scaling-floor RATIO] [--channels 1,4,8]
//! [--sched-backend heap|wheel] [--max-overhead RATIO] [--out PATH]`
//!
//! `--slow` disables every fast-path gate (CDF sampling, StdRng, direct
//! wear evaluation) so the two paths can be compared on one machine.
//! `--batch-pipeline off` disables the batched-op prefetch pipeline and
//! SWAR group probing (the scalar oracle) for a one-flag A/B of the
//! batched lookup path; results are byte-identical either way.
//! `--floor` makes the run assert a single-shard pages/sec floor — the
//! CI smoke step uses it to catch fast-path regressions.
//! `--scaling-floor` asserts max-shard pages/sec >= RATIO x the
//! single-shard number, catching scale-out regressions (use a ratio
//! matched to the host's core count: ~1.0 just asserts sharding is not
//! a slowdown, which is the honest ceiling on a single-CPU runner).
//!
//! `--channels 1,4,8` switches to the **device-parallelism matrix**:
//! single-shard replays on the event-driven NAND backend, one point per
//! channel count, reporting *modeled* NAND pages/sec — pages divided by
//! the drained device makespan. These numbers are deterministic (the
//! event scheduler is RNG-free), so the run always asserts that the
//! widest configuration's modeled throughput is at least the 1-channel
//! number, and the default output moves to `BENCH_channels.json`.
//!
//! The matrix also replays the same trace/seed on the closed-form
//! backend and reports each point's `overhead_ratio` — event-driven
//! wall-clock over closed-form wall-clock, the simulation tax of
//! realistic queueing. `--max-overhead RATIO` asserts every point stays
//! at or under RATIO (the CI smoke step uses 1.25; the release target
//! is 1.15), and `--sched-backend heap` swaps in the retained
//! heap-based scheduler for comparison (default: wheel).

use std::time::Instant;

use disk_trace::{DiskRequest, WorkloadSpec};
use flash_obs::JsonValue;
use flashcache_core::FlashCacheConfig;
use nand_flash::{ChannelConfig, FlashConfig, FlashGeometry, SchedBackend, TimingBackend};

use flashcache_engine::{pool, ShardedCache};

struct Args {
    shards: Vec<usize>,
    channels: Vec<u32>,
    requests: usize,
    batch: usize,
    seed: u64,
    repeat: usize,
    slow: bool,
    batch_pipeline: bool,
    smoke: bool,
    floor: Option<f64>,
    scaling_floor: Option<f64>,
    sched_backend: SchedBackend,
    max_overhead: Option<f64>,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        shards: vec![1, 2, 4, 8],
        channels: Vec::new(),
        requests: 200_000,
        batch: 512,
        seed: 0x5EED,
        repeat: 1,
        slow: false,
        batch_pipeline: true,
        smoke: false,
        floor: None,
        scaling_floor: None,
        sched_backend: SchedBackend::default(),
        max_overhead: None,
        out: "BENCH_replay.json".to_string(),
    };
    let mut requests_set = false;
    let mut out_set = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match a.as_str() {
            "--shards" => {
                args.shards = val("--shards")
                    .split(',')
                    .map(|s| s.trim().parse().expect("shard count"))
                    .collect();
            }
            "--channels" => {
                args.channels = val("--channels")
                    .split(',')
                    .map(|s| s.trim().parse().expect("channel count"))
                    .collect();
            }
            "--requests" => {
                args.requests = val("--requests").parse().expect("request count");
                requests_set = true;
            }
            "--batch" => args.batch = val("--batch").parse().expect("batch size"),
            "--seed" => args.seed = val("--seed").parse().expect("seed"),
            "--repeat" => args.repeat = val("--repeat").parse().expect("repeat count"),
            "--slow" => args.slow = true,
            "--batch-pipeline" => {
                args.batch_pipeline = match val("--batch-pipeline").as_str() {
                    "on" => true,
                    "off" => false,
                    other => panic!("--batch-pipeline must be on or off, got {other}"),
                };
            }
            "--smoke" => args.smoke = true,
            "--floor" => args.floor = Some(val("--floor").parse().expect("pages/sec floor")),
            "--scaling-floor" => {
                args.scaling_floor = Some(val("--scaling-floor").parse().expect("scaling ratio"));
            }
            "--sched-backend" => {
                args.sched_backend = match val("--sched-backend").as_str() {
                    "heap" => SchedBackend::Heap,
                    "wheel" => SchedBackend::Wheel,
                    other => panic!("--sched-backend must be heap or wheel, got {other}"),
                };
            }
            "--max-overhead" => {
                args.max_overhead = Some(val("--max-overhead").parse().expect("overhead ratio"));
            }
            "--out" => {
                args.out = val("--out");
                out_set = true;
            }
            other => panic!("unknown flag {other}"),
        }
    }
    if args.smoke && !requests_set {
        args.requests = 50_000;
    }
    if !args.channels.is_empty() && !out_set {
        args.out = "BENCH_channels.json".to_string();
    }
    args.shards.sort_unstable();
    args.shards.dedup();
    args.channels.sort_unstable();
    args.channels.dedup();
    args
}

/// Pre-PR single-shard throughput on the reference machine, pages/sec
/// (commit 5c77c54: StdRng + CDF binary-search sampling + per-read
/// wear-model evaluation, best of repeated 200k-request runs). The
/// committed speedup is measured against this number; `--slow` replays
/// the same oracle configuration for a same-window ratio.
const PRE_PR_BASELINE_PAGES_PER_SEC: f64 = 1_415_000.0;

fn cache_config(slow: bool, batch_pipeline: bool) -> FlashCacheConfig {
    // Same shape as bench_shard: 512 blocks × 64 pages, big enough for
    // real GC/eviction churn, small enough that the Zipf tail misses.
    let mut flash = FlashConfig {
        geometry: FlashGeometry {
            blocks: 512,
            pages_per_block: 64,
            ..FlashGeometry::default()
        },
        ..FlashConfig::default()
    };
    if slow {
        flash.fast_rng = false;
        flash.wear.cache_evaluations = false;
    }
    // `--batch-pipeline off` replays on the full scalar oracle: no
    // prefetch pipeline and byte-wise FCHT probing, the before-side of
    // the batched-op A/B (results are byte-identical either way).
    FlashCacheConfig::builder()
        .flash(flash)
        .batch_pipeline(batch_pipeline)
        .fcht_swar_probe(batch_pipeline)
        .build()
        .expect("bench cache config is valid")
}

/// Planes per channel and queue depth used by every point of the
/// `--channels` matrix, so channel count is the only variable.
const MATRIX_PLANES: u32 = 2;
const MATRIX_QUEUE_DEPTH: u32 = 8;

fn channel_cache_config(channels: u32, sched_backend: SchedBackend) -> FlashCacheConfig {
    let channel = ChannelConfig::builder()
        .channels(channels)
        .planes(MATRIX_PLANES)
        .queue_depth(MATRIX_QUEUE_DEPTH)
        .sched_backend(sched_backend)
        .build()
        .expect("matrix channel config is valid");
    FlashCacheConfig::builder()
        .flash(FlashConfig {
            geometry: FlashGeometry {
                blocks: 512,
                pages_per_block: 64,
                ..FlashGeometry::default()
            },
            timing_backend: TimingBackend::EventDriven,
            channel,
            ..FlashConfig::default()
        })
        .build()
        .expect("bench cache config is valid")
}

/// One single-shard streamed replay; returns (wall seconds, pages,
/// drained device makespan in µs).
fn replay_once(config: FlashCacheConfig, spec: &WorkloadSpec, args: &Args) -> (f64, u64, f64) {
    let mut engine = ShardedCache::new(config, 1).expect("single shard is always valid");
    let mut generator = spec.generator(args.seed);
    let mut buf: Vec<DiskRequest> = Vec::with_capacity(args.batch);
    let wall = Instant::now();
    let mut remaining = args.requests;
    let mut pages = 0u64;
    while remaining > 0 {
        let take = remaining.min(args.batch);
        buf.clear();
        generator.fill(take, &mut buf);
        pages += buf.iter().map(|r| r.len as u64).sum::<u64>();
        engine.submit(&buf);
        remaining -= take;
    }
    let wall_s = wall.elapsed().as_secs_f64();
    let makespan_us = engine.device_makespan_us();
    (wall_s, pages, makespan_us)
}

/// The `--channels` matrix: one single-shard replay per channel count on
/// the event-driven backend, reporting modeled NAND pages/sec (pages
/// over the drained device makespan). Modeled time is deterministic, so
/// the closing assertion (widest config >= 1-channel throughput) holds
/// on any machine.
///
/// A closed-form replay of the same trace/seed anchors the
/// `overhead_ratio` each point carries: event-driven wall over
/// closed-form wall, both best-of-`--repeat`. Ratios near 1.0 mean the
/// scheduler adds (almost) no simulation tax over the arithmetic path.
fn run_channel_matrix(args: &Args, spec: &WorkloadSpec) {
    // Closed-form baseline: same trace, same single-shard engine, the
    // arithmetic timing path the overhead ratio is measured against.
    let mut closed_form_wall_s = f64::INFINITY;
    for _ in 0..args.repeat.max(1) {
        let (wall_s, _, _) = replay_once(cache_config(false, args.batch_pipeline), spec, args);
        closed_form_wall_s = closed_form_wall_s.min(wall_s);
    }
    println!(
        "  closed-form baseline: {:.1} ms wall (best of {})",
        closed_form_wall_s * 1e3,
        args.repeat.max(1),
    );

    let mut points: Vec<JsonValue> = Vec::new();
    let mut by_channels: Vec<(u32, f64)> = Vec::new();
    let mut worst_overhead: Option<(u32, f64)> = None;
    for &ch in &args.channels {
        let mut wall_s = f64::INFINITY;
        let mut pages = 0u64;
        let mut makespan_us = 0.0;
        for _ in 0..args.repeat.max(1) {
            let config = channel_cache_config(ch, args.sched_backend);
            let (run_wall_s, run_pages, run_makespan_us) = replay_once(config, spec, args);
            wall_s = wall_s.min(run_wall_s);
            pages = run_pages;
            makespan_us = run_makespan_us;
        }
        let modeled_pps = pages as f64 / (makespan_us / 1e6);
        let overhead = wall_s / closed_form_wall_s;
        by_channels.push((ch, modeled_pps));
        if worst_overhead.is_none_or(|(_, w)| overhead > w) {
            worst_overhead = Some((ch, overhead));
        }
        println!(
            "  channels={ch}: device makespan {:.1} ms, {:.0} modeled pages/s \
             ({:.1} ms wall, {:.2}x closed form)",
            makespan_us / 1e3,
            modeled_pps,
            wall_s * 1e3,
            overhead,
        );
        points.push(JsonValue::Object(vec![
            ("channels".into(), JsonValue::UInt(u64::from(ch))),
            ("planes".into(), JsonValue::UInt(u64::from(MATRIX_PLANES))),
            (
                "queue_depth".into(),
                JsonValue::UInt(u64::from(MATRIX_QUEUE_DEPTH)),
            ),
            ("pages".into(), JsonValue::UInt(pages)),
            (
                "device_makespan_ms".into(),
                JsonValue::Number((makespan_us / 1e3 * 10.0).round() / 10.0),
            ),
            (
                "modeled_pages_per_sec".into(),
                JsonValue::Number(modeled_pps.round()),
            ),
            (
                "wall_ms".into(),
                JsonValue::Number((wall_s * 1e4).round() / 10.0),
            ),
            (
                "overhead_ratio".into(),
                JsonValue::Number((overhead * 100.0).round() / 100.0),
            ),
        ]));
    }

    let doc = JsonValue::Object(vec![
        (
            "workload".into(),
            JsonValue::String(format!(
                "{} (Zipf 0.8), {}% writes, {} pages footprint, streamed",
                spec.name,
                (spec.write_fraction * 100.0).round(),
                spec.footprint_pages
            )),
        ),
        ("requests".into(), JsonValue::UInt(args.requests as u64)),
        ("batch".into(), JsonValue::UInt(args.batch as u64)),
        ("seed".into(), JsonValue::UInt(args.seed)),
        ("repeat".into(), JsonValue::UInt(args.repeat.max(1) as u64)),
        (
            "sched_backend".into(),
            JsonValue::String(
                match args.sched_backend {
                    SchedBackend::Heap => "heap",
                    SchedBackend::Wheel => "wheel",
                }
                .into(),
            ),
        ),
        (
            "closed_form_wall_ms".into(),
            JsonValue::Number((closed_form_wall_s * 1e4).round() / 10.0),
        ),
        (
            "measure".into(),
            JsonValue::String(
                "modeled NAND pages/sec = pages / drained device makespan on \
                 the event-driven backend; deterministic (RNG-free scheduler); \
                 overhead_ratio = event wall / closed-form wall on the same \
                 trace and seed, best of --repeat runs each"
                    .into(),
            ),
        ),
        ("points".into(), JsonValue::Array(points)),
    ]);
    std::fs::write(&args.out, doc.render() + "\n").expect("write benchmark output");
    println!("wrote {}", args.out);

    if let (Some(&(_, base_pps)), Some(&(wide, wide_pps))) = (
        by_channels.iter().find(|&&(ch, _)| ch == 1),
        by_channels.last().filter(|&&(ch, _)| ch > 1),
    ) {
        assert!(
            wide_pps >= base_pps,
            "{wide}-channel modeled throughput {wide_pps:.0} pages/s fell below \
             the 1-channel {base_pps:.0} pages/s"
        );
        println!(
            "OK: {wide}-channel modeled {wide_pps:.0} pages/s >= 1-channel {base_pps:.0} pages/s \
             ({:.2}x)",
            wide_pps / base_pps
        );
    }
    if let (Some(max), Some((ch, worst))) = (args.max_overhead, worst_overhead) {
        assert!(
            worst <= max,
            "event-driven replay at {ch} channels cost {worst:.2}x the closed-form \
             wall-clock (limit {max:.2}x) — the scheduler is the hotspot again"
        );
        println!("OK: worst overhead {worst:.2}x (at {ch} channels) <= limit {max:.2}x");
    }
}

fn main() {
    let args = parse_args();

    let mut spec = WorkloadSpec::alpha1();
    spec.write_fraction = 0.05;
    if args.smoke {
        spec = spec.scaled(8);
    }
    if args.slow {
        spec.fast_sampling = false;
    }

    if !args.channels.is_empty() {
        println!(
            "bench_replay: {} requests of {} ({}% writes), batch {}, channel matrix {:?}",
            args.requests,
            spec.name,
            (spec.write_fraction * 100.0).round(),
            args.batch,
            args.channels,
        );
        run_channel_matrix(&args, &spec);
        return;
    }

    println!(
        "bench_replay: {} requests of {} ({}% writes), batch {}, {} path",
        args.requests,
        spec.name,
        (spec.write_fraction * 100.0).round(),
        args.batch,
        if args.slow {
            "slow (gates off)"
        } else {
            "fast"
        },
    );

    // Actual hardware parallelism, straight from the OS: scale-out
    // points are honest only when read against this number.
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if let Some(&widest) = args.shards.iter().max() {
        if widest > host_cpus {
            println!(
                "WARNING: {widest} shards on {host_cpus} host CPU(s) — worker threads \
                 serialize, so multi-shard points measure scheduling overhead, not scale-out"
            );
        }
    }

    let mut points: Vec<JsonValue> = Vec::new();
    let mut single_shard_pps = None;
    let mut max_shard_point: Option<(usize, f64)> = None;
    for &n in &args.shards {
        // Best-of-N to shed scheduler noise; stats come from the last run.
        let mut best_s = f64::INFINITY;
        let mut pages = 0u64;
        let mut stats = None;
        let mut workers = 1;
        for _ in 0..args.repeat.max(1) {
            let mut engine = ShardedCache::new(cache_config(args.slow, args.batch_pipeline), n)
                .expect("shard count divides blocks");
            engine.set_threads(pool::default_threads().min(n));
            workers = engine.workers();
            let mut generator = spec.generator(args.seed);
            let mut buf: Vec<DiskRequest> = Vec::with_capacity(args.batch);
            let wall = Instant::now();
            let mut remaining = args.requests;
            let mut run_pages = 0u64;
            // Streaming replay: each batch is refilled in one generator
            // call and submitted without materializing the full trace.
            while remaining > 0 {
                let take = remaining.min(args.batch);
                buf.clear();
                generator.fill(take, &mut buf);
                run_pages += buf.iter().map(|r| r.len as u64).sum::<u64>();
                engine.submit(&buf);
                remaining -= take;
            }
            let elapsed = wall.elapsed().as_secs_f64();
            best_s = best_s.min(elapsed);
            pages = run_pages;
            stats = Some(engine.stats());
        }
        let stats = stats.expect("at least one run");
        let pps = pages as f64 / best_s;
        if n == 1 {
            single_shard_pps = Some(pps);
        }
        if max_shard_point.is_none_or(|(m, _)| n > m) {
            max_shard_point = Some((n, pps));
        }
        println!(
            "  shards={n} workers={workers}: {:.1} ms wall, {:.0} pages/s ({:.0} req/s), read hit {:.1}%",
            best_s * 1e3,
            pps,
            args.requests as f64 / best_s,
            100.0 * (1.0 - stats.read_miss_rate()),
        );
        points.push(JsonValue::Object(vec![
            ("shards".into(), JsonValue::UInt(n as u64)),
            ("workers".into(), JsonValue::UInt(workers as u64)),
            (
                "wall_ms".into(),
                JsonValue::Number((best_s * 1e4).round() / 10.0),
            ),
            ("pages".into(), JsonValue::UInt(pages)),
            ("pages_per_sec".into(), JsonValue::Number(pps.round())),
            ("reads".into(), JsonValue::UInt(stats.reads)),
            ("read_hits".into(), JsonValue::UInt(stats.read_hits)),
            ("gc_runs".into(), JsonValue::UInt(stats.gc_runs)),
            (
                "internal_errors".into(),
                JsonValue::UInt(stats.internal_errors),
            ),
        ]));
    }

    let speedup = single_shard_pps.map(|p| p / PRE_PR_BASELINE_PAGES_PER_SEC);
    if let Some(s) = speedup {
        println!(
            "single-shard speedup vs pre-PR baseline ({:.2e} pages/s): {s:.2}x",
            PRE_PR_BASELINE_PAGES_PER_SEC
        );
    }

    let doc = JsonValue::Object(vec![
        (
            "workload".into(),
            JsonValue::String(format!(
                "{} (Zipf 0.8), {}% writes, {} pages footprint, streamed",
                spec.name,
                (spec.write_fraction * 100.0).round(),
                spec.footprint_pages
            )),
        ),
        ("requests".into(), JsonValue::UInt(args.requests as u64)),
        ("batch".into(), JsonValue::UInt(args.batch as u64)),
        ("seed".into(), JsonValue::UInt(args.seed)),
        ("host_cpus".into(), JsonValue::UInt(host_cpus as u64)),
        (
            "batch_pipeline".into(),
            JsonValue::Bool(args.batch_pipeline),
        ),
        (
            "path".into(),
            JsonValue::String(if args.slow { "slow" } else { "fast" }.into()),
        ),
        (
            "measure".into(),
            JsonValue::String(
                "wall-clock pages/sec of streamed trace generation + cache \
                 servicing, best of --repeat runs"
                    .into(),
            ),
        ),
        (
            "pre_pr_baseline_pages_per_sec".into(),
            JsonValue::Number(PRE_PR_BASELINE_PAGES_PER_SEC),
        ),
        (
            "single_shard_speedup_vs_baseline".into(),
            JsonValue::Number(speedup.map_or(0.0, |s| (s * 100.0).round() / 100.0)),
        ),
        ("points".into(), JsonValue::Array(points)),
    ]);
    std::fs::write(&args.out, doc.render() + "\n").expect("write benchmark output");
    println!("wrote {}", args.out);

    if !args.slow {
        // The fast-path gates must default on: a silent default flip is a
        // perf regression the floor check would otherwise misattribute.
        assert!(
            WorkloadSpec::alpha1().fast_sampling,
            "fast_sampling must default on"
        );
        let flash = FlashConfig::default();
        assert!(flash.fast_rng, "fast_rng must default on");
        assert!(
            flash.wear.cache_evaluations,
            "wear cache_evaluations must default on"
        );
        let cache = FlashCacheConfig::default();
        assert!(cache.batch_pipeline, "batch_pipeline must default on");
        assert!(cache.fcht_swar_probe, "fcht_swar_probe must default on");
    }
    if let (Some(floor), Some(pps)) = (args.floor, single_shard_pps) {
        assert!(
            pps >= floor,
            "single-shard replay fell to {pps:.0} pages/s (floor {floor:.0})"
        );
        println!("OK: single-shard {pps:.0} pages/s >= floor {floor:.0}");
    }
    if let (Some(ratio), Some(single), Some((n, max_pps))) =
        (args.scaling_floor, single_shard_pps, max_shard_point)
    {
        assert!(
            max_pps >= ratio * single,
            "{n}-shard replay at {max_pps:.0} pages/s fell below {ratio}x the \
             single-shard {single:.0} pages/s"
        );
        println!("OK: {n}-shard {max_pps:.0} pages/s >= {ratio}x single-shard {single:.0} pages/s");
    }
}
