//! Shard-count scaling benchmark of the [`ShardedCache`] engine.
//!
//! Replays one fixed Zipf read-heavy trace (alpha1 with a 5% write mix)
//! through the batched submission API at several shard counts and
//! reports *modeled* throughput: each batch costs the busiest shard's
//! flash time (foreground + background + GC), i.e. the shards are
//! modeled as concurrently operating flash channels. Modeled time is
//! deterministic for a fixed (seed, shard count) — unlike wall-clock
//! time, which is also reported but depends on the host's core count —
//! so the committed `BENCH_shard.json` is reproducible anywhere.
//!
//! Usage: `bench_shard [--shards 1,2,4,8] [--requests N] [--batch N]
//! [--threads N] [--seed N] [--smoke] [--out PATH]`
//!
//! The shard list always includes 1 as the baseline. When both 1 and 4
//! are measured, the run asserts the ≥2.5x modeled speedup the PR's
//! acceptance criteria require (and CI's `--shards 4 --smoke` re-checks
//! on every push).

use std::time::Instant;

use disk_trace::{DiskRequest, WorkloadSpec};
use flash_obs::JsonValue;
use flashcache_core::FlashCacheConfig;
use flashcache_engine::{pool, ShardedCache};
use nand_flash::{FlashConfig, FlashGeometry};

struct Args {
    shards: Vec<usize>,
    requests: usize,
    batch: usize,
    threads: usize,
    seed: u64,
    smoke: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        shards: vec![1, 2, 4, 8],
        requests: 200_000,
        batch: 512,
        threads: pool::default_threads(),
        seed: 0x5EED,
        smoke: false,
        out: "BENCH_shard.json".to_string(),
    };
    let mut requests_set = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match a.as_str() {
            "--shards" => {
                args.shards = val("--shards")
                    .split(',')
                    .map(|s| s.trim().parse().expect("shard count"))
                    .collect();
            }
            "--requests" => {
                args.requests = val("--requests").parse().expect("request count");
                requests_set = true;
            }
            "--batch" => args.batch = val("--batch").parse().expect("batch size"),
            "--threads" => args.threads = val("--threads").parse().expect("thread count"),
            "--seed" => args.seed = val("--seed").parse().expect("seed"),
            "--smoke" => args.smoke = true,
            "--out" => args.out = val("--out"),
            other => panic!("unknown flag {other}"),
        }
    }
    if args.smoke && !requests_set {
        args.requests = 20_000;
    }
    if !args.shards.contains(&1) {
        args.shards.insert(0, 1);
    }
    args.shards.sort_unstable();
    args.shards.dedup();
    args
}

fn cache_config() -> FlashCacheConfig {
    // 512 blocks × 64 pages: large enough that an 8-way split leaves
    // every shard a full complement of regions, small enough that the
    // Zipf tail still misses and exercises fills + read-region GC.
    FlashCacheConfig::builder()
        .flash(FlashConfig {
            geometry: FlashGeometry {
                blocks: 512,
                pages_per_block: 64,
                ..FlashGeometry::default()
            },
            ..FlashConfig::default()
        })
        .build()
        .expect("bench cache config is valid")
}

fn main() {
    let args = parse_args();

    // alpha1 = Zipf(0.8) over 512MB (§6.2, Table 4), re-mixed to 5%
    // writes for a read-heavy server trace; smoke shrinks the footprint
    // so the cache still warms up within the shorter run.
    let mut spec = WorkloadSpec::alpha1();
    spec.write_fraction = 0.05;
    if args.smoke {
        spec = spec.scaled(8);
    }
    let trace: Vec<DiskRequest> = spec.generator(args.seed).take_requests(args.requests);

    println!(
        "bench_shard: {} requests of {} ({}% writes), batch {}, {} worker threads",
        args.requests,
        spec.name,
        (spec.write_fraction * 100.0).round(),
        args.batch,
        args.threads
    );

    let mut points: Vec<JsonValue> = Vec::new();
    let mut baseline_modeled_us = 0.0f64;
    let mut speedup_at = Vec::new();
    for &n in &args.shards {
        let mut engine = ShardedCache::new(cache_config(), n).expect("shard count divides blocks");
        engine.set_threads(args.threads);
        let wall = Instant::now();
        for chunk in trace.chunks(args.batch) {
            engine.submit(chunk);
        }
        let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
        let stats = engine.stats();

        // Conservation: merged totals must equal the sum of per-shard
        // stats — the aggregation the differential tests pin down.
        let sum_reads: u64 = engine.shard_stats().iter().map(|s| s.reads).sum();
        assert_eq!(sum_reads, stats.reads, "per-shard stats must sum to merged");

        let modeled_us = engine.modeled_time_us();
        let serial_us = engine.serial_time_us();
        if n == 1 {
            baseline_modeled_us = modeled_us;
        }
        let speedup = if baseline_modeled_us > 0.0 && modeled_us > 0.0 {
            baseline_modeled_us / modeled_us
        } else {
            1.0
        };
        speedup_at.push((n, speedup));
        let kreq_s = if modeled_us > 0.0 {
            args.requests as f64 / modeled_us * 1e3
        } else {
            0.0
        };
        println!(
            "  shards={n}: modeled {:.1} ms ({:.0} kreq/s), serial {:.1} ms, wall {:.1} ms, \
             speedup {:.2}x, read hit {:.1}%",
            modeled_us / 1e3,
            kreq_s,
            serial_us / 1e3,
            wall_ms,
            speedup,
            100.0 * (1.0 - stats.read_miss_rate()),
        );
        points.push(JsonValue::Object(vec![
            ("shards".into(), JsonValue::UInt(n as u64)),
            (
                "modeled_ms".into(),
                JsonValue::Number((modeled_us / 1e3 * 10.0).round() / 10.0),
            ),
            (
                "serial_ms".into(),
                JsonValue::Number((serial_us / 1e3 * 10.0).round() / 10.0),
            ),
            (
                "wall_ms".into(),
                JsonValue::Number((wall_ms * 10.0).round() / 10.0),
            ),
            (
                "modeled_kreq_s".into(),
                JsonValue::Number((kreq_s * 10.0).round() / 10.0),
            ),
            (
                "speedup_vs_1_shard".into(),
                JsonValue::Number((speedup * 100.0).round() / 100.0),
            ),
            ("reads".into(), JsonValue::UInt(stats.reads)),
            ("read_hits".into(), JsonValue::UInt(stats.read_hits)),
            ("gc_runs".into(), JsonValue::UInt(stats.gc_runs)),
            (
                "internal_errors".into(),
                JsonValue::UInt(stats.internal_errors),
            ),
        ]));
    }

    let doc = JsonValue::Object(vec![
        (
            "workload".into(),
            JsonValue::String(format!(
                "{} (Zipf 0.8), {}% writes, {} pages footprint",
                spec.name,
                (spec.write_fraction * 100.0).round(),
                spec.footprint_pages
            )),
        ),
        ("requests".into(), JsonValue::UInt(args.requests as u64)),
        ("batch".into(), JsonValue::UInt(args.batch as u64)),
        ("seed".into(), JsonValue::UInt(args.seed)),
        ("flash_blocks".into(), JsonValue::UInt(512)),
        (
            "time_model".into(),
            JsonValue::String(
                "modeled concurrent flash channels: per batch, makespan = busiest \
                 shard's foreground + background + GC time; deterministic for a \
                 fixed (seed, shard count), independent of host core count"
                    .into(),
            ),
        ),
        (
            "worker_threads".into(),
            JsonValue::UInt(args.threads as u64),
        ),
        ("points".into(), JsonValue::Array(points)),
    ]);
    std::fs::write(&args.out, doc.render() + "\n").expect("write benchmark output");
    println!("wrote {}", args.out);

    if let (Some(&(_, s4)), true) = (
        speedup_at.iter().find(|(n, _)| *n == 4),
        speedup_at.iter().any(|(n, _)| *n == 1),
    ) {
        assert!(
            s4 >= 2.5,
            "modeled speedup at 4 shards fell to {s4:.2}x (require >= 2.5x)"
        );
        println!("OK: 4-shard modeled speedup {s4:.2}x >= 2.5x");
    }
}
