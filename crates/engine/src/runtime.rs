//! Persistent shard worker runtime.
//!
//! [`Runtime`] owns N long-lived worker threads, each servicing a fixed
//! subset of the engine's [`FlashCache`] shards for the runtime's whole
//! lifetime — the multi-channel overlap model: channels make progress
//! continuously instead of in per-batch lockstep. Per shard there is
//! one bounded SPSC request ring (submitter → worker) and one bounded
//! SPSC completion ring (worker → submitter); the hot path spawns no
//! threads, takes no locks and allocates nothing.
//!
//! # Quiescence contract
//!
//! Workers touch a shard only between popping a request for it and
//! pushing the matching completion. [`ShardedCache::submit`]
//! (`crate::sharded`) never returns before every pushed request's
//! completion has been popped, and the completion-ring `Release`/
//! `Acquire` pair orders the worker's shard writes before the
//! submitter's subsequent reads. Outside of `submit`, therefore, no
//! worker holds a reference into the slab, which is what makes
//! [`ShardSlab::shards`]/[`ShardSlab::shards_mut`] sound and lets the
//! engine keep its plain `&[FlashCache]` accessors.
//!
//! # Panic hygiene
//!
//! Each operation runs under `catch_unwind`: a panicking shard is
//! poisoned (subsequent operations degrade without touching it), the
//! panic is counted in [`Runtime::internal_errors`], and a degraded
//! disk-bound completion keeps the request/completion counts matched —
//! the submitter never deadlocks on a lost completion.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use disk_trace::OpKind;
use flash_obs::ServiceTier;
use flashcache_core::{AccessOutcome, CacheOp, CacheOutcome, FlashCache};

use crate::ring::{self, Consumer, Producer};

/// One queued operation: (request index, disk page, op).
pub(crate) type Req = (u32, u64, OpKind);

/// One completed operation: (request index, outcome).
pub(crate) type Done = (u32, AccessOutcome);

/// Per-shard ring capacity. The submitter drains completions whenever a
/// request ring fills, so capacity only bounds in-flight burst size,
/// not batch size.
const RING_CAPACITY: usize = 1024;

/// Empty sweeps a worker spins through before parking.
const SPIN_SWEEPS: u32 = 256;

/// Park timeout bounding the cost of a lost wakeup.
const PARK_TIMEOUT: Duration = Duration::from_micros(200);

/// Requests a worker pops from one shard's ring per sweep: large enough
/// to amortize the ring's atomic handoff and feed `op_batch`'s prefetch
/// pipeline, small enough that completions keep flowing back while a
/// batch is in flight.
const CHUNK: usize = 64;

/// The engine's shards, shared between the submitter and the workers.
///
/// The vector's length never changes after construction (callers get
/// `&mut [FlashCache]`, never the `Vec`), so raw element pointers
/// handed to workers stay valid for the slab's lifetime.
pub(crate) struct ShardSlab(std::cell::UnsafeCell<Vec<FlashCache>>);

// SAFETY: access is serialized by the quiescence contract above — the
// submitter only dereferences outside `submit`'s push/drain window, and
// each worker only within it, for its own disjoint shards.
unsafe impl Sync for ShardSlab {}

impl fmt::Debug for ShardSlab {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardSlab").finish_non_exhaustive()
    }
}

impl ShardSlab {
    pub(crate) fn new(shards: Vec<FlashCache>) -> Arc<Self> {
        Arc::new(ShardSlab(std::cell::UnsafeCell::new(shards)))
    }

    /// # Safety
    ///
    /// Caller must hold the quiescence contract: no worker is inside an
    /// operation (true whenever `submit` is not between its first push
    /// and final drain).
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn shards_mut(&self) -> &mut [FlashCache] {
        unsafe { (*self.0.get()).as_mut_slice() }
    }

    /// # Safety
    ///
    /// Same contract as [`ShardSlab::shards_mut`].
    pub(crate) unsafe fn shards(&self) -> &[FlashCache] {
        unsafe { (*self.0.get()).as_slice() }
    }
}

/// One shard as seen from its worker thread.
struct WorkerShard {
    /// Raw pointer into the slab; valid for the worker's lifetime
    /// because the runtime holds the slab `Arc` and the vector never
    /// reallocates.
    cache: *mut FlashCache,
    req: Consumer<Req>,
    done: Producer<Done>,
    /// Set when an operation on this shard panicked; later operations
    /// degrade without touching the (possibly inconsistent) shard.
    poisoned: bool,
}

/// Moves the raw shard pointers into the worker thread.
struct WorkerCtx {
    shards: Vec<WorkerShard>,
    shutdown: Arc<AtomicBool>,
    sleeping: Arc<AtomicBool>,
    errors: Arc<AtomicU64>,
    panic_page: Option<u64>,
}

// SAFETY: the pointers target slab elements owned (at runtime, by ring
// handoff) exclusively by this worker; the slab outlives the thread via
// the runtime's `Arc`.
unsafe impl Send for WorkerCtx {}

/// Persistent worker threads plus the submitter-side ring endpoints.
pub(crate) struct Runtime {
    /// Per-shard request producers, in shard order.
    req: Vec<Producer<Req>>,
    /// Per-shard completion consumers, in shard order.
    done: Vec<Consumer<Done>>,
    /// Shard index → worker index.
    shard_worker: Vec<usize>,
    /// Per-worker "parked or about to park" flags.
    sleeping: Vec<Arc<AtomicBool>>,
    handles: Vec<JoinHandle<()>>,
    shutdown: Arc<AtomicBool>,
    errors: Arc<AtomicU64>,
    workers: usize,
    /// Keeps the shard storage alive as long as any worker holds
    /// pointers into it.
    _slab: Arc<ShardSlab>,
}

impl fmt::Debug for Runtime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Runtime")
            .field("workers", &self.workers)
            .field("shards", &self.shard_worker.len())
            .finish_non_exhaustive()
    }
}

impl Runtime {
    /// Spawns `workers` threads over the slab's shards (shard `s` is
    /// owned by worker `s % workers`).
    pub(crate) fn spawn(slab: &Arc<ShardSlab>, workers: usize, panic_page: Option<u64>) -> Runtime {
        // SAFETY: construction happens before any worker exists.
        let n = unsafe { slab.shards() }.len();
        let workers = workers.max(1).min(n.max(1));
        let shutdown = Arc::new(AtomicBool::new(false));
        let errors = Arc::new(AtomicU64::new(0));
        let mut req = Vec::with_capacity(n);
        let mut done = Vec::with_capacity(n);
        let mut shard_worker = Vec::with_capacity(n);
        let mut ctxs: Vec<WorkerCtx> = (0..workers)
            .map(|_| WorkerCtx {
                shards: Vec::new(),
                shutdown: Arc::clone(&shutdown),
                sleeping: Arc::new(AtomicBool::new(false)),
                errors: Arc::clone(&errors),
                panic_page,
            })
            .collect();
        // SAFETY: the vec is fully built and will not reallocate again.
        let base = unsafe { slab.shards_mut() }.as_mut_ptr();
        for s in 0..n {
            let (req_tx, req_rx) = ring::pair::<Req>(RING_CAPACITY);
            let (done_tx, done_rx) = ring::pair::<Done>(RING_CAPACITY);
            req.push(req_tx);
            done.push(done_rx);
            let w = s % workers;
            shard_worker.push(w);
            ctxs[w].shards.push(WorkerShard {
                // SAFETY: s < n, in bounds.
                cache: unsafe { base.add(s) },
                req: req_rx,
                done: done_tx,
                poisoned: false,
            });
        }
        let sleeping = ctxs.iter().map(|c| Arc::clone(&c.sleeping)).collect();
        let handles = ctxs
            .into_iter()
            .enumerate()
            .map(|(w, ctx)| {
                std::thread::Builder::new()
                    .name(format!("flashcache-shard-worker-{w}"))
                    .spawn(move || worker_loop(ctx))
                    .expect("spawn shard worker")
            })
            .collect();
        Runtime {
            req,
            done,
            shard_worker,
            sleeping,
            handles,
            shutdown,
            errors,
            workers,
            _slab: Arc::clone(slab),
        }
    }

    /// Worker threads backing this runtime.
    pub(crate) fn workers(&self) -> usize {
        self.workers
    }

    /// Operations degraded by worker panics so far.
    pub(crate) fn internal_errors(&self) -> u64 {
        self.errors.load(Ordering::Acquire)
    }

    /// Enqueues as many of `items` for shard `s` as fit right now,
    /// returning how many were taken. One Release store publishes the
    /// whole prefix; the caller drains completions and retries the
    /// remainder — that retry-after-drain is what guarantees progress
    /// when a ring fills.
    #[inline]
    pub(crate) fn push_slice(&mut self, s: usize, items: &[Req]) -> usize {
        self.req[s].push_slice(items)
    }

    /// Unparks the worker owning shard `s` if it is (about to go)
    /// sleeping. Cheap when the worker is busy: one relaxed load.
    #[inline]
    pub(crate) fn wake(&self, s: usize) {
        let w = self.shard_worker[s];
        if self.sleeping[w].load(Ordering::Relaxed)
            && self.sleeping[w].swap(false, Ordering::AcqRel)
        {
            self.handles[w].thread().unpark();
        }
    }

    /// Pops every currently available completion into `bufs` (one
    /// buffer per shard, in arrival = per-shard submission order) and
    /// returns how many were moved.
    pub(crate) fn drain(&mut self, bufs: &mut [Vec<Done>]) -> usize {
        let mut moved = 0;
        for (s, ring) in self.done.iter_mut().enumerate() {
            while let Some(d) = ring.pop() {
                bufs[s].push(d);
                moved += 1;
            }
        }
        moved
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        for (w, h) in self.handles.iter().enumerate() {
            self.sleeping[w].store(false, Ordering::Release);
            h.thread().unpark();
        }
        for h in self.handles.drain(..) {
            // A worker that somehow died panicking already did its
            // damage; joining must not double-panic the engine.
            let _ = h.join();
        }
    }
}

/// Outcome reported for an operation whose shard panicked: the access
/// bypasses the cache and the caller goes to disk, mirroring the
/// degraded outcome `FlashCache::read`/`write` produce for internal
/// [`CacheError`]s.
fn degraded(op: OpKind) -> AccessOutcome {
    AccessOutcome {
        hit: false,
        tier: ServiceTier::Disk,
        needs_disk_read: matches!(op, OpKind::Read),
        bypassed: true,
        ..AccessOutcome::default()
    }
}

fn worker_loop(mut ctx: WorkerCtx) {
    let mut idle_sweeps = 0u32;
    // Reused scratch: the hot path allocates nothing after warm-up.
    let mut reqs: Vec<Req> = Vec::with_capacity(CHUNK);
    let mut ops: Vec<CacheOp> = Vec::with_capacity(CHUNK);
    let mut outs: Vec<CacheOutcome> = Vec::with_capacity(CHUNK);
    let mut done: Vec<Done> = Vec::with_capacity(CHUNK);
    loop {
        let mut serviced = 0usize;
        for sh in ctx.shards.iter_mut() {
            loop {
                reqs.clear();
                if sh.req.pop_chunk(&mut reqs, CHUNK) == 0 {
                    break;
                }
                serviced += reqs.len();
                done.clear();
                if ctx.panic_page.is_some() || sh.poisoned {
                    // Op-at-a-time fallback: keeps the panic-injection
                    // hook and poisoned-shard accounting exact per op.
                    for &(ri, page, op) in &reqs {
                        done.push((ri, service(sh, page, op, ctx.panic_page, &ctx.errors)));
                    }
                } else {
                    service_chunk(sh, &reqs, &mut ops, &mut outs, &mut done, &ctx.errors);
                }
                // The submitter drains completions whenever it stalls,
                // so a full ring always makes progress; yielding lets
                // it run when cores are scarce.
                let mut sent = 0;
                while sent < done.len() {
                    let took = sh.done.push_slice(&done[sent..]);
                    if took == 0 {
                        std::thread::yield_now();
                    }
                    sent += took;
                }
            }
        }
        if serviced > 0 {
            idle_sweeps = 0;
            continue;
        }
        if ctx.shutdown.load(Ordering::Acquire) {
            break;
        }
        idle_sweeps += 1;
        if idle_sweeps < SPIN_SWEEPS {
            // Brief pure spin for low latency, then yield so a starved
            // submitter can run on core-scarce hosts.
            if idle_sweeps < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
            continue;
        }
        // Park protocol: announce first, then re-check for work pushed
        // concurrently; the timeout bounds any remaining lost-wakeup
        // window.
        ctx.sleeping.store(true, Ordering::SeqCst);
        let work_waiting = ctx.shards.iter_mut().any(|sh| !sh.req.is_empty())
            || ctx.shutdown.load(Ordering::Acquire);
        if work_waiting {
            ctx.sleeping.store(false, Ordering::SeqCst);
        } else {
            std::thread::park_timeout(PARK_TIMEOUT);
            ctx.sleeping.store(false, Ordering::SeqCst);
        }
        idle_sweeps = 0;
    }
}

/// Services a popped chunk through [`FlashCache::op_batch_into`] under
/// one `catch_unwind`. Because the batch executes ops sequentially in
/// order, a panic at op `k` leaves exactly `k` completed outcomes in
/// `outs`; those are reported as-is and the rest degrade — the same
/// completions and error count the op-at-a-time path would produce.
fn service_chunk(
    sh: &mut WorkerShard,
    reqs: &[Req],
    ops: &mut Vec<CacheOp>,
    outs: &mut Vec<CacheOutcome>,
    done: &mut Vec<Done>,
    errors: &AtomicU64,
) {
    ops.clear();
    outs.clear();
    for &(_, page, op) in reqs {
        ops.push(match op {
            OpKind::Read => CacheOp::read(page),
            OpKind::Write => CacheOp::write(page),
        });
    }
    // SAFETY: ring handoff gives this worker exclusive access to the
    // shard for the duration of the chunk (quiescence contract).
    let cache = unsafe { &mut *sh.cache };
    let result = catch_unwind(AssertUnwindSafe(|| cache.op_batch_into(ops, outs)));
    match result {
        Ok(()) => {
            for (&(ri, _, _), out) in reqs.iter().zip(outs.iter()) {
                done.push((ri, out.access));
            }
        }
        Err(_) => {
            sh.poisoned = true;
            errors.fetch_add((reqs.len() - outs.len()) as u64, Ordering::AcqRel);
            for (k, &(ri, _, op)) in reqs.iter().enumerate() {
                done.push((
                    ri,
                    if k < outs.len() {
                        outs[k].access
                    } else {
                        degraded(op)
                    },
                ));
            }
        }
    }
}

/// Runs one operation on the worker's shard, converting a panic into a
/// degraded completion and poisoning the shard.
fn service(
    sh: &mut WorkerShard,
    page: u64,
    op: OpKind,
    panic_page: Option<u64>,
    errors: &AtomicU64,
) -> AccessOutcome {
    if sh.poisoned {
        errors.fetch_add(1, Ordering::AcqRel);
        return degraded(op);
    }
    // SAFETY: ring handoff gives this worker exclusive access to the
    // shard for the duration of the operation (quiescence contract).
    let cache = unsafe { &mut *sh.cache };
    let result = catch_unwind(AssertUnwindSafe(|| {
        if panic_page == Some(page) {
            panic!("injected worker panic (test hook)");
        }
        match op {
            OpKind::Read => cache.op(CacheOp::read(page)).access,
            OpKind::Write => cache.op(CacheOp::write(page)).access,
        }
    }));
    match result {
        Ok(out) => out,
        Err(_) => {
            sh.poisoned = true;
            errors.fetch_add(1, Ordering::AcqRel);
            degraded(op)
        }
    }
}
