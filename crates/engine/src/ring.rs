//! Bounded single-producer/single-consumer ring buffers.
//!
//! The persistent shard runtime ([`crate::runtime`]) moves requests and
//! completions between the submitter and each worker over these rings:
//! fixed power-of-two capacity, monotonic head/tail counters masked on
//! access, and `Acquire`/`Release` pairs as the only synchronization —
//! no locks, no allocation after construction. The two counters live on
//! separate cache lines so the producer and consumer never false-share,
//! and each side caches its last view of the peer counter so the common
//! push/pop touches one shared line instead of two.
//!
//! The single-producer/single-consumer contract is enforced by the
//! types: [`pair`] returns one non-cloneable [`Producer`] and one
//! non-cloneable [`Consumer`], each usable from one thread at a time
//! (`&mut self` operations, `Send` but not `Sync`).

use std::cell::UnsafeCell;
use std::fmt;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Pads a counter to its own cache line so head and tail never share.
#[repr(align(64))]
struct CachePadded<T>(T);

struct Inner<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// `capacity - 1`; capacity is a power of two.
    mask: usize,
    /// Next slot the consumer will read (monotonic, not masked).
    head: CachePadded<AtomicUsize>,
    /// Next slot the producer will write (monotonic, not masked).
    tail: CachePadded<AtomicUsize>,
}

// SAFETY: the buffer cells are only touched by the producer (slots in
// [head, tail)) or the consumer (slot at head), never both at once: a
// slot becomes visible to the consumer only through the Release store
// of `tail`, and is handed back to the producer only through the
// Release store of `head`.
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Exclusive access: drop any items still in flight.
        let head = *self.head.0.get_mut();
        let tail = *self.tail.0.get_mut();
        for i in head..tail {
            unsafe { (*self.buf[i & self.mask].get()).assume_init_drop() };
        }
    }
}

/// The sending half of a bounded SPSC ring.
pub struct Producer<T> {
    inner: Arc<Inner<T>>,
    /// Last observed consumer position; refreshed only when the ring
    /// looks full, so steady-state pushes never load the shared head.
    cached_head: usize,
}

/// The receiving half of a bounded SPSC ring.
pub struct Consumer<T> {
    inner: Arc<Inner<T>>,
    /// Last observed producer position; refreshed only when the ring
    /// looks empty.
    cached_tail: usize,
}

impl<T> fmt::Debug for Producer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Producer")
            .field("capacity", &(self.inner.mask + 1))
            .finish_non_exhaustive()
    }
}

impl<T> fmt::Debug for Consumer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Consumer")
            .field("capacity", &(self.inner.mask + 1))
            .finish_non_exhaustive()
    }
}

/// Creates a connected producer/consumer pair with room for at least
/// `capacity` items (rounded up to a power of two, minimum 2).
pub fn pair<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.next_power_of_two().max(2);
    let buf = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let inner = Arc::new(Inner {
        buf,
        mask: cap - 1,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
    });
    (
        Producer {
            inner: Arc::clone(&inner),
            cached_head: 0,
        },
        Consumer {
            inner,
            cached_tail: 0,
        },
    )
}

impl<T> Producer<T> {
    /// Pushes `item`, or hands it back if the ring is full.
    #[inline]
    pub fn push(&mut self, item: T) -> Result<(), T> {
        let inner = &*self.inner;
        let tail = inner.tail.0.load(Ordering::Relaxed);
        if tail.wrapping_sub(self.cached_head) > inner.mask {
            self.cached_head = inner.head.0.load(Ordering::Acquire);
            if tail.wrapping_sub(self.cached_head) > inner.mask {
                return Err(item);
            }
        }
        // SAFETY: the slot at `tail` is outside [head, tail) so the
        // consumer does not touch it; we are the only producer.
        unsafe { (*inner.buf[tail & inner.mask].get()).write(item) };
        inner.tail.0.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Pushes as many items from `items` as currently fit, returning
    /// how many were taken (a prefix of the slice). One Release store
    /// of `tail` publishes the whole batch, so a full batch costs the
    /// consumer a single Acquire instead of one per item.
    #[inline]
    pub fn push_slice(&mut self, items: &[T]) -> usize
    where
        T: Copy,
    {
        let inner = &*self.inner;
        let tail = inner.tail.0.load(Ordering::Relaxed);
        let mut free = inner.mask + 1 - tail.wrapping_sub(self.cached_head);
        if free < items.len() {
            self.cached_head = inner.head.0.load(Ordering::Acquire);
            free = inner.mask + 1 - tail.wrapping_sub(self.cached_head);
        }
        let n = items.len().min(free);
        for (k, &item) in items[..n].iter().enumerate() {
            // SAFETY: slots [tail, tail + n) lie outside [head, tail)
            // so the consumer does not touch them; we are the only
            // producer, and they become visible only via the store
            // below.
            unsafe { (*inner.buf[tail.wrapping_add(k) & inner.mask].get()).write(item) };
        }
        if n > 0 {
            inner.tail.0.store(tail.wrapping_add(n), Ordering::Release);
        }
        n
    }

    /// Ring capacity (always a power of two).
    pub fn capacity(&self) -> usize {
        self.inner.mask + 1
    }
}

impl<T> Consumer<T> {
    /// Pops the oldest item, or `None` if the ring is empty.
    #[inline]
    pub fn pop(&mut self) -> Option<T> {
        let inner = &*self.inner;
        let head = inner.head.0.load(Ordering::Relaxed);
        if head == self.cached_tail {
            self.cached_tail = inner.tail.0.load(Ordering::Acquire);
            if head == self.cached_tail {
                return None;
            }
        }
        // SAFETY: head < tail, so the slot holds an initialized item the
        // producer published with a Release store; we are the only
        // consumer.
        let item = unsafe { (*inner.buf[head & inner.mask].get()).assume_init_read() };
        inner.head.0.store(head.wrapping_add(1), Ordering::Release);
        Some(item)
    }

    /// Pops up to `max` items into `out` (appended; not cleared),
    /// returning how many were taken. One Release store of `head`
    /// retires the whole chunk — the batched dual of
    /// [`Producer::push_slice`].
    #[inline]
    pub fn pop_chunk(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        let inner = &*self.inner;
        let head = inner.head.0.load(Ordering::Relaxed);
        let mut avail = self.cached_tail.wrapping_sub(head);
        if avail < max {
            self.cached_tail = inner.tail.0.load(Ordering::Acquire);
            avail = self.cached_tail.wrapping_sub(head);
        }
        let n = avail.min(max);
        out.reserve(n);
        for k in 0..n {
            // SAFETY: slots [head, head + n) are inside [head, tail),
            // published by the producer's Release store; we are the
            // only consumer and hand them back only via the store
            // below.
            let item =
                unsafe { (*inner.buf[head.wrapping_add(k) & inner.mask].get()).assume_init_read() };
            out.push(item);
        }
        if n > 0 {
            inner.head.0.store(head.wrapping_add(n), Ordering::Release);
        }
        n
    }

    /// `true` if no item is currently available. A `false` answer is
    /// authoritative (the item stays until this consumer pops it); a
    /// `true` answer can race with a concurrent push.
    pub fn is_empty(&mut self) -> bool {
        let inner = &*self.inner;
        let head = inner.head.0.load(Ordering::Relaxed);
        if head != self.cached_tail {
            return false;
        }
        self.cached_tail = inner.tail.0.load(Ordering::Acquire);
        head == self.cached_tail
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_in_order() {
        let (mut tx, mut rx) = pair::<u32>(4);
        assert!(rx.is_empty());
        for i in 0..4 {
            tx.push(i).unwrap();
        }
        assert_eq!(tx.push(99), Err(99), "ring is full");
        for i in 0..4 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn capacity_rounds_up() {
        let (tx, _rx) = pair::<u8>(5);
        assert_eq!(tx.capacity(), 8);
        let (tx, _rx) = pair::<u8>(0);
        assert_eq!(tx.capacity(), 2);
    }

    #[test]
    fn wraps_many_times() {
        let (mut tx, mut rx) = pair::<usize>(8);
        for i in 0..10_000 {
            while tx.push(i).is_err() {}
            assert_eq!(rx.pop(), Some(i));
        }
    }

    #[test]
    fn drops_items_left_in_ring() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let (mut tx, mut rx) = pair::<Counted>(4);
        for _ in 0..3 {
            tx.push(Counted).unwrap();
        }
        drop(rx.pop());
        let before = DROPS.load(Ordering::Relaxed);
        assert_eq!(before, 1);
        drop(tx);
        drop(rx);
        assert_eq!(DROPS.load(Ordering::Relaxed), 3, "in-flight items drop");
    }

    #[test]
    fn slice_roundtrip_partial_fills() {
        let (mut tx, mut rx) = pair::<u32>(4);
        assert_eq!(tx.push_slice(&[1, 2, 3, 4, 5, 6]), 4, "prefix that fits");
        assert_eq!(tx.push_slice(&[7]), 0, "full ring takes nothing");
        let mut got = Vec::new();
        assert_eq!(rx.pop_chunk(&mut got, 3), 3);
        assert_eq!(got, [1, 2, 3]);
        assert_eq!(tx.push_slice(&[7, 8]), 2, "space reclaimed by the chunk");
        assert_eq!(rx.pop_chunk(&mut got, 16), 3, "capped by availability");
        assert_eq!(got, [1, 2, 3, 4, 7, 8]);
        assert_eq!(rx.pop_chunk(&mut got, 16), 0);
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn slice_ops_interoperate_with_scalar_ops() {
        let (mut tx, mut rx) = pair::<usize>(8);
        let mut next = 0usize; // produced
        let mut expect = 0usize; // consumed
        let mut buf = Vec::new();
        for round in 0..5_000 {
            match round % 3 {
                0 => {
                    let items: Vec<usize> = (next..next + 3).collect();
                    next += tx.push_slice(&items);
                }
                1 if tx.push(next).is_ok() => next += 1,
                _ => {}
            }
            if round % 2 == 0 {
                buf.clear();
                rx.pop_chunk(&mut buf, 4);
                for &v in &buf {
                    assert_eq!(v, expect);
                    expect += 1;
                }
            } else if let Some(v) = rx.pop() {
                assert_eq!(v, expect);
                expect += 1;
            }
        }
        while let Some(v) = rx.pop() {
            assert_eq!(v, expect);
            expect += 1;
        }
        assert_eq!(expect, next);
    }

    #[test]
    fn cross_thread_slices() {
        let (mut tx, mut rx) = pair::<u64>(16);
        let n = 100_000u64;
        std::thread::scope(|s| {
            s.spawn(move || {
                let mut sent = 0u64;
                while sent < n {
                    let batch: Vec<u64> = (sent..(sent + 7).min(n)).collect();
                    let took = tx.push_slice(&batch) as u64;
                    if took == 0 {
                        std::thread::yield_now();
                    }
                    sent += took;
                }
            });
            let mut expect = 0u64;
            let mut buf = Vec::new();
            while expect < n {
                buf.clear();
                if rx.pop_chunk(&mut buf, 64) == 0 {
                    std::thread::yield_now();
                }
                for &v in &buf {
                    assert_eq!(v, expect);
                    expect += 1;
                }
            }
        });
    }

    #[test]
    fn cross_thread_stream() {
        let (mut tx, mut rx) = pair::<u64>(16);
        let n = 100_000u64;
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..n {
                    let mut v = i;
                    loop {
                        match tx.push(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            });
            let mut expect = 0u64;
            while expect < n {
                if let Some(v) = rx.pop() {
                    assert_eq!(v, expect);
                    expect += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        });
    }
}
