//! Scoped thread pool primitives shared by the engine and the bench
//! sweep runners.
//!
//! [`par_map`] fans independent work items across OS threads with
//! `std::thread::scope` — no external dependencies — while preserving
//! input order in the results. The engine uses it to execute cache
//! shards concurrently; the bench crate re-exports it (as
//! `flashcache_bench::parallel`) for its embarrassingly parallel figure
//! sweeps, where every point is an independent simulation with its own
//! seed.
//!
//! Distribution is lock-free: workers claim indices from one atomic
//! counter and write results into pre-split per-index slots, so figure
//! sweeps never serialize on a queue or results mutex.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default worker count: the machine's available parallelism, 1 if it
/// cannot be determined.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Per-index slots shared across workers without a lock. Safe because
/// the claim counter hands each index to exactly one worker, and the
/// scope join orders every slot write before the final collection.
struct Slots<V>(Vec<UnsafeCell<Option<V>>>);

// SAFETY: disjoint-index access only (see above).
unsafe impl<V: Send> Sync for Slots<V> {}

/// Maps `f` over `items` on up to `threads` worker threads, returning
/// results in input order.
///
/// Work is distributed dynamically (each worker claims the next pending
/// index from an atomic counter), so uneven per-item cost — e.g.
/// short-lived vs long-lived workloads in a lifetime sweep, or
/// imbalanced shard groups in a cache batch — balances automatically,
/// and neither the claim nor the result write takes a lock. With
/// `threads <= 1` or a single item, runs inline with no thread
/// overhead.
///
/// # Panics
///
/// Propagates a panic from any worker once all threads are joined.
pub fn par_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = threads.max(1).min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let items: Slots<T> = Slots(
        items
            .into_iter()
            .map(|t| UnsafeCell::new(Some(t)))
            .collect(),
    );
    let results: Slots<R> = Slots((0..n).map(|_| UnsafeCell::new(None)).collect());
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        // Shared by reference to the whole `Slots` wrappers (not their
        // inner vectors), which is what carries the `Sync` promise.
        let (items, results, next, f) = (&items, &results, &next, &f);
        for _ in 0..threads {
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // SAFETY: the fetch_add above hands index `i` to this
                // worker exclusively, so no other thread touches either
                // slot `i`.
                let item = unsafe { (*items.0[i].get()).take() }.expect("item claimed once");
                let r = f(item);
                unsafe { *results.0[i].get() = Some(r) };
            });
        }
    });
    results
        .0
        .into_iter()
        .map(|c| c.into_inner().expect("every item was processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_maps_all_items() {
        let items: Vec<u64> = (0..100).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 7, 64] {
            let got = par_map(items.clone(), threads, |x| x * x);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(par_map(Vec::<u32>::new(), 8, |x| x), Vec::<u32>::new());
        assert_eq!(par_map(vec![41u32], 8, |x| x + 1), vec![42]);
    }

    #[test]
    fn uneven_work_balances() {
        // Items with wildly different costs still come back in order.
        let items: Vec<u64> = (0..16).collect();
        let got = par_map(items, 4, |x| {
            let spins = if x % 4 == 0 { 200_000 } else { 10 };
            let mut acc = x;
            for i in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            (x, acc)
        });
        for (i, (x, _)) in got.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
