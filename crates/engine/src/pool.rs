//! Scoped thread pool primitives shared by the engine and the bench
//! sweep runners.
//!
//! [`par_map`] fans independent work items across OS threads with
//! `std::thread::scope` — no external dependencies — while preserving
//! input order in the results. The engine uses it to execute cache
//! shards concurrently; the bench crate re-exports it (as
//! `flashcache_bench::parallel`) for its embarrassingly parallel figure
//! sweeps, where every point is an independent simulation with its own
//! seed.

use std::sync::Mutex;

/// Default worker count: the machine's available parallelism, 1 if it
/// cannot be determined.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `items` on up to `threads` worker threads, returning
/// results in input order.
///
/// Work is distributed dynamically (each worker pulls the next pending
/// item), so uneven per-item cost — e.g. short-lived vs long-lived
/// workloads in a lifetime sweep, or imbalanced shard groups in a cache
/// batch — balances automatically. With `threads <= 1` or a single
/// item, runs inline with no thread overhead.
///
/// # Panics
///
/// Propagates a panic from any worker once all threads are joined.
pub fn par_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = threads.max(1).min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Index-tagged LIFO work queue (reversed so items pop in order) and
    // order-preserving result slots.
    let queue: Mutex<Vec<(usize, T)>> = Mutex::new(items.into_iter().enumerate().rev().collect());
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let next = queue.lock().expect("queue poisoned").pop();
                match next {
                    Some((i, item)) => {
                        let r = f(item);
                        results.lock().expect("results poisoned")[i] = Some(r);
                    }
                    None => break,
                }
            });
        }
    });
    results
        .into_inner()
        .expect("results poisoned")
        .into_iter()
        .map(|r| r.expect("every item was processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_maps_all_items() {
        let items: Vec<u64> = (0..100).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 7, 64] {
            let got = par_map(items.clone(), threads, |x| x * x);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(par_map(Vec::<u32>::new(), 8, |x| x), Vec::<u32>::new());
        assert_eq!(par_map(vec![41u32], 8, |x| x + 1), vec![42]);
    }

    #[test]
    fn uneven_work_balances() {
        // Items with wildly different costs still come back in order.
        let items: Vec<u64> = (0..16).collect();
        let got = par_map(items, 4, |x| {
            let spins = if x % 4 == 0 { 200_000 } else { 10 };
            let mut acc = x;
            for i in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            (x, acc)
        });
        for (i, (x, _)) in got.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
