//! Hash-partitioned sharding of the flash disk cache.

use std::fmt;
use std::sync::Arc;

use disk_trace::{DiskRequest, OpKind};
use flash_obs::{ObsSink, Registry, ServiceTier};
use flashcache_core::tables::Fgst;
use flashcache_core::{
    AccessOutcome, AdmissionPolicyConfig, CacheError, CacheOp, CacheOutcome, CacheStats,
    ConfigError, FlashCache, FlashCacheConfig,
};

use crate::pool;
use crate::runtime::{Done, Runtime, ShardSlab};

/// Golden-ratio increment decorrelating per-shard RNG seeds.
const SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Execution policy of a [`ShardedCache`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// Service batches on the persistent shard runtime (pinned worker
    /// threads fed by SPSC rings) instead of the per-batch scoped
    /// thread pool. Default `true`; turning it off keeps the scoped
    /// pool as a differential oracle. Either way results are
    /// byte-identical — only wall-clock time changes.
    pub persistent_workers: bool,
    /// Worker-thread override. `None` uses the machine's available
    /// parallelism (capped by the shard count).
    pub workers: Option<usize>,
    /// Test hook: a worker panics when servicing this disk page,
    /// exercising the poisoning/degraded-completion path. Only honored
    /// by the persistent runtime.
    #[doc(hidden)]
    pub panic_page: Option<u64>,
    /// Admission-policy override applied to every shard's configuration
    /// (each shard gets its own independent policy state). `None` keeps
    /// whatever the [`FlashCacheConfig`] carries.
    pub admission: Option<AdmissionPolicyConfig>,
    /// Longevity-bucket override applied to every shard's write region.
    /// `None` keeps the [`FlashCacheConfig`] value.
    pub longevity_buckets: Option<u32>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            persistent_workers: true,
            workers: None,
            panic_page: None,
            admission: None,
            longevity_buckets: None,
        }
    }
}

/// A sharded-engine construction error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The per-shard cache configuration failed validation.
    Config(ConfigError),
    /// Shard count must be at least 1.
    InvalidShardCount {
        /// The rejected count.
        shards: usize,
    },
    /// The device's blocks cannot be divided evenly across the shards —
    /// an uneven split would silently change total capacity.
    IndivisibleBlocks {
        /// Blocks on the unsharded device.
        blocks: u32,
        /// Requested shard count.
        shards: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Config(e) => write!(f, "{e}"),
            EngineError::InvalidShardCount { shards } => {
                write!(f, "shard count must be >= 1, got {shards}")
            }
            EngineError::IndivisibleBlocks { blocks, shards } => write!(
                f,
                "{blocks} flash blocks cannot be split evenly across {shards} shards"
            ),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for EngineError {
    fn from(e: ConfigError) -> Self {
        EngineError::Config(e)
    }
}

/// One shard's slice of a batch: `(request index, disk page, op)` in
/// submission order.
type ShardOps = Vec<(u32, u64, OpKind)>;

/// Folds a later page's outcome into a multi-page request's merged
/// outcome: latencies sum, `hit` requires every page to hit, and the
/// tier degrades to [`ServiceTier::Disk`] if any page needs the disk.
fn merge_outcome(slot: &mut AccessOutcome, out: AccessOutcome) {
    slot.hit &= out.hit;
    slot.latency_us += out.latency_us;
    slot.queue_wait_us += out.queue_wait_us;
    slot.background_us += out.background_us;
    slot.needs_disk_read |= out.needs_disk_read;
    slot.flushed_dirty += out.flushed_dirty;
    slot.uncorrectable |= out.uncorrectable;
    slot.bypassed |= out.bypassed;
    if out.tier == ServiceTier::Disk {
        slot.tier = ServiceTier::Disk;
    }
}

/// splitmix64 finalizer: uncorrelates disk-page numbers before the
/// modulo so striding access patterns spread across shards.
#[inline]
fn mix(page: u64) -> u64 {
    let mut z = page.wrapping_add(SEED_STRIDE);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// N independent [`FlashCache`] shards hash-partitioning the disk-page
/// address space, executed concurrently per batch.
///
/// The device geometry is split N ways (blocks / N per shard), so total
/// flash capacity is conserved; each shard runs the paper's full
/// machinery — GC, wear levelling, controller reconfiguration — over
/// its own slice of both the address space and the device. Shard 0
/// keeps the base configuration's RNG seed, so `shards = 1` constructs
/// a cache that behaves **bit-identically** to
/// `FlashCache::new(config)`.
///
/// # Determinism
///
/// For a fixed (configuration seed, shard count), every query — merged
/// stats, outcomes, modeled times — is reproducible regardless of the
/// worker-thread count: batches partition deterministically (splitmix64
/// of the page number, mod N), each shard consumes its slice in batch
/// order, and result slots are keyed by request index.
///
/// # Examples
///
/// ```
/// use disk_trace::DiskRequest;
/// use flashcache_core::FlashCacheConfig;
/// use flashcache_engine::ShardedCache;
///
/// let config = FlashCacheConfig::builder().build().unwrap();
/// let mut engine = ShardedCache::new(config, 4).unwrap();
/// let batch: Vec<DiskRequest> = (0..64).map(DiskRequest::read).collect();
/// let outcomes = engine.submit(&batch);
/// assert_eq!(outcomes.len(), 64);
/// assert_eq!(engine.stats().reads, 64);
/// ```
#[derive(Debug)]
pub struct ShardedCache {
    /// Persistent worker runtime (spawned lazily on the first batch
    /// that can use it). Declared before `slab` so workers join before
    /// the shard storage can possibly drop.
    runtime: Option<Runtime>,
    slab: Arc<ShardSlab>,
    /// Shard count (the slab's length, cached).
    n: usize,
    engine: EngineConfig,
    /// Worker threads used per batch (capped by the shard count).
    threads: usize,
    /// Reused per-batch partition buffers (inline/scoped paths).
    groups: Vec<ShardOps>,
    /// Reused per-batch completion buffers (runtime path), one per
    /// shard in per-shard submission order.
    done_bufs: Vec<Vec<Done>>,
    /// Reused per-batch GC-time snapshots (runtime path).
    gc_before: Vec<f64>,
    /// Reused typed-op staging buffer (single/inline paths): the batch
    /// handed to [`FlashCache::op_batch_into`].
    op_buf: Vec<CacheOp>,
    /// Reused outcome buffer filled by [`FlashCache::op_batch_into`].
    out_buf: Vec<CacheOutcome>,
    /// Accumulated per-shard flash busy time over batched submissions,
    /// µs (foreground + background + GC).
    shard_busy_us: Vec<f64>,
    /// Accumulated modeled batch makespans, µs: each batch contributes
    /// its busiest shard's time, modelling shards as concurrently
    /// operating flash channels.
    makespan_us: f64,
    /// Batches submitted.
    batches: u64,
    /// Guards the Drop-time per-shard metric flush.
    obs_flushed: bool,
}

impl ShardedCache {
    /// Builds `shards` independent caches, splitting the configured
    /// device's blocks evenly among them, with the default
    /// [`EngineConfig`] (persistent workers on, auto-sized).
    ///
    /// Shard `i` derives its RNG seed as `base + i * stride` (shard 0 =
    /// base), so different shards sample independent error/quality
    /// streams while the whole ensemble stays reproducible.
    ///
    /// # Errors
    ///
    /// * [`EngineError::InvalidShardCount`] for `shards == 0`;
    /// * [`EngineError::IndivisibleBlocks`] if the block count does not
    ///   divide evenly;
    /// * [`EngineError::Config`] if the derived per-shard configuration
    ///   fails validation (e.g. fewer than 4 blocks per shard).
    pub fn new(config: FlashCacheConfig, shards: usize) -> Result<Self, EngineError> {
        Self::with_engine_config(config, shards, EngineConfig::default())
    }

    /// [`ShardedCache::new`] with an explicit execution policy.
    ///
    /// # Errors
    ///
    /// Same as [`ShardedCache::new`].
    pub fn with_engine_config(
        config: FlashCacheConfig,
        shards: usize,
        engine: EngineConfig,
    ) -> Result<Self, EngineError> {
        if shards == 0 {
            return Err(EngineError::InvalidShardCount { shards });
        }
        let blocks = config.flash.geometry.blocks;
        if !(blocks as usize).is_multiple_of(shards) {
            return Err(EngineError::IndivisibleBlocks { blocks, shards });
        }
        let mut built = Vec::with_capacity(shards);
        for i in 0..shards {
            let mut c = config.clone();
            c.flash.geometry.blocks = blocks / shards as u32;
            c.flash.seed = config
                .flash
                .seed
                .wrapping_add((i as u64).wrapping_mul(SEED_STRIDE));
            if let Some(a) = engine.admission {
                c.admission = a;
            }
            if let Some(b) = engine.longevity_buckets {
                c.longevity_buckets = b;
            }
            built.push(FlashCache::new(c)?);
        }
        let threads = engine.workers.unwrap_or_else(pool::default_threads).max(1);
        Ok(ShardedCache {
            runtime: None,
            slab: ShardSlab::new(built),
            n: shards,
            engine,
            threads,
            groups: vec![Vec::new(); shards],
            done_bufs: vec![Vec::new(); shards],
            gc_before: Vec::with_capacity(shards),
            op_buf: Vec::new(),
            out_buf: Vec::new(),
            shard_busy_us: vec![0.0; shards],
            makespan_us: 0.0,
            batches: 0,
            obs_flushed: false,
        })
    }

    /// Sets the worker-thread cap for batched submission (default: the
    /// machine's available parallelism). Thread count never affects
    /// results, only wall-clock time. On the persistent runtime a
    /// change takes effect at the next batch (the old workers are
    /// joined and a fresh set spawned).
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
        if let Some(rt) = &self.runtime {
            if rt.workers() != self.resolved_workers() {
                self.runtime = None;
            }
        }
    }

    /// Worker threads a multi-shard batch would use right now.
    pub fn workers(&self) -> usize {
        self.resolved_workers()
    }

    fn resolved_workers(&self) -> usize {
        self.threads.min(self.n)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.n
    }

    /// The shards, in partition order.
    pub fn shards(&self) -> &[FlashCache] {
        // SAFETY: outside `submit` every worker is quiescent (see the
        // runtime module's quiescence contract), so no `&mut` aliases.
        unsafe { self.slab.shards() }
    }

    /// Mutable access to the shards (e.g. to drive one shard directly
    /// in a test).
    pub fn shards_mut(&mut self) -> &mut [FlashCache] {
        // SAFETY: as in `shards`, plus `&mut self` excludes submitters.
        unsafe { self.slab.shards_mut() }
    }

    /// The shard that owns `disk_page`.
    pub fn shard_of(&self, disk_page: u64) -> usize {
        if self.n == 1 {
            0
        } else {
            (mix(disk_page) % self.n as u64) as usize
        }
    }

    /// Submits a batch, executing the shards concurrently, and returns
    /// one merged [`AccessOutcome`] per request (in batch order).
    ///
    /// Requests are decomposed into pages, grouped by owning shard, and
    /// each shard services its group in batch order on a pool of up to
    /// [`set_threads`](ShardedCache::set_threads) workers. A multi-page
    /// request spanning shards merges its page outcomes: latencies sum,
    /// `hit` requires every page to hit, and the tier degrades to
    /// [`ServiceTier::Disk`] if any page needs the disk.
    ///
    /// The batch's *modeled* duration — the busiest shard's flash time —
    /// accumulates into [`modeled_time_us`](ShardedCache::modeled_time_us).
    ///
    /// Three execution paths produce byte-identical results (only
    /// wall-clock time differs): the persistent shard runtime when
    /// [`EngineConfig::persistent_workers`] is on and more than one
    /// worker resolves; an allocation-light inline loop when only one
    /// worker resolves (single-core hosts); and the per-batch scoped
    /// pool when the gate is off (the differential oracle).
    pub fn submit(&mut self, batch: &[DiskRequest]) -> Vec<AccessOutcome> {
        if self.n == 1 {
            return self.submit_single(batch);
        }
        if self.engine.persistent_workers {
            if self.resolved_workers() > 1 {
                self.ensure_runtime();
                return self.submit_runtime(batch);
            }
            return self.submit_inline(batch);
        }
        self.submit_scoped(batch)
    }

    /// The pre-runtime submission path: partition, scatter onto a
    /// per-batch scoped thread pool, reassemble. Kept verbatim as the
    /// differential oracle for `persistent_workers = false`.
    fn submit_scoped(&mut self, batch: &[DiskRequest]) -> Vec<AccessOutcome> {
        let n = self.n;
        let mut groups: Vec<ShardOps> = vec![Vec::new(); n];
        for (ri, req) in batch.iter().enumerate() {
            for page in req.pages() {
                let s = if n == 1 {
                    0
                } else {
                    (mix(page) % n as u64) as usize
                };
                groups[s].push((ri as u32, page, req.op));
            }
        }
        // SAFETY: no runtime batch is in flight (`&mut self`), so the
        // slab is quiescent.
        let shards = unsafe { self.slab.shards_mut() };
        let work: Vec<(&mut FlashCache, ShardOps)> = shards.iter_mut().zip(groups).collect();
        let results = pool::par_map(work, self.threads, |(shard, ops)| {
            let gc_before = shard.stats().gc_time_us;
            let mut busy = 0.0;
            let mut outs = Vec::with_capacity(ops.len());
            for (ri, page, op) in ops {
                let out = match op {
                    OpKind::Read => shard.op(CacheOp::read(page)).access,
                    OpKind::Write => shard.op(CacheOp::write(page)).access,
                };
                busy += out.latency_us + out.background_us;
                outs.push((ri, out));
            }
            busy += shard.stats().gc_time_us - gc_before;
            (busy, outs)
        });

        let mut merged = vec![AccessOutcome::default(); batch.len()];
        let mut seen = vec![false; batch.len()];
        let mut makespan = 0.0f64;
        for (si, (busy, outs)) in results.into_iter().enumerate() {
            self.shard_busy_us[si] += busy;
            makespan = makespan.max(busy);
            for (ri, out) in outs {
                let slot = &mut merged[ri as usize];
                if !seen[ri as usize] {
                    *slot = out;
                    seen[ri as usize] = true;
                } else {
                    merge_outcome(slot, out);
                }
            }
        }
        self.makespan_us += makespan;
        self.batches += 1;
        merged
    }

    /// Single-worker inline path: same partition, same per-shard op
    /// order, same arithmetic order as the scoped path — but reusing
    /// the engine's partition buffers and running shards in place, so a
    /// one-core host pays no scatter/reassembly allocations.
    fn submit_inline(&mut self, batch: &[DiskRequest]) -> Vec<AccessOutcome> {
        let n = self.n;
        for g in &mut self.groups {
            g.clear();
        }
        for (ri, req) in batch.iter().enumerate() {
            for page in req.pages() {
                let s = (mix(page) % n as u64) as usize;
                self.groups[s].push((ri as u32, page, req.op));
            }
        }
        let ShardedCache {
            slab,
            groups,
            op_buf,
            out_buf,
            shard_busy_us,
            ..
        } = self;
        // SAFETY: `&mut self` and no in-flight runtime batch.
        let shards = unsafe { slab.shards_mut() };
        let mut merged = vec![AccessOutcome::default(); batch.len()];
        let mut seen = vec![false; batch.len()];
        let mut makespan = 0.0f64;
        for (si, ops) in groups.iter().enumerate() {
            let shard = &mut shards[si];
            let gc_before = shard.stats().gc_time_us;
            op_buf.clear();
            for &(_, page, op) in ops.iter() {
                op_buf.push(match op {
                    OpKind::Read => CacheOp::read(page),
                    OpKind::Write => CacheOp::write(page),
                });
            }
            out_buf.clear();
            shard.op_batch_into(op_buf, out_buf);
            let mut busy = 0.0;
            for (&(ri, _, _), out) in ops.iter().zip(out_buf.iter()) {
                let out = out.access;
                busy += out.latency_us + out.background_us;
                let slot = &mut merged[ri as usize];
                if !seen[ri as usize] {
                    *slot = out;
                    seen[ri as usize] = true;
                } else {
                    merge_outcome(slot, out);
                }
            }
            busy += shard.stats().gc_time_us - gc_before;
            shard_busy_us[si] += busy;
            makespan = makespan.max(busy);
        }
        self.makespan_us += makespan;
        self.batches += 1;
        merged
    }

    /// Spawns (or respawns) the persistent runtime for the current
    /// worker resolution.
    fn ensure_runtime(&mut self) {
        let workers = self.resolved_workers();
        let stale = self
            .runtime
            .as_ref()
            .is_some_and(|rt| rt.workers() != workers);
        if stale {
            self.runtime = None;
        }
        if self.runtime.is_none() {
            self.runtime = Some(Runtime::spawn(&self.slab, workers, self.engine.panic_page));
        }
    }

    /// Persistent-runtime path: stream operations into the per-shard
    /// request rings (draining completions whenever one fills, which is
    /// what makes backpressure deadlock-free), then drain until every
    /// pushed operation has completed. Completions arrive per shard in
    /// submission order, so the merge below replays exactly the scoped
    /// path's shard-major order — and the per-shard busy sums run in
    /// the same arithmetic order, keeping modeled times bit-identical.
    fn submit_runtime(&mut self, batch: &[DiskRequest]) -> Vec<AccessOutcome> {
        let n = self.n;
        self.gc_before.clear();
        {
            // SAFETY: quiescent — the previous batch fully drained.
            let shards = unsafe { self.slab.shards() };
            self.gc_before
                .extend(shards.iter().map(|s| s.stats().gc_time_us));
        }
        let ShardedCache {
            runtime,
            done_bufs,
            groups,
            ..
        } = self;
        for b in done_bufs.iter_mut() {
            b.clear();
        }
        // Partition up front so each shard's work goes into its ring as
        // contiguous slices — one Release store per slice instead of
        // one per operation. Per-shard order is unchanged (groups keep
        // batch order), so completions and merges stay byte-identical
        // to the streaming path.
        for g in groups.iter_mut() {
            g.clear();
        }
        for (ri, req) in batch.iter().enumerate() {
            for page in req.pages() {
                let s = (mix(page) % n as u64) as usize;
                groups[s].push((ri as u32, page, req.op));
            }
        }
        let rt = runtime.as_mut().expect("runtime spawned");
        let mut total_pushed = 0usize;
        let mut total_done = 0usize;
        for (s, ops) in groups.iter().enumerate() {
            let mut sent = 0usize;
            while sent < ops.len() {
                let took = rt.push_slice(s, &ops[sent..]);
                sent += took;
                total_pushed += took;
                if took > 0 {
                    rt.wake(s);
                } else {
                    // Ring full: drain completions so the worker can
                    // retire in-flight work and free slots.
                    rt.wake(s);
                    let moved = rt.drain(done_bufs);
                    total_done += moved;
                    if moved == 0 {
                        // One CPU: the owning worker cannot run until
                        // we yield our timeslice.
                        std::thread::yield_now();
                    }
                }
            }
        }
        while total_done < total_pushed {
            let moved = rt.drain(done_bufs);
            if moved == 0 {
                std::thread::yield_now();
            }
            total_done += moved;
        }
        // Quiescent again: every completion's Release/Acquire pair
        // ordered the workers' shard writes before these reads.
        let mut merged = vec![AccessOutcome::default(); batch.len()];
        let mut seen = vec![false; batch.len()];
        let mut makespan = 0.0f64;
        // SAFETY: drained above.
        let shards = unsafe { self.slab.shards() };
        for (si, outs) in self.done_bufs.iter().enumerate() {
            let mut busy = 0.0;
            for &(ri, ref out) in outs {
                busy += out.latency_us + out.background_us;
                let slot = &mut merged[ri as usize];
                if !seen[ri as usize] {
                    *slot = *out;
                    seen[ri as usize] = true;
                } else {
                    merge_outcome(slot, *out);
                }
            }
            busy += shards[si].stats().gc_time_us - self.gc_before[si];
            self.shard_busy_us[si] += busy;
            makespan = makespan.max(busy);
        }
        self.makespan_us += makespan;
        self.batches += 1;
        merged
    }

    /// [`ShardedCache::submit`] specialized for one shard: no page
    /// partitioning, no worker handoff, no request-index regrouping —
    /// the batch streams straight through the single [`FlashCache`].
    /// Outcomes, stats, and modeled times are identical to the general
    /// path (one group, batch order); only the allocations go away,
    /// which matters because `shards = 1` is the replay fast path's
    /// single-threaded hot loop.
    fn submit_single(&mut self, batch: &[DiskRequest]) -> Vec<AccessOutcome> {
        let ShardedCache {
            slab,
            op_buf,
            out_buf,
            ..
        } = self;
        // SAFETY: `&mut self` and no in-flight runtime batch.
        let shard = &mut unsafe { slab.shards_mut() }[0];
        let gc_before = shard.stats().gc_time_us;
        op_buf.clear();
        for req in batch {
            for page in req.pages() {
                op_buf.push(match req.op {
                    OpKind::Read => CacheOp::read(page),
                    OpKind::Write => CacheOp::write(page),
                });
            }
        }
        out_buf.clear();
        // One pipelined batch through the shard: ops execute in the
        // same order the scalar loop ran them, so outcomes and busy
        // sums below are byte-identical to the pre-batch path.
        shard.op_batch_into(op_buf, out_buf);
        let mut busy = 0.0;
        let mut merged = Vec::with_capacity(batch.len());
        let mut k = 0usize;
        for req in batch {
            let mut slot = AccessOutcome::default();
            let mut seen = false;
            for _ in req.pages() {
                let out = out_buf[k].access;
                k += 1;
                busy += out.latency_us + out.background_us;
                if seen {
                    merge_outcome(&mut slot, out);
                } else {
                    slot = out;
                    seen = true;
                }
            }
            merged.push(slot);
        }
        busy += shard.stats().gc_time_us - gc_before;
        self.shard_busy_us[0] += busy;
        self.makespan_us += busy;
        self.batches += 1;
        merged
    }

    /// Services one typed operation through its owning shard (serial
    /// path; does not contribute to the modeled batch times).
    pub fn op(&mut self, op: CacheOp) -> CacheOutcome {
        let s = self.shard_of(op.lba);
        self.shards_mut()[s].op(op)
    }

    /// Fallible single-operation entry exposing the typed [`CacheError`].
    ///
    /// # Errors
    ///
    /// Propagates the owning shard's [`CacheError`].
    pub fn try_op(&mut self, op: CacheOp) -> Result<CacheOutcome, CacheError> {
        let s = self.shard_of(op.lba);
        self.shards_mut()[s].try_op(op)
    }

    /// Reads one page through its owning shard (serial path; does not
    /// contribute to the modeled batch times).
    pub fn read(&mut self, disk_page: u64) -> AccessOutcome {
        self.op(CacheOp::read(disk_page)).access
    }

    /// Writes one page through its owning shard (serial path).
    pub fn write(&mut self, disk_page: u64) -> AccessOutcome {
        self.op(CacheOp::write(disk_page)).access
    }

    /// Fallible single-page read exposing the typed [`CacheError`].
    ///
    /// # Errors
    ///
    /// Propagates the owning shard's [`CacheError`].
    pub fn try_read(&mut self, disk_page: u64) -> Result<AccessOutcome, CacheError> {
        self.try_op(CacheOp::read(disk_page)).map(|o| o.access)
    }

    /// Fallible single-page write exposing the typed [`CacheError`].
    ///
    /// # Errors
    ///
    /// Propagates the owning shard's [`CacheError`].
    pub fn try_write(&mut self, disk_page: u64) -> Result<AccessOutcome, CacheError> {
        self.try_op(CacheOp::write(disk_page)).map(|o| o.access)
    }

    /// Marks every dirty page clean across all shards and returns the
    /// total disk writes owed (the periodic write-back flush of §5.1).
    pub fn flush_writes(&mut self) -> u64 {
        self.shards_mut().iter_mut().map(|s| s.flush_writes()).sum()
    }

    /// Merged statistics: the field-wise sum of every shard's counters,
    /// plus any operations the persistent runtime degraded after a
    /// worker panic (counted as `internal_errors`, since the poisoned
    /// shard itself can no longer account for them).
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in self.shards() {
            total.merge(&s.stats());
        }
        if let Some(rt) = &self.runtime {
            total.internal_errors += rt.internal_errors();
        }
        total
    }

    /// Per-shard statistics, in partition order.
    pub fn shard_stats(&self) -> Vec<CacheStats> {
        self.shards().iter().map(|s| s.stats()).collect()
    }

    /// Merged flash global status table (traffic-weighted across
    /// shards; exactly shard 0's table when there is one shard).
    pub fn fgst(&self) -> Fgst {
        let parts: Vec<Fgst> = self.shards().iter().map(|s| s.fgst()).collect();
        Fgst::merged(&parts)
    }

    /// Pages cached across all shards.
    pub fn cached_pages(&self) -> u64 {
        self.shards().iter().map(|s| s.cached_pages()).sum()
    }

    /// Usable (non-retired) slots across all shards.
    pub fn usable_slots(&self) -> u64 {
        self.shards().iter().map(|s| s.usable_slots()).sum()
    }

    /// `true` once every shard's device is worn out.
    pub fn is_dead(&self) -> bool {
        self.shards().iter().all(|s| s.is_dead())
    }

    /// Accumulated modeled time of all batched submissions, µs: the sum
    /// over batches of the busiest shard's flash time. With one shard
    /// this equals [`serial_time_us`](ShardedCache::serial_time_us);
    /// with N balanced shards it approaches `serial / N` — the
    /// concurrent-flash-channel model behind `bench_shard`'s scaling
    /// figures.
    pub fn modeled_time_us(&self) -> f64 {
        self.makespan_us
    }

    /// Accumulated flash busy time across all shards and batches, µs —
    /// what a single serial channel would have spent.
    pub fn serial_time_us(&self) -> f64 {
        self.shard_busy_us.iter().sum()
    }

    /// Drains every shard device's event timeline (flushing buffered
    /// writes) and returns the largest device makespan, µs. Under the
    /// closed-form backend this is the busiest shard's busy-time sum;
    /// under the event-driven backend it is the channel-level completion
    /// time, where multi-channel overlap shows up as a shorter makespan
    /// for the same op mix.
    pub fn device_makespan_us(&mut self) -> f64 {
        let mut makespan: f64 = 0.0;
        for s in self.shards_mut() {
            makespan = makespan.max(s.device_mut().drain_timing());
        }
        makespan
    }

    /// Accumulated busy time of each shard, µs, in partition order.
    pub fn shard_busy_us(&self) -> &[f64] {
        &self.shard_busy_us
    }

    /// Batches submitted so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Attaches an observability sink to every shard (replacing any
    /// process-global sink picked up at construction).
    pub fn attach_sink(&mut self, sink: Arc<ObsSink>) {
        for s in self.shards_mut() {
            s.attach_sink(Arc::clone(&sink));
        }
        self.obs_flushed = false;
    }

    /// Exports merged engine metrics: every shard's counters summed
    /// under the usual `flash.*` / `nand.*` names, gauges recomputed
    /// over the ensemble, and — when there is more than one shard — a
    /// per-shard copy under `flash.shard.<i>.*`.
    ///
    /// With one shard the output is identical to that shard's own
    /// [`FlashCache::export_metrics`], preserving the N = 1 degeneracy.
    pub fn export_metrics(&self) -> Registry {
        let mut reg = Registry::new();
        for (i, s) in self.shards().iter().enumerate() {
            let shard_reg = s.export_metrics();
            reg.merge(&shard_reg);
            if self.n > 1 {
                reg.merge(&prefixed(i, &shard_reg));
            }
        }
        if self.n > 1 {
            // Registry::merge overwrites gauges (last shard wins);
            // recompute them over the whole ensemble.
            reg.gauge_set("flash.cached_pages", self.cached_pages() as f64);
            reg.gauge_set("flash.usable_slots", self.usable_slots() as f64);
            let slc = self.shards().iter().map(|s| s.slc_fraction()).sum::<f64>() / self.n as f64;
            reg.gauge_set("flash.slc_fraction", slc);
            reg.gauge_set("flash.miss_rate", self.fgst().miss_rate);
        }
        reg
    }

    /// Flushes per-shard prefixed metrics (N > 1 only) and every
    /// shard's own totals into the attached sinks. Called automatically
    /// on drop; idempotent until [`attach_sink`](ShardedCache::attach_sink)
    /// re-arms it.
    pub fn flush_obs(&mut self) {
        self.flush_prefixed();
        for s in self.shards_mut() {
            s.flush_obs();
        }
    }

    /// Merges each shard's `flash.shard.<i>.*` copy into its sink. The
    /// plain `flash.*` totals are *not* written here — each shard's own
    /// `flush_obs`/`Drop` does that additively — so nothing double
    /// counts, and with one shard nothing is emitted at all (keeping
    /// N = 1 observability bit-identical to a bare cache).
    fn flush_prefixed(&mut self) {
        if self.obs_flushed || self.n <= 1 {
            return;
        }
        for (i, s) in self.shards().iter().enumerate() {
            if let Some(sink) = s.sink() {
                sink.merge_registry(&prefixed(i, &s.export_metrics()));
            }
        }
        self.obs_flushed = true;
    }
}

impl Drop for ShardedCache {
    /// Flushes the per-shard prefixed metrics; each shard then flushes
    /// its own totals in its own `Drop`.
    fn drop(&mut self) {
        self.flush_prefixed();
    }
}

/// Re-keys a shard's registry under `flash.shard.<i>.`: the leading
/// `flash.` is stripped (`flash.reads` → `flash.shard.0.reads`); other
/// prefixes nest whole (`nand.reads` → `flash.shard.0.nand.reads`).
fn prefixed(i: usize, reg: &Registry) -> Registry {
    let mut out = Registry::new();
    for (name, metric) in reg.iter() {
        let suffix = name.strip_prefix("flash.").unwrap_or(name);
        let pname = format!("flash.shard.{i}.{suffix}");
        if let Some(v) = metric.as_counter() {
            let id = out.handle(&pname);
            out.add(id, v);
        } else if let Some(v) = metric.as_gauge() {
            out.gauge_set(&pname, v);
        } else if let Some(h) = metric.as_histogram() {
            out.histogram_merge(&pname, h);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashcache_core::AdmissionDecision;
    use nand_flash::{FlashConfig, FlashGeometry};

    fn config(blocks: u32) -> FlashCacheConfig {
        FlashCacheConfig::builder()
            .flash(FlashConfig {
                geometry: FlashGeometry {
                    blocks,
                    pages_per_block: 8,
                    ..FlashGeometry::default()
                },
                ..FlashConfig::default()
            })
            .build()
            .unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(matches!(
            ShardedCache::new(config(32), 0),
            Err(EngineError::InvalidShardCount { .. })
        ));
        assert!(matches!(
            ShardedCache::new(config(32), 3),
            Err(EngineError::IndivisibleBlocks { .. })
        ));
        // 32 blocks / 16 shards = 2 blocks per shard: below the core's
        // 4-block minimum.
        assert!(matches!(
            ShardedCache::new(config(32), 16),
            Err(EngineError::Config(_))
        ));
        let e = ShardedCache::new(config(32), 4).unwrap();
        assert_eq!(e.shard_count(), 4);
        assert_eq!(e.shards()[0].device().geometry().blocks, 8);
    }

    #[test]
    fn engine_config_overrides_admission_on_every_shard() {
        let reref = AdmissionPolicyConfig::ReReference { k: 1, window: 512 };
        let engine = EngineConfig {
            admission: Some(reref),
            longevity_buckets: Some(2),
            ..EngineConfig::default()
        };
        let mut e = ShardedCache::with_engine_config(config(32), 4, engine).unwrap();
        for shard in e.shards() {
            assert_eq!(shard.config().admission, reref);
            assert_eq!(shard.config().longevity_buckets, 2);
        }
        // The gate holds on the first touch of a cold page...
        let cold = e.op(CacheOp::read(7));
        assert_eq!(cold.admission, AdmissionDecision::Rejected);
        assert!(cold.access.needs_disk_read && !cold.access.hit);
        // ...and the re-read earns flash space, wherever the page shards.
        assert_eq!(
            e.op(CacheOp::read(7)).admission,
            AdmissionDecision::Admitted
        );
        assert!(e.op(CacheOp::read(7)).access.hit);
        assert_eq!(e.stats().admission_rejected_fills, 1);
    }

    #[test]
    fn routing_is_stable_and_total() {
        let e = ShardedCache::new(config(32), 4).unwrap();
        let mut seen = [false; 4];
        for p in 0..1000u64 {
            let s = e.shard_of(p);
            assert_eq!(s, e.shard_of(p));
            seen[s] = true;
        }
        assert!(seen.iter().all(|&s| s), "all shards receive traffic");
    }

    #[test]
    fn submit_merges_stats_and_outcomes() {
        let mut e = ShardedCache::new(config(32), 4).unwrap();
        let batch: Vec<DiskRequest> = (0..100).map(DiskRequest::read).collect();
        let first = e.submit(&batch);
        assert_eq!(first.len(), 100);
        assert!(first.iter().all(|o| o.needs_disk_read));
        let second = e.submit(&batch);
        assert!(second.iter().all(|o| o.hit), "refetch hits every shard");
        let st = e.stats();
        assert_eq!(st.reads, 200);
        assert_eq!(st.read_hits, 100);
        assert_eq!(e.batches(), 2);
        assert!(e.modeled_time_us() > 0.0);
        assert!(e.modeled_time_us() <= e.serial_time_us());
    }

    #[test]
    fn multi_page_requests_merge_across_shards() {
        let mut e = ShardedCache::new(config(32), 4).unwrap();
        let req = DiskRequest::new(0, 16, OpKind::Read);
        let cold = e.submit(std::slice::from_ref(&req));
        assert_eq!(cold.len(), 1);
        assert!(!cold[0].hit);
        assert!(cold[0].needs_disk_read);
        let warm = e.submit(std::slice::from_ref(&req));
        assert!(warm[0].hit, "all 16 pages cached across shards");
        assert_eq!(e.stats().reads, 32);
    }

    #[test]
    fn determinism_across_thread_counts() {
        let run = |threads: usize| {
            let mut e = ShardedCache::new(config(32), 4).unwrap();
            e.set_threads(threads);
            let batch: Vec<DiskRequest> = (0..300)
                .map(|i| {
                    if i % 3 == 0 {
                        DiskRequest::write(i % 97)
                    } else {
                        DiskRequest::read(i % 53)
                    }
                })
                .collect();
            let outs = e.submit(&batch);
            (outs, e.stats(), e.modeled_time_us())
        };
        let (o1, s1, m1) = run(1);
        let (o8, s8, m8) = run(8);
        assert_eq!(o1, o8);
        assert_eq!(s1, s8);
        assert_eq!(m1, m8);
    }

    #[test]
    fn single_shard_keeps_base_seed_and_no_prefixes() {
        let e = ShardedCache::new(config(32), 1).unwrap();
        assert_eq!(e.shards()[0].config().flash.seed, config(32).flash.seed);
        assert_eq!(e.shard_of(12345), 0);
        let reg = e.export_metrics();
        assert!(
            reg.iter().all(|(n, _)| !n.starts_with("flash.shard.")),
            "N=1 must not emit per-shard metrics"
        );
    }

    #[test]
    fn multi_shard_exports_prefixed_metrics() {
        let mut e = ShardedCache::new(config(32), 2).unwrap();
        let batch: Vec<DiskRequest> = (0..50).map(DiskRequest::read).collect();
        e.submit(&batch);
        let reg = e.export_metrics();
        let per_shard: u64 = (0..2)
            .map(|i| reg.counter(&format!("flash.shard.{i}.reads")))
            .sum();
        assert_eq!(per_shard, 50);
        assert_eq!(reg.counter("flash.reads"), 50);
    }

    #[test]
    fn flush_writes_sums_shards() {
        let mut e = ShardedCache::new(config(32), 4).unwrap();
        let batch: Vec<DiskRequest> = (0..40).map(DiskRequest::write).collect();
        e.submit(&batch);
        assert!(e.flush_writes() > 0);
        assert_eq!(e.flush_writes(), 0, "second flush finds nothing dirty");
    }
}
