//! Sharded concurrent cache engine.
//!
//! The paper's evaluation targets server disk caches serving many
//! concurrent clients (§4.2's full-system server model), but a single
//! [`FlashCache`](flashcache_core::FlashCache) is an exclusively-owned
//! `&mut self` object: multi-tenant throughput is bounded by one flash
//! channel no matter how fast each operation is. Production flash
//! caches solve this by partitioning state so independent IOs never
//! contend. [`ShardedCache`] brings that shape to the simulator:
//!
//! * the disk-page address space is hash-partitioned across N
//!   independent `FlashCache` shards (device geometry split N ways, so
//!   total capacity is conserved);
//! * a batched submission API ([`ShardedCache::submit`]) groups each
//!   batch by owning shard and executes the shards on a persistent
//!   runtime of pinned worker threads fed by SPSC rings (with the
//!   per-batch scoped pool, [`pool::par_map`], kept as a config-gated
//!   differential oracle — see [`EngineConfig`]);
//! * results stay **paper-faithful and deterministic**: merged
//!   [`CacheStats`](flashcache_core::CacheStats) /
//!   [`Fgst`](flashcache_core::tables::Fgst) across shards, and
//!   identical outcomes for a fixed (seed, shard-count) pair regardless
//!   of how many worker threads execute the batch;
//! * N = 1 degenerates to exactly today's behaviour — bit-identical
//!   stats, snapshot and observability output to a bare `FlashCache`.
//!
//! Because each shard owns a disjoint slice of both the address space
//! and the device, garbage collection, wear levelling and controller
//! reconfiguration run per shard. Throughput is reported in *modeled*
//! time: a batch's makespan is the busiest shard's flash time, i.e. the
//! shards are modeled as concurrently operating flash channels. That
//! keeps scaling results machine-independent (see `bench_shard`).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod pool;
pub mod ring;
mod runtime;
pub mod sharded;

pub use sharded::{EngineConfig, EngineError, ShardedCache};
