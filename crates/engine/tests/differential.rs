//! Differential tests pinning the sharded engine to the bare cache.
//!
//! The N=1 contract is the engine's most important invariant: a
//! [`ShardedCache`] with one shard must be *byte-identical* to a bare
//! [`FlashCache`] fed the same trace — same per-request outcomes, same
//! stats, same snapshot, same observability counters, no
//! `flash.shard.*` metric prefixes. That identity is what lets every
//! existing single-cache experiment adopt the engine without changing
//! its numbers.
//!
//! The execution-invariance tests extend that contract across the
//! engine's execution paths: for every shard count, submission results
//! must be byte-identical whether batches run on the persistent shard
//! runtime (any worker count) or the scoped-pool oracle
//! (`persistent_workers = false`).
//!
//! The proptest then pins the N>1 aggregation: merged [`CacheStats`]
//! totals equal the fieldwise sum of the per-shard stats for arbitrary
//! seeds and shard counts.

use std::sync::Arc;

use disk_trace::{DiskRequest, OpKind, WorkloadSpec};
use flash_obs::ObsSink;
use flashcache_core::{AccessOutcome, CacheOp, FlashCache, FlashCacheConfig, ServiceTier};
use flashcache_engine::{EngineConfig, ShardedCache};
use nand_flash::{FlashConfig, FlashGeometry};
use proptest::prelude::*;

/// Small geometry (128 blocks × 32 pages) so the trace below overflows
/// the cache and exercises fills, eviction, and GC; 128 is divisible by
/// every shard count the tests use.
fn config() -> FlashCacheConfig {
    FlashCacheConfig::builder()
        .flash(FlashConfig {
            geometry: FlashGeometry {
                blocks: 128,
                pages_per_block: 32,
                ..FlashGeometry::default()
            },
            ..FlashConfig::default()
        })
        .build()
        .expect("test geometry is valid")
}

/// Drives one request through a bare cache page-by-page, merging the
/// per-page outcomes exactly as `ShardedCache::submit` merges them.
fn drive_bare(cache: &mut FlashCache, req: &DiskRequest) -> AccessOutcome {
    let mut merged = AccessOutcome::default();
    let mut first = true;
    for page in req.pages() {
        let out = match req.op {
            OpKind::Read => cache.op(CacheOp::read(page)).access,
            OpKind::Write => cache.op(CacheOp::write(page)).access,
        };
        if first {
            merged = out;
            first = false;
        } else {
            merged.hit &= out.hit;
            merged.latency_us += out.latency_us;
            merged.background_us += out.background_us;
            merged.needs_disk_read |= out.needs_disk_read;
            merged.flushed_dirty += out.flushed_dirty;
            merged.uncorrectable |= out.uncorrectable;
            merged.bypassed |= out.bypassed;
            if out.tier == ServiceTier::Disk {
                merged.tier = ServiceTier::Disk;
            }
        }
    }
    merged
}

fn trace(seed: u64, n: usize) -> Vec<DiskRequest> {
    // 8MB footprint over a 16MB cache: warm hits plus a miss tail.
    WorkloadSpec::alpha1()
        .scaled(64)
        .generator(seed)
        .take_requests(n)
}

#[test]
fn single_shard_is_byte_identical_to_bare_cache() {
    let reqs = trace(0xD1FF, 6_000);

    let mut engine = ShardedCache::new(config(), 1).expect("1 shard is always valid");
    let mut bare = FlashCache::new(config()).expect("same config as the engine");
    let engine_sink = Arc::new(ObsSink::with_capacity(256));
    let bare_sink = Arc::new(ObsSink::with_capacity(256));
    engine.attach_sink(Arc::clone(&engine_sink));
    bare.attach_sink(Arc::clone(&bare_sink));

    for chunk in reqs.chunks(64) {
        let sharded_outs = engine.submit(chunk);
        for (req, sharded) in chunk.iter().zip(sharded_outs) {
            let bare_out = drive_bare(&mut bare, req);
            assert_eq!(bare_out, sharded, "outcome diverged on {req}");
        }
    }

    assert_eq!(engine.flush_writes(), bare.flush_writes());
    assert_eq!(engine.stats(), bare.stats(), "merged stats must match");
    assert_eq!(engine.fgst(), bare.fgst(), "merged FGST must match");
    assert_eq!(engine.cached_pages(), bare.cached_pages());
    assert_eq!(engine.usable_slots(), bare.usable_slots());
    assert_eq!(
        engine.shards()[0].snapshot(),
        bare.snapshot(),
        "table snapshot must match"
    );

    // Identical metric registries — including the absence of any
    // `flash.shard.*` keys at N=1.
    let engine_reg = engine.export_metrics();
    assert_eq!(engine_reg, bare.export_metrics());
    assert!(engine_reg.iter().all(|(k, _)| !k.contains("shard")));

    // Identical observability totals once both flush their sinks.
    engine.flush_obs();
    bare.flush_obs();
    assert_eq!(engine_sink.registry(), bare_sink.registry());
}

#[test]
fn serial_entry_points_match_bare_cache() {
    let mut engine = ShardedCache::new(config(), 1).expect("1 shard");
    let mut bare = FlashCache::new(config()).expect("same config");
    for page in 0..2_000u64 {
        let p = page * 7 % 4_096;
        if page % 4 == 0 {
            assert_eq!(engine.write(p), bare.op(CacheOp::write(p)).access);
        } else {
            assert_eq!(engine.read(p), bare.op(CacheOp::read(p)).access);
        }
    }
    assert_eq!(engine.stats(), bare.stats());
}

/// Everything observable about one engine run: per-request outcomes,
/// merged stats, per-shard state snapshots, modeled times, and the
/// flushed observability registry.
#[allow(clippy::type_complexity)]
fn run_variant(
    shards: usize,
    persistent: bool,
    workers: usize,
) -> (
    Vec<AccessOutcome>,
    flashcache_core::CacheStats,
    Vec<flashcache_core::snapshot::CacheSnapshot>,
    flash_obs::Registry,
    f64,
    f64,
) {
    let engine_cfg = EngineConfig {
        persistent_workers: persistent,
        workers: Some(workers),
        ..EngineConfig::default()
    };
    let mut engine = ShardedCache::with_engine_config(config(), shards, engine_cfg)
        .expect("128 blocks divide by 1/2/4/8");
    let sink = Arc::new(ObsSink::with_capacity(256));
    engine.attach_sink(Arc::clone(&sink));
    let reqs = trace(0x1AC3, 4_000);
    let mut outs = Vec::with_capacity(reqs.len());
    for chunk in reqs.chunks(64) {
        outs.extend(engine.submit(chunk));
    }
    let stats = engine.stats();
    let snaps = engine.shards().iter().map(|s| s.snapshot()).collect();
    let modeled = engine.modeled_time_us();
    let serial = engine.serial_time_us();
    engine.flush_obs();
    drop(engine);
    (outs, stats, snaps, sink.registry(), modeled, serial)
}

/// Satellite invariance contract: identical results for every worker
/// count {1, 2, 8} and for `persistent_workers` on/off, at every shard
/// count — the execution substrate must never leak into the physics.
#[test]
fn results_invariant_across_workers_and_execution_paths() {
    for shards in [1usize, 2, 4, 8] {
        let baseline = run_variant(shards, false, 1);
        for workers in [1usize, 2, 8] {
            for persistent in [false, true] {
                let got = run_variant(shards, persistent, workers);
                let label = format!("shards={shards} persistent={persistent} workers={workers}");
                assert_eq!(baseline.0, got.0, "outcomes diverged: {label}");
                assert_eq!(baseline.1, got.1, "stats diverged: {label}");
                assert_eq!(baseline.2, got.2, "snapshots diverged: {label}");
                assert_eq!(baseline.3, got.3, "obs registry diverged: {label}");
                assert_eq!(baseline.4, got.4, "modeled time diverged: {label}");
                assert_eq!(baseline.5, got.5, "serial time diverged: {label}");
            }
        }
    }
}

/// Satellite panic hygiene: a worker panic mid-batch must not deadlock
/// the submitter — the poisoned shard degrades its operations to
/// disk-bound bypasses, every request still gets an outcome, and the
/// failures surface in `internal_errors`.
#[test]
fn worker_panic_degrades_without_deadlock() {
    // Find a page owned by a nonzero shard so other shards keep working.
    let probe = ShardedCache::new(config(), 4).expect("4 shards");
    let poison_page = (0u64..1000).find(|&p| probe.shard_of(p) != 0).unwrap();
    let poisoned_shard = probe.shard_of(poison_page);
    drop(probe);

    let engine_cfg = EngineConfig {
        persistent_workers: true,
        workers: Some(2),
        panic_page: Some(poison_page),
        ..EngineConfig::default()
    };
    let mut engine = ShardedCache::with_engine_config(config(), 4, engine_cfg).expect("4 shards");
    let batch: Vec<DiskRequest> = (0..256u64).map(DiskRequest::read).collect();
    let outs = engine.submit(&batch);
    assert_eq!(outs.len(), batch.len(), "every request completes");
    let poisoned = outs[poison_page as usize];
    assert!(poisoned.bypassed, "panicked op degrades to a bypass");
    assert!(poisoned.needs_disk_read, "degraded read goes to disk");
    assert!(!poisoned.hit);
    let errors_after_first = engine.stats().internal_errors;
    assert!(errors_after_first >= 1, "panic surfaces in internal_errors");

    // The poisoned shard keeps degrading; the other shards keep
    // servicing — and nothing deadlocks on repeated submission.
    let outs2 = engine.submit(&batch);
    assert_eq!(outs2.len(), batch.len());
    assert!(
        engine.stats().internal_errors > errors_after_first,
        "later ops on the poisoned shard degrade too"
    );
    let healthy_hits = batch
        .iter()
        .enumerate()
        .filter(|(i, _)| engine.shard_of(*i as u64) != poisoned_shard)
        .filter(|(i, _)| outs2[*i].hit)
        .count();
    assert!(healthy_hits > 0, "unpoisoned shards still serve hits");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Merged `CacheStats` totals equal the fieldwise sum of the
    /// per-shard stats, for arbitrary seeds and every shard count.
    #[test]
    fn merged_stats_equal_fieldwise_sum_of_shards(
        seed in any::<u64>(),
        shard_pow in 0u32..4,
    ) {
        let shards = 1usize << shard_pow;
        let reqs = trace(seed, 1_500);
        let mut engine = ShardedCache::new(config(), shards)
            .expect("128 blocks divide by 1/2/4/8");
        for chunk in reqs.chunks(128) {
            engine.submit(chunk);
        }
        engine.flush_writes();

        let merged = engine.stats();
        let parts = engine.shard_stats();
        prop_assert_eq!(parts.len(), shards);

        macro_rules! sums {
            ($($field:ident: $ty:ty),* $(,)?) => {$(
                prop_assert_eq!(
                    merged.$field,
                    parts.iter().map(|s| s.$field).sum::<$ty>(),
                    "field {} must be the sum of the shards", stringify!($field)
                );
            )*};
        }
        sums!(
            reads: u64, read_hits: u64, writes: u64, write_hits: u64,
            flash_reads: u64, flash_programs: u64, erases: u64,
            gc_runs: u64, gc_moved_pages: u64, evictions: u64,
            flushed_dirty_pages: u64, wear_migrations: u64,
            reconfig_ecc: u64, reconfig_density: u64, hot_promotions: u64,
            uncorrectable_reads: u64, retired_blocks: u64,
            reclaim_index_queries: u64, reclaim_index_hits: u64,
            reclaim_scan_fallbacks: u64, internal_errors: u64,
        );
        for (m, sum) in [
            (merged.gc_time_us, parts.iter().map(|s| s.gc_time_us).sum::<f64>()),
            (merged.foreground_us, parts.iter().map(|s| s.foreground_us).sum::<f64>()),
            (merged.background_us, parts.iter().map(|s| s.background_us).sum::<f64>()),
            (merged.ecc_us, parts.iter().map(|s| s.ecc_us).sum::<f64>()),
        ] {
            prop_assert!((m - sum).abs() <= 1e-6 * sum.abs().max(1.0));
        }

        // Conservation against the trace itself: every page of every
        // request is counted by exactly one shard.
        let pages: u64 = reqs.iter().map(|r| u64::from(r.len)).sum();
        prop_assert_eq!(merged.reads + merged.writes, pages);
    }
}
