//! Modeled device-time behaviour of the event-driven backend at the
//! engine level: more channels must shorten the device makespan (i.e.
//! raise modeled pages/s) for the same Zipf trace, and the serial
//! event configuration must agree with the closed-form oracle.

use disk_trace::{OpKind, WorkloadSpec};
use flashcache_core::FlashCacheConfig;
use flashcache_engine::ShardedCache;
use nand_flash::{ChannelConfig, FlashConfig, FlashGeometry, SchedBackend, TimingBackend};

fn config(backend: TimingBackend, channels: u32) -> FlashCacheConfig {
    let channel = ChannelConfig::builder()
        .channels(channels)
        .planes(2)
        .queue_depth(8)
        .build()
        .expect("valid channel config");
    FlashCacheConfig::builder()
        .flash(FlashConfig {
            geometry: FlashGeometry {
                blocks: 128,
                pages_per_block: 32,
                ..FlashGeometry::default()
            },
            timing_backend: backend,
            channel,
            ..FlashConfig::default()
        })
        .build()
        .expect("test geometry is valid")
}

/// Replays a Zipf-popularity trace and returns the drained device
/// makespan (µs of modeled NAND time until every resource idles).
fn makespan(cfg: FlashCacheConfig, n: usize) -> f64 {
    let mut engine = ShardedCache::new(cfg, 1).expect("single shard");
    let reqs = WorkloadSpec::alpha1()
        .scaled(64)
        .generator(0x0401_2026)
        .take_requests(n);
    for req in &reqs {
        for page in req.pages() {
            match req.op {
                OpKind::Read => engine.read(page),
                OpKind::Write => engine.write(page),
            };
        }
    }
    engine.device_makespan_us()
}

#[test]
fn four_channels_beat_one_channel_on_modeled_throughput() {
    let n = 20_000;
    let one = makespan(config(TimingBackend::EventDriven, 1), n);
    let four = makespan(config(TimingBackend::EventDriven, 4), n);
    assert!(one > 0.0 && four > 0.0);
    // Same page count over a shorter makespan = strictly higher modeled
    // pages/s. Demand a real win, not float noise.
    assert!(
        four < one * 0.9,
        "4-channel makespan {four} must undercut 1-channel {one} by >10%"
    );
}

#[test]
fn event_makespan_at_one_channel_matches_closed_form_modeled_time() {
    // A depth-8 single-channel event model still serializes every op on
    // the one bus/plane pair, so its drained makespan cannot exceed the
    // closed-form running clock (which is the exact serial sum), and a
    // serial-mimic config reproduces it bit for bit.
    let n = 5_000;
    let closed = makespan(config(TimingBackend::ClosedForm, 1), n);
    let serial_cfg = {
        let mut cfg = config(TimingBackend::EventDriven, 1);
        cfg.flash.channel = ChannelConfig::default();
        cfg
    };
    let serial = makespan(serial_cfg, n);
    assert_eq!(
        serial.to_bits(),
        closed.to_bits(),
        "serial event makespan must equal the closed-form clock bit-for-bit"
    );
}

#[test]
fn wheel_and_heap_schedulers_agree_through_the_full_engine() {
    // The timer-wheel default and the retained heap oracle must price an
    // entire engine replay — cache hits, misses, GC, wear — to the same
    // drained makespan, bit for bit. This covers the whole device stack
    // above the scheduler, not just the op stream `sched_props` drives.
    let n = 20_000;
    for channels in [1, 4] {
        let mut heap_cfg = config(TimingBackend::EventDriven, channels);
        heap_cfg.flash.channel.sched_backend = SchedBackend::Heap;
        let mut wheel_cfg = config(TimingBackend::EventDriven, channels);
        wheel_cfg.flash.channel.sched_backend = SchedBackend::Wheel;
        let heap = makespan(heap_cfg, n);
        let wheel = makespan(wheel_cfg, n);
        assert_eq!(
            heap.to_bits(),
            wheel.to_bits(),
            "heap and wheel makespans diverged at {channels} channels: {heap} vs {wheel}"
        );
    }
}
