//! Hierarchy-level behaviour of the event-driven NAND backend.
//!
//! Pins the two observable contracts the redesign added to the
//! simulator:
//!
//! * the flash latency histogram is now split into queue wait and
//!   service (`flash.queue_wait_us` / `flash.service_us`), and on the
//!   closed-form oracle path the wait component is identically zero;
//! * under the event-driven backend, write-storm bursts create real
//!   channel contention: tail flash latency rises versus the same read
//!   traffic without the storm, and the queue-wait histogram records it.

use disk_trace::{DiskRequest, WorkloadSpec};
use flashcache_core::FlashCacheConfig;
use flashcache_sim::hierarchy::{Hierarchy, HierarchyConfig};
use nand_flash::{ChannelConfig, FlashConfig, FlashGeometry, TimingBackend};

fn flash_config(backend: TimingBackend, channel: ChannelConfig) -> FlashCacheConfig {
    FlashCacheConfig::builder()
        .flash(FlashConfig {
            geometry: FlashGeometry {
                blocks: 128,
                pages_per_block: 32,
                ..FlashGeometry::default()
            },
            timing_backend: backend,
            channel,
            ..FlashConfig::default()
        })
        .build()
        .expect("test geometry is valid")
}

fn hierarchy(backend: TimingBackend, channel: ChannelConfig) -> Hierarchy {
    Hierarchy::new(HierarchyConfig {
        // Small DRAM so flash actually sees traffic.
        dram_bytes: 1 << 20,
        flash: Some(flash_config(backend, channel)),
        ..HierarchyConfig::default()
    })
}

/// Read-mostly foreground traffic, optionally interrupted every
/// `burst_every` requests by a burst of sequential writes (the storm).
fn drive(h: &mut Hierarchy, storm: bool) {
    let spec = WorkloadSpec::alpha1().scaled(64);
    let mut generator = spec.generator(0x0607_2026);
    for i in 0..12_000u64 {
        let req = generator.next_request();
        h.submit(DiskRequest::new(
            req.page,
            req.len,
            disk_trace::OpKind::Read,
        ));
        if storm && i % 64 == 0 {
            for k in 0..32u64 {
                h.submit(DiskRequest::write((i * 37 + k * 5) % 3_000));
            }
        }
    }
    h.drain();
}

#[test]
fn oracle_path_reports_zero_queue_wait() {
    let mut h = hierarchy(TimingBackend::ClosedForm, ChannelConfig::default());
    drive(&mut h, true);
    let r = h.report();
    assert!(r.flash_hit_pages > 0, "trace must exercise flash hits");
    assert!(!r.flash_queue_wait.is_empty());
    assert_eq!(
        r.flash_queue_wait.max_us(),
        0.0,
        "closed form never queues, so recorded wait must be exactly zero"
    );
    // Wait + service partition the flash latency histogram.
    assert_eq!(r.flash_queue_wait.count(), r.flash_latency.count());
    assert_eq!(r.flash_service.count(), r.flash_latency.count());
    assert_eq!(r.flash_service.max_us(), r.flash_latency.max_us());

    // And the registry exports the two histograms under their canonical
    // names.
    let reg = h.export_metrics();
    let dump = format!("{reg:?}");
    assert!(
        dump.contains("flash.queue_wait_us"),
        "missing wait histogram: {dump}"
    );
    assert!(
        dump.contains("flash.service_us"),
        "missing service histogram: {dump}"
    );
}

#[test]
fn write_storm_raises_tail_flash_latency() {
    let channel = ChannelConfig::builder()
        .channels(4)
        .planes(2)
        .queue_depth(4)
        .writeback_us(200.0)
        .build()
        .expect("valid channel config");

    let mut calm = hierarchy(TimingBackend::EventDriven, channel);
    drive(&mut calm, false);
    let mut storm = hierarchy(TimingBackend::EventDriven, channel);
    drive(&mut storm, true);

    let calm_p99 = calm.report().flash_latency.percentile_us(0.99);
    let storm_p99 = storm.report().flash_latency.percentile_us(0.99);
    assert!(
        storm_p99 > calm_p99,
        "write storm must raise p99 flash latency: calm {calm_p99} vs storm {storm_p99}"
    );
    assert!(
        storm.report().flash_queue_wait.max_us() > 0.0,
        "storm bursts must produce visible queue wait"
    );
}
