//! Trace-driven simulator and experiment drivers reproducing the
//! evaluation of *Improving NAND Flash Based Disk Caches* (ISCA 2008).
//!
//! * [`hierarchy`] — the Figure 2 storage stack: DRAM primary disk
//!   cache → flash secondary disk cache → hard disk, with latency,
//!   traffic and power accounting (the paper's trace-based simulator);
//! * [`server`] — the closed-loop 8-core server throughput model that
//!   substitutes for the paper's M5 full-system runs (Figures 9/10);
//! * [`experiments`] — one driver per table/figure: GC overhead
//!   (Fig. 1b), split-vs-unified miss rate (Fig. 4), ECC latency and
//!   lifetime curves (Fig. 6), SLC/MLC partitioning (Fig. 7),
//!   power/bandwidth (Fig. 9), ECC-strength throughput (Fig. 10),
//!   reconfiguration breakdown (Fig. 11), and controller lifetime
//!   (Fig. 12).
//!
//! # Examples
//!
//! ```
//! use disk_trace::DiskRequest;
//! use flashcache_sim::hierarchy::{Hierarchy, HierarchyConfig};
//!
//! let mut h = Hierarchy::new(HierarchyConfig::default());
//! h.submit(DiskRequest::read(1));
//! assert_eq!(h.report().requests, 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiments;
pub mod hierarchy;
pub mod metrics;
pub mod server;

pub use flash_obs::ServiceTier;
pub use hierarchy::{Hierarchy, HierarchyConfig, HierarchyReport, RequestOutcome};
pub use metrics::LatencyHistogram;
pub use server::{run_server, Bottleneck, ServerConfig, ServerReport};
