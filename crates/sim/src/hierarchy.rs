//! The simulated storage hierarchy of Figure 2: a DRAM primary disk
//! cache in front of an optional flash secondary disk cache in front of
//! a hard disk drive.
//!
//! This is the paper's "light weight trace based Flash disk cache
//! simulator" (§6.1): it replays a [`disk_trace::DiskRequest`] stream,
//! accounts per-device latency, busy time and traffic, and produces the
//! raw material for the power/throughput analyses of §7.

use std::sync::Arc;

use disk_trace::{DiskRequest, OpKind, PAGE_BYTES};
use flash_obs::{EventRing, ObsSink, Registry, ServiceTier, Snapshot};
use flashcache_core::{CacheOp, FlashCache, FlashCacheConfig, PrimaryDiskCache};
use flashcache_engine::{EngineConfig, EngineError, ShardedCache};
use storage_model::{ActivityTracker, DramModel, DramPowerBreakdown, HddModel};

use crate::metrics::LatencyHistogram;

/// Configuration of a [`Hierarchy`].
#[derive(Debug, Clone)]
pub struct HierarchyConfig {
    /// DRAM capacity holding the primary disk cache, bytes.
    pub dram_bytes: u64,
    /// Flash secondary cache configuration; `None` builds the DRAM-only
    /// baseline of Figure 9's left bars.
    pub flash: Option<FlashCacheConfig>,
    /// DRAM timing/power model.
    pub dram: DramModel,
    /// Disk timing/power model.
    pub hdd: HddModel,
    /// Requests between periodic dirty write-back flushes of the PDC.
    pub flush_interval: u64,
    /// Shards the flash cache is hash-partitioned into (1 = the
    /// unsharded baseline; see [`ShardedCache`]).
    pub flash_shards: usize,
    /// Execution configuration of the sharded engine: persistent shard
    /// runtime on/off and worker thread count.
    pub engine: EngineConfig,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            dram_bytes: 256 << 20,
            flash: Some(FlashCacheConfig::default()),
            dram: DramModel::default(),
            hdd: HddModel::travelstar(),
            flush_interval: 1024,
            flash_shards: 1,
            engine: EngineConfig::default(),
        }
    }
}

/// Per-request result.
///
/// Shares its vocabulary with `flashcache_core::AccessOutcome`: both
/// report `hit`, `tier` ([`ServiceTier`]) and `latency_us`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RequestOutcome {
    /// Every page was served without touching the disk.
    pub hit: bool,
    /// The slowest tier the request touched ([`ServiceTier::Disk`] if
    /// any page missed both caches).
    pub tier: ServiceTier,
    /// Foreground latency of the request, µs.
    pub latency_us: f64,
    /// Pages served from DRAM.
    pub dram_hits: u32,
    /// Pages served from flash.
    pub flash_hits: u32,
    /// Pages fetched from disk.
    pub disk_pages: u32,
}

/// Aggregated measurements of a simulation run.
#[derive(Debug, Clone, Default)]
pub struct HierarchyReport {
    /// Requests replayed.
    pub requests: u64,
    /// Pages touched.
    pub pages: u64,
    /// Sum of request latencies, µs.
    pub total_latency_us: f64,
    /// Pages served by each level.
    pub dram_hit_pages: u64,
    /// Pages served from flash.
    pub flash_hit_pages: u64,
    /// Pages that reached the disk (reads).
    pub disk_read_pages: u64,
    /// Pages written to disk (flushes).
    pub disk_write_pages: u64,
    /// DRAM activity.
    pub dram: ActivityTracker,
    /// Disk activity.
    pub disk: ActivityTracker,
    /// Per-request latency distribution.
    pub latency: LatencyHistogram,
    /// Latency of page accesses served at DRAM (hits and absorbed
    /// writes).
    pub dram_latency: LatencyHistogram,
    /// Latency of page accesses served from flash.
    pub flash_latency: LatencyHistogram,
    /// Device queueing delay of flash-served page accesses — zero under
    /// the closed-form timing backend, real channel contention under
    /// the event-driven one. Recorded separately from service so the
    /// oracle path demonstrably reports wait = 0.
    pub flash_queue_wait: LatencyHistogram,
    /// Service component (probe + array + ECC, no queueing) of
    /// flash-served page accesses.
    pub flash_service: LatencyHistogram,
    /// Latency of batched disk accesses (one sample per request that
    /// reached the disk).
    pub disk_latency: LatencyHistogram,
}

impl HierarchyReport {
    /// Mean request latency, µs.
    pub fn avg_latency_us(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_latency_us / self.requests as f64
        }
    }

    /// Fraction of pages that had to come from disk.
    pub fn disk_read_fraction(&self) -> f64 {
        if self.pages == 0 {
            0.0
        } else {
            self.disk_read_pages as f64 / self.pages as f64
        }
    }
}

/// The two- (or one-) level disk cache hierarchy simulator.
///
/// # Examples
///
/// ```
/// use disk_trace::DiskRequest;
/// use flashcache_sim::hierarchy::{Hierarchy, HierarchyConfig};
///
/// let mut h = Hierarchy::new(HierarchyConfig::default());
/// let cold = h.submit(DiskRequest::read(10));
/// let warm = h.submit(DiskRequest::read(10));
/// assert!(warm.latency_us < cold.latency_us);
/// ```
#[derive(Debug)]
pub struct Hierarchy {
    config: HierarchyConfig,
    pdc: PrimaryDiskCache,
    flash: Option<ShardedCache>,
    report: HierarchyReport,
    since_flush: u64,
    /// Attached observability sink (shared with the flash cache).
    sink: Option<Arc<ObsSink>>,
    /// Guards the Drop-time metric flush against double counting.
    obs_flushed: bool,
}

impl Hierarchy {
    /// Builds the hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if the flash configuration fails validation or cannot be
    /// sharded as requested; use [`Hierarchy::try_new`] for graceful
    /// errors.
    pub fn new(config: HierarchyConfig) -> Self {
        Hierarchy::try_new(config).expect("hierarchy config must be valid")
    }

    /// Builds the hierarchy, surfacing configuration problems as typed
    /// errors.
    ///
    /// # Errors
    ///
    /// [`EngineError`] if the flash configuration fails validation or
    /// its blocks cannot be split across `flash_shards`.
    pub fn try_new(config: HierarchyConfig) -> Result<Self, EngineError> {
        let pdc_pages = (config.dram_bytes / PAGE_BYTES).max(1) as usize;
        let flash = match config.flash.clone() {
            Some(c) => Some(ShardedCache::with_engine_config(
                c,
                config.flash_shards.max(1),
                config.engine.clone(),
            )?),
            None => None,
        };
        Ok(Hierarchy {
            pdc: PrimaryDiskCache::new(pdc_pages),
            flash,
            report: HierarchyReport::default(),
            since_flush: 0,
            sink: flash_obs::global_sink(),
            obs_flushed: false,
            config,
        })
    }

    /// Attaches an observability sink to the hierarchy and its flash
    /// cache, replacing the process-global one picked up at
    /// construction (if any).
    pub fn attach_sink(&mut self, sink: Arc<ObsSink>) {
        if let Some(f) = &mut self.flash {
            f.attach_sink(Arc::clone(&sink));
        }
        self.sink = Some(sink);
        self.obs_flushed = false;
    }

    /// Exports the hierarchy's per-tier counters and latency histograms
    /// as a metrics registry under the `hierarchy.*` prefix.
    pub fn export_metrics(&self) -> Registry {
        let mut reg = Registry::new();
        let r = &self.report;
        let counters: &[(&str, u64)] = &[
            ("hierarchy.requests", r.requests),
            ("hierarchy.pages", r.pages),
            ("hierarchy.dram_hit_pages", r.dram_hit_pages),
            ("hierarchy.flash_hit_pages", r.flash_hit_pages),
            ("hierarchy.disk_read_pages", r.disk_read_pages),
            ("hierarchy.disk_write_pages", r.disk_write_pages),
            (
                "hierarchy.total_latency_us",
                r.total_latency_us.round() as u64,
            ),
        ];
        for (name, v) in counters {
            // Handle-based export: resolve each name once, count O(1).
            let id = reg.handle(name);
            reg.add(id, *v);
        }
        reg.histogram_merge("hierarchy.request_latency", &r.latency);
        reg.histogram_merge("hierarchy.dram_latency", &r.dram_latency);
        reg.histogram_merge("hierarchy.flash_latency", &r.flash_latency);
        // Wait vs. service split of the flash tier, exported without the
        // hierarchy prefix as the canonical flash-obs contention metrics.
        reg.histogram_merge("flash.queue_wait_us", &r.flash_queue_wait);
        reg.histogram_merge("flash.service_us", &r.flash_service);
        reg.histogram_merge("hierarchy.disk_latency", &r.disk_latency);
        reg
    }

    /// A full telemetry snapshot: the sink's accumulated registry and
    /// event trace, merged with the *live* (not yet flushed) metrics of
    /// this hierarchy and its flash cache.
    ///
    /// Take either this snapshot *or* a later `ObsSink::snapshot` after
    /// drop — combining both double-counts the live metrics.
    pub fn obs_snapshot(&self) -> Snapshot {
        let mut reg = match &self.sink {
            Some(s) => s.registry(),
            None => Registry::new(),
        };
        reg.merge(&self.export_metrics());
        if let Some(f) = &self.flash {
            reg.merge(&f.export_metrics());
        }
        let events = match &self.sink {
            Some(s) => s.events(),
            None => EventRing::new(0),
        };
        Snapshot::new(reg, events)
    }

    /// The first flash shard, when flash is present. With the default
    /// `flash_shards: 1` this *is* the whole flash cache; with more
    /// shards prefer [`Hierarchy::flash_engine`] for merged views.
    pub fn flash(&self) -> Option<&FlashCache> {
        self.flash.as_ref().map(|f| &f.shards()[0])
    }

    /// The sharded flash engine, when flash is present.
    pub fn flash_engine(&self) -> Option<&ShardedCache> {
        self.flash.as_ref()
    }

    /// The accumulated report.
    pub fn report(&self) -> &HierarchyReport {
        &self.report
    }

    /// Clears all measurements (report, flash statistics) while keeping
    /// cache contents and wear state — used to exclude warm-up from
    /// steady-state measurements.
    pub fn reset_measurements(&mut self) {
        self.report = HierarchyReport::default();
        if let Some(f) = &mut self.flash {
            for shard in f.shards_mut() {
                shard.reset_stats();
            }
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Replays one request, returning its foreground outcome.
    pub fn submit(&mut self, req: DiskRequest) -> RequestOutcome {
        let mut out = RequestOutcome::default();
        let mut disk_read_pages = 0u32;
        for page in req.pages() {
            match req.op {
                OpKind::Read => {
                    let (lat, wait, tier) = self.read_page(page);
                    out.latency_us += lat;
                    match tier {
                        ServiceTier::Dram => {
                            out.dram_hits += 1;
                            self.report.dram_latency.record(lat);
                        }
                        ServiceTier::Flash => {
                            out.flash_hits += 1;
                            self.report.flash_latency.record(lat);
                            self.report.flash_queue_wait.record(wait);
                            self.report.flash_service.record(lat - wait);
                        }
                        ServiceTier::Disk => disk_read_pages += 1,
                    }
                }
                OpKind::Write => {
                    let lat = self.write_page(page);
                    out.latency_us += lat;
                    self.report.dram_latency.record(lat);
                }
            }
        }
        // One disk access covers the request's missed pages.
        if disk_read_pages > 0 {
            let bytes = disk_read_pages as u64 * PAGE_BYTES;
            let t = self.config.hdd.access_latency_us(bytes);
            out.latency_us += t;
            out.disk_pages = disk_read_pages;
            self.report.disk.record(t / 1e6, bytes, false);
            self.report.disk_latency.record(t);
            self.report.disk_read_pages += disk_read_pages as u64;
        }
        out.hit = out.disk_pages == 0;
        out.tier = if out.disk_pages > 0 {
            ServiceTier::Disk
        } else if out.flash_hits > 0 {
            ServiceTier::Flash
        } else {
            ServiceTier::Dram
        };
        self.report.requests += 1;
        self.report.pages += req.len as u64;
        self.report.total_latency_us += out.latency_us;
        self.report.latency.record(out.latency_us);
        self.report.dram_hit_pages += out.dram_hits as u64;
        self.report.flash_hit_pages += out.flash_hits as u64;
        self.since_flush += 1;
        if self.since_flush >= self.config.flush_interval {
            self.since_flush = 0;
            self.periodic_flush();
        }
        out
    }

    /// Replays an entire iterator of requests.
    pub fn run<I: IntoIterator<Item = DiskRequest>>(&mut self, reqs: I) {
        for r in reqs {
            self.submit(r);
        }
    }

    /// Replays a batch of requests, letting the flash shards service
    /// their partitions concurrently ([`ShardedCache::submit`]).
    ///
    /// With one shard (or no flash) this falls back to serial
    /// [`Hierarchy::submit`] per request and is outcome-identical to
    /// it. With multiple shards the batch is staged: every request
    /// probes the DRAM cache first, then all PDC-missed read pages go
    /// to the flash engine as one batch, then disk accesses and PDC
    /// installs are accounted per request in batch order. Within a
    /// batch, a request therefore does not observe cache fills caused
    /// by later requests of the same batch — the usual semantics of a
    /// queue of independent concurrent clients. The periodic PDC flush
    /// runs at batch boundaries once `flush_interval` requests have
    /// accumulated.
    pub fn submit_batch(&mut self, reqs: &[DiskRequest]) -> Vec<RequestOutcome> {
        let shard_count = self.flash.as_ref().map_or(0, |f| f.shard_count());
        if shard_count <= 1 {
            return reqs.iter().map(|r| self.submit(*r)).collect();
        }
        let mut outs = vec![RequestOutcome::default(); reqs.len()];
        // Phase 1: DRAM probes; collect the flash-bound read pages.
        let mut flash_pages: Vec<DiskRequest> = Vec::new();
        let mut owners: Vec<u32> = Vec::new();
        for (ri, req) in reqs.iter().enumerate() {
            for page in req.pages() {
                match req.op {
                    OpKind::Read => {
                        let lat = self.dram_access(false);
                        outs[ri].latency_us += lat;
                        if self.pdc.access(page) {
                            outs[ri].dram_hits += 1;
                            self.report.dram_latency.record(lat);
                        } else {
                            flash_pages.push(DiskRequest::read(page));
                            owners.push(ri as u32);
                        }
                    }
                    OpKind::Write => {
                        let lat = self.write_page(page);
                        outs[ri].latency_us += lat;
                        self.report.dram_latency.record(lat);
                    }
                }
            }
        }
        // Phase 2: the shards service the missed pages concurrently.
        let flash_outs = self
            .flash
            .as_mut()
            .expect("batched path requires flash")
            .submit(&flash_pages);
        // Phase 3: per-page accounting and PDC installs, batch order.
        let probe_us = self.config.dram.access_latency_us(PAGE_BYTES);
        let mut disk_reads = vec![0u32; reqs.len()];
        for ((fo, page_req), &ri) in flash_outs.iter().zip(&flash_pages).zip(&owners) {
            let ri = ri as usize;
            outs[ri].latency_us += fo.latency_us;
            self.flush_to_disk(fo.flushed_dirty);
            if fo.tier == ServiceTier::Flash {
                outs[ri].flash_hits += 1;
                let lat = probe_us + fo.latency_us;
                self.report.flash_latency.record(lat);
                self.report.flash_queue_wait.record(fo.queue_wait_us);
                self.report.flash_service.record(lat - fo.queue_wait_us);
            } else {
                disk_reads[ri] += 1;
            }
            self.install_in_pdc(page_req.page, false);
        }
        // Phase 4: close out each request — batched disk access, report.
        for (ri, req) in reqs.iter().enumerate() {
            let pages = disk_reads[ri];
            if pages > 0 {
                let bytes = pages as u64 * PAGE_BYTES;
                let t = self.config.hdd.access_latency_us(bytes);
                outs[ri].latency_us += t;
                outs[ri].disk_pages = pages;
                self.report.disk.record(t / 1e6, bytes, false);
                self.report.disk_latency.record(t);
                self.report.disk_read_pages += pages as u64;
            }
            outs[ri].hit = outs[ri].disk_pages == 0;
            outs[ri].tier = if outs[ri].disk_pages > 0 {
                ServiceTier::Disk
            } else if outs[ri].flash_hits > 0 {
                ServiceTier::Flash
            } else {
                ServiceTier::Dram
            };
            self.report.requests += 1;
            self.report.pages += req.len as u64;
            self.report.total_latency_us += outs[ri].latency_us;
            self.report.latency.record(outs[ri].latency_us);
            self.report.dram_hit_pages += outs[ri].dram_hits as u64;
            self.report.flash_hit_pages += outs[ri].flash_hits as u64;
        }
        self.since_flush += reqs.len() as u64;
        if self.since_flush >= self.config.flush_interval {
            self.since_flush = 0;
            self.periodic_flush();
        }
        outs
    }

    fn dram_access(&mut self, write: bool) -> f64 {
        let t = self.config.dram.access_latency_us(PAGE_BYTES);
        self.report.dram.record(t / 1e6, PAGE_BYTES, write);
        t
    }

    fn read_page(&mut self, page: u64) -> (f64, f64, ServiceTier) {
        let mut latency = self.dram_access(false);
        if self.pdc.access(page) {
            return (latency, 0.0, ServiceTier::Dram);
        }
        // A PDC miss always installs the page clean; only the hit tier
        // depends on where the data came from.
        let mut queue_wait = 0.0;
        let tier = if let Some(flash) = &mut self.flash {
            let out = flash.op(CacheOp::read(page)).access;
            latency += out.latency_us;
            queue_wait = out.queue_wait_us;
            self.flush_to_disk(out.flushed_dirty);
            out.tier
        } else {
            ServiceTier::Disk
        };
        self.install_in_pdc(page, false);
        (latency, queue_wait, tier)
    }

    fn write_page(&mut self, page: u64) -> f64 {
        let latency = self.dram_access(true);
        self.install_in_pdc(page, true);
        latency
    }

    /// Inserts into the PDC, routing any dirty eviction down a level.
    fn install_in_pdc(&mut self, page: u64, dirty: bool) {
        if let Some(ev) = self.pdc.insert(page, dirty) {
            if ev.dirty {
                self.write_back(ev.page);
            }
        }
    }

    /// Writes one dirty page to the next level (flash write cache, or
    /// disk when there is no flash).
    fn write_back(&mut self, page: u64) {
        if let Some(flash) = &mut self.flash {
            // A `bypassed` outcome covers both worn-out devices and
            // admission rejections: either way the dirty page goes to
            // disk instead of flash.
            let out = flash.op(CacheOp::write(page)).access;
            let flushed = out.flushed_dirty + u32::from(out.bypassed);
            self.flush_to_disk(flushed);
        } else {
            self.flush_to_disk(1);
        }
    }

    /// Accounts `pages` background disk writes (write-back traffic is
    /// scheduled in batches, so seeks amortize across a batch).
    fn flush_to_disk(&mut self, pages: u32) {
        if pages == 0 {
            return;
        }
        const WRITE_BATCH: f64 = 32.0;
        let bytes = pages as u64 * PAGE_BYTES;
        let t = pages as f64
            * (self.config.hdd.avg_access_latency_us / WRITE_BATCH
                + PAGE_BYTES as f64 / self.config.hdd.transfer_bytes_per_s * 1e6);
        self.report.disk.record(t / 1e6, bytes, true);
        self.report.disk_write_pages += pages as u64;
    }

    /// Periodic write-back: PDC dirty pages drain to the flash write
    /// cache (or disk), mirroring §5.1's periodic scheduling.
    fn periodic_flush(&mut self) {
        let dirty = self.pdc.flush_dirty();
        for page in dirty {
            self.write_back(page);
        }
    }

    /// Forces all dirty state (PDC and flash) down to disk.
    pub fn drain(&mut self) {
        self.periodic_flush();
        if let Some(flash) = &mut self.flash {
            let flushed = flash.flush_writes();
            let flushed = u32::try_from(flushed).unwrap_or(u32::MAX);
            self.flush_to_disk(flushed);
        }
    }

    /// DRAM power breakdown over `elapsed_s` of wall time.
    pub fn dram_power(&self, elapsed_s: f64) -> DramPowerBreakdown {
        self.config.dram.power_breakdown(
            self.config.dram_bytes,
            self.report.dram.read_bytes,
            self.report.dram.write_bytes,
            elapsed_s,
        )
    }

    /// Disk average power over `elapsed_s` of wall time.
    pub fn disk_power_w(&self, elapsed_s: f64) -> f64 {
        self.config
            .hdd
            .average_power_w(self.report.disk.busy_s, elapsed_s)
    }

    /// Flash average power over `elapsed_s` of wall time (op energy plus
    /// the idle floor).
    pub fn flash_power_w(&self, elapsed_s: f64) -> f64 {
        match &self.flash {
            None => 0.0,
            Some(f) => f
                .shards()
                .iter()
                .map(|shard| {
                    let stats = shard.device().stats();
                    let capacity = shard
                        .device()
                        .geometry()
                        .capacity_bytes(nand_flash::CellMode::Mlc);
                    stats.energy_mj / 1000.0 / elapsed_s
                        + shard.device().config().power.idle_w(capacity)
                })
                .sum(),
        }
    }
}

impl Drop for Hierarchy {
    /// Flushes the hierarchy's metrics into the attached sink (the
    /// flash cache flushes its own `flash.*`/`nand.*` metrics in its
    /// own `Drop`).
    fn drop(&mut self) {
        if self.obs_flushed {
            return;
        }
        if let Some(s) = &self.sink {
            s.merge_registry(&self.export_metrics());
            self.obs_flushed = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashcache_core::FlashCacheConfig;
    use nand_flash::{FlashConfig, FlashGeometry};

    fn small_flash() -> FlashCacheConfig {
        FlashCacheConfig {
            flash: FlashConfig {
                geometry: FlashGeometry {
                    blocks: 16,
                    pages_per_block: 8,
                    ..FlashGeometry::default()
                },
                ..FlashConfig::default()
            },
            ..FlashCacheConfig::default()
        }
    }

    fn small_hierarchy(flash: bool) -> Hierarchy {
        Hierarchy::new(HierarchyConfig {
            dram_bytes: 64 * 2048, // 64-page PDC
            flash: flash.then(small_flash),
            flush_interval: 64,
            ..HierarchyConfig::default()
        })
    }

    #[test]
    fn dram_hits_are_fast() {
        let mut h = small_hierarchy(true);
        let cold = h.submit(DiskRequest::read(1));
        assert_eq!(cold.disk_pages, 1);
        let warm = h.submit(DiskRequest::read(1));
        assert_eq!(warm.dram_hits, 1);
        assert!(
            warm.latency_us < 1.0,
            "DRAM hit is sub-µs: {}",
            warm.latency_us
        );
        assert!(cold.latency_us > 4000.0, "cold read pays the disk");
    }

    #[test]
    fn flash_serves_dram_evictions() {
        let mut h = small_hierarchy(true);
        // Fill beyond the 64-page PDC but within the flash read region;
        // early pages fall out of DRAM into flash.
        for p in 0..150u64 {
            h.submit(DiskRequest::read(p));
        }
        // Re-read an early page: PDC evicted it, flash still has it.
        let out = h.submit(DiskRequest::read(0));
        assert_eq!(out.flash_hits + out.dram_hits, 1);
        assert!(
            out.latency_us < 1000.0,
            "no disk access: {}",
            out.latency_us
        );
    }

    #[test]
    fn dram_only_baseline_goes_to_disk() {
        let mut h = small_hierarchy(false);
        for p in 0..400u64 {
            h.submit(DiskRequest::read(p));
        }
        let out = h.submit(DiskRequest::read(0));
        assert_eq!(out.disk_pages, 1);
        assert!(h.report().disk_read_pages >= 400);
    }

    #[test]
    fn writes_are_absorbed_and_flushed_on_drain() {
        let mut h = small_hierarchy(true);
        for p in 0..32u64 {
            h.submit(DiskRequest::write(p));
        }
        // Writes complete at DRAM speed.
        assert!(h.report().avg_latency_us() < 1.0);
        h.drain();
        assert!(
            h.report().disk_write_pages > 0,
            "drain must push dirty data to disk"
        );
    }

    #[test]
    fn multi_page_requests_batch_disk_access() {
        let mut h = small_hierarchy(true);
        let out = h.submit(DiskRequest::new(0, 8, OpKind::Read));
        assert_eq!(out.disk_pages, 8);
        // One seek for the whole request, not eight.
        let eight_seeks = 8.0 * h.config().hdd.avg_access_latency_us;
        assert!(out.latency_us < eight_seeks);
    }

    #[test]
    fn report_accumulates_consistently() {
        let mut h = small_hierarchy(true);
        for p in 0..100u64 {
            h.submit(DiskRequest::read(p % 37));
        }
        let r = h.report();
        assert_eq!(r.requests, 100);
        assert_eq!(r.pages, 100);
        assert_eq!(
            r.dram_hit_pages + r.flash_hit_pages + r.disk_read_pages,
            100
        );
        assert!(r.avg_latency_us() > 0.0);
        assert!(r.disk_read_fraction() <= 1.0);
    }

    #[test]
    fn power_queries_are_sane() {
        let mut h = small_hierarchy(true);
        for p in 0..200u64 {
            h.submit(DiskRequest::read(p));
        }
        let dram = h.dram_power(1.0);
        assert!(dram.idle_w > 0.0);
        let disk = h.disk_power_w(1.0);
        assert!(disk >= h.config().hdd.idle_w);
        assert!(h.flash_power_w(1.0) > 0.0);
        // DRAM-only hierarchy reports zero flash power.
        assert_eq!(small_hierarchy(false).flash_power_w(1.0), 0.0);
    }
}
