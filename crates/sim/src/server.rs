//! Closed-loop server throughput and power model — the substitute for
//! the paper's M5 full-system simulations (§6.1, Figures 9 and 10).
//!
//! The paper measures network bandwidth of an 8-core server running
//! dbt2/SPECWeb99 on top of the storage hierarchy. Relative bandwidth is
//! a function of how fast requests complete, which in a closed system is
//! governed by the bottleneck resource. We replay the workload through
//! the [`crate::hierarchy::Hierarchy`], then apply operational-analysis
//! bounds: wall time is the maximum of the CPU demand, the storage
//! demand divided by client concurrency, and each device's total busy
//! time. Network bandwidth is bytes served over wall time.

use disk_trace::WorkloadSpec;
use storage_model::{DramModel, DramPowerBreakdown, HddModel};

use crate::hierarchy::{Hierarchy, HierarchyConfig};

/// Server parameters (Table 3: 8 in-order cores at 1GHz).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerConfig {
    /// Cores available for request processing.
    pub cores: u32,
    /// Concurrent client connections (closed-loop population).
    pub clients: u32,
    /// CPU time consumed per request, µs.
    pub cpu_us_per_request: f64,
    /// Independent flash banks that overlap array operations
    /// (Figure 1(a) shows a banked organization; a 1GB device is built
    /// from 8×1Gb dies). The *ECC controller* is shared, so decode time
    /// is not divided.
    pub flash_banks: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            cores: 8,
            clients: 64,
            cpu_us_per_request: 200.0,
            flash_banks: 8,
        }
    }
}

/// Results of one server run.
#[derive(Debug, Clone)]
pub struct ServerReport {
    /// Requests completed.
    pub requests: u64,
    /// Modelled wall-clock time, seconds.
    pub elapsed_s: f64,
    /// Sustained request throughput, requests/second.
    pub throughput_rps: f64,
    /// Bytes served to the network.
    pub bytes_served: u64,
    /// Network bandwidth, MB/s.
    pub network_mbps: f64,
    /// Which resource bounded the run.
    pub bottleneck: Bottleneck,
    /// DRAM power breakdown, watts.
    pub dram_power: DramPowerBreakdown,
    /// Disk average power, watts.
    pub disk_power_w: f64,
    /// Flash average power, watts.
    pub flash_power_w: f64,
    /// Mean storage latency per request, µs.
    pub avg_storage_latency_us: f64,
    /// Flash read hit pages / total pages (0 for DRAM-only).
    pub flash_hit_fraction: f64,
    /// Disk read pages / total pages.
    pub disk_read_fraction: f64,
    /// Raw quantities for recomputing power at a different wall time.
    pub power_inputs: PowerInputs,
}

/// Device activity totals sufficient to evaluate average power over any
/// wall-time — used to compare configurations at equal work (Figure 9).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerInputs {
    /// Seconds the disk spent busy.
    pub disk_busy_s: f64,
    /// Flash operation energy, millijoules.
    pub flash_energy_mj: f64,
    /// Flash idle power floor, watts.
    pub flash_idle_w: f64,
    /// Bytes read from DRAM.
    pub dram_read_bytes: u64,
    /// Bytes written to DRAM.
    pub dram_write_bytes: u64,
    /// DRAM capacity, bytes.
    pub dram_capacity_bytes: u64,
    /// DRAM model.
    pub dram: DramModel,
    /// Disk model.
    pub hdd: HddModel,
}

impl PowerInputs {
    /// Power breakdown `(dram, disk_w, flash_w)` over `elapsed_s`.
    pub fn power_at(&self, elapsed_s: f64) -> (DramPowerBreakdown, f64, f64) {
        let dram = self.dram.power_breakdown(
            self.dram_capacity_bytes,
            self.dram_read_bytes,
            self.dram_write_bytes,
            elapsed_s,
        );
        let disk = self.hdd.average_power_w(self.disk_busy_s, elapsed_s);
        let flash = self.flash_energy_mj / 1000.0 / elapsed_s + self.flash_idle_w;
        (dram, disk, flash)
    }
}

impl ServerReport {
    /// Total system-memory + disk power — the quantity Figure 9 stacks.
    pub fn memory_and_disk_power_w(&self) -> f64 {
        self.dram_power.total_w() + self.disk_power_w + self.flash_power_w
    }
}

/// The resource that limited throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// CPU-bound: cores saturated.
    Cpu,
    /// Latency-bound: clients waiting on storage round trips.
    ClientLatency,
    /// Disk-bound: the drive's queue never drains.
    Disk,
    /// Flash-bound.
    Flash,
}

/// Runs `requests` requests of `workload` through a hierarchy and
/// applies the bottleneck model.
pub fn run_server(
    hierarchy_config: HierarchyConfig,
    workload: &WorkloadSpec,
    requests: u64,
    seed: u64,
    server: ServerConfig,
) -> ServerReport {
    run_server_warm(hierarchy_config, workload, 0, requests, seed, server)
}

/// Like [`run_server`], but replays `warmup_requests` first and measures
/// only the steady state after them.
pub fn run_server_warm(
    hierarchy_config: HierarchyConfig,
    workload: &WorkloadSpec,
    warmup_requests: u64,
    requests: u64,
    seed: u64,
    server: ServerConfig,
) -> ServerReport {
    let mut hierarchy = Hierarchy::new(hierarchy_config);
    let mut generator = workload.generator(seed);
    for _ in 0..warmup_requests {
        let req = generator.next_request();
        hierarchy.submit(req);
    }
    hierarchy.reset_measurements();
    let mut bytes_served = 0u64;
    for _ in 0..requests {
        let req = generator.next_request();
        bytes_served += req.bytes();
        hierarchy.submit(req);
    }
    hierarchy.drain();
    let report = hierarchy.report();

    let total_cpu_us = requests as f64 * server.cpu_us_per_request;
    let total_storage_us = report.total_latency_us;
    // Array operations overlap across banks; BCH decode serializes on
    // the shared programmable controller (§4.1).
    let flash_busy_us = hierarchy
        .flash_engine()
        .map(|e| {
            let busy: f64 = e.shards().iter().map(|f| f.device().stats().busy_us).sum();
            busy / server.flash_banks.max(1) as f64 + e.stats().ecc_us
        })
        .unwrap_or(0.0);
    let disk_busy_us = report.disk.busy_s * 1e6;

    let bounds = [
        (Bottleneck::Cpu, total_cpu_us / server.cores as f64),
        (
            Bottleneck::ClientLatency,
            (total_cpu_us + total_storage_us) / server.clients as f64,
        ),
        (Bottleneck::Disk, disk_busy_us),
        (Bottleneck::Flash, flash_busy_us),
    ];
    let (bottleneck, wall_us) = bounds
        .into_iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite bounds"))
        .expect("non-empty bounds");
    let elapsed_s = (wall_us / 1e6).max(1e-9);

    let power_inputs = PowerInputs {
        disk_busy_s: report.disk.busy_s,
        flash_energy_mj: hierarchy
            .flash_engine()
            .map(|e| {
                e.shards()
                    .iter()
                    .map(|f| f.device().stats().energy_mj)
                    .sum()
            })
            .unwrap_or(0.0),
        flash_idle_w: hierarchy.flash_power_w(1.0)
            - hierarchy
                .flash_engine()
                .map(|e| {
                    e.shards()
                        .iter()
                        .map(|f| f.device().stats().energy_mj / 1000.0)
                        .sum()
                })
                .unwrap_or(0.0),
        dram_read_bytes: report.dram.read_bytes,
        dram_write_bytes: report.dram.write_bytes,
        dram_capacity_bytes: hierarchy.config().dram_bytes,
        dram: hierarchy.config().dram,
        hdd: hierarchy.config().hdd,
    };
    ServerReport {
        requests,
        elapsed_s,
        throughput_rps: requests as f64 / elapsed_s,
        bytes_served,
        network_mbps: bytes_served as f64 / 1e6 / elapsed_s,
        bottleneck,
        dram_power: hierarchy.dram_power(elapsed_s),
        disk_power_w: hierarchy.disk_power_w(elapsed_s),
        flash_power_w: hierarchy.flash_power_w(elapsed_s),
        avg_storage_latency_us: report.avg_latency_us(),
        flash_hit_fraction: if report.pages == 0 {
            0.0
        } else {
            report.flash_hit_pages as f64 / report.pages as f64
        },
        disk_read_fraction: report.disk_read_fraction(),
        power_inputs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashcache_core::FlashCacheConfig;
    use nand_flash::{FlashConfig, FlashGeometry};

    fn small_flash_cfg(blocks: u32) -> FlashCacheConfig {
        FlashCacheConfig {
            flash: FlashConfig {
                geometry: FlashGeometry {
                    blocks,
                    pages_per_block: 32,
                    ..FlashGeometry::default()
                },
                ..FlashConfig::default()
            },
            ..FlashCacheConfig::default()
        }
    }

    fn small_workload() -> WorkloadSpec {
        WorkloadSpec::dbt2().scaled(256) // 8MB footprint
    }

    #[test]
    fn flash_config_beats_dram_only_on_disk_bound_load() {
        let workload = small_workload();
        // DRAM-only with a PDC much smaller than the footprint.
        let dram_only = run_server(
            HierarchyConfig {
                dram_bytes: 1 << 20,
                flash: None,
                ..HierarchyConfig::default()
            },
            &workload,
            20_000,
            7,
            ServerConfig::default(),
        );
        // Smaller DRAM + flash covering the footprint.
        let with_flash = run_server(
            HierarchyConfig {
                dram_bytes: 1 << 19,
                flash: Some(small_flash_cfg(64)), // 16MB MLC
                ..HierarchyConfig::default()
            },
            &workload,
            20_000,
            7,
            ServerConfig::default(),
        );
        assert!(
            with_flash.network_mbps > dram_only.network_mbps,
            "flash {:.2} MB/s vs dram-only {:.2} MB/s",
            with_flash.network_mbps,
            dram_only.network_mbps
        );
        // Disk *energy* for the same work drops (power at the flash
        // config's shorter wall time can be higher because utilization
        // concentrates; the fair comparison is per unit of work).
        assert!(
            with_flash.power_inputs.disk_busy_s < dram_only.power_inputs.disk_busy_s,
            "flash must reduce disk busy time"
        );
        assert!(with_flash.flash_hit_fraction > 0.1);
        assert_eq!(dram_only.flash_power_w, 0.0);
    }

    #[test]
    fn bottleneck_moves_off_disk_with_flash() {
        let workload = small_workload();
        let dram_only = run_server(
            HierarchyConfig {
                dram_bytes: 1 << 20,
                flash: None,
                ..HierarchyConfig::default()
            },
            &workload,
            10_000,
            8,
            ServerConfig::default(),
        );
        assert_eq!(dram_only.bottleneck, Bottleneck::Disk);
        assert!(dram_only.disk_read_fraction > 0.2);
    }

    #[test]
    fn report_arithmetic() {
        let workload = small_workload();
        let r = run_server(
            HierarchyConfig {
                dram_bytes: 1 << 20,
                flash: Some(small_flash_cfg(64)),
                ..HierarchyConfig::default()
            },
            &workload,
            5_000,
            9,
            ServerConfig::default(),
        );
        assert_eq!(r.requests, 5_000);
        assert!(r.elapsed_s > 0.0);
        assert!((r.throughput_rps - 5_000.0 / r.elapsed_s).abs() < 1e-6);
        assert!(r.memory_and_disk_power_w() > 0.0);
        assert!(r.network_mbps > 0.0);
    }

    #[test]
    fn warmup_improves_steady_state_metrics() {
        let workload = small_workload();
        let cfg = || HierarchyConfig {
            dram_bytes: 1 << 19,
            flash: Some(small_flash_cfg(64)),
            ..HierarchyConfig::default()
        };
        let cold = run_server(cfg(), &workload, 10_000, 6, ServerConfig::default());
        let warm = run_server_warm(cfg(), &workload, 30_000, 10_000, 6, ServerConfig::default());
        // Warm measurement sees a populated cache: more flash hits and
        // fewer disk reads than a cold-start measurement.
        assert!(
            warm.flash_hit_fraction > cold.flash_hit_fraction,
            "warm {:.3} vs cold {:.3}",
            warm.flash_hit_fraction,
            cold.flash_hit_fraction
        );
        assert!(warm.disk_read_fraction < cold.disk_read_fraction);
    }

    #[test]
    fn deterministic_given_seed() {
        let workload = small_workload();
        let cfg = || HierarchyConfig {
            dram_bytes: 1 << 20,
            flash: Some(small_flash_cfg(32)),
            ..HierarchyConfig::default()
        };
        let a = run_server(cfg(), &workload, 3_000, 5, ServerConfig::default());
        let b = run_server(cfg(), &workload, 3_000, 5, ServerConfig::default());
        assert_eq!(a.network_mbps, b.network_mbps);
        assert_eq!(a.elapsed_s, b.elapsed_s);
    }
}
