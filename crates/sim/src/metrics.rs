//! Bounded-memory latency statistics.
//!
//! [`LatencyHistogram`] now lives in the `flash-obs` crate so every
//! layer of the workspace shares one histogram type; this module
//! re-exports it for source compatibility.

pub use flash_obs::LatencyHistogram;
