//! Figure 9: system-memory and disk power breakdown plus network
//! bandwidth, for a DRAM-only server versus a DRAM+flash server of equal
//! memory die area.

use disk_trace::WorkloadSpec;

use crate::hierarchy::HierarchyConfig;
use crate::server::{run_server_warm, ServerConfig, ServerReport};

use super::driver::cache_config_for_bytes;

const MIB: u64 = 1 << 20;

/// One bar group of Figure 9.
#[derive(Debug, Clone)]
pub struct Fig9Row {
    /// Configuration label, e.g. `"DDR2 512MB + 60GB HDD"`.
    pub label: String,
    /// Memory read power, W.
    pub mem_read_w: f64,
    /// Memory write power, W.
    pub mem_write_w: f64,
    /// Memory idle power, W.
    pub mem_idle_w: f64,
    /// Disk power, W.
    pub disk_w: f64,
    /// Flash power, W (folded into "memory" in the paper's stack).
    pub flash_w: f64,
    /// Absolute network bandwidth, MB/s.
    pub network_mbps: f64,
    /// Bandwidth normalized to the DRAM-only baseline.
    pub normalized_bandwidth: f64,
    /// Full server report for deeper inspection.
    pub report: ServerReport,
}

impl Fig9Row {
    /// Total memory + disk power (the paper's headline "up to 3x").
    pub fn total_power_w(&self) -> f64 {
        self.mem_read_w + self.mem_write_w + self.mem_idle_w + self.disk_w + self.flash_w
    }
}

/// Setup of one Figure 9 comparison.
#[derive(Debug, Clone)]
pub struct Fig9Params {
    /// Workload (dbt2 or SPECWeb99).
    pub workload: WorkloadSpec,
    /// DRAM in the baseline configuration, bytes (paper: 512MB).
    pub baseline_dram_bytes: u64,
    /// DRAM alongside flash, bytes (paper: 256MB dbt2 / 128MB SPECWeb99).
    pub flash_dram_bytes: u64,
    /// Flash capacity, bytes (paper: 1GB dbt2 / 2GB SPECWeb99).
    pub flash_bytes: u64,
    /// Requests to replay after warm-up.
    pub requests: u64,
    /// Warm-up requests excluded from measurement.
    pub warmup_requests: u64,
    /// Trace seed.
    pub seed: u64,
    /// Server model.
    pub server: ServerConfig,
}

impl Fig9Params {
    /// The paper's dbt2 configuration: 512MB DRAM baseline vs
    /// 256MB DRAM + 1GB flash.
    pub fn dbt2() -> Self {
        Fig9Params {
            workload: WorkloadSpec::dbt2(),
            baseline_dram_bytes: 512 * MIB,
            flash_dram_bytes: 256 * MIB,
            flash_bytes: 1024 * MIB,
            requests: 400_000,
            warmup_requests: 500_000,
            seed: 0xF19,
            server: ServerConfig::default(),
        }
    }

    /// The paper's SPECWeb99 configuration: 512MB DRAM baseline vs
    /// 128MB DRAM + 2GB flash.
    pub fn specweb99() -> Self {
        Fig9Params {
            workload: WorkloadSpec::specweb99(),
            baseline_dram_bytes: 512 * MIB,
            flash_dram_bytes: 128 * MIB,
            flash_bytes: 2048 * MIB,
            requests: 400_000,
            warmup_requests: 500_000,
            seed: 0xF19,
            server: ServerConfig::default(),
        }
    }

    /// Divides every capacity, the footprint, and the request count by
    /// `factor` for quick runs; the power *ratios* and bandwidth shape
    /// are preserved.
    #[must_use]
    pub fn scaled(mut self, factor: u64) -> Self {
        self.workload = self.workload.scaled(factor);
        self.baseline_dram_bytes /= factor;
        self.flash_dram_bytes /= factor;
        self.flash_bytes /= factor;
        // Keep the run long enough to warm and exercise the scaled
        // footprint: the warm-up must touch it a couple of times over.
        let per_req = self.workload.mean_run_pages.max(1.0);
        let cover = (2.0 * self.workload.footprint_pages as f64 / per_req) as u64;
        self.warmup_requests = (self.warmup_requests / factor).max(cover);
        self.requests = (self.requests / factor).max(cover / 2).max(20_000);
        self
    }
}

/// Runs the comparison: `(dram_only_row, dram_plus_flash_row)`.
pub fn power_bandwidth(params: &Fig9Params) -> (Fig9Row, Fig9Row) {
    let baseline = run_server_warm(
        HierarchyConfig {
            dram_bytes: params.baseline_dram_bytes,
            flash: None,
            ..HierarchyConfig::default()
        },
        &params.workload,
        params.warmup_requests,
        params.requests,
        params.seed,
        params.server,
    );
    let with_flash = run_server_warm(
        HierarchyConfig {
            dram_bytes: params.flash_dram_bytes,
            flash: Some(cache_config_for_bytes(params.flash_bytes)),
            ..HierarchyConfig::default()
        },
        &params.workload,
        params.warmup_requests,
        params.requests,
        params.seed,
        params.server,
    );
    let base_mbps = baseline.network_mbps.max(1e-12);
    // Power is compared at equal work: both configurations evaluated
    // over the slower configuration's wall time, so a faster system is
    // not penalized with artificially concentrated utilization.
    let wall_s = baseline.elapsed_s.max(with_flash.elapsed_s);
    let row = |label: String, r: ServerReport| {
        let (dram, disk_w, flash_w) = r.power_inputs.power_at(wall_s);
        Fig9Row {
            label,
            mem_read_w: dram.read_w,
            mem_write_w: dram.write_w,
            mem_idle_w: dram.idle_w,
            disk_w,
            flash_w,
            network_mbps: r.network_mbps,
            normalized_bandwidth: r.network_mbps / base_mbps,
            report: r,
        }
    };
    (
        row(
            format!("DDR2 {}MB + HDD", params.baseline_dram_bytes / MIB),
            baseline,
        ),
        row(
            format!(
                "DDR2 {}MB + Flash {}MB + HDD",
                params.flash_dram_bytes / MIB,
                params.flash_bytes / MIB
            ),
            with_flash,
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flash_config_saves_power_at_similar_bandwidth() {
        let params = Fig9Params::dbt2().scaled(64);
        let (base, flash) = power_bandwidth(&params);
        // Scaling shrinks capacities but not the devices' power
        // constants, so the full "up to 3x" ratio only emerges at paper
        // scale (recorded in EXPERIMENTS.md); the qualitative pieces
        // must hold at any scale:
        // 1. the disk works less for the same job,
        assert!(
            flash.report.power_inputs.disk_busy_s < base.report.power_inputs.disk_busy_s,
            "disk busy: flash {:.2}s vs baseline {:.2}s",
            flash.report.power_inputs.disk_busy_s,
            base.report.power_inputs.disk_busy_s
        );
        // 2. half the DRAM means half the idle/refresh power,
        assert!(flash.mem_idle_w < 0.6 * base.mem_idle_w);
        // 3. throughput is maintained or improved,
        assert!(
            flash.normalized_bandwidth > 0.95,
            "normalized bandwidth {:.2}",
            flash.normalized_bandwidth
        );
        // 4. flash's own power is negligible,
        assert!(flash.flash_w < 0.5);
        assert_eq!(base.flash_w, 0.0);
        // 5. and the total does not regress.
        assert!(flash.total_power_w() <= base.total_power_w() * 1.01);
    }

    #[test]
    fn specweb_shows_the_same_shape() {
        let params = Fig9Params::specweb99().scaled(64);
        let (base, flash) = power_bandwidth(&params);
        assert!(flash.report.power_inputs.disk_busy_s < base.report.power_inputs.disk_busy_s);
        assert!(flash.mem_idle_w < base.mem_idle_w);
        assert!(flash.normalized_bandwidth > 0.9);
    }
}
