//! Figure 10: server throughput as a function of (uniform) BCH code
//! strength, for SPECWeb99 and dbt2 on 256MB DRAM + 1GB flash.
//!
//! Every flash read pays the decode latency of the configured strength,
//! so throughput degrades as the code strengthens; the disk-bound dbt2
//! is the more sensitive of the two (§7.2).

use disk_trace::WorkloadSpec;
use flashcache_core::ControllerPolicy;

use crate::hierarchy::HierarchyConfig;
use crate::server::{run_server_warm, ServerConfig};

use super::driver::cache_config_for_bytes;

const MIB: u64 = 1 << 20;

/// One point of a Figure 10 series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EccThroughputPoint {
    /// Uniform BCH strength applied to all pages.
    pub strength: u8,
    /// Absolute network bandwidth, MB/s.
    pub network_mbps: f64,
    /// Bandwidth relative to the weakest-code run.
    pub relative_bandwidth: f64,
}

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct EccThroughputParams {
    /// Workload to serve.
    pub workload: WorkloadSpec,
    /// BCH strengths to evaluate (the paper sweeps ~1..50).
    pub strengths: Vec<u8>,
    /// DRAM size, bytes (paper: 256MB).
    pub dram_bytes: u64,
    /// Flash size, bytes (paper: 1GB).
    pub flash_bytes: u64,
    /// Requests to replay per point (after warm-up).
    pub requests: u64,
    /// Warm-up requests excluded from measurement.
    pub warmup_requests: u64,
    /// Trace seed.
    pub seed: u64,
}

impl EccThroughputParams {
    /// The paper's setup for a given workload.
    pub fn paper(workload: WorkloadSpec) -> Self {
        EccThroughputParams {
            workload,
            strengths: vec![1, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50],
            dram_bytes: 256 * MIB,
            flash_bytes: 1024 * MIB,
            requests: 300_000,
            warmup_requests: 400_000,
            seed: 0xF10,
        }
    }

    /// Scales capacities/footprint/requests down by `factor`.
    #[must_use]
    pub fn scaled(mut self, factor: u64) -> Self {
        self.workload = self.workload.scaled(factor);
        self.dram_bytes /= factor;
        self.flash_bytes /= factor;
        let per_req = self.workload.mean_run_pages.max(1.0);
        let cover = (2.0 * self.workload.footprint_pages as f64 / per_req) as u64;
        self.warmup_requests = (self.warmup_requests / factor).max(cover);
        self.requests = (self.requests / factor).max(cover / 2).max(20_000);
        self
    }
}

/// Runs the Figure 10 sweep for one workload.
pub fn ecc_throughput_curve(params: &EccThroughputParams) -> Vec<EccThroughputPoint> {
    let mut points: Vec<EccThroughputPoint> = params
        .strengths
        .iter()
        .map(|&t| {
            let mut cache = cache_config_for_bytes(params.flash_bytes);
            cache.controller = ControllerPolicy::FixedEcc { strength: t };
            cache.initial_ecc = t;
            cache.max_ecc = t.max(cache.max_ecc);
            let report = run_server_warm(
                HierarchyConfig {
                    dram_bytes: params.dram_bytes,
                    flash: Some(cache),
                    ..HierarchyConfig::default()
                },
                &params.workload,
                params.warmup_requests,
                params.requests,
                params.seed,
                ServerConfig::default(),
            );
            EccThroughputPoint {
                strength: t,
                network_mbps: report.network_mbps,
                relative_bandwidth: 0.0,
            }
        })
        .collect();
    let base = points
        .first()
        .map(|p| p.network_mbps)
        .unwrap_or(1.0)
        .max(1e-12);
    for p in &mut points {
        p.relative_bandwidth = p.network_mbps / base;
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_degrades_slowly_with_strength() {
        let params = EccThroughputParams {
            strengths: vec![1, 10, 30, 50],
            requests: 40_000,
            ..EccThroughputParams::paper(WorkloadSpec::specweb99()).scaled(64)
        };
        let points = ecc_throughput_curve(&params);
        assert_eq!(points[0].relative_bandwidth, 1.0);
        // Monotone non-increasing (within noise) and graceful: the paper
        // shows a slow decline, not a cliff.
        for w in points.windows(2) {
            assert!(
                w[1].relative_bandwidth <= w[0].relative_bandwidth + 0.02,
                "strength {} -> {}: bandwidth must not rise",
                w[0].strength,
                w[1].strength
            );
        }
        let last = points.last().unwrap();
        assert!(
            last.relative_bandwidth > 0.3,
            "t=50 keeps meaningful throughput, got {:.2}",
            last.relative_bandwidth
        );
        assert!(
            last.relative_bandwidth < 1.0,
            "t=50 must cost something, got {:.2}",
            last.relative_bandwidth
        );
    }
}
