//! Figure 7: optimal SLC/MLC partition and the resulting average access
//! latency as a function of flash die area.
//!
//! This is the paper's offline analysis (§4.2): given a die area, every
//! split of the cell budget between SLC pages (fast, half density) and
//! MLC pages (dense, slow) yields a different cache capacity and hit
//! latency profile. Hot pages are assumed to occupy the SLC partition —
//! exactly what the run-time promotion policy (§5.2.2) approximates —
//! so the average latency follows directly from the workload's
//! popularity CDF. The optimum trades SLC speed against MLC capacity.

use disk_trace::{PopularitySampler, WorkloadSpec, PAGE_BYTES};
use flash_ecc::EccLatencyModel;
use nand_flash::FlashTiming;
use storage_model::HddModel;

/// Die-area → capacity scaling, from the 8Gb MLC part in 146mm² the
/// paper cites (reference \[12\], Hara et al.): MLC bytes per mm².
pub const MLC_BYTES_PER_MM2: f64 = (1u64 << 30) as f64 / 146.0;

/// One area point of Figure 7.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DensityPoint {
    /// Flash die area, mm².
    pub die_area_mm2: f64,
    /// Average access latency at the optimal partition, µs.
    pub latency_us: f64,
    /// Optimal fraction of cells operated in SLC mode.
    pub optimal_slc_fraction: f64,
}

/// Analysis parameters.
#[derive(Debug, Clone)]
pub struct DensityPartitionParams {
    /// Flash timings (SLC/MLC read latencies).
    pub timing: FlashTiming,
    /// ECC model (decode latency added to every flash hit).
    pub ecc: EccLatencyModel,
    /// ECC strength assumed for hit latency.
    pub ecc_strength: usize,
    /// Disk model for the miss penalty.
    pub hdd: HddModel,
    /// Granularity of the SLC-fraction sweep.
    pub fraction_step: f64,
}

impl Default for DensityPartitionParams {
    fn default() -> Self {
        DensityPartitionParams {
            timing: FlashTiming::default(),
            ecc: EccLatencyModel::default(),
            ecc_strength: 1,
            hdd: HddModel::travelstar(),
            fraction_step: 0.02,
        }
    }
}

/// Computes the Figure 7 curve for `workload` over the given die areas.
pub fn density_partition_curve(
    workload: &WorkloadSpec,
    areas_mm2: &[f64],
    params: &DensityPartitionParams,
    seed: u64,
) -> Vec<DensityPoint> {
    let sampler = PopularitySampler::new(workload.popularity, workload.footprint_pages, seed);
    areas_mm2
        .iter()
        .map(|&area| {
            let mut best = DensityPoint {
                die_area_mm2: area,
                latency_us: f64::INFINITY,
                optimal_slc_fraction: 0.0,
            };
            let mut f: f64 = 0.0;
            while f <= 1.0 + 1e-9 {
                let latency = average_latency(&sampler, area, f.min(1.0), params);
                // Ties (sub-0.01µs) resolve toward more SLC: when the
                // capacity is ample the faster cells win outright.
                if latency < best.latency_us - 0.01 {
                    best.latency_us = latency;
                    best.optimal_slc_fraction = f.min(1.0);
                } else if latency <= best.latency_us + 0.01 {
                    best.optimal_slc_fraction = f.min(1.0);
                    best.latency_us = best.latency_us.min(latency);
                }
                f += params.fraction_step;
            }
            best
        })
        .collect()
}

/// Average access latency when a fraction `slc_fraction` of the die's
/// cells run in SLC mode and the hottest pages occupy the SLC partition.
pub fn average_latency(
    sampler: &PopularitySampler,
    area_mm2: f64,
    slc_fraction: f64,
    params: &DensityPartitionParams,
) -> f64 {
    let mlc_bytes = area_mm2 * MLC_BYTES_PER_MM2;
    // A cell in SLC mode stores half of its MLC capacity.
    let slc_pages = (mlc_bytes * slc_fraction / 2.0 / PAGE_BYTES as f64) as u64;
    let mlc_pages = (mlc_bytes * (1.0 - slc_fraction) / PAGE_BYTES as f64) as u64;
    let ecc_us = params.ecc.decode_us(params.ecc_strength);
    let slc_cov = sampler.coverage(slc_pages);
    let total_cov = sampler.coverage(slc_pages + mlc_pages);
    let mlc_cov = total_cov - slc_cov;
    let miss = 1.0 - total_cov;
    slc_cov * (params.timing.slc_read_us + ecc_us)
        + mlc_cov * (params.timing.mlc_read_us + ecc_us)
        + miss * params.hdd.access_latency_us(PAGE_BYTES)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mb(x: f64) -> f64 {
        // Die area providing x MB of MLC capacity.
        x * (1 << 20) as f64 / MLC_BYTES_PER_MM2
    }

    #[test]
    fn latency_falls_with_area() {
        let w = WorkloadSpec::financial2();
        let areas = [mb(64.0), mb(128.0), mb(256.0), mb(450.0)];
        let points = density_partition_curve(&w, &areas, &DensityPartitionParams::default(), 1);
        for pair in points.windows(2) {
            assert!(
                pair[1].latency_us < pair[0].latency_us,
                "latency must fall with die area"
            );
        }
    }

    #[test]
    fn full_coverage_prefers_pure_slc() {
        // Figure 7: "when the size of the cache approaches the working
        // set size, latency reaches a minimum using only SLC".
        let w = WorkloadSpec::financial2();
        // 2x the working set in MLC terms: even all-SLC covers everything.
        let area = mb(900.0);
        let p = &density_partition_curve(&w, &[area], &DensityPartitionParams::default(), 2)[0];
        assert!(
            p.optimal_slc_fraction > 0.95,
            "got SLC fraction {}",
            p.optimal_slc_fraction
        );
        // And latency is essentially pure SLC hit latency (read + ECC).
        assert!(p.latency_us < 70.0);
    }

    #[test]
    fn scarce_capacity_prefers_mlc() {
        // Figure 7(b): at roughly half the working set, the big-footprint
        // search workload wants almost all MLC.
        let w = WorkloadSpec::websearch1().scaled(8);
        let area = mb(w.footprint_bytes() as f64 / (1 << 20) as f64 / 2.0);
        let p = &density_partition_curve(&w, &[area], &DensityPartitionParams::default(), 3)[0];
        assert!(
            p.optimal_slc_fraction < 0.3,
            "got SLC fraction {}",
            p.optimal_slc_fraction
        );
    }

    #[test]
    fn financial2_at_half_wss_wants_substantial_slc() {
        // Figure 7(a): ~70% SLC near half the working set for Financial2.
        let w = WorkloadSpec::financial2();
        let area = mb(443.8 / 2.0);
        let p = &density_partition_curve(&w, &[area], &DensityPartitionParams::default(), 4)[0];
        assert!(
            p.optimal_slc_fraction > 0.3,
            "got SLC fraction {}",
            p.optimal_slc_fraction
        );
    }

    #[test]
    fn average_latency_is_bounded_by_extremes() {
        let w = WorkloadSpec::financial2();
        let sampler = PopularitySampler::new(w.popularity, w.footprint_pages, 5);
        let params = DensityPartitionParams::default();
        let lat = average_latency(&sampler, mb(100.0), 0.5, &params);
        assert!(lat > params.timing.slc_read_us);
        assert!(lat < params.hdd.access_latency_us(PAGE_BYTES));
    }
}
