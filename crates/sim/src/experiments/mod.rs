//! Experiment drivers, one per table/figure of the paper's evaluation.
//!
//! Each module exposes typed parameter and result structs; the
//! `flashcache-bench` crate hosts the binaries that print them in the
//! paper's row/series format.

pub mod admission;
pub mod curves;
pub mod density_partition;
pub mod driver;
pub mod ecc_throughput;
pub mod gc_overhead;
pub mod lifetime;
pub mod power_bandwidth;
pub mod reconfig_breakdown;
pub mod split_miss;
