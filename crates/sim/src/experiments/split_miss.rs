//! Figure 4: flash disk cache miss rate, unified vs split read/write
//! regions, across flash sizes, on the dbt2 (OLTP) trace.

use disk_trace::WorkloadSpec;
use flashcache_core::{FlashCache, SplitPolicy};

use super::driver::{cache_config_for_bytes, drive_cache};

/// One size point of Figure 4.
///
/// The figure's "Flash Miss rate" is reported as the *read* miss rate:
/// the split's benefit is protecting read-critical blocks from the
/// capacity damage of out-of-place writes (§3.5), and read latency is
/// what drives overall performance. Overall (read+write) miss rates are
/// included for completeness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitMissPoint {
    /// Flash capacity in bytes (MLC).
    pub flash_bytes: u64,
    /// Read miss rate of the unified ("RW unified") cache.
    pub unified_miss_rate: f64,
    /// Read miss rate of the split ("RW separate", 90/10) cache.
    pub split_miss_rate: f64,
    /// Overall miss rate (reads + writes), unified.
    pub unified_overall_miss_rate: f64,
    /// Overall miss rate (reads + writes), split.
    pub split_overall_miss_rate: f64,
    /// GC time share of flash work, unified (the Figure 3 cost).
    pub unified_gc_overhead: f64,
    /// GC time share of flash work, split.
    pub split_gc_overhead: f64,
}

/// Parameters of the sweep.
#[derive(Debug, Clone)]
pub struct SplitMissParams {
    /// Workload to replay (the paper uses dbt2).
    pub workload: WorkloadSpec,
    /// Flash sizes to evaluate.
    pub flash_sizes_bytes: Vec<u64>,
    /// Page accesses used to warm each cache.
    pub warmup_accesses: u64,
    /// Page accesses measured after warm-up.
    pub measured_accesses: u64,
    /// Trace seed.
    pub seed: u64,
}

impl Default for SplitMissParams {
    fn default() -> Self {
        const MIB: u64 = 1 << 20;
        SplitMissParams {
            workload: WorkloadSpec::dbt2(),
            flash_sizes_bytes: vec![128 * MIB, 256 * MIB, 384 * MIB, 512 * MIB, 640 * MIB],
            warmup_accesses: 2_000_000,
            measured_accesses: 2_000_000,
            seed: 0xF164,
        }
    }
}

impl SplitMissParams {
    /// A laptop-scale variant: sizes, footprint and trace length divided
    /// by `factor` (the miss-rate *comparison* is scale-invariant).
    #[must_use]
    pub fn scaled(mut self, factor: u64) -> Self {
        self.workload = self.workload.scaled(factor);
        for s in &mut self.flash_sizes_bytes {
            *s /= factor;
        }
        self.warmup_accesses /= factor;
        self.measured_accesses /= factor;
        self
    }
}

/// Runs the Figure 4 sweep.
pub fn split_miss_curve(params: &SplitMissParams) -> Vec<SplitMissPoint> {
    params
        .flash_sizes_bytes
        .iter()
        .map(|&bytes| {
            let (unified_miss_rate, unified_overall_miss_rate, unified_gc_overhead) =
                run_one(params, bytes, SplitPolicy::Unified);
            let (split_miss_rate, split_overall_miss_rate, split_gc_overhead) = run_one(
                params,
                bytes,
                SplitPolicy::Split {
                    write_fraction: 0.10,
                },
            );
            SplitMissPoint {
                flash_bytes: bytes,
                unified_miss_rate,
                split_miss_rate,
                unified_overall_miss_rate,
                split_overall_miss_rate,
                unified_gc_overhead,
                split_gc_overhead,
            }
        })
        .collect()
}

fn run_one(params: &SplitMissParams, bytes: u64, split: SplitPolicy) -> (f64, f64, f64) {
    let mut config = cache_config_for_bytes(bytes);
    config.split = split;
    let mut cache = FlashCache::new(config).expect("valid config");
    let mut generator = params.workload.generator(params.seed);
    drive_cache(&mut cache, &mut generator, params.warmup_accesses, false);
    cache.reset_stats();
    drive_cache(&mut cache, &mut generator, params.measured_accesses, false);
    let s = cache.stats();
    (s.read_miss_rate(), s.miss_rate(), s.gc_overhead())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_wins_and_miss_rate_falls_with_size() {
        // Heavily scaled-down sweep for test budget.
        let params = SplitMissParams {
            // Enough blocks that the 10% write region is not a single
            // block (the paper's smallest point, 128MB, has 512 blocks).
            flash_sizes_bytes: vec![8 << 20, 20 << 20],
            warmup_accesses: 100_000,
            measured_accesses: 100_000,
            workload: WorkloadSpec::dbt2().scaled(64), // 32MB footprint
            seed: 11,
        };
        let points = split_miss_curve(&params);
        assert_eq!(points.len(), 2);
        // Bigger cache, fewer misses — both policies.
        assert!(points[1].unified_miss_rate < points[0].unified_miss_rate);
        assert!(points[1].split_miss_rate < points[0].split_miss_rate);
        for p in &points {
            // The split cache's read miss rate stays close to unified
            // (within a few points at this miniature scale — see
            // EXPERIMENTS.md for the full-scale discussion)...
            assert!(
                p.split_miss_rate <= p.unified_miss_rate + 0.04,
                "split {:.3} vs unified {:.3} at {} bytes",
                p.split_miss_rate,
                p.unified_miss_rate,
                p.flash_bytes
            );
            // ...while containing garbage collection, the Figure 3
            // mechanism the split exists for.
            assert!(
                p.split_gc_overhead <= p.unified_gc_overhead + 0.02,
                "split GC {:.3} vs unified {:.3} at {} bytes",
                p.split_gc_overhead,
                p.unified_gc_overhead,
                p.flash_bytes
            );
        }
    }
}
