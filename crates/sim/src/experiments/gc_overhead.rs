//! Figure 1(b): garbage-collection overhead versus occupied flash space.
//!
//! A unified flash store absorbs a uniform write-only stream whose
//! footprint occupies a chosen fraction of the flash. As the occupancy
//! approaches 100%, each GC pass finds fewer invalid pages per block and
//! must move more live data, so the time spent collecting garbage blows
//! up — the paper's motivation for splitting the disk cache (it cites
//! eNVy stopping at 80% occupancy).

use disk_trace::{Popularity, WorkloadKind, WorkloadSpec};
use flashcache_core::{FlashCache, SplitPolicy};
use nand_flash::CellMode;

use super::driver::{cache_config_for_bytes, drive_cache};

/// One point of the Figure 1(b) curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GcOverheadPoint {
    /// Fraction of flash capacity holding live data.
    pub occupancy: f64,
    /// GC time / total flash time.
    pub gc_overhead: f64,
    /// Overhead normalized to 10% (the paper's y-axis).
    pub normalized: f64,
}

/// Sweeps occupancy and measures GC overhead on a `flash_bytes` unified
/// flash. `writes_per_point` page writes are measured after the store is
/// warmed to steady state.
pub fn gc_overhead_curve(
    flash_bytes: u64,
    occupancies: &[f64],
    writes_per_point: u64,
    seed: u64,
) -> Vec<GcOverheadPoint> {
    occupancies
        .iter()
        .map(|&occ| {
            assert!((0.0..1.0).contains(&occ) && occ > 0.0, "occupancy in (0,1)");
            let mut config = cache_config_for_bytes(flash_bytes);
            config.split = SplitPolicy::Unified;
            let capacity_pages =
                config.flash.geometry.capacity_bytes(CellMode::Mlc) / disk_trace::PAGE_BYTES;
            let footprint = ((capacity_pages as f64 * occ) as u64).max(16);
            let workload = WorkloadSpec {
                name: format!("gc-occ-{occ:.2}"),
                kind: WorkloadKind::Micro,
                footprint_pages: footprint,
                write_fraction: 1.0,
                popularity: Popularity::Uniform,
                mean_run_pages: 1.0,
                rw_overlap: 1.0,
                fast_sampling: true,
            };
            let mut cache = FlashCache::new(config).expect("valid config");
            let mut generator = workload.generator(seed);
            // Warm: write the whole footprint twice so steady-state GC
            // behaviour is established.
            drive_cache(&mut cache, &mut generator, footprint * 2, false);
            cache.reset_stats();
            drive_cache(&mut cache, &mut generator, writes_per_point, false);
            let gc_overhead = cache.stats().gc_overhead();
            GcOverheadPoint {
                occupancy: occ,
                gc_overhead,
                normalized: gc_overhead / 0.10,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_grows_with_occupancy() {
        let points = gc_overhead_curve(8 << 20, &[0.3, 0.6, 0.9], 30_000, 1);
        assert_eq!(points.len(), 3);
        assert!(
            points[2].gc_overhead > points[0].gc_overhead,
            "90% occupancy ({:.3}) must cost more GC than 30% ({:.3})",
            points[2].gc_overhead,
            points[0].gc_overhead
        );
        // High occupancy is dramatically worse, as in the figure.
        assert!(points[2].gc_overhead > 2.0 * points[0].gc_overhead);
        for p in &points {
            assert!((0.0..=1.0).contains(&p.gc_overhead));
            assert!((p.normalized - p.gc_overhead / 0.1).abs() < 1e-12);
        }
    }
}
