//! Admission/longevity ablation: the paper's split cache extended with
//! write-minimizing admission control and longevity-bucketed placement.
//!
//! Four variants, each adding one mechanism on top of the last:
//!
//! 1. `unified` — single region, admit everything (Figure 3's strawman).
//! 2. `split` — 90/10 read/write regions (the paper's design; the
//!    baseline every delta below is measured against).
//! 3. `split+admission` — re-reference admission gates one-hit wonders
//!    out of flash entirely.
//! 4. `split+admission+longevity` — admitted writes are additionally
//!    routed to per-bucket open blocks by predicted re-write interval.
//!
//! The headline quantities are flash bytes programmed (the wear budget
//! admission protects), mean block erases (projected lifetime scales
//! with its inverse), and the read miss rate (the cost side: admission
//! must not give back the cache's latency win).

use disk_trace::WorkloadSpec;
use flashcache_core::{AdmissionPolicyConfig, FlashCache, SplitPolicy};

use super::driver::{cache_config_for_bytes, drive_cache, half_working_set_bytes};

/// One variant's measured row.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Variant name (`unified`, `split`, `split+admission`,
    /// `split+admission+longevity`).
    pub variant: String,
    /// Read miss rate over the measured window.
    pub read_miss_rate: f64,
    /// Flash page programs over the measured window (fills + admitted
    /// writes + GC relocations + wear migrations).
    pub flash_programs: u64,
    /// `flash_programs` converted to bytes — the wear-budget headline.
    pub flash_bytes_written: u64,
    /// Bytes of admitted host writes only (`flash.admission.bytes_written`).
    pub admitted_write_bytes: u64,
    /// Block erases over the measured window.
    pub erases: u64,
    /// Mean per-block erase count at end of run (warm-up included;
    /// projected lifetime is proportional to its inverse).
    pub mean_block_erases: f64,
    /// Read-miss fills the admission policy kept out of flash.
    pub rejected_fills: u64,
    /// Host writes the admission policy sent straight to disk.
    pub rejected_writes: u64,
    /// Dirty overwrites absorbed in place without a reprogram.
    pub coalesced_writes: u64,
    /// Pages relocated by garbage collection (write-amp contribution).
    pub gc_moved_pages: u64,
}

impl AblationRow {
    /// Projected lifetime of this variant relative to `baseline`:
    /// lifetime ∝ 1 / mean block erases, so > 1 means this variant's
    /// flash outlives the baseline's.
    pub fn lifetime_vs(&self, baseline: &AblationRow) -> f64 {
        baseline.mean_block_erases / self.mean_block_erases.max(1e-9)
    }
}

/// Ablation parameters.
#[derive(Debug, Clone)]
pub struct AblationParams {
    /// Workload to replay (a write-bearing Zipf mix by default).
    pub workload: WorkloadSpec,
    /// Page accesses used to warm each cache (admission history and
    /// working set both settle during this window).
    pub warmup_accesses: u64,
    /// Page accesses measured after warm-up.
    pub measured_accesses: u64,
    /// Trace seed (identical across variants).
    pub seed: u64,
    /// Re-references required before a page earns flash space.
    pub reref_k: u8,
    /// Decay window (in accesses) for the re-reference ghost counters.
    pub reref_window: u64,
    /// Longevity buckets used by the final variant.
    pub longevity_buckets: u32,
}

impl Default for AblationParams {
    fn default() -> Self {
        AblationParams {
            workload: WorkloadSpec::alpha1().scaled(16),
            warmup_accesses: 100_000,
            measured_accesses: 200_000,
            seed: 0x5EED,
            reref_k: 1,
            reref_window: 65_536,
            longevity_buckets: 4,
        }
    }
}

/// The four ablation variants: `(name, split, admission, buckets)`.
pub fn ablation_variants(
    params: &AblationParams,
) -> Vec<(&'static str, SplitPolicy, AdmissionPolicyConfig, u32)> {
    let split = SplitPolicy::Split {
        write_fraction: 0.10,
    };
    let reref = AdmissionPolicyConfig::ReReference {
        k: params.reref_k,
        window: params.reref_window,
    };
    vec![
        (
            "unified",
            SplitPolicy::Unified,
            AdmissionPolicyConfig::AdmitAll,
            1,
        ),
        ("split", split, AdmissionPolicyConfig::AdmitAll, 1),
        ("split+admission", split, reref, 1),
        (
            "split+admission+longevity",
            split,
            reref,
            params.longevity_buckets,
        ),
    ]
}

/// Runs one variant and returns its measured row.
pub fn run_variant(
    params: &AblationParams,
    name: &str,
    split: SplitPolicy,
    admission: AdmissionPolicyConfig,
    longevity_buckets: u32,
) -> AblationRow {
    let mut config = cache_config_for_bytes(half_working_set_bytes(&params.workload));
    config.split = split;
    config.admission = admission;
    config.longevity_buckets = longevity_buckets;
    let mut cache = FlashCache::new(config).expect("valid config");
    let mut generator = params.workload.generator(params.seed);
    drive_cache(&mut cache, &mut generator, params.warmup_accesses, false);
    cache.reset_stats();
    drive_cache(&mut cache, &mut generator, params.measured_accesses, false);
    let s = cache.stats();
    let page_bytes = u64::from(cache.device().geometry().page_data_bytes);
    let (_, _, mean_block_erases) = cache.erase_spread();
    AblationRow {
        variant: name.to_string(),
        read_miss_rate: s.read_miss_rate(),
        flash_programs: s.flash_programs,
        flash_bytes_written: s.flash_programs * page_bytes,
        admitted_write_bytes: s.admission_bytes_written,
        erases: s.erases,
        mean_block_erases,
        rejected_fills: s.admission_rejected_fills,
        rejected_writes: s.admission_rejected_writes,
        coalesced_writes: s.admission_coalesced_writes,
        gc_moved_pages: s.gc_moved_pages,
    }
}

/// Runs the full four-way ablation on one trace seed.
pub fn run_ablation(params: &AblationParams) -> Vec<AblationRow> {
    ablation_variants(params)
        .into_iter()
        .map(|(name, split, admission, buckets)| {
            run_variant(params, name, split, admission, buckets)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> AblationParams {
        AblationParams {
            workload: WorkloadSpec::alpha1().scaled(512), // 4MB footprint
            warmup_accesses: 60_000,
            measured_accesses: 120_000,
            reref_window: 16_384,
            ..AblationParams::default()
        }
    }

    #[test]
    fn admission_cuts_flash_writes_without_hurting_reads() {
        let rows = run_ablation(&small_params());
        assert_eq!(rows.len(), 4);
        let split = &rows[1];
        let full = &rows[3];
        assert_eq!(split.variant, "split");
        assert_eq!(full.variant, "split+admission+longevity");
        // The gate is actually rejecting traffic...
        assert!(full.rejected_fills + full.rejected_writes > 0);
        // ...which shows up as fewer bytes programmed and longer life...
        assert!(
            full.flash_bytes_written < split.flash_bytes_written,
            "full {} vs split {} bytes",
            full.flash_bytes_written,
            split.flash_bytes_written
        );
        assert!(
            full.lifetime_vs(split) > 1.0,
            "lifetime ratio {:.3}",
            full.lifetime_vs(split)
        );
        // ...while the read miss rate degrades by < 2 points absolute
        // (in practice it usually *improves*: the space one-hit wonders
        // would have burned instead holds re-read pages).
        assert!(
            full.read_miss_rate < split.read_miss_rate + 0.02,
            "read miss {:.4} vs {:.4}",
            full.read_miss_rate,
            split.read_miss_rate
        );
    }

    #[test]
    fn admit_all_variants_report_no_rejections() {
        let rows = run_ablation(&small_params());
        for row in &rows[..2] {
            assert_eq!(row.rejected_fills, 0, "{}", row.variant);
            assert_eq!(row.rejected_writes, 0, "{}", row.variant);
            assert_eq!(row.coalesced_writes, 0, "{}", row.variant);
        }
    }
}
