//! Figures 6(a) and 6(b): the analytic curves of the ECC accelerator
//! latency model and of the lifetime-vs-code-strength analysis.

use flash_ecc::EccLatencyModel;
use flash_reliability::{CellLifetimeModel, PageLifetimeModel};

/// One row of Figure 6(a): BCH decode latency at strength `t`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecodeLatencyPoint {
    /// Correctable errors.
    pub t: usize,
    /// Syndrome stage, µs.
    pub syndrome_us: f64,
    /// Chien search stage, µs.
    pub chien_us: f64,
    /// Total, µs.
    pub total_us: f64,
}

/// One point of Figure 6(a): decode latency at strength `t` on the
/// paper's 100MHz accelerator model. Independent per `t`, so sweep
/// points can be computed in parallel.
pub fn decode_latency_point(t: usize) -> DecodeLatencyPoint {
    let d = EccLatencyModel::default().decode(t);
    DecodeLatencyPoint {
        t,
        syndrome_us: d.syndrome_us,
        chien_us: d.chien_us,
        total_us: d.total_us(),
    }
}

/// Figure 6(a): decode latency for `t` in `range` on the paper's 100MHz
/// accelerator model.
pub fn decode_latency_curve(range: std::ops::RangeInclusive<usize>) -> Vec<DecodeLatencyPoint> {
    range.map(decode_latency_point).collect()
}

/// One row of Figure 6(b): max tolerable W/E cycles per spatial-stdev
/// series at a given code strength.
#[derive(Debug, Clone, PartialEq)]
pub struct LifetimePoint {
    /// Correctable errors.
    pub t: usize,
    /// Max tolerable W/E cycles for stdev = 0, 5%, 10%, 20% of mean.
    pub cycles_by_stdev: [f64; 4],
}

/// The spatial-variation series of Figure 6(b).
pub const FIG6B_STDEVS: [f64; 4] = [0.0, 0.05, 0.10, 0.20];

/// One point of Figure 6(b): max tolerable cycles at strength `t` for
/// every spatial-variation series. Independent per `t`, so sweep points
/// can be computed in parallel.
pub fn lifetime_point(t: usize) -> LifetimePoint {
    let cell = CellLifetimeModel::figure_calibrated();
    let mut cycles_by_stdev = [0.0; 4];
    for (c, &s) in cycles_by_stdev.iter_mut().zip(FIG6B_STDEVS.iter()) {
        *c = PageLifetimeModel::new(cell)
            .with_spatial_stdev_frac(s)
            .max_tolerable_cycles(t);
    }
    LifetimePoint { t, cycles_by_stdev }
}

/// Figure 6(b): maximum tolerable write/erase cycles versus ECC code
/// strength for each spatial-variation series.
pub fn lifetime_curve(max_t: usize) -> Vec<LifetimePoint> {
    (0..=max_t).map(lifetime_point).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6a_shape() {
        let points = decode_latency_curve(2..=11);
        assert_eq!(points.len(), 10);
        for w in points.windows(2) {
            assert!(w[1].total_us > w[0].total_us);
        }
        // Paper range: tens of µs at t=2 to ~180µs at t=11.
        assert!(points[0].total_us < 60.0);
        assert!((150.0..200.0).contains(&points[9].total_us));
        for p in &points {
            assert!((p.syndrome_us + p.chien_us - p.total_us).abs() < 1e-9);
        }
    }

    #[test]
    fn fig6b_shape() {
        let points = lifetime_curve(10);
        assert_eq!(points.len(), 11);
        // Anchors: ~1e5 at t=0, ~8e6 at t=10 for the stdev=0 series.
        assert!((0.4e5..2.5e5).contains(&points[0].cycles_by_stdev[0]));
        assert!((4e6..1.6e7).contains(&points[10].cycles_by_stdev[0]));
        for p in &points {
            // More spatial variation, lower curve.
            for k in 1..4 {
                assert!(
                    p.cycles_by_stdev[k] <= p.cycles_by_stdev[k - 1] * 1.0001,
                    "t={}: series {k} should not exceed series {}",
                    p.t,
                    k - 1
                );
            }
        }
        // Monotone in t for the clean series.
        for w in points.windows(2) {
            assert!(w[1].cycles_by_stdev[0] > w[0].cycles_by_stdev[0]);
        }
    }
}
