//! Shared helpers for the experiment drivers: sizing flash caches and
//! replaying traces straight into a [`FlashCache`].

use disk_trace::{TraceGenerator, WorkloadSpec, PAGE_BYTES};
use flashcache_core::{CacheOp, FlashCache, FlashCacheConfig};
use nand_flash::FlashGeometry;

/// Builds a cache configuration whose MLC capacity is `bytes`.
pub fn cache_config_for_bytes(bytes: u64) -> FlashCacheConfig {
    FlashCacheConfig::builder()
        .flash(nand_flash::FlashConfig {
            geometry: FlashGeometry::for_mlc_capacity(bytes),
            ..nand_flash::FlashConfig::default()
        })
        .build()
        .expect("experiment capacities sit inside the validated ranges")
}

/// Flash capacity equal to half a workload's working set (the Figure 11
/// setup: "the size of Flash was set to half the working set size").
pub fn half_working_set_bytes(workload: &WorkloadSpec) -> u64 {
    // Floor of 8 blocks (2MB MLC): the cache needs enough blocks for
    // both regions plus spares.
    (workload.footprint_pages * PAGE_BYTES / 2).max(8 * 256 * 1024)
}

/// Whether `FLASHCACHE_CHECK_INVARIANTS` is set (to anything but `0` or
/// the empty string). When on, [`drive_cache`] periodically asserts
/// [`FlashCache::check_invariants`], which cross-checks the incremental
/// reclaim index against the O(blocks) scan oracles mid-replay. Off by
/// default: the check is O(blocks × slots) and meant for CI smoke runs,
/// not production sweeps.
pub fn invariant_checks_enabled() -> bool {
    static ENABLED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ENABLED.get_or_init(|| {
        std::env::var("FLASHCACHE_CHECK_INVARIANTS")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false)
    })
}

/// Access interval between mid-replay invariant checks.
const INVARIANT_CHECK_INTERVAL: u64 = 8192;

/// Replays up to `accesses` page accesses from `generator` into `cache`,
/// stopping early if the cache dies when `stop_when_dead` is set.
/// Returns the number of page accesses performed.
pub fn drive_cache(
    cache: &mut FlashCache,
    generator: &mut TraceGenerator,
    accesses: u64,
    stop_when_dead: bool,
) -> u64 {
    let checked = invariant_checks_enabled();
    let mut done = 0u64;
    'outer: while done < accesses {
        let req = generator.next_request();
        for page in req.pages() {
            if req.is_write() {
                cache.op(CacheOp::write(page));
            } else {
                cache.op(CacheOp::read(page));
            }
            done += 1;
            if checked && done.is_multiple_of(INVARIANT_CHECK_INTERVAL) {
                cache
                    .check_invariants()
                    .expect("cache invariants hold mid-replay");
            }
            if done >= accesses || (stop_when_dead && cache.is_dead()) {
                break 'outer;
            }
        }
    }
    if checked {
        cache
            .check_invariants()
            .expect("cache invariants hold after replay");
    }
    done
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_capacity_matches_request() {
        let cfg = cache_config_for_bytes(16 << 20);
        let cap = cfg.flash.geometry.capacity_bytes(nand_flash::CellMode::Mlc);
        assert!(cap >= 16 << 20);
        assert!(cap < (16 << 20) + 512 * 1024);
    }

    #[test]
    fn drive_cache_counts_page_accesses() {
        let mut cache = FlashCache::new(cache_config_for_bytes(4 << 20)).unwrap();
        let mut generator = WorkloadSpec::uniform().scaled(64).generator(3);
        let n = drive_cache(&mut cache, &mut generator, 500, false);
        assert_eq!(n, 500);
        let s = cache.stats();
        assert_eq!(s.reads + s.writes, 500);
    }

    #[test]
    fn half_wss_has_floor() {
        let tiny = WorkloadSpec::uniform().scaled(200_000);
        assert!(half_working_set_bytes(&tiny) >= 8 * 256 * 1024);
        let big = WorkloadSpec::dbt2();
        assert_eq!(half_working_set_bytes(&big), 1024 << 20);
    }
}
