//! Figure 11: breakdown of page reconfiguration (descriptor update)
//! events into ECC-strength increases versus MLC→SLC density switches,
//! per workload, with flash sized at half the working set and measured
//! near the onset of cell failures.

use disk_trace::WorkloadSpec;
use flashcache_core::FlashCache;
use nand_flash::WearConfig;

use super::driver::{cache_config_for_bytes, drive_cache, half_working_set_bytes};

/// One bar of Figure 11.
#[derive(Debug, Clone, PartialEq)]
pub struct ReconfigRow {
    /// Workload name.
    pub workload: String,
    /// Descriptor updates that raised ECC strength.
    pub ecc_events: u64,
    /// Descriptor updates that switched density (fault-driven demotions
    /// plus hot-page promotions, both of which reprogram the mode field).
    pub density_events: u64,
    /// Hot-page promotions included in `density_events`.
    pub hot_promotions: u64,
}

impl ReconfigRow {
    /// Percentage of descriptor updates that were ECC-strength changes,
    /// counting every density update (fault-driven and hot-promotion).
    pub fn ecc_pct(&self) -> f64 {
        let total = self.ecc_events + self.density_events;
        if total == 0 {
            0.0
        } else {
            100.0 * self.ecc_events as f64 / total as f64
        }
    }

    /// Same percentage restricted to *fault-driven* updates — the
    /// cost-function decisions of §5.2.1 that Figure 11 plots.
    pub fn fault_ecc_pct(&self) -> f64 {
        let density = self.density_events - self.hot_promotions;
        let total = self.ecc_events + density;
        if total == 0 {
            0.0
        } else {
            100.0 * self.ecc_events as f64 / total as f64
        }
    }
}

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct ReconfigParams {
    /// Footprint scaling applied to every workload.
    pub scale: u64,
    /// Wear acceleration factor (brings cell failures into the run).
    pub acceleration: f64,
    /// Page-access budget per workload.
    pub accesses: u64,
    /// Stop once this many descriptor updates have been observed — the
    /// paper measures "near the point where the Flash cells start to
    /// fail", i.e. the early reconfiguration window.
    pub min_events: u64,
    /// Trace seed.
    pub seed: u64,
}

impl Default for ReconfigParams {
    fn default() -> Self {
        ReconfigParams {
            scale: 64,
            acceleration: 2e4,
            accesses: 5_000_000,
            min_events: 1_000,
            seed: 0xF11,
        }
    }
}

/// The ten workloads of Figure 11.
pub fn fig11_workloads() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec::uniform(),
        WorkloadSpec::alpha1(),
        WorkloadSpec::alpha2(),
        WorkloadSpec::alpha3(),
        WorkloadSpec::exp1(),
        WorkloadSpec::exp2(),
        WorkloadSpec::websearch1(),
        WorkloadSpec::websearch2(),
        WorkloadSpec::financial1(),
        WorkloadSpec::financial2(),
    ]
}

/// Runs the breakdown for each workload.
pub fn reconfig_breakdown(workloads: &[WorkloadSpec], params: &ReconfigParams) -> Vec<ReconfigRow> {
    workloads
        .iter()
        .map(|w| {
            let workload = w.clone().scaled(params.scale);
            let mut config = cache_config_for_bytes(half_working_set_bytes(&workload));
            config.flash.wear = WearConfig::default().accelerated(params.acceleration);
            let mut cache = FlashCache::new(config).expect("valid config");
            let mut generator = workload.generator(params.seed);
            let mut done = 0u64;
            while done < params.accesses && !cache.is_dead() {
                done += drive_cache(&mut cache, &mut generator, 20_000, true);
                let s = cache.stats();
                if s.reconfig_ecc + s.reconfig_density >= params.min_events {
                    break;
                }
            }
            let stats = cache.stats();
            ReconfigRow {
                workload: w.name.clone(),
                ecc_events: stats.reconfig_ecc,
                density_events: stats.reconfig_density,
                hot_promotions: stats.hot_promotions,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_ecc_dominated_and_exp_density_leaning() {
        // §7.3: long-tailed (uniform) workloads update ECC strength
        // almost exclusively; short-tailed (exponential) workloads favour
        // density changes.
        // Scale 64 keeps uniform's footprint (4096 pages) large enough
        // that no page looks hot — at tinier scales every page of a
        // uniform workload saturates its access counter, which is a
        // scaling artifact, not workload behaviour.
        let params = ReconfigParams {
            scale: 64,
            acceleration: 5e4,
            accesses: 1_500_000,
            min_events: 150,
            seed: 3,
        };
        let rows = reconfig_breakdown(&[WorkloadSpec::uniform(), WorkloadSpec::exp2()], &params);
        let uniform = &rows[0];
        let exp = &rows[1];
        assert!(
            uniform.ecc_events + uniform.density_events > 0,
            "uniform must reconfigure under accelerated wear"
        );
        assert!(
            uniform.ecc_pct() > 70.0,
            "uniform should be ECC-dominated, got {:.1}%",
            uniform.ecc_pct()
        );
        assert!(
            exp.ecc_pct() < uniform.ecc_pct(),
            "exp2 ({:.1}% ecc) must lean more to density than uniform ({:.1}%)",
            exp.ecc_pct(),
            uniform.ecc_pct()
        );
    }

    #[test]
    fn ten_workloads_listed() {
        let w = fig11_workloads();
        assert_eq!(w.len(), 10);
        assert_eq!(w[0].name, "uniform");
        assert_eq!(w[9].name, "Financial2");
    }
}
