//! Figure 12: flash lifetime (accesses until total flash failure) with
//! the programmable controller versus a fixed BCH-1 controller.
//!
//! Lifetimes are simulated under uniform wear acceleration; the paper's
//! metric is *normalized* lifetime, which is invariant under that
//! scaling (both controllers age on the same accelerated clock).

use disk_trace::WorkloadSpec;
use flashcache_core::{ControllerPolicy, FlashCache};
use nand_flash::WearConfig;

use super::driver::{cache_config_for_bytes, drive_cache, half_working_set_bytes};

/// One workload's bars in Figure 12.
#[derive(Debug, Clone, PartialEq)]
pub struct LifetimeRow {
    /// Workload name.
    pub workload: String,
    /// Page accesses until total failure with the programmable
    /// controller (u64::MAX-like saturation if the budget was hit).
    pub programmable_accesses: u64,
    /// Accesses until total failure with the BCH-1 controller.
    pub bch1_accesses: u64,
    /// Whether either run exhausted its access budget before dying.
    pub truncated: bool,
}

impl LifetimeRow {
    /// Lifetime improvement factor (the paper reports ~20× on average).
    pub fn improvement(&self) -> f64 {
        self.programmable_accesses as f64 / self.bch1_accesses.max(1) as f64
    }
}

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct LifetimeParams {
    /// Footprint scaling applied to every workload.
    pub scale: u64,
    /// Wear acceleration factor.
    pub acceleration: f64,
    /// Maximum page accesses per run (safety budget).
    pub budget: u64,
    /// Trace seed.
    pub seed: u64,
}

impl Default for LifetimeParams {
    fn default() -> Self {
        LifetimeParams {
            scale: 256,
            acceleration: 1e5,
            budget: 40_000_000,
            seed: 0xF12,
        }
    }
}

/// The nine workloads of Figure 12.
pub fn fig12_workloads() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec::uniform(),
        WorkloadSpec::alpha1(),
        WorkloadSpec::alpha2(),
        WorkloadSpec::alpha3(),
        WorkloadSpec::exp1(),
        WorkloadSpec::websearch1(),
        WorkloadSpec::websearch2(),
        WorkloadSpec::financial1(),
        WorkloadSpec::financial2(),
    ]
}

/// Accesses until total flash failure under `controller`.
pub fn lifetime_accesses(
    workload: &WorkloadSpec,
    controller: ControllerPolicy,
    params: &LifetimeParams,
) -> (u64, bool) {
    let mut config = cache_config_for_bytes(half_working_set_bytes(workload));
    config.controller = controller;
    if let ControllerPolicy::FixedEcc { strength } = controller {
        config.initial_ecc = strength;
        config.max_ecc = strength.max(config.max_ecc);
    }
    config.flash.wear = WearConfig::default().accelerated(params.acceleration);
    let mut cache = FlashCache::new(config).expect("valid config");
    let mut generator = workload.generator(params.seed);
    let mut total = 0u64;
    while !cache.is_dead() && total < params.budget {
        total += drive_cache(
            &mut cache,
            &mut generator,
            (params.budget - total).min(100_000),
            true,
        );
    }
    (total, !cache.is_dead())
}

/// Runs the comparison for each workload.
pub fn lifetime_comparison(
    workloads: &[WorkloadSpec],
    params: &LifetimeParams,
) -> Vec<LifetimeRow> {
    workloads
        .iter()
        .map(|w| {
            let workload = w.clone().scaled(params.scale);
            let (programmable, trunc_a) =
                lifetime_accesses(&workload, ControllerPolicy::Programmable, params);
            let (bch1, trunc_b) = lifetime_accesses(
                &workload,
                ControllerPolicy::FixedEcc { strength: 1 },
                params,
            );
            LifetimeRow {
                workload: w.name.clone(),
                programmable_accesses: programmable,
                bch1_accesses: bch1,
                truncated: trunc_a || trunc_b,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programmable_controller_extends_lifetime_by_a_large_factor() {
        let params = LifetimeParams {
            scale: 2048, // 256KB footprint -> tiny flash, fast death
            acceleration: 2e5,
            budget: 30_000_000,
            seed: 5,
        };
        let rows = lifetime_comparison(&[WorkloadSpec::alpha2()], &params);
        let row = &rows[0];
        assert!(!row.truncated, "runs must reach total failure");
        assert!(
            row.improvement() > 5.0,
            "programmable {} vs bch1 {}: improvement {:.1}x",
            row.programmable_accesses,
            row.bch1_accesses,
            row.improvement()
        );
    }
}
