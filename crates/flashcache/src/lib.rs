//! # flashcache
//!
//! A complete reproduction of **"Improving NAND Flash Based Disk
//! Caches"** (Taeho Kgil, David Roberts, Trevor Mudge — ISCA 2008) as a
//! Rust library suite. This facade crate re-exports the whole stack:
//!
//! | layer | crate | what it provides |
//! |---|---|---|
//! | coding | [`ecc`] | GF(2^m), variable-strength BCH, CRC32, accelerator timing |
//! | device | [`nand`] | dual-mode SLC/MLC NAND model with wear & bit errors |
//! | reliability | [`reliability`] | lifetime models behind Figure 6(b) |
//! | peers | [`storage`] | DDR2 DRAM and HDD timing/power models |
//! | workloads | [`trace`] | Table 4 micro/macro trace generators |
//! | **contribution** | [`core`] | the flash disk cache: split regions, GC, wear levelling, programmable controller |
//! | scaling | [`engine`] | sharded concurrent cache engine with batched submission |
//! | evaluation | [`sim`] | trace simulator, server model, per-figure experiment drivers |
//! | telemetry | [`obs`] | metrics registry, structured trace events, deterministic JSON snapshots |
//!
//! The most common entry points are re-exported at the top level.
//!
//! ## Quickstart
//!
//! ```
//! use flashcache::{CacheOp, FlashCache, FlashCacheConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = FlashCacheConfig::builder().build()?;
//! let mut cache = FlashCache::new(config)?;
//! // Cold miss fills the cache; the refetch is served from flash.
//! assert!(cache.op(CacheOp::read(7)).access.needs_disk_read);
//! assert!(cache.op(CacheOp::read(7)).access.hit);
//! println!("{}", cache.stats());
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for a full tour: `quickstart`, `web_server_cache`,
//! `oltp_wear_management`, and `controller_tuning`.

#![warn(missing_docs)]

pub use disk_trace as trace;
pub use flash_ecc as ecc;
pub use flash_obs as obs;
pub use flash_reliability as reliability;
pub use flashcache_core as core;
pub use flashcache_engine as engine;
pub use flashcache_sim as sim;
pub use nand_flash as nand;
pub use storage_model as storage;

pub use disk_trace::{DiskRequest, OpKind, WorkloadSpec};
pub use flash_obs::{ObsSink, ServiceTier};
pub use flashcache_core::{
    AccessOutcome, AdmissionDecision, AdmissionPolicyConfig, CacheError, CacheOp, CacheOpKind,
    CacheOutcome, CacheSnapshot, CacheStats, ConfigError, ControllerPolicy, FlashCache,
    FlashCacheConfig, FlashCacheConfigBuilder, PrimaryDiskCache, SplitPolicy,
};
pub use flashcache_engine::{EngineConfig, EngineError, ShardedCache};
pub use flashcache_sim::{Hierarchy, HierarchyConfig, ServerConfig};
