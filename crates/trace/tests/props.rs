//! Property-based tests of trace generation: bounds, determinism, and
//! distribution-level contracts.

use proptest::prelude::*;
use rand::SeedableRng;

use disk_trace::{Popularity, PopularitySampler, TraceStats, WorkloadSpec};

fn any_popularity() -> impl Strategy<Value = Popularity> {
    prop_oneof![
        Just(Popularity::Uniform),
        (0.2f64..2.0).prop_map(|alpha| Popularity::Zipf { alpha }),
        (1e-4f64..0.5).prop_map(|lambda| Popularity::Exponential { lambda }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Samples always land inside the footprint, for every law.
    #[test]
    fn samples_in_range(
        law in any_popularity(),
        footprint in 1u64..5_000,
        seed in any::<u64>(),
    ) {
        let sampler = PopularitySampler::new(law, footprint, seed);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            prop_assert!(sampler.sample(&mut rng) < footprint);
        }
    }

    /// Coverage is a monotone CDF hitting exactly 1 at the footprint.
    #[test]
    fn coverage_is_monotone_cdf(
        law in any_popularity(),
        footprint in 2u64..3_000,
        seed in any::<u64>(),
    ) {
        let sampler = PopularitySampler::new(law, footprint, seed);
        let mut prev = 0.0;
        let step = (footprint / 16).max(1);
        let mut r = 0;
        while r <= footprint {
            let c = sampler.coverage(r);
            prop_assert!(c >= prev - 1e-12);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&c));
            prev = c;
            r += step;
        }
        prop_assert!((sampler.coverage(footprint) - 1.0).abs() < 1e-9);
    }

    /// Rank probabilities are non-increasing and sum to one.
    #[test]
    fn rank_probabilities_form_a_distribution(
        law in any_popularity(),
        footprint in 2u64..800,
        seed in any::<u64>(),
    ) {
        let sampler = PopularitySampler::new(law, footprint, seed);
        let mut sum = 0.0;
        let mut prev = f64::INFINITY;
        for r in 0..footprint as usize {
            let p = sampler.rank_probability(r);
            prop_assert!(p <= prev + 1e-12);
            prop_assert!(p >= 0.0);
            sum += p;
            prev = p;
        }
        prop_assert!((sum - 1.0).abs() < 1e-6);
    }

    /// Generated requests always stay within the footprint and respect
    /// the spec's write fraction within statistical tolerance.
    #[test]
    fn generator_respects_spec(seed in any::<u64>(), which in 0usize..12) {
        let spec = WorkloadSpec::all().remove(which).scaled(512);
        let mut generator = spec.generator(seed);
        let reqs = generator.take_requests(2_000);
        for r in &reqs {
            prop_assert!(r.page + r.len as u64 <= spec.footprint_pages);
            prop_assert!(r.len >= 1);
        }
        let stats = TraceStats::from_iter(reqs);
        prop_assert!(
            (stats.write_fraction() - spec.write_fraction).abs() < 0.06,
            "{}: write fraction {} vs spec {}",
            spec.name,
            stats.write_fraction(),
            spec.write_fraction
        );
    }

    /// Two generators with the same seed emit identical traces; a
    /// different seed diverges quickly.
    #[test]
    fn determinism(seed in any::<u64>(), which in 0usize..12) {
        let spec = WorkloadSpec::all().remove(which).scaled(1024);
        let a = spec.generator(seed).take_requests(100);
        let b = spec.generator(seed).take_requests(100);
        prop_assert_eq!(&a, &b);
        let c = spec.generator(seed.wrapping_add(1)).take_requests(100);
        prop_assert_ne!(&a, &c);
    }
}
