//! Synthetic workload specifications and the trace generator.
//!
//! Reproduces Table 4 of the paper. The micro-benchmarks are exactly the
//! paper's distributions over a 512MB footprint. The macro workloads are
//! *synthesized* stand-ins for the UMass/dbt2/SPECWeb99 traces we cannot
//! redistribute: each preset documents the published characteristics it
//! preserves (working-set size where the paper states one, read/write
//! mix, popularity skew, and request sizes typical of the application
//! class). The cache experiments consume only the resulting page/op
//! stream, and the paper itself argues (§6.2) that its macro traces
//! behave like tailed (Zipf/exponential) distributions.

use rand::rngs::{SmallRng, StdRng};
use rand::{Rng, RngCore, SeedableRng};

use crate::popularity::{Popularity, PopularitySampler};
use crate::request::{DiskRequest, OpKind, PAGE_BYTES};

/// Benchmark class, mirroring Table 4's "type" column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Synthetic distribution micro-benchmark.
    Micro,
    /// Application-derived macro workload.
    Macro,
}

/// A synthetic disk workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Short name, matching Table 4 (`alpha1`, `dbt2`, ...).
    pub name: String,
    /// Micro or macro benchmark.
    pub kind: WorkloadKind,
    /// Footprint in 2KB disk pages.
    pub footprint_pages: u64,
    /// Fraction of requests that are writes.
    pub write_fraction: f64,
    /// Page popularity law.
    pub popularity: Popularity,
    /// Mean sequential run length in pages (geometric; 1 = purely random).
    pub mean_run_pages: f64,
    /// Fraction of write traffic drawn from the same popularity ranking
    /// as reads. The remainder is drawn from an independently permuted
    /// ranking, modelling workloads (databases especially) whose write
    /// set — logs, checkpoints — is largely disjoint from the read-hot
    /// set. `1.0` = fully shared.
    pub rw_overlap: f64,
    /// Replay fast-path gate: draw pages through the O(1) Walker alias
    /// table with the minimal-state `SmallRng` instead of inverse-CDF
    /// binary search over `StdRng`. Identical distribution and
    /// per-seed determinism either way; off reproduces the
    /// pre-fast-path request streams.
    pub fast_sampling: bool,
}

const MIB: u64 = 1 << 20;

impl WorkloadSpec {
    fn micro(name: &str, popularity: Popularity) -> Self {
        WorkloadSpec {
            name: name.to_string(),
            kind: WorkloadKind::Micro,
            footprint_pages: 512 * MIB / PAGE_BYTES,
            // The paper does not state a mix for the micros; we use a
            // moderate 30% so that both wear (writes) and hit latency
            // (reads) are exercised.
            write_fraction: 0.3,
            popularity,
            mean_run_pages: 1.0,
            rw_overlap: 1.0,
            fast_sampling: true,
        }
    }

    /// `uniform`: uniform distribution over 512MB.
    pub fn uniform() -> Self {
        WorkloadSpec::micro("uniform", Popularity::Uniform)
    }

    /// `alpha1`: Zipf(0.8) over 512MB.
    pub fn alpha1() -> Self {
        WorkloadSpec::micro("alpha1", Popularity::Zipf { alpha: 0.8 })
    }

    /// `alpha2`: Zipf(1.2) over 512MB.
    pub fn alpha2() -> Self {
        WorkloadSpec::micro("alpha2", Popularity::Zipf { alpha: 1.2 })
    }

    /// `alpha3`: Zipf(1.6) over 512MB.
    pub fn alpha3() -> Self {
        WorkloadSpec::micro("alpha3", Popularity::Zipf { alpha: 1.6 })
    }

    /// `exp1`: exponential(λ=0.01) over 512MB.
    pub fn exp1() -> Self {
        WorkloadSpec::micro("exp1", Popularity::Exponential { lambda: 0.01 })
    }

    /// `exp2`: exponential(λ=0.1) over 512MB.
    pub fn exp2() -> Self {
        WorkloadSpec::micro("exp2", Popularity::Exponential { lambda: 0.1 })
    }

    /// `dbt2`: OLTP over a 2GB database. TPC-C-like traffic: 8KB random
    /// I/O, write-heavy (~40% writes), sharply skewed like TPC-C's
    /// NURand customer/item selection (α = 1.2), with writes (log and
    /// checkpoint traffic) largely disjoint from the read-hot set.
    pub fn dbt2() -> Self {
        WorkloadSpec {
            name: "dbt2".to_string(),
            kind: WorkloadKind::Macro,
            footprint_pages: 2048 * MIB / PAGE_BYTES,
            write_fraction: 0.40,
            popularity: Popularity::Zipf { alpha: 1.2 },
            mean_run_pages: 4.0,
            rw_overlap: 0.2,
            fast_sampling: true,
        }
    }

    /// `SPECWeb99`: static web serving over a 1.8GB image — read-almost-
    /// only, Zipf file popularity (α ≈ 1.2), ~16KB transfers.
    pub fn specweb99() -> Self {
        WorkloadSpec {
            name: "SPECWeb99".to_string(),
            kind: WorkloadKind::Macro,
            footprint_pages: 1843 * MIB / PAGE_BYTES,
            write_fraction: 0.05,
            popularity: Popularity::Zipf { alpha: 1.2 },
            mean_run_pages: 8.0,
            rw_overlap: 0.1,
            fast_sampling: true,
        }
    }

    /// `WebSearch1`: search-engine index serving (UMass trace class):
    /// ≥99% reads, large working set (the paper states 5116.7MB),
    /// 8–32KB transfers, mild skew.
    pub fn websearch1() -> Self {
        WorkloadSpec {
            name: "WebSearch1".to_string(),
            kind: WorkloadKind::Macro,
            footprint_pages: (5116.7 * MIB as f64 / PAGE_BYTES as f64) as u64,
            write_fraction: 0.01,
            popularity: Popularity::Zipf { alpha: 0.8 },
            mean_run_pages: 8.0,
            rw_overlap: 0.5,
            fast_sampling: true,
        }
    }

    /// `WebSearch2`: the second search trace, slightly smaller footprint.
    pub fn websearch2() -> Self {
        WorkloadSpec {
            name: "WebSearch2".to_string(),
            kind: WorkloadKind::Macro,
            footprint_pages: (4600.0 * MIB as f64 / PAGE_BYTES as f64) as u64,
            write_fraction: 0.01,
            popularity: Popularity::Zipf { alpha: 0.9 },
            mean_run_pages: 8.0,
            rw_overlap: 0.5,
            fast_sampling: true,
        }
    }

    /// `Financial1`: OLTP at a financial institution (UMass trace class):
    /// strongly write-dominated (~77% writes), with the sharply
    /// concentrated hot set characteristic of transaction logs
    /// (short-tailed, exponential-like popularity).
    pub fn financial1() -> Self {
        WorkloadSpec {
            name: "Financial1".to_string(),
            kind: WorkloadKind::Macro,
            footprint_pages: 800 * MIB / PAGE_BYTES,
            write_fraction: 0.77,
            popularity: Popularity::Exponential { lambda: 3e-4 },
            mean_run_pages: 2.0,
            rw_overlap: 0.5,
            fast_sampling: true,
        }
    }

    /// `Financial2`: the second financial trace — read-dominated
    /// (~82% reads), working set 443.8MB (stated in Figure 7), with a
    /// concentrated hot set (90% of accesses within ~45MB). The hot-set
    /// concentration is what lets Figure 7(a) dedicate ~70% of the die
    /// to SLC at half the working-set size.
    pub fn financial2() -> Self {
        WorkloadSpec {
            name: "Financial2".to_string(),
            kind: WorkloadKind::Macro,
            footprint_pages: (443.8 * MIB as f64 / PAGE_BYTES as f64) as u64,
            write_fraction: 0.18,
            popularity: Popularity::Exponential { lambda: 1e-4 },
            mean_run_pages: 2.0,
            rw_overlap: 0.5,
            fast_sampling: true,
        }
    }

    /// Every Table 4 workload, micros first.
    pub fn all() -> Vec<WorkloadSpec> {
        vec![
            WorkloadSpec::uniform(),
            WorkloadSpec::alpha1(),
            WorkloadSpec::alpha2(),
            WorkloadSpec::alpha3(),
            WorkloadSpec::exp1(),
            WorkloadSpec::exp2(),
            WorkloadSpec::dbt2(),
            WorkloadSpec::specweb99(),
            WorkloadSpec::websearch1(),
            WorkloadSpec::websearch2(),
            WorkloadSpec::financial1(),
            WorkloadSpec::financial2(),
        ]
    }

    /// Footprint in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.footprint_pages * PAGE_BYTES
    }

    /// Returns this workload with footprint divided by `factor`
    /// (popularity shape and mix preserved). Used to scale very large
    /// working sets down to tractable simulations, mirroring the paper's
    /// own "we scaled our benchmarks ... accordingly" methodology (§6.1).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero or at least the footprint.
    #[must_use]
    pub fn scaled(mut self, factor: u64) -> Self {
        assert!(factor > 0, "scale factor must be positive");
        assert!(
            self.footprint_pages / factor > 0,
            "scaling would leave no pages"
        );
        self.footprint_pages /= factor;
        self.name = format!("{}/{}", self.name, factor);
        self
    }

    /// Builds the request generator for this spec.
    pub fn generator(&self, seed: u64) -> TraceGenerator {
        TraceGenerator::new(self.clone(), seed)
    }
}

/// The generator's RNG, gated by `WorkloadSpec::fast_sampling`.
#[derive(Debug)]
enum ReplayRng {
    Std(StdRng),
    Small(SmallRng),
}

impl RngCore for ReplayRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        match self {
            ReplayRng::Std(r) => r.next_u64(),
            ReplayRng::Small(r) => r.next_u64(),
        }
    }
}

/// Infinite iterator of [`DiskRequest`]s following a [`WorkloadSpec`].
#[derive(Debug)]
pub struct TraceGenerator {
    spec: WorkloadSpec,
    sampler: PopularitySampler,
    /// Independently permuted ranking for the disjoint share of writes.
    write_sampler: Option<PopularitySampler>,
    rng: ReplayRng,
}

impl TraceGenerator {
    /// Creates a generator with an explicit seed; identical seeds yield
    /// identical traces.
    pub fn new(spec: WorkloadSpec, seed: u64) -> Self {
        let sampler = PopularitySampler::new(spec.popularity, spec.footprint_pages, seed);
        let write_sampler = (spec.rw_overlap < 1.0).then(|| {
            PopularitySampler::new(
                spec.popularity,
                spec.footprint_pages,
                seed ^ 0x57A7_E0F0_57A7_E0F0,
            )
        });
        let state = seed.wrapping_mul(0xA24B_AED4_963E_E407);
        let rng = if spec.fast_sampling {
            ReplayRng::Small(SmallRng::seed_from_u64(state))
        } else {
            ReplayRng::Std(StdRng::seed_from_u64(state))
        };
        TraceGenerator {
            spec,
            sampler,
            write_sampler,
            rng,
        }
    }

    /// The generating specification.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Generates the next request.
    ///
    /// The RNG variant is matched once per request (not once per draw)
    /// so the hot fast path runs a fully monomorphized `SmallRng`.
    pub fn next_request(&mut self) -> DiskRequest {
        let fast = self.spec.fast_sampling;
        match &mut self.rng {
            ReplayRng::Small(r) => {
                Self::gen_request(&self.spec, &self.sampler, &self.write_sampler, fast, r)
            }
            ReplayRng::Std(r) => {
                Self::gen_request(&self.spec, &self.sampler, &self.write_sampler, fast, r)
            }
        }
    }

    fn gen_request<R: RngCore>(
        spec: &WorkloadSpec,
        sampler: &PopularitySampler,
        write_sampler: &Option<PopularitySampler>,
        fast: bool,
        rng: &mut R,
    ) -> DiskRequest {
        let sample = |s: &PopularitySampler, rng: &mut R| {
            if fast {
                s.sample(rng)
            } else {
                s.sample_cdf(rng)
            }
        };
        let op = if rng.gen::<f64>() < spec.write_fraction {
            OpKind::Write
        } else {
            OpKind::Read
        };
        let page = match (write_sampler, op) {
            (Some(ws), OpKind::Write) if rng.gen::<f64>() >= spec.rw_overlap => sample(ws, rng),
            _ => sample(sampler, rng),
        };
        let len = Self::sample_run_length(spec, page, rng);
        DiskRequest::new(page, len, op)
    }

    fn sample_run_length<R: RngCore>(spec: &WorkloadSpec, page: u64, rng: &mut R) -> u32 {
        let mean = spec.mean_run_pages;
        let max = (spec.footprint_pages - page).min(256) as u32;
        if mean <= 1.0 {
            return 1;
        }
        // Geometric with mean `mean`: success probability 1/mean.
        let p = 1.0 / mean;
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let len = (u.ln() / (1.0 - p).ln()).floor() as u32 + 1;
        len.clamp(1, max.max(1))
    }

    /// Collects `n` requests into a vector.
    pub fn take_requests(&mut self, n: usize) -> Vec<DiskRequest> {
        (0..n).map(|_| self.next_request()).collect()
    }

    /// Appends `n` requests to `out` (not cleared), matching the RNG
    /// variant once for the whole batch instead of once per request so
    /// replay loops refill their reusable buffer without per-request
    /// dispatch. Draw order is identical to `n` calls of
    /// [`TraceGenerator::next_request`], so the generated trace is too.
    pub fn fill(&mut self, n: usize, out: &mut Vec<DiskRequest>) {
        out.reserve(n);
        let fast = self.spec.fast_sampling;
        match &mut self.rng {
            ReplayRng::Small(r) => {
                for _ in 0..n {
                    out.push(Self::gen_request(
                        &self.spec,
                        &self.sampler,
                        &self.write_sampler,
                        fast,
                        r,
                    ));
                }
            }
            ReplayRng::Std(r) => {
                for _ in 0..n {
                    out.push(Self::gen_request(
                        &self.spec,
                        &self.sampler,
                        &self.write_sampler,
                        fast,
                        r,
                    ));
                }
            }
        }
    }
}

impl Iterator for TraceGenerator {
    type Item = DiskRequest;

    fn next(&mut self) -> Option<DiskRequest> {
        Some(self.next_request())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::TraceStats;

    #[test]
    fn table4_names_and_kinds() {
        let all = WorkloadSpec::all();
        assert_eq!(all.len(), 12);
        let micros = all.iter().filter(|w| w.kind == WorkloadKind::Micro).count();
        assert_eq!(micros, 6);
        assert_eq!(all[0].name, "uniform");
        assert_eq!(all[6].name, "dbt2");
    }

    #[test]
    fn micro_footprints_are_512mb() {
        for w in WorkloadSpec::all()
            .into_iter()
            .filter(|w| w.kind == WorkloadKind::Micro)
        {
            assert_eq!(w.footprint_bytes(), 512 * MIB, "{}", w.name);
        }
    }

    #[test]
    fn paper_stated_working_sets() {
        // Figure 7 states these two working-set sizes exactly.
        let f2 = WorkloadSpec::financial2();
        assert!((f2.footprint_bytes() as f64 / MIB as f64 - 443.8).abs() < 0.1);
        let ws1 = WorkloadSpec::websearch1();
        assert!((ws1.footprint_bytes() as f64 / MIB as f64 - 5116.7).abs() < 0.1);
    }

    #[test]
    fn generated_mix_matches_spec() {
        let mut g = WorkloadSpec::dbt2().scaled(16).generator(1);
        let stats = TraceStats::from_iter(g.take_requests(20_000));
        assert!((stats.write_fraction() - 0.40).abs() < 0.02);
        assert!(stats.max_page < WorkloadSpec::dbt2().footprint_pages / 16);
    }

    #[test]
    fn financial1_is_write_dominated() {
        let mut g = WorkloadSpec::financial1().scaled(8).generator(2);
        let stats = TraceStats::from_iter(g.take_requests(10_000));
        assert!(stats.write_fraction() > 0.7);
    }

    #[test]
    fn websearch_is_read_dominated_with_runs() {
        let mut g = WorkloadSpec::websearch1().scaled(64).generator(3);
        let stats = TraceStats::from_iter(g.take_requests(10_000));
        assert!(stats.write_fraction() < 0.03);
        // Mean run length near 8 pages.
        let mean_len = stats.pages as f64 / stats.requests as f64;
        assert!((6.0..10.0).contains(&mean_len), "mean_len={mean_len}");
    }

    #[test]
    fn requests_stay_inside_footprint() {
        let spec = WorkloadSpec::alpha2();
        let mut g = spec.generator(4);
        for _ in 0..20_000 {
            let r = g.next_request();
            assert!(r.page + r.len as u64 <= spec.footprint_pages);
        }
    }

    #[test]
    fn fill_matches_per_request_generation() {
        // Batch refill must replay the exact same trace as the
        // one-at-a-time path, across both RNG flavours and odd chunk
        // splits.
        let mut slow = WorkloadSpec::alpha1();
        slow.fast_sampling = false; // exercise the StdRng/CDF variant too
        for spec in [WorkloadSpec::dbt2(), slow] {
            let scalar = spec.clone().scaled(16).generator(7).take_requests(1_000);
            let mut g = spec.clone().scaled(16).generator(7);
            let mut batched = Vec::new();
            for chunk in [1usize, 2, 64, 256, 677] {
                g.fill(chunk, &mut batched);
            }
            assert_eq!(scalar, batched, "{}", spec.name);
        }
    }

    #[test]
    fn same_seed_reproduces_trace() {
        let spec = WorkloadSpec::exp2();
        let a = spec.generator(9).take_requests(500);
        let b = spec.generator(9).take_requests(500);
        assert_eq!(a, b);
        let c = spec.generator(10).take_requests(500);
        assert_ne!(a, c);
    }

    #[test]
    fn scaled_renames_and_shrinks() {
        let s = WorkloadSpec::dbt2().scaled(4);
        assert_eq!(s.name, "dbt2/4");
        assert_eq!(s.footprint_pages, WorkloadSpec::dbt2().footprint_pages / 4);
    }

    #[test]
    #[should_panic(expected = "no pages")]
    fn overscaling_rejected() {
        let _ = WorkloadSpec::exp1().scaled(u64::MAX);
    }

    #[test]
    fn iterator_interface_works() {
        let reqs: Vec<DiskRequest> = WorkloadSpec::uniform().generator(5).take(10).collect();
        assert_eq!(reqs.len(), 10);
    }
}
