//! Disk access traces and synthetic workload generators.
//!
//! Provides the benchmark suite of Table 4 in *Improving NAND Flash
//! Based Disk Caches* (ISCA 2008): micro-benchmarks drawing from
//! uniform, Zipf, and exponential page-popularity distributions over a
//! 512MB footprint, and synthesized macro workloads standing in for the
//! dbt2 (OLTP), SPECWeb99, UMass WebSearch and Financial traces, with
//! the working-set sizes and read/write mixes the paper reports.
//!
//! All generators are deterministic given a seed.
//!
//! # Examples
//!
//! ```
//! use disk_trace::{TraceStats, WorkloadSpec};
//!
//! let mut gen = WorkloadSpec::dbt2().scaled(16).generator(42);
//! let stats = TraceStats::from_iter(gen.take_requests(5_000));
//! // OLTP is write-heavy.
//! assert!(stats.write_fraction() > 0.3);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod popularity;
pub mod request;
pub mod spc;
pub mod workload;

pub use popularity::{Popularity, PopularitySampler};
pub use request::{DiskRequest, OpKind, TraceStats, PAGE_BYTES};
pub use spc::{SpcReader, SpcRecord};
pub use workload::{TraceGenerator, WorkloadKind, WorkloadSpec};
