//! Reader/writer for the SPC trace format used by the UMass Trace
//! Repository — the source of the paper's WebSearch and Financial
//! traces (§6.2).
//!
//! Each line is `ASU,LBA,Size,Opcode,Timestamp[,...]`:
//! application-specific unit, logical block address in 512-byte
//! sectors, size in bytes, `r`/`R` or `w`/`W`, and a timestamp in
//! seconds. This module converts records to and from the crate's
//! 2KB-page [`DiskRequest`]s, so the real traces can be replayed through
//! every experiment in place of the synthetic stand-ins.

use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

use crate::request::{DiskRequest, OpKind, PAGE_BYTES};

/// Sector size the SPC format addresses.
pub const SECTOR_BYTES: u64 = 512;

/// One parsed SPC record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpcRecord {
    /// Application-specific unit (disk/LUN id).
    pub asu: u32,
    /// Logical block address, in 512-byte sectors.
    pub lba: u64,
    /// Transfer size in bytes.
    pub bytes: u32,
    /// Read or write.
    pub op: OpKind,
    /// Timestamp, seconds.
    pub timestamp: f64,
}

/// Parse failure for one SPC line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseSpcError {
    /// 1-based line number when known, 0 otherwise.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for ParseSpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "SPC line {}: {}", self.line, self.reason)
        } else {
            write!(f, "SPC record: {}", self.reason)
        }
    }
}

impl Error for ParseSpcError {}

impl SpcRecord {
    /// Parses one line of SPC text. Extra trailing fields are ignored,
    /// as in the UMass files.
    ///
    /// # Errors
    ///
    /// Returns [`ParseSpcError`] on missing fields, non-numeric values,
    /// an unknown opcode, or a zero-byte transfer.
    pub fn parse(line: &str) -> Result<SpcRecord, ParseSpcError> {
        let err = |reason: String| ParseSpcError { line: 0, reason };
        let mut fields = line.trim().split(',');
        let mut next = |name: &str| {
            fields
                .next()
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .ok_or_else(|| err(format!("missing field `{name}`")))
        };
        let asu = next("asu")?
            .parse::<u32>()
            .map_err(|e| err(format!("bad asu: {e}")))?;
        let lba = next("lba")?
            .parse::<u64>()
            .map_err(|e| err(format!("bad lba: {e}")))?;
        let bytes = next("size")?
            .parse::<u32>()
            .map_err(|e| err(format!("bad size: {e}")))?;
        if bytes == 0 {
            return Err(err("zero-byte transfer".to_string()));
        }
        let op = match next("opcode")? {
            "r" | "R" => OpKind::Read,
            "w" | "W" => OpKind::Write,
            other => return Err(err(format!("unknown opcode `{other}`"))),
        };
        let timestamp = next("timestamp")?
            .parse::<f64>()
            .map_err(|e| err(format!("bad timestamp: {e}")))?;
        Ok(SpcRecord {
            asu,
            lba,
            bytes,
            op,
            timestamp,
        })
    }

    /// Converts to a page-granular [`DiskRequest`], covering every 2KB
    /// page the byte range touches. ASU boundaries are folded into the
    /// page space by a large per-ASU offset so distinct units never
    /// alias.
    pub fn to_request(&self) -> DiskRequest {
        // 1TB of page space per ASU keeps units disjoint.
        const ASU_STRIDE_PAGES: u64 = (1u64 << 40) / PAGE_BYTES;
        let start_byte = self.lba * SECTOR_BYTES;
        let end_byte = start_byte + self.bytes as u64;
        let first_page = start_byte / PAGE_BYTES;
        let last_page = (end_byte - 1) / PAGE_BYTES;
        let len = (last_page - first_page + 1).min(u32::MAX as u64) as u32;
        DiskRequest::new(
            self.asu as u64 * ASU_STRIDE_PAGES + first_page,
            len,
            self.op,
        )
    }

    /// Formats the record as one SPC line.
    pub fn to_line(&self) -> String {
        format!(
            "{},{},{},{},{}",
            self.asu,
            self.lba,
            self.bytes,
            match self.op {
                OpKind::Read => "r",
                OpKind::Write => "w",
            },
            self.timestamp
        )
    }
}

/// Streaming reader of SPC traces: an iterator of
/// `Result<SpcRecord, ParseSpcError>` with line numbers attached to
/// errors. Blank lines and `#` comments are skipped.
#[derive(Debug)]
pub struct SpcReader<R> {
    reader: R,
    line_no: usize,
    buf: String,
}

impl<R: BufRead> SpcReader<R> {
    /// Wraps a buffered reader.
    pub fn new(reader: R) -> Self {
        SpcReader {
            reader,
            line_no: 0,
            buf: String::new(),
        }
    }
}

impl<R: BufRead> Iterator for SpcReader<R> {
    type Item = Result<SpcRecord, ParseSpcError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            self.buf.clear();
            match self.reader.read_line(&mut self.buf) {
                Ok(0) => return None,
                Ok(_) => {}
                Err(e) => {
                    self.line_no += 1;
                    return Some(Err(ParseSpcError {
                        line: self.line_no,
                        reason: format!("I/O error: {e}"),
                    }));
                }
            }
            self.line_no += 1;
            let trimmed = self.buf.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            return Some(SpcRecord::parse(trimmed).map_err(|mut e| {
                e.line = self.line_no;
                e
            }));
        }
    }
}

/// Writes requests back out as SPC lines (2KB pages → 512-byte sectors,
/// ASU 0), e.g. to export a synthetic workload for another simulator.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_spc<W: Write, I: IntoIterator<Item = DiskRequest>>(
    mut writer: W,
    requests: I,
) -> std::io::Result<usize> {
    let mut count = 0;
    let mut t = 0.0f64;
    for req in requests {
        let record = SpcRecord {
            asu: 0,
            lba: req.page * (PAGE_BYTES / SECTOR_BYTES),
            bytes: (req.len as u64 * PAGE_BYTES) as u32,
            op: req.op,
            timestamp: t,
        };
        writeln!(writer, "{}", record.to_line())?;
        t += 1e-4;
        count += 1;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_canonical_lines() {
        let r = SpcRecord::parse("0,47884,8192,R,0.011413").unwrap();
        assert_eq!(r.asu, 0);
        assert_eq!(r.lba, 47884);
        assert_eq!(r.bytes, 8192);
        assert_eq!(r.op, OpKind::Read);
        assert!((r.timestamp - 0.011413).abs() < 1e-12);
        // Lowercase write, extra fields tolerated.
        let w = SpcRecord::parse("2,100,512,w,1.5,extra,fields").unwrap();
        assert_eq!(w.op, OpKind::Write);
        assert_eq!(w.asu, 2);
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "",
            "1,2,3",
            "x,2,512,r,0.0",
            "1,y,512,r,0.0",
            "1,2,z,r,0.0",
            "1,2,512,q,0.0",
            "1,2,512,r,when",
            "1,2,0,r,0.0",
        ] {
            assert!(SpcRecord::parse(bad).is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn converts_sectors_to_pages() {
        // 8KB at sector 4 (byte 2048): bytes 2048..10240 = pages 1..=4.
        let r = SpcRecord::parse("0,4,8192,R,0").unwrap();
        let req = r.to_request();
        assert_eq!(req.page, 1);
        assert_eq!(req.len, 4);
        // A one-sector read touches exactly one page.
        let small = SpcRecord::parse("0,0,512,R,0").unwrap().to_request();
        assert_eq!((small.page, small.len), (0, 1));
        // Unaligned range crossing one page boundary.
        let cross = SpcRecord::parse("0,3,1024,R,0").unwrap().to_request();
        assert_eq!((cross.page, cross.len), (0, 2));
    }

    #[test]
    fn distinct_asus_never_alias() {
        let a = SpcRecord::parse("0,0,2048,R,0").unwrap().to_request();
        let b = SpcRecord::parse("1,0,2048,R,0").unwrap().to_request();
        assert_ne!(a.page, b.page);
    }

    #[test]
    fn reader_skips_comments_and_numbers_errors() {
        let text = "# UMass-style header\n\n0,0,2048,R,0.0\nbad line\n0,8,4096,W,0.1\n";
        let items: Vec<_> = SpcReader::new(text.as_bytes()).collect();
        assert_eq!(items.len(), 3);
        assert!(items[0].is_ok());
        let err = items[1].as_ref().unwrap_err();
        assert_eq!(err.line, 4);
        assert!(items[2].is_ok());
        assert_eq!(items[2].as_ref().unwrap().op, OpKind::Write);
    }

    #[test]
    fn roundtrip_through_writer() {
        let reqs = vec![
            DiskRequest::read(10),
            DiskRequest::new(100, 4, OpKind::Write),
        ];
        let mut out = Vec::new();
        let n = write_spc(&mut out, reqs.clone()).unwrap();
        assert_eq!(n, 2);
        let parsed: Vec<DiskRequest> = SpcReader::new(out.as_slice())
            .map(|r| r.unwrap().to_request())
            .collect();
        assert_eq!(parsed, reqs);
    }
}
