//! Disk access trace representation.
//!
//! The disk cache operates on 2KB pages (§2.2: "managing the contents of
//! a disk at the granularity of pages"), so traces address disk in units
//! of 2KB *disk pages*. A request covers one or more consecutive pages.

use std::fmt;

/// Bytes per disk/cache page.
pub const PAGE_BYTES: u64 = 2048;

/// Request direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// A read of disk contents.
    Read,
    /// A write (eventually) destined for disk.
    Write,
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpKind::Read => write!(f, "R"),
            OpKind::Write => write!(f, "W"),
        }
    }
}

/// One disk access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DiskRequest {
    /// First disk page touched.
    pub page: u64,
    /// Number of consecutive pages touched (≥ 1).
    pub len: u32,
    /// Direction.
    pub op: OpKind,
}

impl DiskRequest {
    /// Creates a request.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn new(page: u64, len: u32, op: OpKind) -> Self {
        assert!(len > 0, "request length must be at least one page");
        DiskRequest { page, len, op }
    }

    /// A single-page read.
    pub fn read(page: u64) -> Self {
        DiskRequest::new(page, 1, OpKind::Read)
    }

    /// A single-page write.
    pub fn write(page: u64) -> Self {
        DiskRequest::new(page, 1, OpKind::Write)
    }

    /// Iterator over the individual pages this request touches.
    pub fn pages(&self) -> impl Iterator<Item = u64> {
        self.page..self.page + self.len as u64
    }

    /// Total bytes moved.
    pub fn bytes(&self) -> u64 {
        self.len as u64 * PAGE_BYTES
    }

    /// `true` for writes.
    pub fn is_write(&self) -> bool {
        self.op == OpKind::Write
    }
}

impl fmt::Display for DiskRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} page {} +{}", self.op, self.page, self.len)
    }
}

/// Summary statistics over a stream of requests.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceStats {
    /// Total requests observed.
    pub requests: u64,
    /// Total pages touched (sum of lengths).
    pub pages: u64,
    /// Write requests.
    pub writes: u64,
    /// Pages touched by writes.
    pub write_pages: u64,
    /// Highest page number seen.
    pub max_page: u64,
}

impl TraceStats {
    /// Folds one request into the statistics.
    pub fn record(&mut self, req: &DiskRequest) {
        self.requests += 1;
        self.pages += req.len as u64;
        if req.is_write() {
            self.writes += 1;
            self.write_pages += req.len as u64;
        }
        self.max_page = self.max_page.max(req.page + req.len as u64 - 1);
    }

    /// Fraction of requests that are writes.
    pub fn write_fraction(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.writes as f64 / self.requests as f64
        }
    }

    /// Collects statistics from an iterator of requests — a convenience
    /// alias for the [`FromIterator`] impl so call sites can write
    /// `TraceStats::from_iter(reqs)` without importing the trait.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = DiskRequest>>(iter: I) -> Self {
        iter.into_iter().collect()
    }
}

impl FromIterator<DiskRequest> for TraceStats {
    fn from_iter<I: IntoIterator<Item = DiskRequest>>(iter: I) -> Self {
        let mut s = TraceStats::default();
        for r in iter {
            s.record(&r);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_basics() {
        let r = DiskRequest::new(10, 3, OpKind::Read);
        assert_eq!(r.pages().collect::<Vec<_>>(), vec![10, 11, 12]);
        assert_eq!(r.bytes(), 3 * 2048);
        assert!(!r.is_write());
        assert!(DiskRequest::write(5).is_write());
        assert_eq!(r.to_string(), "R page 10 +3");
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn zero_length_rejected() {
        DiskRequest::new(0, 0, OpKind::Read);
    }

    #[test]
    fn stats_accumulate() {
        let reqs = vec![
            DiskRequest::read(0),
            DiskRequest::new(100, 4, OpKind::Write),
            DiskRequest::read(50),
        ];
        let s = TraceStats::from_iter(reqs);
        assert_eq!(s.requests, 3);
        assert_eq!(s.pages, 6);
        assert_eq!(s.writes, 1);
        assert_eq!(s.write_pages, 4);
        assert_eq!(s.max_page, 103);
        assert!((s.write_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_write_fraction_is_zero() {
        assert_eq!(TraceStats::default().write_fraction(), 0.0);
    }
}
