//! Page-popularity distributions for synthetic workloads.
//!
//! The paper's micro-benchmarks (Table 4) draw disk accesses from
//! uniform, Zipf (α = 0.8/1.2/1.6), and exponential (λ = 0.01/0.1)
//! distributions, arguing that macro workloads behave like tailed
//! distributions. Samplers here map a *rank* distribution onto disk
//! pages through a pseudorandom permutation so hot pages are scattered
//! across the address space like real file systems.

use rand::Rng;

/// Popularity law over `footprint` pages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Popularity {
    /// Every page equally likely.
    Uniform,
    /// Zipf with exponent `alpha`: rank `i` has weight `(i+1)^-alpha`.
    Zipf {
        /// Tail exponent (the paper uses 0.8, 1.2, 1.6).
        alpha: f64,
    },
    /// Exponential decay: rank `i` has weight `e^(-lambda·i)`.
    Exponential {
        /// Decay rate (the paper uses 0.01 and 0.1).
        lambda: f64,
    },
}

/// A sampler of page numbers in `0..footprint` following a
/// [`Popularity`] law.
///
/// # Examples
///
/// ```
/// use disk_trace::popularity::{Popularity, PopularitySampler};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let sampler = PopularitySampler::new(Popularity::Zipf { alpha: 1.2 }, 10_000, 7);
/// let mut rng = StdRng::seed_from_u64(42);
/// let page = sampler.sample(&mut rng);
/// assert!(page < 10_000);
/// ```
#[derive(Debug, Clone)]
pub struct PopularitySampler {
    law: Popularity,
    footprint: u64,
    /// Cumulative weights by rank (empty for Uniform).
    cdf: Vec<f64>,
    /// Walker alias table with the rank→page permutation pre-applied
    /// (empty for Uniform).
    alias_table: Vec<AliasSlot>,
    /// rank -> page permutation (identity for Uniform).
    permutation: Vec<u32>,
}

/// One packed Walker alias row: the acceptance threshold plus both
/// candidate *pages* (self and alias) with the rank→page permutation
/// already applied. A draw therefore touches a single 16-byte slot —
/// one cache line — instead of three separate multi-MB arrays
/// (threshold, alias rank, permutation).
#[derive(Debug, Clone, Copy)]
struct AliasSlot {
    /// Acceptance threshold: a fraction below it returns `page`.
    prob: f64,
    /// The permuted page of this row's own rank.
    page: u32,
    /// The permuted page of the row's alias rank.
    alias_page: u32,
}

impl PopularitySampler {
    /// Builds a sampler over `footprint` pages.
    ///
    /// For skewed laws this precomputes a rank CDF and a seeded
    /// rank→page permutation; memory is ~12 bytes per page.
    ///
    /// # Panics
    ///
    /// Panics if `footprint` is zero or exceeds `u32::MAX` pages
    /// (8TB at 2KB pages — far beyond the paper's working sets).
    pub fn new(law: Popularity, footprint: u64, seed: u64) -> Self {
        assert!(footprint > 0, "footprint must be nonzero");
        assert!(
            footprint <= u32::MAX as u64,
            "footprint too large for the sampler"
        );
        let weights: Vec<f64> = match law {
            Popularity::Uniform => {
                return PopularitySampler {
                    law,
                    footprint,
                    cdf: Vec::new(),
                    alias_table: Vec::new(),
                    permutation: Vec::new(),
                };
            }
            Popularity::Zipf { alpha } => {
                assert!(alpha >= 0.0, "alpha must be non-negative");
                (0..footprint as usize)
                    .map(|i| ((i + 1) as f64).powf(-alpha))
                    .collect()
            }
            Popularity::Exponential { lambda } => {
                assert!(lambda > 0.0, "lambda must be positive");
                (0..footprint as usize)
                    .map(|i| (-lambda * i as f64).exp())
                    .collect()
            }
        };
        let (alias_prob, alias) = build_alias(&weights);
        let permutation = build_permutation(footprint as usize, seed);
        let alias_table = alias_prob
            .into_iter()
            .zip(&alias)
            .enumerate()
            .map(|(i, (prob, &a))| AliasSlot {
                prob,
                page: permutation[i],
                alias_page: permutation[a as usize],
            })
            .collect();
        PopularitySampler {
            law,
            footprint,
            cdf: build_cdf(weights),
            alias_table,
            permutation,
        }
    }

    /// The popularity law.
    pub fn law(&self) -> Popularity {
        self.law
    }

    /// The footprint in pages.
    pub fn footprint(&self) -> u64 {
        self.footprint
    }

    /// Draws one page number in O(1) via the Walker alias table.
    ///
    /// Consumes exactly one uniform per draw — the same as
    /// [`PopularitySampler::sample_cdf`] — but replaces the O(log n)
    /// binary search over the (cache-hostile, multi-MB) CDF with a
    /// single indexed load of one packed [`AliasSlot`]: the uniform is
    /// split into a table row and an acceptance fraction, and both
    /// candidate pages ride in the same 16-byte slot.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match self.law {
            Popularity::Uniform => rng.gen_range(0..self.footprint),
            _ => {
                let x = rng.gen::<f64>() * self.alias_table.len() as f64;
                let i = (x as usize).min(self.alias_table.len() - 1);
                let slot = &self.alias_table[i];
                let frac = x - i as f64;
                let page = if frac < slot.prob {
                    slot.page
                } else {
                    slot.alias_page
                };
                page as u64
            }
        }
    }

    /// Draws one page number by inverse-CDF binary search — the slow
    /// oracle the alias path is differentially tested against.
    pub fn sample_cdf<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match self.law {
            Popularity::Uniform => rng.gen_range(0..self.footprint),
            _ => {
                let u: f64 = rng.gen();
                let rank = match self
                    .cdf
                    .binary_search_by(|w| w.partial_cmp(&u).expect("weights are finite"))
                {
                    Ok(i) => i,
                    Err(i) => i.min(self.cdf.len() - 1),
                };
                self.permutation[rank] as u64
            }
        }
    }

    /// Probability mass of the `rank`-th most popular page.
    pub fn rank_probability(&self, rank: usize) -> f64 {
        match self.law {
            Popularity::Uniform => 1.0 / self.footprint as f64,
            _ => {
                if rank >= self.cdf.len() {
                    0.0
                } else if rank == 0 {
                    self.cdf[0]
                } else {
                    self.cdf[rank] - self.cdf[rank - 1]
                }
            }
        }
    }

    /// Probability mass covered by the `ranks` most popular pages
    /// (prefix CDF). Returns 1 when `ranks` meets the footprint.
    pub fn coverage(&self, ranks: u64) -> f64 {
        if ranks == 0 {
            return 0.0;
        }
        match self.law {
            Popularity::Uniform => (ranks as f64 / self.footprint as f64).min(1.0),
            _ => {
                let i = (ranks as usize).min(self.cdf.len());
                self.cdf[i - 1]
            }
        }
    }

    /// Smallest number of pages covering `coverage` of the probability
    /// mass — the "hot set" size for a cache of that hit coverage.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < coverage < 1`.
    pub fn hot_set_pages(&self, coverage: f64) -> u64 {
        assert!((0.0..1.0).contains(&coverage) && coverage > 0.0);
        match self.law {
            Popularity::Uniform => (self.footprint as f64 * coverage).ceil() as u64,
            _ => match self
                .cdf
                .binary_search_by(|w| w.partial_cmp(&coverage).expect("finite"))
            {
                Ok(i) | Err(i) => (i + 1).min(self.cdf.len()) as u64,
            },
        }
    }
}

fn build_cdf(weights: Vec<f64>) -> Vec<f64> {
    let mut cdf = weights;
    let mut acc = 0.0;
    for w in &mut cdf {
        acc += *w;
        *w = acc;
    }
    let total = acc;
    for w in &mut cdf {
        *w /= total;
    }
    // Guard against floating-point shortfall at the top.
    if let Some(last) = cdf.last_mut() {
        *last = 1.0;
    }
    cdf
}

/// Builds a Walker alias table (Vose's stable construction): each row
/// `i` keeps probability `prob[i]` of returning `i` itself and
/// otherwise returns `alias[i]`, so a single uniform split into (row,
/// fraction) samples the exact discrete distribution in O(1).
fn build_alias(weights: &[f64]) -> (Vec<f64>, Vec<u32>) {
    let n = weights.len();
    let total: f64 = weights.iter().sum();
    let scale = n as f64 / total;
    let mut prob: Vec<f64> = weights.iter().map(|w| w * scale).collect();
    let mut alias: Vec<u32> = vec![0; n];
    let mut small: Vec<u32> = Vec::new();
    let mut large: Vec<u32> = Vec::new();
    for (i, &p) in prob.iter().enumerate() {
        if p < 1.0 {
            small.push(i as u32);
        } else {
            large.push(i as u32);
        }
    }
    while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
        small.pop();
        alias[s as usize] = l;
        // The large row donates the mass the small row lacks.
        prob[l as usize] -= 1.0 - prob[s as usize];
        if prob[l as usize] < 1.0 {
            large.pop();
            small.push(l);
        }
    }
    // Leftovers are 1.0 up to round-off: always accept.
    for &i in small.iter().chain(large.iter()) {
        prob[i as usize] = 1.0;
    }
    (prob, alias)
}

/// Deterministic Fisher–Yates permutation of `0..n` from a seed.
fn build_permutation(n: usize, seed: u64) -> Vec<u32> {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut perm: Vec<u32> = (0..n as u32).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    perm.shuffle(&mut rng);
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn histogram(s: &PopularitySampler, n: usize, seed: u64) -> HashMap<u64, u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut h = HashMap::new();
        for _ in 0..n {
            *h.entry(s.sample(&mut rng)).or_insert(0) += 1;
        }
        h
    }

    #[test]
    fn uniform_covers_range_evenly() {
        let s = PopularitySampler::new(Popularity::Uniform, 16, 1);
        let h = histogram(&s, 16_000, 2);
        assert_eq!(h.len(), 16);
        for (&page, &count) in &h {
            assert!(page < 16);
            assert!((800..1200).contains(&count), "page {page}: {count}");
        }
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let s = PopularitySampler::new(Popularity::Zipf { alpha: 1.2 }, 10_000, 3);
        let h = histogram(&s, 50_000, 4);
        let max = *h.values().max().unwrap();
        let distinct = h.len();
        // Hot page dominates, and far fewer than all pages are touched.
        assert!(max > 2_000, "max={max}");
        assert!(distinct < 9_000, "distinct={distinct}");
        assert!(h.keys().all(|&p| p < 10_000));
    }

    #[test]
    fn higher_alpha_is_more_skewed() {
        let low = PopularitySampler::new(Popularity::Zipf { alpha: 0.8 }, 10_000, 5);
        let high = PopularitySampler::new(Popularity::Zipf { alpha: 1.6 }, 10_000, 5);
        assert!(low.hot_set_pages(0.9) > high.hot_set_pages(0.9));
    }

    #[test]
    fn exponential_concentrates_on_few_pages() {
        let s = PopularitySampler::new(Popularity::Exponential { lambda: 0.1 }, 100_000, 6);
        // 90% of mass within ~23 ranks (ln(10)/0.1).
        let hot = s.hot_set_pages(0.9);
        assert!((15..40).contains(&hot), "hot={hot}");
    }

    #[test]
    fn rank_probabilities_sum_to_one_and_decrease() {
        let s = PopularitySampler::new(Popularity::Zipf { alpha: 1.0 }, 1_000, 7);
        let sum: f64 = (0..1_000).map(|i| s.rank_probability(i)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        for i in 1..1_000 {
            assert!(s.rank_probability(i) <= s.rank_probability(i - 1) + 1e-15);
        }
        assert_eq!(s.rank_probability(5_000), 0.0);
    }

    #[test]
    fn permutation_scatters_hot_pages() {
        let s = PopularitySampler::new(Popularity::Zipf { alpha: 1.6 }, 100_000, 8);
        let h = histogram(&s, 20_000, 9);
        let hottest = h.iter().max_by_key(|(_, &c)| c).map(|(&p, _)| p).unwrap();
        // With a permutation the hottest page is almost surely not page 0.
        assert_ne!(hottest, 0);
    }

    #[test]
    fn alias_and_cdf_agree_on_rank_masses() {
        // Exact check, not statistical: summing each page's acceptance
        // mass over the alias table must recover the probability of the
        // rank that maps to it.
        let s = PopularitySampler::new(Popularity::Zipf { alpha: 1.2 }, 64, 12);
        let n = s.alias_table.len();
        let mut mass = vec![0.0f64; n];
        for slot in &s.alias_table {
            mass[slot.page as usize] += slot.prob / n as f64;
            mass[slot.alias_page as usize] += (1.0 - slot.prob) / n as f64;
        }
        for (rank, &page) in s.permutation.iter().enumerate() {
            let m = mass[page as usize];
            let p = s.rank_probability(rank);
            assert!((m - p).abs() < 1e-12, "rank {rank}: alias {m} vs cdf {p}");
        }
    }

    #[test]
    fn alias_table_is_well_formed() {
        let s = PopularitySampler::new(Popularity::Exponential { lambda: 0.1 }, 1_000, 13);
        assert_eq!(s.alias_table.len(), 1_000);
        for (i, slot) in s.alias_table.iter().enumerate() {
            assert!((0.0..=1.0).contains(&slot.prob), "prob[{i}]={}", slot.prob);
            assert!((slot.page as usize) < 1_000);
            assert!((slot.alias_page as usize) < 1_000);
        }
    }

    #[test]
    fn cdf_oracle_matches_old_sampling() {
        // The oracle still covers the range and skews like the law.
        let s = PopularitySampler::new(Popularity::Zipf { alpha: 1.2 }, 10_000, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let mut h = HashMap::new();
        for _ in 0..50_000 {
            *h.entry(s.sample_cdf(&mut rng)).or_insert(0u64) += 1;
        }
        assert!(*h.values().max().unwrap() > 2_000);
        assert!(h.keys().all(|&p| p < 10_000));
    }

    #[test]
    fn deterministic_across_instances() {
        let a = PopularitySampler::new(Popularity::Zipf { alpha: 1.2 }, 1_000, 10);
        let b = PopularitySampler::new(Popularity::Zipf { alpha: 1.2 }, 1_000, 10);
        let mut ra = StdRng::seed_from_u64(11);
        let mut rb = StdRng::seed_from_u64(11);
        for _ in 0..100 {
            assert_eq!(a.sample(&mut ra), b.sample(&mut rb));
        }
    }

    #[test]
    fn coverage_is_a_prefix_cdf() {
        let s = PopularitySampler::new(Popularity::Zipf { alpha: 1.2 }, 1_000, 11);
        assert_eq!(s.coverage(0), 0.0);
        assert!((s.coverage(1_000) - 1.0).abs() < 1e-12);
        assert!((s.coverage(5_000) - 1.0).abs() < 1e-12);
        let mut prev = 0.0;
        for r in [1u64, 10, 100, 500, 1_000] {
            let c = s.coverage(r);
            assert!(c > prev);
            prev = c;
        }
        // Coverage inverts hot_set_pages.
        let hot = s.hot_set_pages(0.8);
        assert!(s.coverage(hot) >= 0.8);
        assert!(s.coverage(hot - 1) < 0.8);
        // Uniform coverage is linear.
        let u = PopularitySampler::new(Popularity::Uniform, 100, 0);
        assert!((u.coverage(25) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "footprint must be nonzero")]
    fn zero_footprint_rejected() {
        PopularitySampler::new(Popularity::Uniform, 0, 0);
    }
}
