//! Whole-flash-page codec: BCH correction + CRC32 detection in the 64-byte
//! spare area, exactly as laid out in the paper (§4.1).
//!
//! A 2048-byte flash page carries a 64-byte spare area. The paper assigns
//! 4 bytes to a CRC32 checksum and up to 23 bytes of BCH parity (t ≤ 12
//! over GF(2^15) needs 15·12 = 180 bits), leaving the rest unused.

use std::error::Error;
use std::fmt;

use crate::bch::{BchCode, DecodeError};
use crate::crc::crc32;

/// Payload size of a flash page in bytes.
pub const PAGE_DATA_BYTES: usize = 2048;
/// Spare-area size of a flash page in bytes.
pub const PAGE_SPARE_BYTES: usize = 64;
/// Spare bytes reserved for the CRC32 checksum.
pub const CRC_BYTES: usize = 4;
/// Maximum BCH strength that fits the spare area alongside the CRC
/// (the paper's controller limit).
pub const MAX_PAGE_STRENGTH: usize = 12;

/// Outcome of decoding a page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PageDecodeOutcome {
    /// No errors were present.
    Clean,
    /// `corrected` bit errors were fixed and the CRC subsequently passed.
    Corrected {
        /// Number of bit errors corrected.
        corrected: usize,
    },
}

/// Error returned when a page cannot be recovered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PageDecodeError {
    /// The BCH decoder reported an uncorrectable pattern.
    Uncorrectable,
    /// BCH "succeeded" but CRC32 still mismatched: a miscorrection
    /// (more errors occurred than the code strength).
    CrcMismatch,
    /// Buffers had the wrong length.
    BadLength(DecodeError),
}

impl fmt::Display for PageDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageDecodeError::Uncorrectable => write!(f, "uncorrectable BCH error pattern"),
            PageDecodeError::CrcMismatch => {
                write!(f, "CRC mismatch after BCH decode (miscorrection detected)")
            }
            PageDecodeError::BadLength(e) => write!(f, "bad buffer length: {e}"),
        }
    }
}

impl Error for PageDecodeError {}

/// A codec protecting one flash page at a fixed BCH strength.
///
/// Construction computes the code's generator polynomial, which is cheap
/// but not free; controllers cache one codec per strength (see
/// [`PageCodecBank`]).
///
/// # Examples
///
/// ```
/// use flash_ecc::page::{PageCodec, PageDecodeOutcome, PAGE_DATA_BYTES};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let codec = PageCodec::new(4)?;
/// let mut page = vec![0xA5u8; PAGE_DATA_BYTES];
/// let spare = codec.encode(&page);
///
/// page[100] ^= 0x08;
/// let outcome = codec.decode(&mut page, &spare)?;
/// assert_eq!(outcome, PageDecodeOutcome::Corrected { corrected: 1 });
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PageCodec {
    bch: BchCode,
}

/// Error constructing a [`PageCodec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrengthOutOfRange {
    /// The rejected strength.
    pub t: usize,
}

impl fmt::Display for StrengthOutOfRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "page BCH strength must be 1..={MAX_PAGE_STRENGTH}, got {}",
            self.t
        )
    }
}

impl Error for StrengthOutOfRange {}

impl PageCodec {
    /// Creates a page codec of strength `t` (1..=12).
    ///
    /// # Errors
    ///
    /// Returns [`StrengthOutOfRange`] when `t` is 0 or above
    /// [`MAX_PAGE_STRENGTH`] — the paper's controller fixes the block size
    /// at 2KB and caps correction at 12 bits to bound spare-area use.
    pub fn new(t: usize) -> Result<Self, StrengthOutOfRange> {
        if t == 0 || t > MAX_PAGE_STRENGTH {
            return Err(StrengthOutOfRange { t });
        }
        Ok(PageCodec {
            bch: BchCode::for_flash_page(t),
        })
    }

    /// The BCH strength of this codec.
    pub fn strength(&self) -> usize {
        self.bch.strength()
    }

    /// Encodes a page, producing the 64-byte spare area:
    /// `[CRC32 (4B) | BCH parity | zero padding]`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly [`PAGE_DATA_BYTES`] long.
    pub fn encode(&self, data: &[u8]) -> Vec<u8> {
        let mut spare = vec![0u8; PAGE_SPARE_BYTES];
        self.encode_into(data, &mut spare);
        spare
    }

    /// Encodes a page into a caller-provided spare buffer, avoiding the
    /// per-page allocations of [`Self::encode`]. Bytes past the CRC and
    /// parity are zeroed.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not [`PAGE_DATA_BYTES`] long or `spare` is not
    /// [`PAGE_SPARE_BYTES`] long.
    pub fn encode_into(&self, data: &[u8], spare: &mut [u8]) {
        assert_eq!(
            data.len(),
            PAGE_DATA_BYTES,
            "page payload must be 2048 bytes"
        );
        assert_eq!(spare.len(), PAGE_SPARE_BYTES, "spare area must be 64 bytes");
        spare[..CRC_BYTES].copy_from_slice(&crc32(data).to_be_bytes());
        let parity_end = CRC_BYTES + self.bch.parity_bytes();
        self.bch
            .encode_into(data, &mut spare[CRC_BYTES..parity_end]);
        spare[parity_end..].fill(0);
    }

    /// Decodes a page in place against its spare area.
    ///
    /// # Errors
    ///
    /// - [`PageDecodeError::Uncorrectable`] if BCH decoding fails outright.
    /// - [`PageDecodeError::CrcMismatch`] if BCH produced a candidate
    ///   correction but the CRC32 check exposes it as a miscorrection.
    /// - [`PageDecodeError::BadLength`] for wrong buffer sizes.
    pub fn decode(
        &self,
        data: &mut [u8],
        spare: &[u8],
    ) -> Result<PageDecodeOutcome, PageDecodeError> {
        if spare.len() != PAGE_SPARE_BYTES {
            return Err(PageDecodeError::BadLength(DecodeError::LengthMismatch {
                expected: PAGE_SPARE_BYTES,
                got: spare.len(),
                which: "parity",
            }));
        }
        let stored_crc = u32::from_be_bytes([spare[0], spare[1], spare[2], spare[3]]);
        let parity = &spare[CRC_BYTES..CRC_BYTES + self.bch.parity_bytes()];
        let report = match self.bch.decode(data, parity) {
            Ok(r) => r,
            Err(DecodeError::TooManyErrors) => return Err(PageDecodeError::Uncorrectable),
            Err(e @ DecodeError::LengthMismatch { .. }) => {
                return Err(PageDecodeError::BadLength(e))
            }
        };
        if crc32(data) != stored_crc {
            return Err(PageDecodeError::CrcMismatch);
        }
        if report.corrected == 0 {
            Ok(PageDecodeOutcome::Clean)
        } else {
            Ok(PageDecodeOutcome::Corrected {
                corrected: report.corrected,
            })
        }
    }
}

/// A bank of page codecs, one per strength 1..=12, built lazily.
///
/// The device driver in the paper reads the per-page ECC strength from the
/// FPST and programs the controller accordingly; this type is the software
/// analogue, handing out the right codec per descriptor.
#[derive(Debug, Default)]
pub struct PageCodecBank {
    codecs: std::sync::Mutex<Vec<Option<std::sync::Arc<PageCodec>>>>,
}

impl PageCodecBank {
    /// Creates an empty bank.
    pub fn new() -> Self {
        PageCodecBank {
            codecs: std::sync::Mutex::new(vec![None; MAX_PAGE_STRENGTH + 1]),
        }
    }

    /// Returns the codec for strength `t`, constructing it on first use.
    ///
    /// # Errors
    ///
    /// Returns [`StrengthOutOfRange`] for `t == 0` or `t > 12`.
    pub fn codec(&self, t: usize) -> Result<std::sync::Arc<PageCodec>, StrengthOutOfRange> {
        if t == 0 || t > MAX_PAGE_STRENGTH {
            return Err(StrengthOutOfRange { t });
        }
        let mut guard = self.codecs.lock().expect("codec bank poisoned");
        if guard.is_empty() {
            guard.resize(MAX_PAGE_STRENGTH + 1, None);
        }
        if let Some(c) = &guard[t] {
            return Ok(c.clone());
        }
        let codec = std::sync::Arc::new(PageCodec::new(t)?);
        guard[t] = Some(codec.clone());
        Ok(codec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_page() -> Vec<u8> {
        (0..PAGE_DATA_BYTES).map(|i| (i % 256) as u8).collect()
    }

    #[test]
    fn strength_bounds_enforced() {
        assert!(PageCodec::new(0).is_err());
        assert!(PageCodec::new(13).is_err());
        assert!(PageCodec::new(1).is_ok());
        assert!(PageCodec::new(12).is_ok());
    }

    #[test]
    fn spare_layout() {
        let codec = PageCodec::new(12).unwrap();
        let page = test_page();
        let spare = codec.encode(&page);
        assert_eq!(spare.len(), PAGE_SPARE_BYTES);
        // CRC occupies the first 4 bytes.
        assert_eq!(
            u32::from_be_bytes([spare[0], spare[1], spare[2], spare[3]]),
            crate::crc::crc32(&page)
        );
        // t=12 parity = 23 bytes; bytes beyond 4+23 are zero padding.
        assert!(spare[CRC_BYTES + 23..].iter().all(|&b| b == 0));
    }

    #[test]
    fn clean_page_decodes_clean() {
        let codec = PageCodec::new(2).unwrap();
        let mut page = test_page();
        let spare = codec.encode(&page);
        assert_eq!(
            codec.decode(&mut page, &spare).unwrap(),
            PageDecodeOutcome::Clean
        );
    }

    #[test]
    fn corrects_up_to_strength() {
        let codec = PageCodec::new(3).unwrap();
        let mut page = test_page();
        let spare = codec.encode(&page);
        let original = page.clone();
        for &bit in &[17usize, 7777, 16383] {
            page[bit / 8] ^= 1 << (7 - bit % 8);
        }
        assert_eq!(
            codec.decode(&mut page, &spare).unwrap(),
            PageDecodeOutcome::Corrected { corrected: 3 }
        );
        assert_eq!(page, original);
    }

    #[test]
    fn overload_is_detected_not_silently_accepted() {
        // t=1 codec, 4 injected errors: either BCH flags it or the CRC does.
        let codec = PageCodec::new(1).unwrap();
        let mut page = test_page();
        let spare = codec.encode(&page);
        for &bit in &[3usize, 999, 7000, 15000] {
            page[bit / 8] ^= 1 << (7 - bit % 8);
        }
        let err = codec.decode(&mut page, &spare).unwrap_err();
        assert!(
            matches!(
                err,
                PageDecodeError::Uncorrectable | PageDecodeError::CrcMismatch
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn wrong_spare_length_rejected() {
        let codec = PageCodec::new(1).unwrap();
        let mut page = test_page();
        assert!(matches!(
            codec.decode(&mut page, &[0u8; 10]),
            Err(PageDecodeError::BadLength(_))
        ));
    }

    #[test]
    fn corrects_burst_errors_within_strength() {
        // t consecutive bit errors (a burst) are no harder than
        // scattered ones for a binary BCH code.
        let codec = PageCodec::new(8).unwrap();
        let mut page = test_page();
        let spare = codec.encode(&page);
        let original = page.clone();
        for bit in 5_000..5_008usize {
            page[bit / 8] ^= 1 << (7 - bit % 8);
        }
        assert_eq!(
            codec.decode(&mut page, &spare).unwrap(),
            PageDecodeOutcome::Corrected { corrected: 8 }
        );
        assert_eq!(page, original);
    }

    #[test]
    fn crc_catches_every_overload_in_sample() {
        // §4.1.2's reason for the CRC: BCH can miscorrect past its
        // strength. Over a sample of >t error patterns, the combined
        // codec must never return success with wrong data.
        let codec = PageCodec::new(2).unwrap();
        let clean = test_page();
        let spare = codec.encode(&clean);
        for seed in 0..40u64 {
            let mut page = clean.clone();
            let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
            for _ in 0..5 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let bit = (x % (PAGE_DATA_BYTES as u64 * 8)) as usize;
                page[bit / 8] ^= 1 << (7 - bit % 8);
            }
            match codec.decode(&mut page, &spare) {
                Err(_) => {} // detected — good
                Ok(_) => assert_eq!(
                    page, clean,
                    "seed {seed}: codec claimed success with corrupt data"
                ),
            }
        }
    }

    #[test]
    fn codec_bank_caches_and_validates() {
        let bank = PageCodecBank::new();
        let a = bank.codec(5).unwrap();
        let b = bank.codec(5).unwrap();
        assert!(std::sync::Arc::ptr_eq(&a, &b));
        assert!(bank.codec(0).is_err());
        assert!(bank.codec(13).is_err());
        assert_eq!(bank.codec(1).unwrap().strength(), 1);
    }
}
