//! Finite field arithmetic over GF(2^m).
//!
//! BCH codes used by NAND flash controllers operate over binary extension
//! fields. This module provides a table-driven implementation of GF(2^m)
//! for 2 ≤ m ≤ 16, using log/antilog tables generated from a fixed
//! primitive polynomial per field size.
//!
//! Elements are represented as `u32` values in `0..(1 << m)`; the zero
//! element is `0` and the multiplicative generator is `alpha = 2`
//! (the polynomial `x`).

/// Primitive polynomials (including the `x^m` term) indexed by `m`.
///
/// Entry `PRIMITIVE_POLYS[m]` is a degree-`m` polynomial over GF(2),
/// primitive for GF(2^m). Index 0 and 1 are unused placeholders.
const PRIMITIVE_POLYS: [u32; 17] = [
    0,
    0,
    0b111,       // m=2: x^2+x+1
    0b1011,      // m=3: x^3+x+1
    0b1_0011,    // m=4: x^4+x+1
    0b10_0101,   // m=5: x^5+x^2+1
    0b100_0011,  // m=6: x^6+x+1
    0b1000_1001, // m=7: x^7+x^3+1
    0x11D,       // m=8: x^8+x^4+x^3+x^2+1
    0x211,       // m=9: x^9+x^4+1
    0x409,       // m=10: x^10+x^3+1
    0x805,       // m=11: x^11+x^2+1
    0x1053,      // m=12: x^12+x^6+x^4+x+1
    0x201B,      // m=13: x^13+x^4+x^3+x+1
    0x4443,      // m=14: x^14+x^10+x^6+x+1
    0x8003,      // m=15: x^15+x+1
    0x1100B,     // m=16: x^16+x^12+x^3+x+1
];

/// A binary extension field GF(2^m) with precomputed log/antilog tables.
///
/// # Examples
///
/// ```
/// use flash_ecc::gf::GfField;
///
/// let f = GfField::new(8);
/// let a = 0x53;
/// let b = 0xCA;
/// // Multiplication is commutative and distributes over addition (XOR).
/// assert_eq!(f.mul(a, b), f.mul(b, a));
/// assert_eq!(f.mul(a, b ^ 1), f.mul(a, b) ^ f.mul(a, 1));
/// ```
#[derive(Debug, Clone)]
pub struct GfField {
    m: u32,
    /// Field order minus one: 2^m - 1 (size of the multiplicative group).
    group_order: u32,
    /// `exp[i] = alpha^i` for `i` in `0..2*(2^m - 1)` (doubled to avoid
    /// a modulo reduction in `mul`).
    exp: Vec<u32>,
    /// `log[x]` = discrete log of `x` base alpha; `log[0]` is unused.
    log: Vec<u32>,
}

impl GfField {
    /// Constructs GF(2^m) using the crate's fixed primitive polynomial.
    ///
    /// # Panics
    ///
    /// Panics if `m` is outside `2..=16`.
    pub fn new(m: u32) -> Self {
        assert!(
            (2..=16).contains(&m),
            "GF(2^m) supported only for 2 <= m <= 16, got m={m}"
        );
        let poly = PRIMITIVE_POLYS[m as usize];
        let size = 1u32 << m;
        let group_order = size - 1;
        let mut exp = vec![0u32; 2 * group_order as usize];
        let mut log = vec![0u32; size as usize];
        let mut x = 1u32;
        for i in 0..group_order {
            exp[i as usize] = x;
            log[x as usize] = i;
            x <<= 1;
            if x & size != 0 {
                x ^= poly;
            }
        }
        debug_assert_eq!(x, 1, "polynomial for m={m} is not primitive");
        for i in group_order..2 * group_order {
            exp[i as usize] = exp[(i - group_order) as usize];
        }
        GfField {
            m,
            group_order,
            exp,
            log,
        }
    }

    /// The extension degree `m`.
    pub fn m(&self) -> u32 {
        self.m
    }

    /// The order of the multiplicative group, `2^m - 1`.
    pub fn group_order(&self) -> u32 {
        self.group_order
    }

    /// Field addition (= subtraction): bitwise XOR.
    #[inline]
    pub fn add(&self, a: u32, b: u32) -> u32 {
        a ^ b
    }

    /// Field multiplication.
    #[inline]
    pub fn mul(&self, a: u32, b: u32) -> u32 {
        if a == 0 || b == 0 {
            0
        } else {
            self.exp[(self.log[a as usize] + self.log[b as usize]) as usize]
        }
    }

    /// `alpha^e` for any integer exponent `e` (reduced mod `2^m - 1`).
    #[inline]
    pub fn alpha_pow(&self, e: i64) -> u32 {
        let n = self.group_order as i64;
        let mut r = e % n;
        if r < 0 {
            r += n;
        }
        self.exp[r as usize]
    }

    /// Direct antilog lookup: `alpha^idx` for `idx` in `0..2·(2^m − 1)`.
    ///
    /// Hot-path helper for the syndrome and Chien kernels, which keep
    /// exponents in `[0, 2n)` so a single table read replaces a modular
    /// reduction. The doubled `exp` table makes any such index valid.
    #[inline]
    pub(crate) fn exp_raw(&self, idx: usize) -> u32 {
        debug_assert!(idx < self.exp.len(), "exp_raw index {idx} out of range");
        self.exp[idx]
    }

    /// Discrete logarithm of a nonzero element.
    ///
    /// # Panics
    ///
    /// Panics if `a == 0` (zero has no logarithm).
    #[inline]
    pub fn log(&self, a: u32) -> u32 {
        assert!(a != 0, "log of zero");
        self.log[a as usize]
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `a == 0`.
    #[inline]
    pub fn inv(&self, a: u32) -> u32 {
        assert!(a != 0, "inverse of zero");
        self.exp[(self.group_order - self.log[a as usize]) as usize]
    }

    /// Field division `a / b`.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    #[inline]
    pub fn div(&self, a: u32, b: u32) -> u32 {
        assert!(b != 0, "division by zero");
        if a == 0 {
            0
        } else {
            self.exp[(self.log[a as usize] + self.group_order - self.log[b as usize]) as usize]
        }
    }

    /// `a` raised to the integer power `e`.
    pub fn pow(&self, a: u32, e: i64) -> u32 {
        if a == 0 {
            return if e == 0 { 1 } else { 0 };
        }
        let n = self.group_order as i64;
        let mut r = (self.log[a as usize] as i64 * e) % n;
        if r < 0 {
            r += n;
        }
        self.exp[r as usize]
    }

    /// Evaluates a polynomial with coefficients `coeffs` (index = degree,
    /// `coeffs[0]` is the constant term) at point `x`, via Horner's rule.
    pub fn poly_eval(&self, coeffs: &[u32], x: u32) -> u32 {
        let mut acc = 0u32;
        for &c in coeffs.iter().rev() {
            acc = self.mul(acc, x) ^ c;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructs_all_supported_sizes() {
        for m in 2..=16 {
            let f = GfField::new(m);
            assert_eq!(f.group_order(), (1 << m) - 1);
        }
    }

    #[test]
    #[should_panic(expected = "supported only")]
    fn rejects_m_too_large() {
        let _ = GfField::new(17);
    }

    #[test]
    #[should_panic(expected = "supported only")]
    fn rejects_m_too_small() {
        let _ = GfField::new(1);
    }

    #[test]
    fn exp_log_are_inverse_bijections() {
        let f = GfField::new(10);
        for x in 1u32..(1 << 10) {
            assert_eq!(f.alpha_pow(f.log(x) as i64), x);
        }
    }

    #[test]
    fn multiplication_matches_schoolbook_gf16() {
        // Carry-less multiply reduced by x^4 + x + 1.
        fn slow_mul(mut a: u32, mut b: u32) -> u32 {
            let mut r = 0;
            while b != 0 {
                if b & 1 != 0 {
                    r ^= a;
                }
                b >>= 1;
                a <<= 1;
                if a & 0x10 != 0 {
                    a ^= 0b1_0011;
                }
            }
            r
        }
        let f = GfField::new(4);
        for a in 0..16 {
            for b in 0..16 {
                assert_eq!(f.mul(a, b), slow_mul(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn inverse_and_division() {
        let f = GfField::new(8);
        for a in 1u32..256 {
            assert_eq!(f.mul(a, f.inv(a)), 1, "a={a}");
            assert_eq!(f.div(a, a), 1);
            assert_eq!(f.div(0, a), 0);
        }
    }

    #[test]
    fn pow_agrees_with_repeated_mul() {
        let f = GfField::new(6);
        for a in 1u32..64 {
            let mut acc = 1u32;
            for e in 0..10i64 {
                assert_eq!(f.pow(a, e), acc);
                acc = f.mul(acc, a);
            }
        }
    }

    #[test]
    fn negative_alpha_powers_wrap() {
        let f = GfField::new(5);
        assert_eq!(f.alpha_pow(-1), f.inv(f.alpha_pow(1)));
        assert_eq!(f.alpha_pow(-(f.group_order() as i64)), 1);
    }

    #[test]
    fn poly_eval_horner() {
        let f = GfField::new(8);
        // p(x) = 3 + 5x + x^2 evaluated at alpha.
        let a = f.alpha_pow(1);
        let expected = 3 ^ f.mul(5, a) ^ f.mul(a, a);
        assert_eq!(f.poly_eval(&[3, 5, 1], a), expected);
        // Zero polynomial is identically zero.
        assert_eq!(f.poly_eval(&[], a), 0);
    }
}
