//! Binary BCH codes: construction, systematic encoding, and decoding via
//! syndrome computation, Berlekamp–Massey, and Chien search.
//!
//! This is the error-correction engine of the paper's programmable flash
//! memory controller (§4.1). The controller corrects up to `t` bit errors
//! in a 2KB flash page; `t` is programmable per page (1..=12 in the paper,
//! this implementation accepts larger `t` as well).
//!
//! The code is a *shortened* binary BCH code over GF(2^m): data bits that
//! the page does not use are implicitly zero, which keeps the parity size
//! at `m·t` bits regardless of shortening.

use std::error::Error;
use std::fmt;

use crate::bitpoly::BitPoly;
use crate::gf::GfField;

/// Error constructing a [`BchCode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodeConstructionError {
    /// `t` must be at least 1.
    ZeroStrength,
    /// The requested data length plus parity does not fit in the code's
    /// natural block length `2^m - 1`.
    BlockTooSmall {
        /// Bits required (data + parity).
        required_bits: usize,
        /// The natural block length of the field, `2^m - 1`.
        block_bits: usize,
    },
    /// `data_bytes` must be at least 1.
    EmptyData,
}

impl fmt::Display for CodeConstructionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeConstructionError::ZeroStrength => {
                write!(f, "BCH code strength t must be at least 1")
            }
            CodeConstructionError::BlockTooSmall {
                required_bits,
                block_bits,
            } => write!(
                f,
                "data plus parity needs {required_bits} bits but the block length is only {block_bits} bits"
            ),
            CodeConstructionError::EmptyData => write!(f, "data length must be at least 1 byte"),
        }
    }
}

impl Error for CodeConstructionError {}

/// Error returned when decoding fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// More errors occurred than the code can correct, and the decoder
    /// detected it (no consistent error locator exists).
    TooManyErrors,
    /// The caller passed a data or parity buffer of the wrong length.
    LengthMismatch {
        /// What the code expects, in bytes.
        expected: usize,
        /// What the caller provided, in bytes.
        got: usize,
        /// Which buffer was wrong: `"data"` or `"parity"`.
        which: &'static str,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::TooManyErrors => {
                write!(f, "uncorrectable: more errors than the code strength")
            }
            DecodeError::LengthMismatch {
                expected,
                got,
                which,
            } => write!(f, "{which} buffer is {got} bytes, expected {expected}"),
        }
    }
}

impl Error for DecodeError {}

/// Outcome of a successful decode.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DecodeReport {
    /// Number of bit errors corrected (in data and parity combined).
    pub corrected: usize,
    /// Bit positions (within the data buffer, MSB-first numbering) that
    /// were flipped. Parity-area corrections are not listed.
    pub data_bit_positions: Vec<usize>,
}

/// A `t`-error-correcting shortened binary BCH code over GF(2^m).
///
/// # Examples
///
/// ```
/// use flash_ecc::bch::BchCode;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A small code protecting 32 bytes against 2-bit errors.
/// let code = BchCode::new(9, 2, 32)?;
/// let mut data = *b"All your disk cache experiments!";
/// let parity = code.encode(&data);
///
/// data[7] ^= 0x10; // inject two bit errors
/// data[20] ^= 0x01;
/// let report = code.decode(&mut data, &parity)?;
/// assert_eq!(report.corrected, 2);
/// assert_eq!(&data, b"All your disk cache experiments!");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BchCode {
    field: GfField,
    t: usize,
    data_bytes: usize,
    data_bits: usize,
    /// Parity length in bits = degree of the generator polynomial.
    parity_bits: usize,
    /// Generator polynomial over GF(2).
    generator: BitPoly,
    /// Generator with the leading `x^r` term cleared, pre-split into words
    /// for the encoding LFSR.
    feedback: Vec<u64>,
}

impl BchCode {
    /// Constructs a `t`-error-correcting BCH code over GF(2^m) protecting
    /// `data_bytes` bytes of payload.
    ///
    /// # Errors
    ///
    /// Returns [`CodeConstructionError`] if `t == 0`, `data_bytes == 0`, or
    /// the payload plus parity exceeds the natural block length `2^m - 1`.
    pub fn new(m: u32, t: usize, data_bytes: usize) -> Result<Self, CodeConstructionError> {
        if t == 0 {
            return Err(CodeConstructionError::ZeroStrength);
        }
        if data_bytes == 0 {
            return Err(CodeConstructionError::EmptyData);
        }
        let field = GfField::new(m);
        let generator = generator_poly(&field, t);
        let parity_bits = generator
            .degree()
            .expect("generator polynomial is never zero");
        let data_bits = data_bytes * 8;
        let block_bits = field.group_order() as usize;
        if data_bits + parity_bits > block_bits {
            return Err(CodeConstructionError::BlockTooSmall {
                required_bits: data_bits + parity_bits,
                block_bits,
            });
        }
        // feedback = generator without the x^r term, packed LSB-first.
        let mut feedback = vec![0u64; parity_bits.div_ceil(64)];
        for e in generator.iter_exponents() {
            if e < parity_bits {
                feedback[e / 64] |= 1 << (e % 64);
            }
        }
        Ok(BchCode {
            field,
            t,
            data_bytes,
            data_bits,
            parity_bits,
            generator,
            feedback,
        })
    }

    /// The standard flash-page code from the paper: a 2048-byte payload
    /// over GF(2^15), correcting `t` bit errors with `15·t` parity bits.
    ///
    /// The paper limits its controller to `t <= 12` so that CRC32 (4 bytes)
    /// plus BCH parity (≤ 23 bytes) fit the 64-byte spare area; this
    /// constructor accepts any `t` that fits the block length.
    ///
    /// # Panics
    ///
    /// Panics if `t == 0` or `t` is too large for the block length
    /// (`t` ≈ 1092 for 2KB payloads).
    pub fn for_flash_page(t: usize) -> Self {
        BchCode::new(15, t, 2048).expect("flash page code parameters are valid")
    }

    /// A 512-byte disk-sector code over GF(2^13) — the geometry used by
    /// sector-granular flash controllers, provided for completeness
    /// alongside [`Self::for_flash_page`].
    ///
    /// # Panics
    ///
    /// Panics if `t == 0` or the sector plus parity exceeds the block
    /// length (`t` ≈ 315).
    pub fn for_disk_sector(t: usize) -> Self {
        BchCode::new(13, t, 512).expect("sector code parameters are valid")
    }

    /// Correction strength `t` (maximum number of correctable bit errors).
    pub fn strength(&self) -> usize {
        self.t
    }

    /// Payload size in bytes.
    pub fn data_bytes(&self) -> usize {
        self.data_bytes
    }

    /// Parity size in bits (`m·t` for most parameter choices).
    pub fn parity_bits(&self) -> usize {
        self.parity_bits
    }

    /// Parity size in bytes (rounded up).
    pub fn parity_bytes(&self) -> usize {
        self.parity_bits.div_ceil(8)
    }

    /// The generator polynomial over GF(2).
    pub fn generator(&self) -> &BitPoly {
        self.generator
            .degree()
            .expect("generator is nonzero");
        &self.generator
    }

    /// Encodes `data`, returning the parity bytes.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from [`Self::data_bytes`].
    pub fn encode(&self, data: &[u8]) -> Vec<u8> {
        assert_eq!(
            data.len(),
            self.data_bytes,
            "encode: data must be exactly {} bytes",
            self.data_bytes
        );
        let r = self.parity_bits;
        let words = r.div_ceil(64);
        let top_word = (r - 1) / 64;
        let top_bit = (r - 1) % 64;
        let mut reg = vec![0u64; words];
        // Shift data bits in MSB-first order through the division LFSR.
        for &byte in data {
            for bit in (0..8).rev() {
                let din = (byte >> bit) & 1 == 1;
                let feedback = din ^ ((reg[top_word] >> top_bit) & 1 == 1);
                // reg <<= 1 (multi-word).
                for w in (1..words).rev() {
                    reg[w] = (reg[w] << 1) | (reg[w - 1] >> 63);
                }
                reg[0] <<= 1;
                if feedback {
                    for (r, f) in reg.iter_mut().zip(&self.feedback) {
                        *r ^= f;
                    }
                }
            }
        }
        // Mask off bits above r-1 in the top word.
        if !r.is_multiple_of(64) {
            let keep = r % 64;
            reg[words - 1] &= (1u64 << keep) - 1;
        }
        // Serialize: parity byte 0 carries the highest-power coefficients
        // (MSB-first), mirroring how the data was shifted in.
        let nbytes = self.parity_bytes();
        let mut out = vec![0u8; nbytes];
        for i in 0..r {
            // Coefficient of x^(r-1-i) becomes bit i (MSB-first stream).
            let power = r - 1 - i;
            if (reg[power / 64] >> (power % 64)) & 1 == 1 {
                out[i / 8] |= 1 << (7 - i % 8);
            }
        }
        out
    }

    /// Decodes in place: corrects up to `t` bit errors across `data` and
    /// `parity`, returning how many were corrected.
    ///
    /// # Errors
    ///
    /// [`DecodeError::TooManyErrors`] if the error pattern exceeds the code
    /// strength *and* the decoder can tell. Patterns beyond `t` errors may
    /// also be silently miscorrected — that is inherent to BCH codes and is
    /// why the paper pairs BCH with a CRC32 check (see
    /// [`crate::page::PageCodec`]).
    /// [`DecodeError::LengthMismatch`] if a buffer has the wrong size.
    pub fn decode(&self, data: &mut [u8], parity: &[u8]) -> Result<DecodeReport, DecodeError> {
        if data.len() != self.data_bytes {
            return Err(DecodeError::LengthMismatch {
                expected: self.data_bytes,
                got: data.len(),
                which: "data",
            });
        }
        if parity.len() != self.parity_bytes() {
            return Err(DecodeError::LengthMismatch {
                expected: self.parity_bytes(),
                got: parity.len(),
                which: "parity",
            });
        }
        let syndromes = self.syndromes(data, parity);
        if syndromes.iter().all(|&s| s == 0) {
            return Ok(DecodeReport::default());
        }
        let sigma = self.berlekamp_massey(&syndromes);
        let num_errors = sigma.len() - 1;
        if num_errors > self.t {
            return Err(DecodeError::TooManyErrors);
        }
        let roots = self.chien_search(&sigma);
        if roots.len() != num_errors {
            return Err(DecodeError::TooManyErrors);
        }
        // Map codeword powers to buffer bit positions and flip.
        let r = self.parity_bits;
        let mut report = DecodeReport {
            corrected: roots.len(),
            data_bit_positions: Vec::with_capacity(roots.len()),
        };
        for power in roots {
            if power >= r {
                // Data area: data bit j has power r + data_bits - 1 - j.
                let j = r + self.data_bits - 1 - power;
                data[j / 8] ^= 1 << (7 - j % 8);
                report.data_bit_positions.push(j);
            }
            // Parity-area errors need no fix: the caller's data is already
            // correct once data-area flips are applied.
        }
        report.data_bit_positions.sort_unstable();
        Ok(report)
    }

    /// Computes syndromes S_1..S_2t of the received word.
    fn syndromes(&self, data: &[u8], parity: &[u8]) -> Vec<u32> {
        let f = &self.field;
        let n = f.group_order() as i64;
        let r = self.parity_bits as i64;
        let two_t = 2 * self.t;
        let mut syn = vec![0u32; two_t];
        // Odd syndromes by direct evaluation over set bits; even ones by
        // squaring (S_2i = S_i^2 for binary codes).
        let add_position = |syn: &mut Vec<u32>, power: i64| {
            for i in (1..=two_t).step_by(2) {
                let e = (power * i as i64) % n;
                syn[i - 1] ^= f.alpha_pow(e);
            }
        };
        for (byte_idx, &byte) in data.iter().enumerate() {
            if byte == 0 {
                continue;
            }
            for bit in 0..8 {
                if (byte >> (7 - bit)) & 1 == 1 {
                    let j = (byte_idx * 8 + bit) as i64;
                    let power = r + self.data_bits as i64 - 1 - j;
                    add_position(&mut syn, power);
                }
            }
        }
        for i in 0..self.parity_bits {
            if (parity[i / 8] >> (7 - i % 8)) & 1 == 1 {
                let power = r - 1 - i as i64;
                add_position(&mut syn, power);
            }
        }
        for i in 1..=self.t {
            syn[2 * i - 1] = f.mul(syn[i - 1], syn[i - 1]);
        }
        syn
    }

    /// Berlekamp–Massey: returns the error-locator polynomial
    /// `sigma(x) = 1 + sigma_1 x + ... + sigma_L x^L` (index = degree),
    /// trimmed so `sigma.len() - 1` is its degree.
    fn berlekamp_massey(&self, syndromes: &[u32]) -> Vec<u32> {
        let f = &self.field;
        let two_t = syndromes.len();
        let mut sigma = vec![0u32; two_t + 2];
        let mut prev = vec![0u32; two_t + 2];
        sigma[0] = 1;
        prev[0] = 1;
        let mut l = 0usize; // current LFSR length
        let mut shift = 1usize; // x^shift multiplier for prev
        let mut b = 1u32; // last nonzero discrepancy
        for n_iter in 0..two_t {
            // Discrepancy d = S_n + sum_{i=1..L} sigma_i * S_{n-i}.
            let mut d = syndromes[n_iter];
            for i in 1..=l {
                d ^= f.mul(sigma[i], syndromes[n_iter - i]);
            }
            if d == 0 {
                shift += 1;
            } else if 2 * l <= n_iter {
                let saved = sigma.clone();
                let coef = f.div(d, b);
                for (i, &p) in prev.iter().enumerate() {
                    if p != 0 && i + shift < sigma.len() {
                        sigma[i + shift] ^= f.mul(coef, p);
                    }
                }
                l = n_iter + 1 - l;
                prev = saved;
                b = d;
                shift = 1;
            } else {
                let coef = f.div(d, b);
                for (i, &p) in prev.clone().iter().enumerate() {
                    if p != 0 && i + shift < sigma.len() {
                        sigma[i + shift] ^= f.mul(coef, p);
                    }
                }
                shift += 1;
            }
        }
        // Trim to the actual degree.
        let mut deg = 0;
        for (i, &c) in sigma.iter().enumerate() {
            if c != 0 {
                deg = i;
            }
        }
        sigma.truncate(deg + 1);
        sigma
    }

    /// Chien search: returns the codeword powers `p` (0-based exponent of
    /// `x` in the codeword polynomial) where errors occurred. Only
    /// positions inside the shortened length are returned; a root outside
    /// it is simply absent, which the caller detects as a count mismatch.
    fn chien_search(&self, sigma: &[u32]) -> Vec<usize> {
        let f = &self.field;
        let used_bits = self.data_bits + self.parity_bits;
        let mut roots = Vec::new();
        // terms[j] = sigma_j * alpha^(-j*p), updated incrementally over p.
        let mut terms: Vec<u32> = sigma.to_vec();
        let steps: Vec<u32> = (0..sigma.len())
            .map(|j| f.alpha_pow(-(j as i64)))
            .collect();
        for p in 0..used_bits {
            if p > 0 {
                for j in 1..terms.len() {
                    terms[j] = f.mul(terms[j], steps[j]);
                }
            }
            let sum = terms.iter().fold(0u32, |acc, &t| acc ^ t);
            if sum == 0 {
                roots.push(p);
            }
        }
        roots
    }
}

/// Computes the generator polynomial of a `t`-error-correcting binary BCH
/// code over `field`: the least common multiple of the minimal polynomials
/// of `alpha, alpha^3, ..., alpha^(2t-1)`.
fn generator_poly(field: &GfField, t: usize) -> BitPoly {
    let n = field.group_order() as usize;
    let mut seen_cosets: Vec<usize> = Vec::new();
    let mut gen = BitPoly::one();
    for i in (1..2 * t).step_by(2) {
        let i = i % n;
        // Cyclotomic coset of i mod n.
        let mut coset = Vec::new();
        let mut j = i;
        loop {
            coset.push(j);
            j = (j * 2) % n;
            if j == i {
                break;
            }
        }
        let rep = *coset.iter().min().expect("coset is nonempty");
        if seen_cosets.contains(&rep) {
            continue;
        }
        seen_cosets.push(rep);
        gen = gen.mul(&minimal_poly(field, &coset));
    }
    gen
}

/// Expands `prod_{j in coset} (x - alpha^j)`, which has GF(2) coefficients.
fn minimal_poly(field: &GfField, coset: &[usize]) -> BitPoly {
    // Coefficients in GF(2^m), index = degree.
    let mut coeffs: Vec<u32> = vec![1];
    for &j in coset {
        let root = field.alpha_pow(j as i64);
        let mut next = vec![0u32; coeffs.len() + 1];
        for (d, &c) in coeffs.iter().enumerate() {
            next[d + 1] ^= c; // x * c
            next[d] ^= field.mul(c, root); // root * c (== -root in char 2)
        }
        coeffs = next;
    }
    BitPoly::from_exponents(coeffs.iter().enumerate().filter_map(|(d, &c)| {
        debug_assert!(c <= 1, "minimal polynomial must have GF(2) coefficients");
        if c == 1 {
            Some(d)
        } else {
            None
        }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_generator_bch_15_1() {
        // The classic (15, 11) single-error-correcting BCH code over
        // GF(2^4) has generator x^4 + x + 1.
        let f = GfField::new(4);
        let g = generator_poly(&f, 1);
        assert_eq!(g, BitPoly::from_exponents([4, 1, 0]));
    }

    #[test]
    fn known_generator_bch_15_2() {
        // The (15, 7) double-error-correcting BCH code has generator
        // x^8 + x^7 + x^6 + x^4 + 1.
        let f = GfField::new(4);
        let g = generator_poly(&f, 2);
        assert_eq!(g, BitPoly::from_exponents([8, 7, 6, 4, 0]));
    }

    #[test]
    fn construction_errors() {
        assert_eq!(
            BchCode::new(8, 0, 16).unwrap_err(),
            CodeConstructionError::ZeroStrength
        );
        assert_eq!(
            BchCode::new(8, 1, 0).unwrap_err(),
            CodeConstructionError::EmptyData
        );
        // 255-bit block cannot hold 32 bytes of data + parity.
        assert!(matches!(
            BchCode::new(8, 2, 32).unwrap_err(),
            CodeConstructionError::BlockTooSmall { .. }
        ));
    }

    #[test]
    fn parity_size_is_m_times_t() {
        let code = BchCode::new(10, 3, 64).unwrap();
        assert_eq!(code.parity_bits(), 30);
        assert_eq!(code.parity_bytes(), 4);
        let page = BchCode::new(15, 12, 2048).unwrap();
        assert_eq!(page.parity_bits(), 180);
        // Paper: "a maximum of 23 bytes are needed for check bits".
        assert_eq!(page.parity_bytes(), 23);
    }

    #[test]
    fn clean_roundtrip_no_errors() {
        let code = BchCode::new(9, 3, 40).unwrap();
        let data: Vec<u8> = (0..40u8).collect();
        let parity = code.encode(&data);
        let mut received = data.clone();
        let report = code.decode(&mut received, &parity).unwrap();
        assert_eq!(report.corrected, 0);
        assert_eq!(received, data);
    }

    #[test]
    fn corrects_exactly_t_errors() {
        let code = BchCode::new(9, 4, 48).unwrap();
        let data: Vec<u8> = (0..48u8).map(|b| b.wrapping_mul(37)).collect();
        let parity = code.encode(&data);
        let mut received = data.clone();
        // Inject exactly t=4 errors at scattered positions.
        for &(byte, bit) in &[(0usize, 7u8), (13, 0), (25, 3), (47, 6)] {
            received[byte] ^= 1 << bit;
        }
        let report = code.decode(&mut received, &parity).unwrap();
        assert_eq!(report.corrected, 4);
        assert_eq!(received, data);
        assert_eq!(report.data_bit_positions.len(), 4);
    }

    #[test]
    fn corrects_error_in_parity_area() {
        let code = BchCode::new(9, 2, 32).unwrap();
        let data = vec![0xA5u8; 32];
        let mut parity = code.encode(&data);
        parity[0] ^= 0x80;
        let mut received = data.clone();
        let report = code.decode(&mut received, &parity).unwrap();
        assert_eq!(report.corrected, 1);
        assert!(report.data_bit_positions.is_empty());
        assert_eq!(received, data);
    }

    #[test]
    fn detects_more_than_t_errors_with_crc_style_check() {
        // With t=1, three errors must either be flagged TooManyErrors or
        // miscorrected to a *different* word — never silently "fixed" back
        // to the original.
        let code = BchCode::new(9, 1, 32).unwrap();
        let data = vec![0x5Au8; 32];
        let parity = code.encode(&data);
        let mut received = data.clone();
        received[0] ^= 0x01;
        received[1] ^= 0x02;
        received[2] ^= 0x04;
        match code.decode(&mut received, &parity) {
            Err(DecodeError::TooManyErrors) => {}
            Ok(_) => assert_ne!(received, data, "3 errors cannot be truly corrected at t=1"),
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    #[test]
    fn length_mismatch_reported() {
        let code = BchCode::new(9, 2, 32).unwrap();
        let mut short = vec![0u8; 31];
        let parity = vec![0u8; code.parity_bytes()];
        assert!(matches!(
            code.decode(&mut short, &parity),
            Err(DecodeError::LengthMismatch { which: "data", .. })
        ));
        let mut ok = vec![0u8; 32];
        assert!(matches!(
            code.decode(&mut ok, &[0u8; 1]),
            Err(DecodeError::LengthMismatch { which: "parity", .. })
        ));
    }

    #[test]
    fn flash_page_code_roundtrip() {
        // Full 2KB page over GF(2^15) with t=4: encode, corrupt, decode.
        let code = BchCode::for_flash_page(4);
        let mut data: Vec<u8> = (0..2048usize).map(|i| (i * 31 % 251) as u8).collect();
        let parity = code.encode(&data);
        let original = data.clone();
        for &pos in &[5usize, 1000, 9999, 16000] {
            data[pos / 8] ^= 1 << (7 - pos % 8);
        }
        let report = code.decode(&mut data, &parity).unwrap();
        assert_eq!(report.corrected, 4);
        assert_eq!(data, original);
    }

    #[test]
    fn all_single_bit_errors_corrected_small_code() {
        let code = BchCode::new(8, 1, 8).unwrap();
        let data: Vec<u8> = vec![0xC3, 0x00, 0xFF, 0x12, 0x34, 0x56, 0x78, 0x9A];
        let parity = code.encode(&data);
        for bit in 0..64 {
            let mut received = data.clone();
            received[bit / 8] ^= 1 << (7 - bit % 8);
            let report = code.decode(&mut received, &parity).unwrap();
            assert_eq!(report.corrected, 1, "bit {bit}");
            assert_eq!(received, data, "bit {bit}");
            assert_eq!(report.data_bit_positions, vec![bit]);
        }
    }

    #[test]
    fn disk_sector_code_roundtrip() {
        let code = BchCode::for_disk_sector(3);
        assert_eq!(code.data_bytes(), 512);
        assert_eq!(code.parity_bits(), 39);
        let data: Vec<u8> = (0..512usize).map(|i| (i % 256) as u8).collect();
        let parity = code.encode(&data);
        let mut received = data.clone();
        for &bit in &[0usize, 2048, 4095] {
            received[bit / 8] ^= 1 << (7 - bit % 8);
        }
        let report = code.decode(&mut received, &parity).unwrap();
        assert_eq!(report.corrected, 3);
        assert_eq!(received, data);
    }

    #[test]
    fn generator_accessor_nonzero() {
        let code = BchCode::new(8, 2, 16).unwrap();
        assert!(code.generator().degree().is_some());
        assert_eq!(code.strength(), 2);
        assert_eq!(code.data_bytes(), 16);
    }
}
