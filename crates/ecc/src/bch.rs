//! Binary BCH codes: construction, systematic encoding, and decoding via
//! syndrome computation, Berlekamp–Massey, and Chien search.
//!
//! This is the error-correction engine of the paper's programmable flash
//! memory controller (§4.1). The controller corrects up to `t` bit errors
//! in a 2KB flash page; `t` is programmable per page (1..=12 in the paper,
//! this implementation accepts larger `t` as well).
//!
//! The code is a *shortened* binary BCH code over GF(2^m): data bits that
//! the page does not use are implicitly zero, which keeps the parity size
//! at `m·t` bits regardless of shortening.

use std::error::Error;
use std::fmt;

use crate::bitpoly::BitPoly;
use crate::gf::GfField;

/// Error constructing a [`BchCode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodeConstructionError {
    /// `t` must be at least 1.
    ZeroStrength,
    /// The requested data length plus parity does not fit in the code's
    /// natural block length `2^m - 1`.
    BlockTooSmall {
        /// Bits required (data + parity).
        required_bits: usize,
        /// The natural block length of the field, `2^m - 1`.
        block_bits: usize,
    },
    /// `data_bytes` must be at least 1.
    EmptyData,
}

impl fmt::Display for CodeConstructionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeConstructionError::ZeroStrength => {
                write!(f, "BCH code strength t must be at least 1")
            }
            CodeConstructionError::BlockTooSmall {
                required_bits,
                block_bits,
            } => write!(
                f,
                "data plus parity needs {required_bits} bits but the block length is only {block_bits} bits"
            ),
            CodeConstructionError::EmptyData => write!(f, "data length must be at least 1 byte"),
        }
    }
}

impl Error for CodeConstructionError {}

/// Error returned when decoding fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// More errors occurred than the code can correct, and the decoder
    /// detected it (no consistent error locator exists).
    TooManyErrors,
    /// The caller passed a data or parity buffer of the wrong length.
    LengthMismatch {
        /// What the code expects, in bytes.
        expected: usize,
        /// What the caller provided, in bytes.
        got: usize,
        /// Which buffer was wrong: `"data"` or `"parity"`.
        which: &'static str,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::TooManyErrors => {
                write!(f, "uncorrectable: more errors than the code strength")
            }
            DecodeError::LengthMismatch {
                expected,
                got,
                which,
            } => write!(f, "{which} buffer is {got} bytes, expected {expected}"),
        }
    }
}

impl Error for DecodeError {}

/// Outcome of a successful decode.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DecodeReport {
    /// Number of bit errors corrected (in data and parity combined).
    pub corrected: usize,
    /// Bit positions (within the data buffer, MSB-first numbering) that
    /// were flipped. Parity-area corrections are not listed.
    pub data_bit_positions: Vec<usize>,
}

/// A `t`-error-correcting shortened binary BCH code over GF(2^m).
///
/// # Examples
///
/// ```
/// use flash_ecc::bch::BchCode;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A small code protecting 32 bytes against 2-bit errors.
/// let code = BchCode::new(9, 2, 32)?;
/// let mut data = *b"All your disk cache experiments!";
/// let parity = code.encode(&data);
///
/// data[7] ^= 0x10; // inject two bit errors
/// data[20] ^= 0x01;
/// let report = code.decode(&mut data, &parity)?;
/// assert_eq!(report.corrected, 2);
/// assert_eq!(&data, b"All your disk cache experiments!");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BchCode {
    field: GfField,
    t: usize,
    data_bytes: usize,
    data_bits: usize,
    /// Parity length in bits = degree of the generator polynomial.
    parity_bits: usize,
    /// Generator polynomial over GF(2).
    generator: BitPoly,
    /// Generator with the leading `x^r` term cleared, pre-split into words
    /// for the bit-serial encoding LFSR (kept as the differential-test
    /// oracle for the table-driven encoder).
    feedback: Vec<u64>,
    /// Number of 64-bit words in the left-aligned encoder register.
    enc_words: usize,
    /// Byte-at-a-time remainder-update table: 256 rows of `enc_words`
    /// words each. Empty when `parity_bits < 8` (bit-serial fallback).
    enc_table: Vec<u64>,
    /// Per odd syndrome `i = 2k+1`: exponent of the leading codeword
    /// position, `((data_bits + parity_bits − 1)·i) mod n`.
    syn_e0: Vec<u32>,
    /// Per odd syndrome: exponent of the leading parity position,
    /// `((parity_bits − 1)·i) mod n`.
    syn_parity_e0: Vec<u32>,
    /// Per odd syndrome: exponent consumed by one 64-bit word,
    /// `(64·i) mod n`.
    syn_word_step: Vec<u32>,
    /// Per odd syndrome, per bit offset `b` in a word: `(b·i) mod n`,
    /// laid out as `t` rows of 64.
    syn_offsets: Vec<u32>,
}

impl BchCode {
    /// Constructs a `t`-error-correcting BCH code over GF(2^m) protecting
    /// `data_bytes` bytes of payload.
    ///
    /// # Errors
    ///
    /// Returns [`CodeConstructionError`] if `t == 0`, `data_bytes == 0`, or
    /// the payload plus parity exceeds the natural block length `2^m - 1`.
    pub fn new(m: u32, t: usize, data_bytes: usize) -> Result<Self, CodeConstructionError> {
        if t == 0 {
            return Err(CodeConstructionError::ZeroStrength);
        }
        if data_bytes == 0 {
            return Err(CodeConstructionError::EmptyData);
        }
        let field = GfField::new(m);
        let generator = generator_poly(&field, t);
        let parity_bits = generator
            .degree()
            .expect("generator polynomial is never zero");
        let data_bits = data_bytes * 8;
        let block_bits = field.group_order() as usize;
        if data_bits + parity_bits > block_bits {
            return Err(CodeConstructionError::BlockTooSmall {
                required_bits: data_bits + parity_bits,
                block_bits,
            });
        }
        // feedback = generator without the x^r term, packed LSB-first.
        let mut feedback = vec![0u64; parity_bits.div_ceil(64)];
        for e in generator.iter_exponents() {
            if e < parity_bits {
                feedback[e / 64] |= 1 << (e % 64);
            }
        }
        let enc_words = parity_bits.div_ceil(64);
        let enc_table = if parity_bits >= 8 {
            build_enc_table(&generator, parity_bits, enc_words)
        } else {
            // The byte-at-a-time step needs at least 8 remainder bits;
            // tiny codes fall back to the bit-serial LFSR.
            Vec::new()
        };
        // Syndrome kernel tables: exponents of alpha per codeword
        // position, maintained in [0, n) so the doubled antilog table
        // absorbs all index arithmetic without modular reduction.
        let n = field.group_order() as u64;
        let total_bits = (data_bits + parity_bits) as u64;
        let mut syn_e0 = Vec::with_capacity(t);
        let mut syn_parity_e0 = Vec::with_capacity(t);
        let mut syn_word_step = Vec::with_capacity(t);
        let mut syn_offsets = Vec::with_capacity(t * 64);
        for k in 0..t {
            let i = (2 * k + 1) as u64;
            syn_e0.push((((total_bits - 1) * i) % n) as u32);
            syn_parity_e0.push((((parity_bits as u64 - 1) * i) % n) as u32);
            syn_word_step.push(((64 * i) % n) as u32);
            for b in 0..64u64 {
                syn_offsets.push(((b * i) % n) as u32);
            }
        }
        Ok(BchCode {
            field,
            t,
            data_bytes,
            data_bits,
            parity_bits,
            generator,
            feedback,
            enc_words,
            enc_table,
            syn_e0,
            syn_parity_e0,
            syn_word_step,
            syn_offsets,
        })
    }

    /// The standard flash-page code from the paper: a 2048-byte payload
    /// over GF(2^15), correcting `t` bit errors with `15·t` parity bits.
    ///
    /// The paper limits its controller to `t <= 12` so that CRC32 (4 bytes)
    /// plus BCH parity (≤ 23 bytes) fit the 64-byte spare area; this
    /// constructor accepts any `t` that fits the block length.
    ///
    /// # Panics
    ///
    /// Panics if `t == 0` or `t` is too large for the block length
    /// (`t` ≈ 1092 for 2KB payloads).
    pub fn for_flash_page(t: usize) -> Self {
        BchCode::new(15, t, 2048).expect("flash page code parameters are valid")
    }

    /// A 512-byte disk-sector code over GF(2^13) — the geometry used by
    /// sector-granular flash controllers, provided for completeness
    /// alongside [`Self::for_flash_page`].
    ///
    /// # Panics
    ///
    /// Panics if `t == 0` or the sector plus parity exceeds the block
    /// length (`t` ≈ 315).
    pub fn for_disk_sector(t: usize) -> Self {
        BchCode::new(13, t, 512).expect("sector code parameters are valid")
    }

    /// Correction strength `t` (maximum number of correctable bit errors).
    pub fn strength(&self) -> usize {
        self.t
    }

    /// Payload size in bytes.
    pub fn data_bytes(&self) -> usize {
        self.data_bytes
    }

    /// Parity size in bits (`m·t` for most parameter choices).
    pub fn parity_bits(&self) -> usize {
        self.parity_bits
    }

    /// Parity size in bytes (rounded up).
    pub fn parity_bytes(&self) -> usize {
        self.parity_bits.div_ceil(8)
    }

    /// The generator polynomial over GF(2).
    pub fn generator(&self) -> &BitPoly {
        &self.generator
    }

    /// Encodes `data`, returning the parity bytes.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from [`Self::data_bytes`].
    pub fn encode(&self, data: &[u8]) -> Vec<u8> {
        let mut out = vec![0u8; self.parity_bytes()];
        self.encode_into(data, &mut out);
        out
    }

    /// Encodes `data` into a caller-provided parity buffer, avoiding the
    /// per-call allocation of [`Self::encode`].
    ///
    /// Uses a byte-at-a-time table-driven LFSR (CRC-style): the remainder
    /// register is kept left-aligned in 64-bit words and advanced one input
    /// byte per step through a 256-entry remainder-update table built at
    /// construction time.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from [`Self::data_bytes`] or
    /// `parity_out.len()` differs from [`Self::parity_bytes`].
    pub fn encode_into(&self, data: &[u8], parity_out: &mut [u8]) {
        assert_eq!(
            data.len(),
            self.data_bytes,
            "encode: data must be exactly {} bytes",
            self.data_bytes
        );
        assert_eq!(
            parity_out.len(),
            self.parity_bytes(),
            "encode: parity buffer must be exactly {} bytes",
            self.parity_bytes()
        );
        if self.enc_table.is_empty() {
            parity_out.copy_from_slice(&self.encode_bitserial(data));
            return;
        }
        // Monomorphized register widths cover every practical code
        // (flash-page codes at t <= 12 need at most 3 words).
        match self.enc_words {
            1 => self.serialize_parity(&table_encode_fixed::<1>(&self.enc_table, data), parity_out),
            2 => self.serialize_parity(&table_encode_fixed::<2>(&self.enc_table, data), parity_out),
            3 => self.serialize_parity(&table_encode_fixed::<3>(&self.enc_table, data), parity_out),
            4 => self.serialize_parity(&table_encode_fixed::<4>(&self.enc_table, data), parity_out),
            w => {
                let mut reg = vec![0u64; w];
                for &byte in data {
                    let idx = (byte ^ (reg[w - 1] >> 56) as u8) as usize * w;
                    for k in (1..w).rev() {
                        reg[k] = (reg[k] << 8) | (reg[k - 1] >> 56);
                    }
                    reg[0] <<= 8;
                    for (rk, tk) in reg.iter_mut().zip(&self.enc_table[idx..idx + w]) {
                        *rk ^= tk;
                    }
                }
                self.serialize_parity(&reg, parity_out);
            }
        }
    }

    /// Writes the left-aligned remainder register out as the MSB-first
    /// parity byte stream (byte 0 = highest-power coefficients). Register
    /// bits below `enc_words·64 − parity_bits` are always zero, so any
    /// padding bits in the last byte come out zero.
    fn serialize_parity(&self, reg: &[u64], out: &mut [u8]) {
        let w = reg.len();
        for (k, byte) in out.iter_mut().enumerate() {
            *byte = (reg[w - 1 - k / 8] >> (56 - 8 * (k % 8))) as u8;
        }
    }

    /// Reference bit-serial encoder: one LFSR step per data bit.
    ///
    /// Retained as the differential-test oracle for the table-driven
    /// [`Self::encode_into`] (and as the fallback for codes with fewer
    /// than 8 parity bits, where the byte-wise step does not apply).
    #[doc(hidden)]
    pub fn encode_bitserial(&self, data: &[u8]) -> Vec<u8> {
        assert_eq!(
            data.len(),
            self.data_bytes,
            "encode: data must be exactly {} bytes",
            self.data_bytes
        );
        let r = self.parity_bits;
        let words = r.div_ceil(64);
        let top_word = (r - 1) / 64;
        let top_bit = (r - 1) % 64;
        let mut reg = vec![0u64; words];
        // Shift data bits in MSB-first order through the division LFSR.
        for &byte in data {
            for bit in (0..8).rev() {
                let din = (byte >> bit) & 1 == 1;
                let feedback = din ^ ((reg[top_word] >> top_bit) & 1 == 1);
                // reg <<= 1 (multi-word).
                for w in (1..words).rev() {
                    reg[w] = (reg[w] << 1) | (reg[w - 1] >> 63);
                }
                reg[0] <<= 1;
                if feedback {
                    for (r, f) in reg.iter_mut().zip(&self.feedback) {
                        *r ^= f;
                    }
                }
            }
        }
        // Mask off bits above r-1 in the top word.
        if !r.is_multiple_of(64) {
            let keep = r % 64;
            reg[words - 1] &= (1u64 << keep) - 1;
        }
        // Serialize: parity byte 0 carries the highest-power coefficients
        // (MSB-first), mirroring how the data was shifted in.
        let nbytes = self.parity_bytes();
        let mut out = vec![0u8; nbytes];
        for i in 0..r {
            // Coefficient of x^(r-1-i) becomes bit i (MSB-first stream).
            let power = r - 1 - i;
            if (reg[power / 64] >> (power % 64)) & 1 == 1 {
                out[i / 8] |= 1 << (7 - i % 8);
            }
        }
        out
    }

    /// Decodes in place: corrects up to `t` bit errors across `data` and
    /// `parity`, returning how many were corrected.
    ///
    /// # Errors
    ///
    /// [`DecodeError::TooManyErrors`] if the error pattern exceeds the code
    /// strength *and* the decoder can tell. Patterns beyond `t` errors may
    /// also be silently miscorrected — that is inherent to BCH codes and is
    /// why the paper pairs BCH with a CRC32 check (see
    /// [`crate::page::PageCodec`]).
    /// [`DecodeError::LengthMismatch`] if a buffer has the wrong size.
    pub fn decode(&self, data: &mut [u8], parity: &[u8]) -> Result<DecodeReport, DecodeError> {
        if data.len() != self.data_bytes {
            return Err(DecodeError::LengthMismatch {
                expected: self.data_bytes,
                got: data.len(),
                which: "data",
            });
        }
        if parity.len() != self.parity_bytes() {
            return Err(DecodeError::LengthMismatch {
                expected: self.parity_bytes(),
                got: parity.len(),
                which: "parity",
            });
        }
        let syndromes = self.syndromes(data, parity);
        if syndromes.iter().all(|&s| s == 0) {
            return Ok(DecodeReport::default());
        }
        let sigma = self.berlekamp_massey(&syndromes);
        let num_errors = sigma.len() - 1;
        if num_errors > self.t {
            return Err(DecodeError::TooManyErrors);
        }
        let roots = self.chien_search(&sigma);
        if roots.len() != num_errors {
            return Err(DecodeError::TooManyErrors);
        }
        // Map codeword powers to buffer bit positions and flip.
        let r = self.parity_bits;
        let mut report = DecodeReport {
            corrected: roots.len(),
            data_bit_positions: Vec::with_capacity(roots.len()),
        };
        for power in roots {
            if power >= r {
                // Data area: data bit j has power r + data_bits - 1 - j.
                let j = r + self.data_bits - 1 - power;
                data[j / 8] ^= 1 << (7 - j % 8);
                report.data_bit_positions.push(j);
            }
            // Parity-area errors need no fix: the caller's data is already
            // correct once data-area flips are applied.
        }
        report.data_bit_positions.sort_unstable();
        Ok(report)
    }

    /// Computes syndromes S_1..S_2t of the received word.
    ///
    /// Word-at-a-time kernel: the received bits are consumed as big-endian
    /// 64-bit words (zero words skipped entirely); each odd syndrome keeps
    /// a running exponent for the word's leading position, stepped by the
    /// precomputed `(64·i) mod n` per word, and each set bit costs one
    /// add plus one antilog lookup through the doubled exp table — no
    /// multiplications or modular reductions in the inner loop. Even
    /// syndromes come from squaring (S_2i = S_i² for binary codes).
    #[doc(hidden)]
    pub fn syndromes(&self, data: &[u8], parity: &[u8]) -> Vec<u32> {
        let f = &self.field;
        let n = f.group_order();
        let t = self.t;
        let mut syn = vec![0u32; 2 * t];
        // Running per-odd-syndrome exponents of the current word's bit 0
        // (MSB). Kept in [0, n).
        let mut e: Vec<u32> = self.syn_e0.clone();
        let mut absorb_word = |e: &mut [u32], wval: u64, advance: bool| {
            if wval != 0 {
                let mut bits = wval;
                while bits != 0 {
                    let b = bits.leading_zeros() as usize;
                    bits &= !(0x8000_0000_0000_0000u64 >> b);
                    for k in 0..t {
                        let off = self.syn_offsets[k * 64 + b];
                        syn[2 * k] ^= f.exp_raw((e[k] + n - off) as usize);
                    }
                }
            }
            if advance {
                for (ek, &step) in e.iter_mut().zip(&self.syn_word_step) {
                    let mut v = *ek + n - step;
                    if v >= n {
                        v -= n;
                    }
                    *ek = v;
                }
            }
        };
        let mut chunks = data.chunks_exact(8);
        for chunk in &mut chunks {
            let wval = u64::from_be_bytes(chunk.try_into().expect("chunk is 8 bytes"));
            absorb_word(&mut e, wval, true);
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            // Zero padding in the low bytes contributes nothing.
            let mut buf = [0u8; 8];
            buf[..tail.len()].copy_from_slice(tail);
            absorb_word(&mut e, u64::from_be_bytes(buf), false);
        }
        // Parity is a separate MSB-first stream whose leading position has
        // power r-1. Padding bits in the last byte are masked off, exactly
        // as the bit-serial reference ignores positions >= r.
        let r = self.parity_bits;
        e.copy_from_slice(&self.syn_parity_e0);
        let pchunks = parity.chunks(8);
        let last_chunk = parity.len().div_ceil(8).saturating_sub(1);
        for (ci, chunk) in pchunks.enumerate() {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            if ci == last_chunk && !r.is_multiple_of(8) {
                buf[chunk.len() - 1] &= 0xFFu8 << (8 - r % 8);
            }
            absorb_word(&mut e, u64::from_be_bytes(buf), true);
        }
        for i in 1..=t {
            syn[2 * i - 1] = f.mul(syn[i - 1], syn[i - 1]);
        }
        syn
    }

    /// Reference syndrome computation: per-bit modular exponent products.
    ///
    /// Retained as the differential-test oracle for the word-at-a-time
    /// [`Self::syndromes`] kernel.
    #[doc(hidden)]
    pub fn syndromes_reference(&self, data: &[u8], parity: &[u8]) -> Vec<u32> {
        let f = &self.field;
        let n = f.group_order() as i64;
        let r = self.parity_bits as i64;
        let two_t = 2 * self.t;
        let mut syn = vec![0u32; two_t];
        // Odd syndromes by direct evaluation over set bits; even ones by
        // squaring (S_2i = S_i^2 for binary codes).
        let add_position = |syn: &mut Vec<u32>, power: i64| {
            for i in (1..=two_t).step_by(2) {
                let e = (power * i as i64) % n;
                syn[i - 1] ^= f.alpha_pow(e);
            }
        };
        for (byte_idx, &byte) in data.iter().enumerate() {
            if byte == 0 {
                continue;
            }
            for bit in 0..8 {
                if (byte >> (7 - bit)) & 1 == 1 {
                    let j = (byte_idx * 8 + bit) as i64;
                    let power = r + self.data_bits as i64 - 1 - j;
                    add_position(&mut syn, power);
                }
            }
        }
        for i in 0..self.parity_bits {
            if (parity[i / 8] >> (7 - i % 8)) & 1 == 1 {
                let power = r - 1 - i as i64;
                add_position(&mut syn, power);
            }
        }
        for i in 1..=self.t {
            syn[2 * i - 1] = f.mul(syn[i - 1], syn[i - 1]);
        }
        syn
    }

    /// Berlekamp–Massey: returns the error-locator polynomial
    /// `sigma(x) = 1 + sigma_1 x + ... + sigma_L x^L` (index = degree),
    /// trimmed so `sigma.len() - 1` is its degree.
    #[doc(hidden)]
    pub fn berlekamp_massey(&self, syndromes: &[u32]) -> Vec<u32> {
        let f = &self.field;
        let two_t = syndromes.len();
        let mut sigma = vec![0u32; two_t + 2];
        let mut prev = vec![0u32; two_t + 2];
        // Scratch for the length-change branch; allocated once, reused.
        let mut scratch = vec![0u32; two_t + 2];
        sigma[0] = 1;
        prev[0] = 1;
        let mut l = 0usize; // current LFSR length
        let mut shift = 1usize; // x^shift multiplier for prev
        let mut b = 1u32; // last nonzero discrepancy
        for n_iter in 0..two_t {
            // Discrepancy d = S_n + sum_{i=1..L} sigma_i * S_{n-i}.
            let mut d = syndromes[n_iter];
            for i in 1..=l {
                d ^= f.mul(sigma[i], syndromes[n_iter - i]);
            }
            if d == 0 {
                shift += 1;
            } else if 2 * l <= n_iter {
                scratch.copy_from_slice(&sigma);
                let coef = f.div(d, b);
                for (i, &p) in prev.iter().enumerate() {
                    if p != 0 && i + shift < sigma.len() {
                        sigma[i + shift] ^= f.mul(coef, p);
                    }
                }
                l = n_iter + 1 - l;
                // Old sigma (in scratch) becomes the new prev; the stale
                // prev buffer becomes next iteration's scratch.
                std::mem::swap(&mut prev, &mut scratch);
                b = d;
                shift = 1;
            } else {
                // sigma and prev are distinct buffers, so prev can be read
                // directly while sigma is updated.
                let coef = f.div(d, b);
                for (i, &p) in prev.iter().enumerate() {
                    if p != 0 && i + shift < sigma.len() {
                        sigma[i + shift] ^= f.mul(coef, p);
                    }
                }
                shift += 1;
            }
        }
        // Trim to the actual degree.
        let mut deg = 0;
        for (i, &c) in sigma.iter().enumerate() {
            if c != 0 {
                deg = i;
            }
        }
        sigma.truncate(deg + 1);
        sigma
    }

    /// Chien search: returns the codeword powers `p` (0-based exponent of
    /// `x` in the codeword polynomial) where errors occurred. Only
    /// positions inside the shortened length are returned; a root outside
    /// it is simply absent, which the caller detects as a count mismatch.
    ///
    /// Batched log-domain kernel: each nonzero term of sigma is tracked as
    /// an exponent (one add + compare + antilog lookup per position
    /// instead of a field multiply), zero terms are dropped up front,
    /// positions are evaluated four at a stride via precomputed
    /// `alpha^(-j·4)` jump exponents, and the scan exits early once
    /// deg(sigma) roots are found — a degree-L polynomial has at most L
    /// roots, so no later position can be a root.
    #[doc(hidden)]
    pub fn chien_search(&self, sigma: &[u32]) -> Vec<usize> {
        let f = &self.field;
        let n = f.group_order();
        let used_bits = self.data_bits + self.parity_bits;
        let deg = sigma.len() - 1;
        let mut roots = Vec::with_capacity(deg);
        if deg == 0 {
            // sigma is a nonzero constant: no roots anywhere.
            return roots;
        }
        const STRIDE: usize = 4;
        // Per nonzero term j >= 1: current exponent acc = log(sigma_j) +
        // p·step (mod n), per-position step (n − j) mod n, per-block jump
        // step·STRIDE mod n, and within-block adjustments step·o mod n.
        // All stay in [0, n), so acc + adj indexes the doubled exp table
        // directly.
        struct Term {
            acc: u32,
            step: u32,
            jump: u32,
            adj: [u32; STRIDE],
        }
        let mut terms: Vec<Term> = Vec::with_capacity(deg);
        for (j, &c) in sigma.iter().enumerate().skip(1) {
            if c == 0 {
                continue;
            }
            let step = (n - (j as u32 % n)) % n;
            let mut adj = [0u32; STRIDE];
            for (o, a) in adj.iter_mut().enumerate() {
                *a = ((step as u64 * o as u64) % n as u64) as u32;
            }
            terms.push(Term {
                acc: f.log(c),
                step,
                jump: ((step as u64 * STRIDE as u64) % n as u64) as u32,
                adj,
            });
        }
        let c0 = sigma[0];
        let mut p = 0usize;
        'scan: while p < used_bits {
            if p + STRIDE <= used_bits {
                let mut sums = [c0; STRIDE];
                for term in &mut terms {
                    for (s, &a) in sums.iter_mut().zip(&term.adj) {
                        *s ^= f.exp_raw((term.acc + a) as usize);
                    }
                    let mut acc = term.acc + term.jump;
                    if acc >= n {
                        acc -= n;
                    }
                    term.acc = acc;
                }
                for (o, &s) in sums.iter().enumerate() {
                    if s == 0 {
                        roots.push(p + o);
                        if roots.len() == deg {
                            break 'scan;
                        }
                    }
                }
                p += STRIDE;
            } else {
                let mut sum = c0;
                for term in &mut terms {
                    sum ^= f.exp_raw(term.acc as usize);
                    let mut acc = term.acc + term.step;
                    if acc >= n {
                        acc -= n;
                    }
                    term.acc = acc;
                }
                if sum == 0 {
                    roots.push(p);
                    if roots.len() == deg {
                        break 'scan;
                    }
                }
                p += 1;
            }
        }
        roots
    }

    /// Reference Chien search: one field multiply per term per position.
    ///
    /// Retained as the differential-test oracle for the batched
    /// [`Self::chien_search`] kernel.
    #[doc(hidden)]
    pub fn chien_search_reference(&self, sigma: &[u32]) -> Vec<usize> {
        let f = &self.field;
        let used_bits = self.data_bits + self.parity_bits;
        let mut roots = Vec::new();
        // terms[j] = sigma_j * alpha^(-j*p), updated incrementally over p.
        let mut terms: Vec<u32> = sigma.to_vec();
        let steps: Vec<u32> = (0..sigma.len()).map(|j| f.alpha_pow(-(j as i64))).collect();
        for p in 0..used_bits {
            if p > 0 {
                for j in 1..terms.len() {
                    terms[j] = f.mul(terms[j], steps[j]);
                }
            }
            let sum = terms.iter().fold(0u32, |acc, &t| acc ^ t);
            if sum == 0 {
                roots.push(p);
            }
        }
        roots
    }
}

/// Builds the 256-entry byte-at-a-time remainder-update table for the
/// encoding LFSR: `table[b]` is the remainder contribution of byte value
/// `b` entering the top of a left-aligned `words`-word register, computed
/// by eight exact bit-serial steps. Linearity of the LFSR over GF(2) makes
/// one table XOR per input byte equivalent to eight serial steps.
fn build_enc_table(generator: &BitPoly, r: usize, words: usize) -> Vec<u64> {
    // Left-aligned feedback: coefficient x^e of (g − x^r) lands at
    // register bit (words·64 − r) + e.
    let shift = words * 64 - r;
    let mut fb = vec![0u64; words];
    for e in generator.iter_exponents() {
        if e < r {
            let b = shift + e;
            fb[b / 64] |= 1 << (b % 64);
        }
    }
    let mut table = vec![0u64; 256 * words];
    let mut reg = vec![0u64; words];
    for b in 0..256u64 {
        reg.fill(0);
        reg[words - 1] = b << 56;
        for _ in 0..8 {
            let msb = reg[words - 1] >> 63 == 1;
            for k in (1..words).rev() {
                reg[k] = (reg[k] << 1) | (reg[k - 1] >> 63);
            }
            reg[0] <<= 1;
            if msb {
                for (rk, fk) in reg.iter_mut().zip(&fb) {
                    *rk ^= fk;
                }
            }
        }
        table[b as usize * words..][..words].copy_from_slice(&reg);
    }
    table
}

/// Monomorphized byte-at-a-time LFSR over a `W`-word left-aligned
/// register: per input byte, one table row XOR replaces eight bit-serial
/// steps. Returns the final remainder register.
fn table_encode_fixed<const W: usize>(table: &[u64], data: &[u8]) -> [u64; W] {
    let mut reg = [0u64; W];
    for &byte in data {
        let idx = (byte ^ (reg[W - 1] >> 56) as u8) as usize * W;
        let row: &[u64] = &table[idx..idx + W];
        let mut next = [0u64; W];
        for k in (1..W).rev() {
            next[k] = (reg[k] << 8) | (reg[k - 1] >> 56);
        }
        next[0] = reg[0] << 8;
        for k in 0..W {
            next[k] ^= row[k];
        }
        reg = next;
    }
    reg
}

/// Computes the generator polynomial of a `t`-error-correcting binary BCH
/// code over `field`: the least common multiple of the minimal polynomials
/// of `alpha, alpha^3, ..., alpha^(2t-1)`.
fn generator_poly(field: &GfField, t: usize) -> BitPoly {
    let n = field.group_order() as usize;
    let mut seen_cosets: Vec<usize> = Vec::new();
    let mut gen = BitPoly::one();
    for i in (1..2 * t).step_by(2) {
        let i = i % n;
        // Cyclotomic coset of i mod n.
        let mut coset = Vec::new();
        let mut j = i;
        loop {
            coset.push(j);
            j = (j * 2) % n;
            if j == i {
                break;
            }
        }
        let rep = *coset.iter().min().expect("coset is nonempty");
        if seen_cosets.contains(&rep) {
            continue;
        }
        seen_cosets.push(rep);
        gen = gen.mul(&minimal_poly(field, &coset));
    }
    gen
}

/// Expands `prod_{j in coset} (x - alpha^j)`, which has GF(2) coefficients.
fn minimal_poly(field: &GfField, coset: &[usize]) -> BitPoly {
    // Coefficients in GF(2^m), index = degree.
    let mut coeffs: Vec<u32> = vec![1];
    for &j in coset {
        let root = field.alpha_pow(j as i64);
        let mut next = vec![0u32; coeffs.len() + 1];
        for (d, &c) in coeffs.iter().enumerate() {
            next[d + 1] ^= c; // x * c
            next[d] ^= field.mul(c, root); // root * c (== -root in char 2)
        }
        coeffs = next;
    }
    BitPoly::from_exponents(coeffs.iter().enumerate().filter_map(|(d, &c)| {
        debug_assert!(c <= 1, "minimal polynomial must have GF(2) coefficients");
        if c == 1 {
            Some(d)
        } else {
            None
        }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_generator_bch_15_1() {
        // The classic (15, 11) single-error-correcting BCH code over
        // GF(2^4) has generator x^4 + x + 1.
        let f = GfField::new(4);
        let g = generator_poly(&f, 1);
        assert_eq!(g, BitPoly::from_exponents([4, 1, 0]));
    }

    #[test]
    fn known_generator_bch_15_2() {
        // The (15, 7) double-error-correcting BCH code has generator
        // x^8 + x^7 + x^6 + x^4 + 1.
        let f = GfField::new(4);
        let g = generator_poly(&f, 2);
        assert_eq!(g, BitPoly::from_exponents([8, 7, 6, 4, 0]));
    }

    #[test]
    fn construction_errors() {
        assert_eq!(
            BchCode::new(8, 0, 16).unwrap_err(),
            CodeConstructionError::ZeroStrength
        );
        assert_eq!(
            BchCode::new(8, 1, 0).unwrap_err(),
            CodeConstructionError::EmptyData
        );
        // 255-bit block cannot hold 32 bytes of data + parity.
        assert!(matches!(
            BchCode::new(8, 2, 32).unwrap_err(),
            CodeConstructionError::BlockTooSmall { .. }
        ));
    }

    #[test]
    fn parity_size_is_m_times_t() {
        let code = BchCode::new(10, 3, 64).unwrap();
        assert_eq!(code.parity_bits(), 30);
        assert_eq!(code.parity_bytes(), 4);
        let page = BchCode::new(15, 12, 2048).unwrap();
        assert_eq!(page.parity_bits(), 180);
        // Paper: "a maximum of 23 bytes are needed for check bits".
        assert_eq!(page.parity_bytes(), 23);
    }

    #[test]
    fn clean_roundtrip_no_errors() {
        let code = BchCode::new(9, 3, 40).unwrap();
        let data: Vec<u8> = (0..40u8).collect();
        let parity = code.encode(&data);
        let mut received = data.clone();
        let report = code.decode(&mut received, &parity).unwrap();
        assert_eq!(report.corrected, 0);
        assert_eq!(received, data);
    }

    #[test]
    fn corrects_exactly_t_errors() {
        let code = BchCode::new(9, 4, 48).unwrap();
        let data: Vec<u8> = (0..48u8).map(|b| b.wrapping_mul(37)).collect();
        let parity = code.encode(&data);
        let mut received = data.clone();
        // Inject exactly t=4 errors at scattered positions.
        for &(byte, bit) in &[(0usize, 7u8), (13, 0), (25, 3), (47, 6)] {
            received[byte] ^= 1 << bit;
        }
        let report = code.decode(&mut received, &parity).unwrap();
        assert_eq!(report.corrected, 4);
        assert_eq!(received, data);
        assert_eq!(report.data_bit_positions.len(), 4);
    }

    #[test]
    fn corrects_error_in_parity_area() {
        let code = BchCode::new(9, 2, 32).unwrap();
        let data = vec![0xA5u8; 32];
        let mut parity = code.encode(&data);
        parity[0] ^= 0x80;
        let mut received = data.clone();
        let report = code.decode(&mut received, &parity).unwrap();
        assert_eq!(report.corrected, 1);
        assert!(report.data_bit_positions.is_empty());
        assert_eq!(received, data);
    }

    #[test]
    fn detects_more_than_t_errors_with_crc_style_check() {
        // With t=1, three errors must either be flagged TooManyErrors or
        // miscorrected to a *different* word — never silently "fixed" back
        // to the original.
        let code = BchCode::new(9, 1, 32).unwrap();
        let data = vec![0x5Au8; 32];
        let parity = code.encode(&data);
        let mut received = data.clone();
        received[0] ^= 0x01;
        received[1] ^= 0x02;
        received[2] ^= 0x04;
        match code.decode(&mut received, &parity) {
            Err(DecodeError::TooManyErrors) => {}
            Ok(_) => assert_ne!(received, data, "3 errors cannot be truly corrected at t=1"),
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    #[test]
    fn length_mismatch_reported() {
        let code = BchCode::new(9, 2, 32).unwrap();
        let mut short = vec![0u8; 31];
        let parity = vec![0u8; code.parity_bytes()];
        assert!(matches!(
            code.decode(&mut short, &parity),
            Err(DecodeError::LengthMismatch { which: "data", .. })
        ));
        let mut ok = vec![0u8; 32];
        assert!(matches!(
            code.decode(&mut ok, &[0u8; 1]),
            Err(DecodeError::LengthMismatch {
                which: "parity",
                ..
            })
        ));
    }

    #[test]
    fn flash_page_code_roundtrip() {
        // Full 2KB page over GF(2^15) with t=4: encode, corrupt, decode.
        let code = BchCode::for_flash_page(4);
        let mut data: Vec<u8> = (0..2048usize).map(|i| (i * 31 % 251) as u8).collect();
        let parity = code.encode(&data);
        let original = data.clone();
        for &pos in &[5usize, 1000, 9999, 16000] {
            data[pos / 8] ^= 1 << (7 - pos % 8);
        }
        let report = code.decode(&mut data, &parity).unwrap();
        assert_eq!(report.corrected, 4);
        assert_eq!(data, original);
    }

    #[test]
    fn all_single_bit_errors_corrected_small_code() {
        let code = BchCode::new(8, 1, 8).unwrap();
        let data: Vec<u8> = vec![0xC3, 0x00, 0xFF, 0x12, 0x34, 0x56, 0x78, 0x9A];
        let parity = code.encode(&data);
        for bit in 0..64 {
            let mut received = data.clone();
            received[bit / 8] ^= 1 << (7 - bit % 8);
            let report = code.decode(&mut received, &parity).unwrap();
            assert_eq!(report.corrected, 1, "bit {bit}");
            assert_eq!(received, data, "bit {bit}");
            assert_eq!(report.data_bit_positions, vec![bit]);
        }
    }

    #[test]
    fn disk_sector_code_roundtrip() {
        let code = BchCode::for_disk_sector(3);
        assert_eq!(code.data_bytes(), 512);
        assert_eq!(code.parity_bits(), 39);
        let data: Vec<u8> = (0..512usize).map(|i| (i % 256) as u8).collect();
        let parity = code.encode(&data);
        let mut received = data.clone();
        for &bit in &[0usize, 2048, 4095] {
            received[bit / 8] ^= 1 << (7 - bit % 8);
        }
        let report = code.decode(&mut received, &parity).unwrap();
        assert_eq!(report.corrected, 3);
        assert_eq!(received, data);
    }

    #[test]
    fn generator_accessor_nonzero() {
        let code = BchCode::new(8, 2, 16).unwrap();
        assert!(code.generator().degree().is_some());
        assert_eq!(code.strength(), 2);
        assert_eq!(code.data_bytes(), 16);
    }
}
