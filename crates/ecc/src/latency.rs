//! Timing model of the paper's hardware BCH/CRC accelerator.
//!
//! The paper (§4.1.1, Fig. 6(a), Table 3) measures its 100MHz in-order
//! accelerator with 16 parallel Chien search engines at decode latencies
//! ranging from tens of microseconds at t=2 up to roughly 180µs at t=11,
//! and quotes an overall BCH latency range of 58µs–400µs in the simulator
//! configuration (Table 3). Encoding and the Berlekamp step are reported
//! as insignificant; CRC32 costs tens of nanoseconds.
//!
//! The simulator uses this model for timing accounting (the paper's
//! numbers), while correctness uses the real [`crate::bch`] implementation.

/// Decode latency breakdown for a given code strength, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecodeLatency {
    /// Syndrome computation time (scales with `t`).
    pub syndrome_us: f64,
    /// Chien search time (scales with `t` and block length, divided
    /// across the parallel search engines).
    pub chien_us: f64,
}

impl DecodeLatency {
    /// Total decode latency in microseconds.
    pub fn total_us(&self) -> f64 {
        self.syndrome_us + self.chien_us
    }
}

/// Latency model parameters for the programmable controller accelerator.
///
/// The defaults reproduce Figure 6(a): a roughly linear climb from ~36µs
/// at t=2 to ~180µs at t=11, split between syndrome computation and Chien
/// search, with the Table 3 range (58µs–400µs) covered across t=1..=26.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EccLatencyModel {
    /// Fixed decode overhead in µs (descriptor handling, setup).
    pub decode_base_us: f64,
    /// Per-correctable-bit syndrome cost in µs.
    pub syndrome_per_t_us: f64,
    /// Per-correctable-bit Chien search cost in µs (after the 16-way
    /// parallelization of the paper's accelerator).
    pub chien_per_t_us: f64,
    /// Encode latency per correctable bit in µs (LFSR pass; small).
    pub encode_per_t_us: f64,
    /// CRC32 check latency in µs ("tens of nanoseconds" in the paper).
    pub crc_us: f64,
}

impl Default for EccLatencyModel {
    fn default() -> Self {
        // Calibration: total(t) = base + (syndrome + chien) * t.
        // t=2 -> ~36µs, t=11 -> ~180µs matches the Fig. 6(a) series;
        // t=1 -> 58µs is below Table 3's quoted floor because Table 3
        // also folds in controller overhead; we fold that into base.
        EccLatencyModel {
            decode_base_us: 26.0,
            syndrome_per_t_us: 6.0,
            chien_per_t_us: 8.0,
            encode_per_t_us: 1.5,
            crc_us: 0.05,
        }
    }
}

impl EccLatencyModel {
    /// Decode latency breakdown at strength `t`. Strength 0 (no ECC)
    /// costs only the CRC check.
    pub fn decode(&self, t: usize) -> DecodeLatency {
        if t == 0 {
            return DecodeLatency {
                syndrome_us: self.crc_us,
                chien_us: 0.0,
            };
        }
        DecodeLatency {
            syndrome_us: self.decode_base_us / 2.0 + self.syndrome_per_t_us * t as f64,
            chien_us: self.decode_base_us / 2.0 + self.chien_per_t_us * t as f64,
        }
    }

    /// Total decode latency in µs at strength `t`.
    pub fn decode_us(&self, t: usize) -> f64 {
        self.decode(t).total_us()
    }

    /// Encode latency in µs at strength `t`.
    pub fn encode_us(&self, t: usize) -> f64 {
        if t == 0 {
            self.crc_us
        } else {
            self.crc_us + self.encode_per_t_us * t as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_monotonic_in_strength() {
        let m = EccLatencyModel::default();
        let mut prev = 0.0;
        for t in 0..=50 {
            let d = m.decode_us(t);
            assert!(d > prev, "t={t}: {d} <= {prev}");
            prev = d;
        }
    }

    #[test]
    fn calibration_matches_figure_6a_shape() {
        let m = EccLatencyModel::default();
        // Fig. 6(a): t=2 in the ~30-60µs range, t=11 in the ~150-200µs range.
        let t2 = m.decode_us(2);
        let t11 = m.decode_us(11);
        assert!((30.0..=60.0).contains(&t2), "t=2 -> {t2}µs");
        assert!((150.0..=200.0).contains(&t11), "t=11 -> {t11}µs");
        // Table 3 quotes 58µs-400µs across the simulated strengths.
        assert!(m.decode_us(3) >= 58.0);
        assert!(m.decode_us(26) <= 420.0);
    }

    #[test]
    fn zero_strength_costs_only_crc() {
        let m = EccLatencyModel::default();
        assert!(m.decode_us(0) < 0.1);
        assert!(m.encode_us(0) < 0.1);
    }

    #[test]
    fn encode_is_cheap_relative_to_decode() {
        let m = EccLatencyModel::default();
        for t in 1..=12 {
            assert!(m.encode_us(t) < m.decode_us(t) / 4.0, "t={t}");
        }
    }

    #[test]
    fn breakdown_sums_to_total() {
        let m = EccLatencyModel::default();
        let d = m.decode(7);
        assert!((d.total_us() - (d.syndrome_us + d.chien_us)).abs() < 1e-12);
    }
}
