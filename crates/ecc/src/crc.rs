//! CRC32 (IEEE 802.3 polynomial) error *detection*.
//!
//! BCH codes can miscorrect when more errors occur than the design
//! strength; the paper (§4.1.2) pairs the BCH corrector with a 32-bit CRC
//! checker to catch those false positives. This is a table-driven,
//! reflected CRC32 identical to the one used by Ethernet, zlib and PNG.

/// The reflected IEEE 802.3 polynomial.
const CRC32_POLY_REFLECTED: u32 = 0xEDB8_8320;

/// Builds the 256-entry lookup table at first use.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    (c >> 1) ^ CRC32_POLY_REFLECTED
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        t
    })
}

/// An incremental CRC32 hasher.
///
/// # Examples
///
/// ```
/// use flash_ecc::crc::Crc32;
///
/// let mut h = Crc32::new();
/// h.update(b"123456789");
/// // The canonical CRC32 check value.
/// assert_eq!(h.finalize(), 0xCBF4_3926);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds bytes into the hasher.
    pub fn update(&mut self, bytes: &[u8]) {
        let t = table();
        let mut c = self.state;
        for &b in bytes {
            c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// Returns the CRC of everything fed so far. The hasher may continue
    /// to be updated afterwards.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC32 of a byte slice.
///
/// # Examples
///
/// ```
/// assert_eq!(flash_ecc::crc::crc32(b""), 0);
/// ```
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"abc"), 0x3524_41C2);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data = b"hello, flash disk cache world";
        let mut h = Crc32::new();
        h.update(&data[..5]);
        h.update(&data[5..17]);
        h.update(&data[17..]);
        assert_eq!(h.finalize(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = vec![0x77u8; 256];
        let clean = crc32(&data);
        for bit in 0..data.len() * 8 {
            let mut corrupted = data.clone();
            corrupted[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32(&corrupted), clean, "bit {bit} undetected");
        }
    }

    #[test]
    fn detects_burst_errors_up_to_32_bits() {
        let data = vec![0xABu8; 64];
        let clean = crc32(&data);
        for start in 0..32 {
            let mut corrupted = data.clone();
            for b in start..start + 32 {
                corrupted[b / 8] ^= 1 << (b % 8);
            }
            assert_ne!(crc32(&corrupted), clean, "burst at {start} undetected");
        }
    }

    #[test]
    fn default_is_new() {
        assert_eq!(Crc32::default(), Crc32::new());
    }
}
