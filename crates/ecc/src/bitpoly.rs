//! Dense polynomials over GF(2), bit-packed into `u64` words.
//!
//! Used to construct and store BCH generator polynomials, whose degree is
//! `m·t` at most (≤ 960 bits for the largest codes this crate builds), and
//! to run the systematic-encoding LFSR.

use std::fmt;

/// A polynomial over GF(2). Bit `i` of the backing storage is the
/// coefficient of `x^i`.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct BitPoly {
    words: Vec<u64>,
}

impl BitPoly {
    /// The zero polynomial.
    pub fn zero() -> Self {
        BitPoly { words: Vec::new() }
    }

    /// The constant polynomial `1`.
    pub fn one() -> Self {
        BitPoly { words: vec![1] }
    }

    /// Builds a polynomial from an iterator of exponents with coefficient 1.
    ///
    /// Duplicate exponents cancel (coefficients are in GF(2)).
    pub fn from_exponents<I: IntoIterator<Item = usize>>(exps: I) -> Self {
        let mut p = BitPoly::zero();
        for e in exps {
            p.flip(e);
        }
        p
    }

    /// Coefficient of `x^i`.
    #[inline]
    pub fn coeff(&self, i: usize) -> bool {
        let w = i / 64;
        w < self.words.len() && (self.words[w] >> (i % 64)) & 1 == 1
    }

    /// Toggles the coefficient of `x^i`.
    pub fn flip(&mut self, i: usize) {
        let w = i / 64;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] ^= 1 << (i % 64);
    }

    /// Degree of the polynomial, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        for (w, &word) in self.words.iter().enumerate().rev() {
            if word != 0 {
                return Some(w * 64 + 63 - word.leading_zeros() as usize);
            }
        }
        None
    }

    /// `true` if this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of nonzero coefficients.
    pub fn weight(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Carry-less polynomial product over GF(2).
    pub fn mul(&self, other: &BitPoly) -> BitPoly {
        let (da, db) = match (self.degree(), other.degree()) {
            (Some(a), Some(b)) => (a, b),
            _ => return BitPoly::zero(),
        };
        let mut out = BitPoly {
            words: vec![0; (da + db) / 64 + 1],
        };
        for i in 0..=da {
            if self.coeff(i) {
                // out ^= other << i
                let word_shift = i / 64;
                let bit_shift = i % 64;
                for (j, &w) in other.words.iter().enumerate() {
                    if w == 0 {
                        continue;
                    }
                    out.words[j + word_shift] ^= w << bit_shift;
                    if bit_shift != 0 && j + word_shift + 1 < out.words.len() {
                        out.words[j + word_shift + 1] ^= w >> (64 - bit_shift);
                    }
                }
            }
        }
        out
    }

    /// Iterator over the exponents whose coefficient is 1, ascending.
    ///
    /// Walks set bits with `trailing_zeros` rather than probing all 64
    /// positions per word, so cost scales with the polynomial's weight.
    pub fn iter_exponents(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            std::iter::from_fn({
                let mut bits = word;
                move || {
                    if bits == 0 {
                        return None;
                    }
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(w * 64 + b)
                }
            })
        })
    }

    /// The backing words, bit `i` of word `i / 64` = coefficient of `x^i`.
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

impl fmt::Debug for BitPoly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "BitPoly(0)");
        }
        let terms: Vec<String> = self
            .iter_exponents()
            .map(|e| match e {
                0 => "1".to_string(),
                1 => "x".to_string(),
                _ => format!("x^{e}"),
            })
            .collect();
        write!(f, "BitPoly({})", terms.join(" + "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one() {
        assert!(BitPoly::zero().is_zero());
        assert_eq!(BitPoly::zero().degree(), None);
        assert_eq!(BitPoly::one().degree(), Some(0));
        assert_eq!(BitPoly::one().weight(), 1);
    }

    #[test]
    fn duplicate_exponents_cancel() {
        let p = BitPoly::from_exponents([3, 3]);
        assert!(p.is_zero());
    }

    #[test]
    fn degree_across_word_boundary() {
        let p = BitPoly::from_exponents([0, 70]);
        assert_eq!(p.degree(), Some(70));
        assert!(p.coeff(70));
        assert!(p.coeff(0));
        assert!(!p.coeff(64));
    }

    #[test]
    fn multiply_small() {
        // (x + 1)(x + 1) = x^2 + 1 over GF(2).
        let p = BitPoly::from_exponents([0, 1]);
        let sq = p.mul(&p);
        assert_eq!(sq, BitPoly::from_exponents([0, 2]));
    }

    #[test]
    fn multiply_by_zero_and_one() {
        let p = BitPoly::from_exponents([0, 5, 17]);
        assert!(p.mul(&BitPoly::zero()).is_zero());
        assert_eq!(p.mul(&BitPoly::one()), p);
    }

    #[test]
    fn multiply_spanning_words() {
        // x^63 * x^1 = x^64 exercises the cross-word carry path.
        let a = BitPoly::from_exponents([63]);
        let b = BitPoly::from_exponents([1]);
        assert_eq!(a.mul(&b), BitPoly::from_exponents([64]));
        // (x^63 + 1)(x^63 + 1) = x^126 + 1
        let c = BitPoly::from_exponents([63, 0]);
        assert_eq!(c.mul(&c), BitPoly::from_exponents([126, 0]));
    }

    #[test]
    fn iter_exponents_ascending() {
        let p = BitPoly::from_exponents([5, 130, 0]);
        let exps: Vec<usize> = p.iter_exponents().collect();
        assert_eq!(exps, vec![0, 5, 130]);
    }

    #[test]
    fn debug_format_nonempty() {
        assert_eq!(format!("{:?}", BitPoly::zero()), "BitPoly(0)");
        let p = BitPoly::from_exponents([0, 1, 4]);
        assert_eq!(format!("{p:?}"), "BitPoly(1 + x + x^4)");
    }
}
