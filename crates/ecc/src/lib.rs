//! Error correction and detection for NAND flash pages.
//!
//! This crate implements the coding layer of the programmable flash memory
//! controller from *Improving NAND Flash Based Disk Caches* (Kgil, Roberts
//! & Mudge, ISCA 2008, §4.1):
//!
//! * [`gf`] — table-driven GF(2^m) finite-field arithmetic (2 ≤ m ≤ 16);
//! * [`bch`] — `t`-error-correcting shortened binary BCH codes
//!   (systematic LFSR encoder; syndrome → Berlekamp–Massey → Chien search
//!   decoder), the paper's variable-strength corrector;
//! * [`crc`] — CRC32 (IEEE) detection to catch BCH miscorrections;
//! * [`page`] — the combined 2KB-page codec with the paper's 64-byte
//!   spare-area layout (4B CRC32 + up to 23B BCH parity, t ≤ 12);
//! * [`latency`] — the timing model of the paper's 100MHz hardware
//!   accelerator (Fig. 6(a), Table 3), used by the simulator for
//!   latency accounting.
//!
//! # Examples
//!
//! Protect a flash page at strength 4 and recover from bit errors:
//!
//! ```
//! use flash_ecc::page::{PageCodec, PageDecodeOutcome, PAGE_DATA_BYTES};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let codec = PageCodec::new(4)?;
//! let mut page = vec![0u8; PAGE_DATA_BYTES];
//! page[0] = 0xDE;
//! let spare = codec.encode(&page);
//!
//! page[512] ^= 0x40; // wear-induced bit error
//! assert_eq!(
//!     codec.decode(&mut page, &spare)?,
//!     PageDecodeOutcome::Corrected { corrected: 1 }
//! );
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bch;
pub mod bitpoly;
pub mod crc;
pub mod gf;
pub mod latency;
pub mod page;

pub use bch::{BchCode, DecodeError, DecodeReport};
pub use crc::{crc32, Crc32};
pub use latency::EccLatencyModel;
pub use page::{PageCodec, PageCodecBank, PageDecodeError, PageDecodeOutcome};
