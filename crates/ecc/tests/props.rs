//! Property-based tests of the coding layer: field laws, polynomial
//! algebra, BCH correction guarantees, and CRC detection.

use proptest::prelude::*;

use flash_ecc::bch::BchCode;
use flash_ecc::bitpoly::BitPoly;
use flash_ecc::crc::crc32;
use flash_ecc::gf::GfField;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// GF(2^m) multiplication is commutative, associative, and
    /// distributes over addition.
    #[test]
    fn gf_field_laws(m in 3u32..=12, a in 0u32..4096, b in 0u32..4096, c in 0u32..4096) {
        let f = GfField::new(m);
        let mask = (1u32 << m) - 1;
        let (a, b, c) = (a & mask, b & mask, c & mask);
        prop_assert_eq!(f.mul(a, b), f.mul(b, a));
        prop_assert_eq!(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
        prop_assert_eq!(f.mul(a, b ^ c), f.mul(a, b) ^ f.mul(a, c));
        // Inverses invert.
        if a != 0 {
            prop_assert_eq!(f.mul(a, f.inv(a)), 1);
            prop_assert_eq!(f.div(f.mul(a, b), a), b);
        }
    }

    /// Polynomial multiplication over GF(2) is commutative and degree-
    /// additive.
    #[test]
    fn bitpoly_mul_laws(
        ea in prop::collection::btree_set(0usize..96, 0..10),
        eb in prop::collection::btree_set(0usize..96, 0..10),
    ) {
        let a = BitPoly::from_exponents(ea.iter().copied());
        let b = BitPoly::from_exponents(eb.iter().copied());
        let ab = a.mul(&b);
        prop_assert_eq!(&ab, &b.mul(&a));
        match (a.degree(), b.degree()) {
            (Some(da), Some(db)) => prop_assert_eq!(ab.degree(), Some(da + db)),
            _ => prop_assert!(ab.is_zero()),
        }
    }

    /// Any error pattern within the code strength is corrected exactly.
    #[test]
    fn bch_corrects_arbitrary_patterns(
        t in 1usize..=5,
        data in prop::collection::vec(any::<u8>(), 24..=48),
        bit_seed in any::<u64>(),
    ) {
        let code = BchCode::new(10, t, data.len()).unwrap();
        let parity = code.encode(&data);
        // Derive up to t distinct error positions from the seed.
        let nbits = data.len() * 8;
        let mut positions = std::collections::BTreeSet::new();
        let mut x = bit_seed | 1;
        while positions.len() < t {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            positions.insert((x >> 16) as usize % nbits);
        }
        let mut corrupted = data.clone();
        for &bit in &positions {
            corrupted[bit / 8] ^= 1 << (7 - bit % 8);
        }
        let report = code.decode(&mut corrupted, &parity);
        prop_assert!(report.is_ok(), "{:?}", report);
        prop_assert_eq!(report.unwrap().corrected, positions.len());
        prop_assert_eq!(corrupted, data);
    }

    /// Parity-area errors are also corrected (the whole codeword is
    /// protected, not just the payload).
    #[test]
    fn bch_corrects_parity_errors(
        data in prop::collection::vec(any::<u8>(), 16..=32),
        which in 0usize..8,
    ) {
        let code = BchCode::new(9, 2, data.len()).unwrap();
        let mut parity = code.encode(&data);
        let bit = which % (code.parity_bits());
        parity[bit / 8] ^= 1 << (7 - bit % 8);
        let mut received = data.clone();
        let report = code.decode(&mut received, &parity).unwrap();
        prop_assert_eq!(report.corrected, 1);
        prop_assert_eq!(received, data);
    }

    /// A clean codeword always decodes with zero corrections, for every
    /// supported (m, t) pair that fits.
    #[test]
    fn bch_clean_roundtrip_all_parameters(
        m in 8u32..=12,
        t in 1usize..=8,
        data in prop::collection::vec(any::<u8>(), 8..=24),
    ) {
        prop_assume!(data.len() * 8 + m as usize * t < (1 << m) - 1);
        let code = BchCode::new(m, t, data.len()).unwrap();
        let parity = code.encode(&data);
        let mut received = data.clone();
        let report = code.decode(&mut received, &parity).unwrap();
        prop_assert_eq!(report.corrected, 0);
        prop_assert_eq!(received, data);
    }

    /// CRC32 detects every single- and double-bit flip.
    #[test]
    fn crc_detects_small_flips(
        data in prop::collection::vec(any::<u8>(), 1..128),
        b1 in any::<u16>(),
        b2 in any::<u16>(),
    ) {
        let clean = crc32(&data);
        let nbits = data.len() * 8;
        let p1 = b1 as usize % nbits;
        let p2 = b2 as usize % nbits;
        let mut corrupted = data.clone();
        corrupted[p1 / 8] ^= 1 << (p1 % 8);
        if p2 != p1 {
            corrupted[p2 / 8] ^= 1 << (p2 % 8);
        }
        prop_assert_ne!(crc32(&corrupted), clean);
    }

    /// CRC32 is linear in the XOR sense over equal-length messages
    /// relative to the zero message — a structural sanity property.
    #[test]
    fn crc_differs_for_different_data(
        a in prop::collection::vec(any::<u8>(), 1..64),
        flip_at in any::<u16>(),
    ) {
        let mut b = a.clone();
        let i = flip_at as usize % b.len();
        b[i] = b[i].wrapping_add(1);
        prop_assert_ne!(crc32(&a), crc32(&b));
    }
}
