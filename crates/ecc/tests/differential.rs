//! Differential tests for the optimized ECC kernels.
//!
//! The table-driven encoder, word-at-a-time syndrome kernel, and batched
//! Chien search must be bit-identical to the straightforward reference
//! implementations they replaced (`encode_bitserial`,
//! `syndromes_reference`, `chien_search_reference`), across the field
//! sizes the crate ships codes for (m ∈ {8, 13, 15}) and the paper's
//! strength range (t ∈ {1, 4, 12}).

use proptest::prelude::*;

use flash_ecc::bch::BchCode;

/// Largest payload (bytes) that fits the block length for (m, t), capped
/// so reference-kernel scans stay fast inside property tests.
fn payload_cap(m: u32, t: usize) -> usize {
    let block_bits = (1usize << m) - 1;
    let parity_bits = m as usize * t;
    ((block_bits - parity_bits) / 8).saturating_sub(1).min(192)
}

/// Derives `count` distinct bit positions below `nbits` from `seed`.
fn error_positions(seed: u64, count: usize, nbits: usize) -> Vec<usize> {
    let mut positions = std::collections::BTreeSet::new();
    let mut x = seed | 1;
    while positions.len() < count.min(nbits) {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        positions.insert((x >> 16) as usize % nbits);
    }
    positions.into_iter().collect()
}

/// Flips stream bit `pos` of the (data ++ parity) MSB-first bit stream.
fn flip_stream_bit(data: &mut [u8], parity: &mut [u8], pos: usize) {
    let data_bits = data.len() * 8;
    if pos < data_bits {
        data[pos / 8] ^= 1 << (7 - pos % 8);
    } else {
        let i = pos - data_bits;
        parity[i / 8] ^= 1 << (7 - i % 8);
    }
}

fn param_strategy() -> impl Strategy<Value = (u32, usize)> {
    (
        prop_oneof![Just(8u32), Just(13), Just(15)],
        prop_oneof![Just(1usize), Just(4), Just(12)],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Table-driven encode is bit-identical to the bit-serial oracle.
    #[test]
    fn encode_matches_bitserial_oracle(
        (m, t) in param_strategy(),
        raw in prop::collection::vec(any::<u8>(), 1..=192),
    ) {
        let len = raw.len().min(payload_cap(m, t)).max(1);
        let data = &raw[..len];
        let code = BchCode::new(m, t, len).unwrap();
        prop_assert_eq!(code.encode(data), code.encode_bitserial(data));
    }

    /// The word-at-a-time syndrome kernel agrees with the per-bit
    /// reference on corrupted codewords, including errors in the parity
    /// area and garbage in the last parity byte's padding bits.
    #[test]
    fn syndromes_match_reference(
        (m, t) in param_strategy(),
        raw in prop::collection::vec(any::<u8>(), 1..=192),
        nerrors in 0usize..=12,
        seed in any::<u64>(),
    ) {
        let len = raw.len().min(payload_cap(m, t)).max(1);
        let mut data = raw[..len].to_vec();
        let code = BchCode::new(m, t, len).unwrap();
        let mut parity = code.encode(&data);
        let stream_bits = len * 8 + code.parity_bits();
        for &pos in &error_positions(seed, nerrors, stream_bits) {
            flip_stream_bit(&mut data, &mut parity, pos);
        }
        prop_assert_eq!(
            code.syndromes(&data, &parity),
            code.syndromes_reference(&data, &parity)
        );
        // Padding bits beyond parity_bits in the last byte must be
        // ignored by both kernels.
        if !code.parity_bits().is_multiple_of(8) {
            let before = code.syndromes(&data, &parity);
            *parity.last_mut().unwrap() ^= (1u8 << (8 - code.parity_bits() % 8)) - 1;
            prop_assert_eq!(&code.syndromes(&data, &parity), &before);
            prop_assert_eq!(code.syndromes_reference(&data, &parity), before);
        }
    }

    /// The batched early-exit Chien search finds exactly the roots the
    /// reference scan finds, and decode corrects the injected errors.
    #[test]
    fn chien_matches_reference_and_decode_corrects(
        (m, t) in param_strategy(),
        raw in prop::collection::vec(any::<u8>(), 1..=192),
        nerrors in 1usize..=12,
        seed in any::<u64>(),
    ) {
        let len = raw.len().min(payload_cap(m, t)).max(1);
        let data = raw[..len].to_vec();
        let code = BchCode::new(m, t, len).unwrap();
        let mut parity = code.encode(&data);
        let nerrors = nerrors.min(t);
        let stream_bits = len * 8 + code.parity_bits();
        let mut corrupted = data.clone();
        for &pos in &error_positions(seed, nerrors, stream_bits) {
            flip_stream_bit(&mut corrupted, &mut parity, pos);
        }
        let syn = code.syndromes(&corrupted, &parity);
        prop_assume!(syn.iter().any(|&s| s != 0));
        let sigma = code.berlekamp_massey(&syn);
        prop_assert_eq!(
            code.chien_search(&sigma),
            code.chien_search_reference(&sigma)
        );
        let report = code.decode(&mut corrupted, &parity);
        prop_assert!(report.is_ok(), "{:?}", report);
        prop_assert_eq!(corrupted, data);
    }
}

/// Full-size flash-page check at the paper's maximum strength: the fast
/// kernels round-trip a 2KB page with 12 injected errors and agree with
/// every reference kernel along the way.
#[test]
fn flash_page_t12_full_differential() {
    let code = BchCode::for_flash_page(12);
    let data: Vec<u8> = (0..2048usize).map(|i| (i * 131 % 251) as u8).collect();
    let parity = code.encode(&data);
    assert_eq!(parity, code.encode_bitserial(&data));

    let mut corrupted = data.clone();
    let mut bad_parity = parity.clone();
    let stream_bits = data.len() * 8 + code.parity_bits();
    for &pos in &error_positions(0xDEC0DE, 12, stream_bits) {
        flip_stream_bit(&mut corrupted, &mut bad_parity, pos);
    }
    let syn = code.syndromes(&corrupted, &bad_parity);
    assert_eq!(syn, code.syndromes_reference(&corrupted, &bad_parity));
    let sigma = code.berlekamp_massey(&syn);
    assert_eq!(
        code.chien_search(&sigma),
        code.chien_search_reference(&sigma)
    );
    let report = code.decode(&mut corrupted, &bad_parity).unwrap();
    assert_eq!(report.corrected, 12);
    assert_eq!(corrupted, data);
}
