//! Write-minimizing admission control and longevity-aware placement.
//!
//! The paper admits every DRAM-evicted page into the flash cache; the
//! related work shows most of those flash writes are avoidable.
//! [`AdmissionPolicy`] gates what may enter flash at all — modelled on
//! Flashield's "prove re-read-worthiness in DRAM first" ghost counters
//! and WLFC's "just write less" bandwidth cap — while [`Longevity`]
//! chooses *where* admitted writes land: per-bucket open blocks in the
//! write region keyed by predicted re-write interval, so short-lived
//! pages co-locate and invalidate whole blocks together, cutting GC
//! write amplification.
//!
//! The default [`AdmitAll`] policy with a single longevity bucket is
//! the paper-faithful oracle: it reproduces pre-admission behaviour
//! byte for byte (the differential tests in `tests/admission_props.rs`
//! hold the gate shut).

use std::fmt;

use crate::config::AdmissionPolicyConfig;
use crate::fxhash::FxHashMap;

/// Decides, per access, whether a page may occupy flash space.
///
/// Policies see the cache's logical access clock (`tick`), so their
/// decay windows are measured in accesses — the same time base as the
/// FPST access-counter decay.
pub trait AdmissionPolicy: fmt::Debug + Send {
    /// Whether a read-miss fill of `disk_page` may be cached in flash.
    fn admit_fill(&mut self, disk_page: u64, tick: u64) -> bool;

    /// Whether a host write of `disk_page` may be programmed into the
    /// write region.
    fn admit_write(&mut self, disk_page: u64, tick: u64) -> bool;

    /// Whether a write hitting an already-dirty cached copy may be
    /// absorbed in place without a reprogram (the flash already owes
    /// that page's flush, so the overwrite carries no new obligation).
    fn coalesces_dirty_overwrites(&self) -> bool {
        false
    }
}

/// The paper-faithful default: every fill and write is admitted.
#[derive(Debug, Default, Clone, Copy)]
pub struct AdmitAll;

impl AdmissionPolicy for AdmitAll {
    fn admit_fill(&mut self, _disk_page: u64, _tick: u64) -> bool {
        true
    }

    fn admit_write(&mut self, _disk_page: u64, _tick: u64) -> bool {
        true
    }
}

/// Two-generation ghost table: per-page counters for pages *not yet*
/// (or no longer) proven cache-worthy. Rotating generations bounds the
/// table to roughly the pages touched in two windows and implements
/// decay without a sweep — a counter survives at most one rotation.
#[derive(Debug)]
struct GhostCounters {
    window: u64,
    epoch_start: u64,
    cur: FxHashMap<u64, u8>,
    prev: FxHashMap<u64, u8>,
}

impl GhostCounters {
    fn new(window: u64) -> Self {
        GhostCounters {
            window: window.max(1),
            epoch_start: 0,
            cur: FxHashMap::default(),
            prev: FxHashMap::default(),
        }
    }

    fn rotate_if_due(&mut self, tick: u64) {
        if tick.wrapping_sub(self.epoch_start) >= self.window {
            self.prev = std::mem::take(&mut self.cur);
            self.epoch_start = tick;
        }
    }

    /// Bumps `page`'s counter (seeding from the previous generation on
    /// first touch this window) and returns the new count.
    fn bump(&mut self, page: u64, tick: u64) -> u8 {
        self.rotate_if_due(tick);
        let seed = self.prev.get(&page).copied().unwrap_or(0);
        let c = self.cur.entry(page).or_insert(seed);
        *c = c.saturating_add(1);
        *c
    }
}

/// Flashield-style re-reference admission: a page must be touched `k`
/// more times within the decay window after its first appearance before
/// it earns flash space. One-hit wonders never reach the flash, so the
/// device stops burning program/erase cycles on pages that would have
/// been evicted before their second read anyway.
#[derive(Debug)]
pub struct ReReference {
    k: u8,
    ghosts: GhostCounters,
}

impl ReReference {
    /// Builds the policy: admit after `k` re-references within `window`
    /// accesses (both validated nonzero by the config layer).
    pub fn new(k: u8, window: u64) -> Self {
        ReReference {
            k,
            ghosts: GhostCounters::new(window),
        }
    }
}

impl AdmissionPolicy for ReReference {
    fn admit_fill(&mut self, disk_page: u64, tick: u64) -> bool {
        // First touch counts 1; the page needs k further touches.
        self.ghosts.bump(disk_page, tick) > self.k
    }

    fn admit_write(&mut self, disk_page: u64, tick: u64) -> bool {
        self.ghosts.bump(disk_page, tick) > self.k
    }
}

/// WLFC-style write cap: a token bucket bounds how many host writes per
/// window may be programmed into flash; everything above the cap goes
/// straight to disk. Fills are never capped — the cap protects the
/// write region's program/erase budget, not read caching.
#[derive(Debug)]
pub struct WriteCap {
    pages_per_window: u64,
    window: u64,
    coalesce: bool,
    epoch: u64,
    tokens: u64,
}

impl WriteCap {
    /// Builds the policy: at most `pages_per_window` admitted host
    /// writes per `window` accesses (burst capacity = one window's
    /// allowance). `coalesce` additionally absorbs overwrites of
    /// already-dirty cached pages without a reprogram.
    pub fn new(pages_per_window: u64, window: u64, coalesce: bool) -> Self {
        WriteCap {
            pages_per_window: pages_per_window.max(1),
            window: window.max(1),
            coalesce,
            epoch: 0,
            tokens: pages_per_window.max(1),
        }
    }

    fn refill(&mut self, tick: u64) {
        let epoch = tick / self.window;
        if epoch > self.epoch {
            // Tokens never accumulate past one window's allowance, so a
            // long quiet period cannot bank an unbounded burst.
            self.tokens = self.pages_per_window;
            self.epoch = epoch;
        }
    }
}

impl AdmissionPolicy for WriteCap {
    fn admit_fill(&mut self, _disk_page: u64, _tick: u64) -> bool {
        true
    }

    fn admit_write(&mut self, _disk_page: u64, tick: u64) -> bool {
        self.refill(tick);
        if self.tokens > 0 {
            self.tokens -= 1;
            true
        } else {
            false
        }
    }

    fn coalesces_dirty_overwrites(&self) -> bool {
        self.coalesce
    }
}

/// Instantiates the policy a config selects.
pub fn build_policy(config: &AdmissionPolicyConfig) -> Box<dyn AdmissionPolicy> {
    match *config {
        AdmissionPolicyConfig::AdmitAll => Box::new(AdmitAll),
        AdmissionPolicyConfig::ReReference { k, window } => Box::new(ReReference::new(k, window)),
        AdmissionPolicyConfig::WriteCap {
            pages_per_window,
            window,
            coalesce,
        } => Box::new(WriteCap::new(pages_per_window, window, coalesce)),
    }
}

/// Longevity predictor for write placement: maps each admitted host
/// write to a write-region bucket by its observed re-write interval.
/// Bucket 0 collects the shortest-lived pages (re-written fastest);
/// the top bucket collects long-lived and history-free pages. Each
/// bucket owns its own open block, so pages with similar lifetimes
/// share erase blocks and tend to invalidate together.
#[derive(Debug)]
pub struct Longevity {
    buckets: u32,
    /// The interval treated as "long-lived"; bucket thresholds halve
    /// geometrically below it.
    horizon: u64,
    window: u64,
    epoch_start: u64,
    /// Last-write tick per page, two generations (bounded like the
    /// ghost counters).
    cur: FxHashMap<u64, u64>,
    prev: FxHashMap<u64, u64>,
}

impl Longevity {
    /// Builds the predictor. With one bucket the predictor is inert
    /// (always bucket 0) and keeps no history — the pre-bucketing
    /// behaviour.
    pub(crate) fn new(buckets: u32, horizon: u64) -> Self {
        let horizon = horizon.max(2);
        Longevity {
            buckets: buckets.max(1),
            horizon,
            window: horizon,
            epoch_start: 0,
            cur: FxHashMap::default(),
            prev: FxHashMap::default(),
        }
    }

    fn rotate_if_due(&mut self, tick: u64) {
        if tick.wrapping_sub(self.epoch_start) >= self.window {
            self.prev = std::mem::take(&mut self.cur);
            self.epoch_start = tick;
        }
    }

    /// The bucket an admitted write of `page` should land in, recording
    /// the write for the next prediction.
    pub(crate) fn bucket_for_write(&mut self, page: u64, tick: u64) -> u32 {
        if self.buckets <= 1 {
            return 0;
        }
        self.rotate_if_due(tick);
        let last = self
            .cur
            .get(&page)
            .copied()
            .or_else(|| self.prev.get(&page).copied());
        self.cur.insert(page, tick);
        let Some(last) = last else {
            // No history: assume long-lived until proven otherwise.
            return self.buckets - 1;
        };
        let interval = tick.saturating_sub(last).max(1);
        // Geometric quantization: bucket b-1 takes intervals in
        // [horizon/2, inf), b-2 takes [horizon/4, horizon/2), ... and
        // bucket 0 everything below the smallest threshold.
        let mut bucket = self.buckets - 1;
        let mut threshold = self.horizon;
        while bucket > 0 {
            threshold /= 2;
            if interval >= threshold.max(1) {
                return bucket;
            }
            bucket -= 1;
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admit_all_admits_everything() {
        let mut p = AdmitAll;
        assert!(p.admit_fill(1, 0));
        assert!(p.admit_write(2, u64::MAX));
        assert!(!p.coalesces_dirty_overwrites());
    }

    #[test]
    fn rereference_requires_k_rereads() {
        let mut p = ReReference::new(2, 1000);
        assert!(!p.admit_fill(7, 1)); // first touch
        assert!(!p.admit_fill(7, 2)); // first re-read
        assert!(p.admit_fill(7, 3)); // second re-read: admitted
        assert!(!p.admit_write(8, 3), "independent pages count separately");
    }

    #[test]
    fn rereference_counters_decay_after_two_windows() {
        let mut p = ReReference::new(1, 10);
        assert!(!p.admit_fill(5, 0));
        // Two rotations later the page's history is gone.
        assert!(!p.admit_fill(99, 10)); // rotates: cur -> prev
        assert!(!p.admit_fill(98, 20)); // rotates: page 5 dropped
        assert!(!p.admit_fill(5, 21), "history decayed; back to square one");
        assert!(p.admit_fill(5, 22));
    }

    #[test]
    fn rereference_history_survives_one_rotation() {
        let mut p = ReReference::new(1, 10);
        assert!(!p.admit_fill(5, 0));
        // One rotation: the count seeds from the previous generation.
        assert!(p.admit_fill(5, 12));
    }

    #[test]
    fn writecap_bounds_admitted_writes_per_window() {
        let mut p = WriteCap::new(3, 100, false);
        let admitted = (0..10).filter(|i| p.admit_write(*i, 50)).count();
        assert_eq!(admitted, 3);
        // Next window refills the bucket.
        assert!(p.admit_write(11, 150));
        // Fills are never capped.
        assert!(p.admit_fill(12, 150));
    }

    #[test]
    fn writecap_tokens_do_not_bank_across_quiet_windows() {
        let mut p = WriteCap::new(2, 10, true);
        assert!(p.coalesces_dirty_overwrites());
        // Many quiet windows pass; allowance stays one window's worth.
        let admitted = (0..10).filter(|i| p.admit_write(*i, 1000)).count();
        assert_eq!(admitted, 2);
    }

    #[test]
    fn single_bucket_longevity_is_inert() {
        let mut l = Longevity::new(1, 1000);
        for t in 0..100 {
            assert_eq!(l.bucket_for_write(t, t), 0);
        }
        assert!(l.cur.is_empty(), "no history kept with one bucket");
    }

    #[test]
    fn longevity_routes_by_rewrite_interval() {
        let mut l = Longevity::new(4, 1024);
        // Unknown history: top bucket.
        assert_eq!(l.bucket_for_write(1, 10), 3);
        // Re-written almost immediately: shortest-lived bucket.
        assert_eq!(l.bucket_for_write(1, 11), 0);
        // Re-written after half the horizon: top bucket again.
        assert_eq!(l.bucket_for_write(1, 11 + 512), 3);
        // Mid-range interval lands in a middle bucket.
        let b = l.bucket_for_write(1, 11 + 512 + 300);
        assert!(b == 2, "interval 300 vs thresholds 512/256/128, got {b}");
    }

    #[test]
    fn build_policy_matches_config() {
        let p = build_policy(&AdmissionPolicyConfig::AdmitAll);
        assert!(format!("{p:?}").contains("AdmitAll"));
        let p = build_policy(&AdmissionPolicyConfig::ReReference { k: 1, window: 10 });
        assert!(format!("{p:?}").contains("ReReference"));
        let p = build_policy(&AdmissionPolicyConfig::WriteCap {
            pages_per_window: 4,
            window: 10,
            coalesce: true,
        });
        assert!(p.coalesces_dirty_overwrites());
    }
}
