//! DRAM overhead analysis of the management tables (§3).
//!
//! The paper bounds the cost of keeping the FCHT/FPST/FBST/FGST in DRAM:
//! "The overhead of the four tables described above are less than 2% of
//! the Flash size. … For example, the memory overhead for a 32GB Flash
//! is approximately 360MB of DRAM." This module computes those sizes
//! from the tables' field layouts so the claim is checkable for any
//! geometry — and so users sizing a deployment can query it.

use nand_flash::FlashGeometry;

/// Byte sizes of each table for a device, at MLC (maximum) page count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableOverheads {
    /// FlashCache hash table: one tag (disk LBA + flash address) per page.
    pub fcht_bytes: u64,
    /// Flash page status table: config + counters per page.
    pub fpst_bytes: u64,
    /// Flash block status table: erase/wear records per block.
    pub fbst_bytes: u64,
    /// Flash global status table: fixed-size summary.
    pub fgst_bytes: u64,
}

/// Per-FCHT-entry bytes: a 64-bit disk logical block address plus a
/// 32-bit flash page address plus hash-chain link (§3.1).
pub const FCHT_ENTRY_BYTES: u64 = 8 + 4 + 4;

/// Per-FPST-entry bytes: ECC strength, mode, saturating access counter,
/// valid/dirty bits and the reverse disk-page pointer (§3.2).
pub const FPST_ENTRY_BYTES: u64 = 1 + 1 + 1 + 1 + 8;

/// Per-FBST-entry bytes: erase count, wear-out cost terms, recency, and
/// valid/invalid page counts (§3.3).
pub const FBST_ENTRY_BYTES: u64 = 8 + 8 + 8 + 4 + 4;

/// FGST bytes: a fixed handful of global averages (§3.4).
pub const FGST_BYTES: u64 = 64;

impl TableOverheads {
    /// Computes the table sizes for a geometry.
    pub fn for_geometry(geometry: &FlashGeometry) -> Self {
        let pages = geometry.total_slots();
        let blocks = geometry.blocks as u64;
        TableOverheads {
            fcht_bytes: pages * FCHT_ENTRY_BYTES,
            fpst_bytes: pages * FPST_ENTRY_BYTES,
            fbst_bytes: blocks * FBST_ENTRY_BYTES,
            fgst_bytes: FGST_BYTES,
        }
    }

    /// Computes the table sizes for a flash of `capacity_bytes` (MLC).
    pub fn for_capacity(capacity_bytes: u64) -> Self {
        TableOverheads::for_geometry(&FlashGeometry::for_mlc_capacity(capacity_bytes))
    }

    /// Total DRAM bytes consumed by the four tables.
    pub fn total_bytes(&self) -> u64 {
        self.fcht_bytes + self.fpst_bytes + self.fbst_bytes + self.fgst_bytes
    }

    /// Overhead as a fraction of the flash capacity it manages.
    pub fn fraction_of(&self, flash_bytes: u64) -> f64 {
        self.total_bytes() as f64 / flash_bytes.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GIB: u64 = 1 << 30;

    #[test]
    fn paper_32gb_claim() {
        // §3: "the memory overhead for a 32GB Flash is approximately
        // 360MB of DRAM", dominated by the FCHT and FPST.
        let o = TableOverheads::for_capacity(32 * GIB);
        let mb = o.total_bytes() as f64 / (1 << 20) as f64;
        assert!(
            (300.0..=460.0).contains(&mb),
            "32GB flash tables = {mb:.0}MB, paper says ~360MB"
        );
        // FCHT + FPST dominate, as the paper states.
        assert!(o.fcht_bytes + o.fpst_bytes > 9 * (o.fbst_bytes + o.fgst_bytes));
    }

    #[test]
    fn under_two_percent_for_all_paper_sizes() {
        for gb in [1u64, 2, 8, 32, 128] {
            let o = TableOverheads::for_capacity(gb * GIB);
            let frac = o.fraction_of(gb * GIB);
            assert!(
                frac < 0.02,
                "{gb}GB: overhead {:.2}% exceeds the paper's 2% bound",
                frac * 100.0
            );
        }
    }

    #[test]
    fn scales_linearly_with_capacity() {
        let one = TableOverheads::for_capacity(GIB).total_bytes();
        let four = TableOverheads::for_capacity(4 * GIB).total_bytes();
        let ratio = four as f64 / one as f64;
        assert!((3.9..=4.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn fgst_is_constant() {
        let small = TableOverheads::for_capacity(GIB);
        let large = TableOverheads::for_capacity(64 * GIB);
        assert_eq!(small.fgst_bytes, large.fgst_bytes);
    }
}
