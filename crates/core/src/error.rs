//! Typed errors for the fallible cache entry points.
//!
//! Historically the cache `panic!`ed (via `expect`) when a management
//! table and the device disagreed — acceptable in a research harness,
//! unacceptable behind a service layer where one corrupted mapping must
//! not take down every tenant sharing the process. Every such site now
//! surfaces a [`CacheError`] through
//! [`FlashCache::try_read`](crate::FlashCache::try_read) /
//! [`try_write`](crate::FlashCache::try_write); the original infallible
//! [`read`](crate::FlashCache::read) / [`write`](crate::FlashCache::write)
//! signatures are preserved by degrading errors into an
//! [`AccessOutcome`](crate::AccessOutcome) that routes the access to
//! disk (fail-to-disk: the cache is an accelerator, never the only copy
//! of clean data).

use std::error::Error;
use std::fmt;

use nand_flash::{BlockId, FlashOpError, PageAddr};

/// An internal inconsistency or device failure detected while servicing
/// a cache access.
///
/// Variants are grouped in two classes:
///
/// * **corruption-class** ([`CacheError::is_corruption`] is `true`):
///   a management table pointed at content the device cannot produce —
///   the cached copy must be considered lost;
/// * **structural**: the allocator or erase machinery hit a state the
///   device rejects — the operation is abandoned, the cache bypassed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheError {
    /// A management table referenced a flash location whose device state
    /// disagrees (e.g. the FCHT mapped a disk page to an unprogrammed
    /// slot). Corruption-class.
    TableCorruption {
        /// The inconsistent flash location.
        addr: PageAddr,
        /// What the device reported.
        source: FlashOpError,
    },
    /// A valid FPST entry carried no disk-page mapping, so the content
    /// cannot be attributed to any disk address. Corruption-class.
    MappingMissing {
        /// The unmapped flash location.
        addr: PageAddr,
    },
    /// The allocator handed out a slot the device refused to program
    /// (out-of-place discipline violated, mode conflict, …).
    ProgramRejected {
        /// The rejected destination.
        addr: PageAddr,
        /// What the device reported.
        source: FlashOpError,
    },
    /// A block-granularity device operation (erase) failed.
    BlockOp {
        /// The block being operated on.
        block: BlockId,
        /// What the device reported.
        source: FlashOpError,
    },
}

impl CacheError {
    /// `true` for errors that imply the cached copy of data was lost
    /// (mapped into [`AccessOutcome::uncorrectable`]
    /// (crate::AccessOutcome::uncorrectable) by the infallible entry
    /// points); `false` for structural allocator/device failures.
    pub fn is_corruption(&self) -> bool {
        matches!(
            self,
            CacheError::TableCorruption { .. } | CacheError::MappingMissing { .. }
        )
    }

    /// The flash location involved, when the error is page-granular.
    pub fn addr(&self) -> Option<PageAddr> {
        match self {
            CacheError::TableCorruption { addr, .. }
            | CacheError::MappingMissing { addr }
            | CacheError::ProgramRejected { addr, .. } => Some(*addr),
            CacheError::BlockOp { .. } => None,
        }
    }
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::TableCorruption { addr, source } => {
                write!(f, "table corruption at {addr}: device reported {source:?}")
            }
            CacheError::MappingMissing { addr } => {
                write!(f, "valid page at {addr} has no disk mapping")
            }
            CacheError::ProgramRejected { addr, source } => {
                write!(f, "device rejected program of {addr}: {source:?}")
            }
            CacheError::BlockOp { block, source } => {
                write!(f, "block operation on {block} failed: {source:?}")
            }
        }
    }
}

impl Error for CacheError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corruption_classification() {
        let addr = PageAddr::new(BlockId(1), 2);
        assert!(CacheError::TableCorruption {
            addr,
            source: FlashOpError::NotProgrammed(addr),
        }
        .is_corruption());
        assert!(CacheError::MappingMissing { addr }.is_corruption());
        assert!(!CacheError::ProgramRejected {
            addr,
            source: FlashOpError::NotErased(addr),
        }
        .is_corruption());
        assert!(!CacheError::BlockOp {
            block: BlockId(1),
            source: FlashOpError::BlockOutOfRange(BlockId(1)),
        }
        .is_corruption());
    }

    #[test]
    fn display_and_addr() {
        let addr = PageAddr::new(BlockId(3), 4);
        let e = CacheError::MappingMissing { addr };
        assert!(e.to_string().contains("no disk mapping"));
        assert_eq!(e.addr(), Some(addr));
        let b = CacheError::BlockOp {
            block: BlockId(3),
            source: FlashOpError::BlockOutOfRange(BlockId(3)),
        };
        assert_eq!(b.addr(), None);
        assert!(b.to_string().contains("failed"));
    }
}
