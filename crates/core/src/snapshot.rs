//! Typed point-in-time snapshot of the flash cache's internal state.
//!
//! [`CacheSnapshot`] gives callers structured access to region
//! allocator state, per-block wear, the FGST, and the accumulated
//! statistics, while the `Display` impl renders a human-readable dump.

use std::fmt;

use crate::cache::{FlashCache, Region};
use crate::stats::CacheStats;
use crate::tables::{Fgst, RegionKind};

/// Allocator state of one region (read or write).
#[derive(Debug, Clone, PartialEq)]
pub struct RegionSnapshot {
    /// Which region this is.
    pub kind: RegionKind,
    /// Block ids on the free list, in allocation order.
    pub free_blocks: Vec<u32>,
    /// The first (bucket-0) open block and its next programmable slot,
    /// if any — the whole story for single-bucket regions.
    pub open_block: Option<(u32, u32)>,
    /// Per-longevity-bucket open blocks (`(block, next_slot)`); entry 0
    /// mirrors `open_block`. Length 1 unless the write region runs
    /// bucketed placement.
    pub open_blocks: Vec<Option<(u32, u32)>>,
    /// The reserved GC-compaction spare, if any.
    pub spare_block: Option<u32>,
    /// Live pages across the region.
    pub valid_pages: u64,
    /// Invalidated-but-not-erased pages across the region.
    pub invalid_pages: u64,
}

impl RegionSnapshot {
    fn from_region(kind: RegionKind, r: &Region) -> Self {
        let open_blocks: Vec<Option<(u32, u32)>> = r
            .open
            .iter()
            .map(|o| o.map(|o| (o.id.0, o.next_slot)))
            .collect();
        RegionSnapshot {
            kind,
            free_blocks: r.free.iter().map(|b| b.0).collect(),
            open_block: open_blocks.first().copied().flatten(),
            open_blocks,
            spare_block: r.spare.map(|b| b.0),
            valid_pages: r.valid_pages,
            invalid_pages: r.invalid_pages,
        }
    }
}

/// Per-block state summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockSummary {
    /// Block id.
    pub block: u32,
    /// The region the block currently serves.
    pub region: RegionKind,
    /// Valid pages in the block.
    pub valid_pages: u32,
    /// Invalidated pages awaiting erase.
    pub invalid_pages: u32,
    /// Erase cycles performed.
    pub erase_count: u64,
    /// Whether the block is permanently retired.
    pub retired: bool,
    /// The §3.6 degree-of-wear-out cost under the active k1/k2.
    pub wear_cost: f64,
}

/// Erase-count spread over non-retired blocks.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WearSummary {
    /// Minimum erase count.
    pub min_erases: u64,
    /// Maximum erase count.
    pub max_erases: u64,
    /// Mean erase count.
    pub mean_erases: f64,
    /// Blocks permanently retired.
    pub retired_blocks: u32,
}

/// A typed point-in-time snapshot of a [`FlashCache`].
///
/// # Examples
///
/// ```
/// use flashcache_core::{CacheOp, FlashCache, FlashCacheConfig};
///
/// let mut cache = FlashCache::new(FlashCacheConfig::default()).unwrap();
/// cache.op(CacheOp::read(7));
/// let snap = cache.snapshot();
/// assert_eq!(snap.cached_pages, 1);
/// assert!(snap.regions[0].valid_pages >= 1);
/// println!("{snap}"); // human-readable rendering
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CacheSnapshot {
    /// Logical access clock at snapshot time.
    pub tick: u64,
    /// Number of cached disk pages.
    pub cached_pages: u64,
    /// Usable (non-retired) slots.
    pub usable_slots: u64,
    /// Fraction of non-retired physical pages in SLC mode.
    pub slc_fraction: f64,
    /// Region allocator state: read region first, then the write region
    /// when the cache runs split (one entry under a unified pool).
    pub regions: Vec<RegionSnapshot>,
    /// Per-block summaries, ordered by block id.
    pub blocks: Vec<BlockSummary>,
    /// Erase-count spread.
    pub wear: WearSummary,
    /// The global status table (miss rate, average hit latency).
    pub fgst: Fgst,
    /// Accumulated statistics.
    pub stats: CacheStats,
}

impl FlashCache {
    /// Captures a typed snapshot of the cache's current state.
    pub fn snapshot(&self) -> CacheSnapshot {
        let mut regions = vec![RegionSnapshot::from_region(
            RegionKind::Read,
            &self.read_region,
        )];
        if !self.unified {
            regions.push(RegionSnapshot::from_region(
                RegionKind::Write,
                &self.write_region,
            ));
        }
        let (k1, k2) = (self.config.wear_k1, self.config.wear_k2);
        let blocks: Vec<BlockSummary> = self
            .fbst
            .iter()
            .map(|(b, s)| BlockSummary {
                block: b.0,
                region: s.region,
                valid_pages: s.valid_pages,
                invalid_pages: s.invalid_pages,
                erase_count: s.erase_count,
                retired: s.retired,
                wear_cost: self.fbst.wear_out(b, k1, k2),
            })
            .collect();
        let (min_erases, max_erases, mean_erases) = self.erase_spread();
        let retired_blocks = blocks.iter().filter(|b| b.retired).count() as u32;
        CacheSnapshot {
            tick: self.tick,
            cached_pages: self.cached_pages(),
            usable_slots: self.usable_slots,
            slc_fraction: self.slc_fraction(),
            regions,
            blocks,
            wear: WearSummary {
                min_erases,
                max_erases,
                mean_erases,
                retired_blocks,
            },
            fgst: self.fgst,
            stats: self.stats,
        }
    }
}

impl fmt::Display for CacheSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "tick={} cached_pages={} usable_slots={} slc_fraction={:.3}",
            self.tick, self.cached_pages, self.usable_slots, self.slc_fraction
        )?;
        for r in &self.regions {
            let name = match r.kind {
                RegionKind::Read => "read",
                RegionKind::Write => "write",
            };
            if r.open_blocks.len() > 1 {
                writeln!(
                    f,
                    "{}: free={:?} open={:?} spare={:?} valid={} invalid={}",
                    name,
                    r.free_blocks,
                    r.open_blocks,
                    r.spare_block,
                    r.valid_pages,
                    r.invalid_pages
                )?;
            } else {
                writeln!(
                    f,
                    "{}: free={:?} open={:?} spare={:?} valid={} invalid={}",
                    name,
                    r.free_blocks,
                    r.open_block,
                    r.spare_block,
                    r.valid_pages,
                    r.invalid_pages
                )?;
            }
        }
        for b in &self.blocks {
            writeln!(
                f,
                "b{}: {:?} valid={} invalid={} erase={} retired={} wear={:.1}",
                b.block,
                b.region,
                b.valid_pages,
                b.invalid_pages,
                b.erase_count,
                b.retired,
                b.wear_cost
            )?;
        }
        write!(
            f,
            "wear: erases min={} max={} mean={:.1}, retired={}",
            self.wear.min_erases,
            self.wear.max_erases,
            self.wear.mean_erases,
            self.wear.retired_blocks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheOp;
    use crate::config::FlashCacheConfig;

    #[test]
    fn snapshot_reflects_cache_state() {
        let mut cache = FlashCache::new(FlashCacheConfig::default()).unwrap();
        for p in 0..10u64 {
            cache.op(CacheOp::read(p));
        }
        let snap = cache.snapshot();
        assert_eq!(snap.cached_pages, 10);
        assert_eq!(snap.tick, cache.tick());
        assert_eq!(snap.stats.reads, 10);
        assert_eq!(snap.blocks.len(), cache.device().geometry().blocks as usize);
        let region_valid: u64 = snap.regions.iter().map(|r| r.valid_pages).sum();
        let block_valid: u64 = snap.blocks.iter().map(|b| b.valid_pages as u64).sum();
        assert_eq!(region_valid, block_valid);
        assert!((0.0..=1.0).contains(&snap.slc_fraction));
    }

    #[test]
    fn display_renders_regions_and_blocks() {
        let mut cache = FlashCache::new(FlashCacheConfig::default()).unwrap();
        cache.op(CacheOp::read(1));
        let text = cache.snapshot().to_string();
        assert!(text.contains("read: free="));
        assert!(text.contains("b0:"));
        assert!(text.contains("wear: erases"));
    }
}
