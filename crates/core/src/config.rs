//! Configuration of the flash disk cache and its controller policy.

use std::error::Error;
use std::fmt;

use flash_ecc::EccLatencyModel;
use nand_flash::{CellMode, FlashConfig};

/// A configuration rejected by [`FlashCacheConfig::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    fn new(message: String) -> Self {
        ConfigError { message }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid flash cache configuration: {}", self.message)
    }
}

impl Error for ConfigError {}

/// How the flash is divided between read and write caching (§3.5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SplitPolicy {
    /// One shared pool handling both reads and writes (the baseline of
    /// Figure 4, "RW unified").
    Unified,
    /// Separate read and write regions ("RW separate").
    Split {
        /// Fraction of blocks dedicated to the write cache. The paper
        /// observes 10% suffices ("90% of Flash is dedicated to the read
        /// cache and 10% write cache").
        write_fraction: f64,
    },
}

impl Default for SplitPolicy {
    fn default() -> Self {
        SplitPolicy::Split {
            write_fraction: 0.10,
        }
    }
}

/// Which flash admission policy gates DRAM-evicted pages (fills and
/// host writes) out of the flash cache.
///
/// All parameters are integers so configs stay `Eq` (the sharded
/// engine's [`EngineConfig`] relies on it); windows are measured in
/// cache accesses — the same logical clock as the FPST counter decay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicyConfig {
    /// Admit every fill and write — the paper-faithful baseline.
    #[default]
    AdmitAll,
    /// Ghost-counter admission (Flashield-style): a page must be
    /// touched `k` more times within `window` accesses of its first
    /// appearance before it earns flash space.
    ReReference {
        /// Re-references required before admission (`>= 1`).
        k: u8,
        /// Decay window in cache accesses (`>= 1`).
        window: u64,
    },
    /// Token-bucket cap on flash write bandwidth (WLFC-style): at most
    /// `pages_per_window` host writes per `window` accesses are
    /// programmed; the rest go straight to disk. Fills are never
    /// capped.
    WriteCap {
        /// Admitted host writes allowed per window (`>= 1`).
        pages_per_window: u64,
        /// Refill window in cache accesses (`>= 1`).
        window: u64,
        /// Absorb overwrites of already-dirty cached pages in place
        /// (no reprogram — the flash already owes that page's flush).
        coalesce: bool,
    },
}

/// Flash memory controller reconfiguration policy (§4, §5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ControllerPolicy {
    /// The paper's programmable controller: variable ECC strength *and*
    /// MLC→SLC density switching, chosen by the Δtcs/Δtd heuristics.
    #[default]
    Programmable,
    /// Fixed ECC strength, no reconfiguration — the baseline of
    /// Figure 12 is `FixedEcc { strength: 1 }`.
    FixedEcc {
        /// The immutable code strength.
        strength: u8,
    },
    /// Ablation: only ECC strength may grow; no density switching.
    EccOnly,
    /// Ablation: only MLC→SLC switching; ECC stays at the initial
    /// strength.
    DensityOnly,
}

/// Full configuration of a [`crate::cache::FlashCache`].
///
/// Prefer [`FlashCacheConfig::builder`] over filling the struct in by
/// hand: the builder validates on [`build`](FlashCacheConfigBuilder::build),
/// so an impossible combination is rejected at construction instead of
/// surfacing later from `FlashCache::new`. Raw struct-literal
/// construction (including functional update from `..Default::default()`)
/// remains possible for backwards compatibility but is discouraged for
/// new code.
#[derive(Debug, Clone, PartialEq)]
pub struct FlashCacheConfig {
    /// Underlying device configuration.
    pub flash: FlashConfig,
    /// Read/write split policy.
    pub split: SplitPolicy,
    /// Controller reconfiguration policy.
    pub controller: ControllerPolicy,
    /// Cell mode newly allocated pages start in. The paper's device is
    /// MLC-first and demotes to SLC as needed.
    pub default_mode: CellMode,
    /// ECC strength newly allocated pages start with.
    pub initial_ecc: u8,
    /// Maximum ECC strength the controller may program (paper: 12).
    pub max_ecc: u8,
    /// ECC accelerator timing model.
    pub ecc_latency: EccLatencyModel,
    /// Wear-levelling trigger: evict the globally newest block instead of
    /// the LRU block when the LRU block's degree of wear out exceeds the
    /// newest's by this much (§3.6).
    pub wear_threshold: f64,
    /// Weight of total ECC strength in the degree-of-wear-out cost.
    pub wear_k1: f64,
    /// Weight of SLC-converted pages in the degree-of-wear-out cost
    /// (`k2 > k1`: a mode switch signals far more wear than an ECC bump).
    pub wear_k2: f64,
    /// Read-region GC trigger: compact when valid capacity falls below
    /// this fraction (§5.1: "below 90%").
    pub read_gc_watermark: f64,
    /// Minimum invalid fraction a block must carry before garbage
    /// collection will compact it (either region). Compacting a mostly-
    /// valid block rewrites many pages to reclaim few slots — ruinous
    /// write amplification; below this floor the cache evicts a block
    /// instead (clean pages are disk-backed; dirty ones are flushed).
    pub gc_min_invalid_fraction: f64,
    /// Read-access saturation count that promotes an MLC page to SLC
    /// (§5.2.2). The FPST stores a saturating counter per page.
    pub hot_threshold: u8,
    /// Average disk miss penalty in µs used by the Δtd heuristic
    /// (`tmiss`); the simulator keeps this in sync with its disk model.
    pub disk_latency_us: f64,
    /// Number of bit errors at which a read is considered to show
    /// consistent wear (reconfiguration trigger margin): the page is
    /// reconfigured when observed errors ≥ `strength`.
    pub reconfig_margin: u8,
    /// Accesses between halvings of every page's saturating access
    /// counter, so "frequently accessed" means *recent* frequency
    /// (§5.2.2). `0` selects one cache-capacity of accesses.
    pub counter_decay_interval: u64,
    /// Serve reclaim victim queries (GC, eviction, wear levelling) from
    /// the incremental reclaim index instead of O(blocks) FBST scans.
    /// The index is maintained and verified either way; disabling only
    /// changes which side answers queries (kept for before/after
    /// benchmarking).
    pub use_reclaim_index: bool,
    /// Admission policy gating fills and host writes out of the flash
    /// (default [`AdmissionPolicyConfig::AdmitAll`], the paper's
    /// behaviour).
    pub admission: AdmissionPolicyConfig,
    /// Longevity buckets in the write region: admitted host writes are
    /// routed into per-bucket open blocks by predicted re-write
    /// interval. `1` (default) disables bucketing — the pre-admission
    /// single open block. Ignored under [`SplitPolicy::Unified`].
    pub longevity_buckets: u32,
    /// Probe the FCHT eight control bytes at a time (SWAR group
    /// probing) instead of byte-at-a-time. Probe order — and therefore
    /// every table decision, layout, and outcome — is identical either
    /// way; disabling keeps the byte-wise probe as a differential
    /// oracle (kept for before/after benchmarking).
    pub fcht_swar_probe: bool,
    /// Software-pipeline the lookup stage of
    /// [`crate::cache::FlashCache::op_batch`]: hash and prefetch the
    /// FCHT lines of ops a window ahead while executing the current op.
    /// Prefetches are pure hints, so outcomes, snapshots, stats, and
    /// exported metrics are byte-identical with the gate off.
    pub batch_pipeline: bool,
}

impl Default for FlashCacheConfig {
    fn default() -> Self {
        FlashCacheConfig {
            flash: FlashConfig::default(),
            split: SplitPolicy::default(),
            controller: ControllerPolicy::default(),
            default_mode: CellMode::Mlc,
            initial_ecc: 1,
            max_ecc: 12,
            ecc_latency: EccLatencyModel::default(),
            wear_threshold: 64.0,
            wear_k1: 0.5,
            wear_k2: 8.0,
            read_gc_watermark: 0.90,
            gc_min_invalid_fraction: 0.25,
            hot_threshold: 8,
            disk_latency_us: 4200.0,
            reconfig_margin: 0,
            counter_decay_interval: 0,
            use_reclaim_index: true,
            admission: AdmissionPolicyConfig::default(),
            longevity_buckets: 1,
            fcht_swar_probe: true,
            batch_pipeline: true,
        }
    }
}

impl FlashCacheConfig {
    /// Starts a fluent builder seeded with the paper-default
    /// configuration; call [`FlashCacheConfigBuilder::build`] to
    /// validate and obtain the finished config.
    ///
    /// ```
    /// use flashcache_core::FlashCacheConfig;
    ///
    /// let config = FlashCacheConfig::builder()
    ///     .write_fraction(0.10)
    ///     .max_ecc(12)
    ///     .build()
    ///     .expect("defaults tweaked within valid ranges");
    /// assert_eq!(config.max_ecc, 12);
    /// ```
    pub fn builder() -> FlashCacheConfigBuilder {
        FlashCacheConfigBuilder {
            config: FlashCacheConfig::default(),
        }
    }

    /// Validates invariants, returning a description of the first
    /// violation.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] describing the violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if let SplitPolicy::Split { write_fraction } = self.split {
            if !(0.0..1.0).contains(&write_fraction) || write_fraction <= 0.0 {
                return Err(ConfigError::new(format!(
                    "write_fraction must be in (0,1), got {write_fraction}"
                )));
            }
        }
        if self.initial_ecc == 0 || self.initial_ecc > self.max_ecc {
            return Err(ConfigError::new(format!(
                "initial_ecc {} must be in 1..={}",
                self.initial_ecc, self.max_ecc
            )));
        }
        // The paper's controller stops at 12 correctable bits, but its
        // Figure 10 sweeps fixed strengths "beyond our Flash memory
        // controller's capabilities to fully capture the performance
        // trends" (§7.2) — so the *model* accepts larger values, which
        // exercise only the latency model, not a real spare-area layout.
        if self.max_ecc > 63 {
            return Err(ConfigError::new(format!(
                "max_ecc {} exceeds the modelling limit of 63",
                self.max_ecc
            )));
        }
        if !(0.0..=1.0).contains(&self.gc_min_invalid_fraction) {
            return Err(ConfigError::new(format!(
                "gc_min_invalid_fraction must be in [0,1], got {}",
                self.gc_min_invalid_fraction
            )));
        }
        if !(0.0..=1.0).contains(&self.read_gc_watermark) {
            return Err(ConfigError::new(format!(
                "read_gc_watermark must be in [0,1], got {}",
                self.read_gc_watermark
            )));
        }
        if self.wear_k2 <= self.wear_k1 {
            return Err(ConfigError::new(format!(
                "wear_k2 ({}) must exceed wear_k1 ({}) — a mode switch \
                 signals more wear than an ECC bump",
                self.wear_k2, self.wear_k1
            )));
        }
        if self.flash.geometry.blocks < 4 {
            return Err(ConfigError::new(
                "cache needs at least 4 flash blocks".to_string(),
            ));
        }
        match self.admission {
            AdmissionPolicyConfig::AdmitAll => {}
            AdmissionPolicyConfig::ReReference { k, window } => {
                if k == 0 {
                    return Err(ConfigError::new(
                        "re-reference admission needs k >= 1 (k = 0 admits \
                         everything; use AdmitAll)"
                            .to_string(),
                    ));
                }
                if window == 0 {
                    return Err(ConfigError::new(
                        "re-reference admission window must be nonzero".to_string(),
                    ));
                }
            }
            AdmissionPolicyConfig::WriteCap {
                pages_per_window,
                window,
                ..
            } => {
                if pages_per_window == 0 {
                    return Err(ConfigError::new(
                        "write cap of 0 pages per window would reject every \
                         write; use a positive rate"
                            .to_string(),
                    ));
                }
                if window == 0 {
                    return Err(ConfigError::new(
                        "write cap window must be nonzero".to_string(),
                    ));
                }
            }
        }
        if self.longevity_buckets == 0 || self.longevity_buckets > 16 {
            return Err(ConfigError::new(format!(
                "longevity_buckets must be in 1..=16, got {}",
                self.longevity_buckets
            )));
        }
        Ok(())
    }
}

/// Fluent constructor for [`FlashCacheConfig`], obtained from
/// [`FlashCacheConfig::builder`].
///
/// Every setter overrides one field of the paper-default configuration;
/// [`build`](FlashCacheConfigBuilder::build) runs
/// [`FlashCacheConfig::validate`] so the returned config is always
/// internally consistent.
#[derive(Debug, Clone)]
pub struct FlashCacheConfigBuilder {
    config: FlashCacheConfig,
}

impl FlashCacheConfigBuilder {
    /// Sets the underlying device configuration.
    pub fn flash(mut self, flash: FlashConfig) -> Self {
        self.config.flash = flash;
        self
    }

    /// Sets the read/write split policy.
    pub fn split(mut self, split: SplitPolicy) -> Self {
        self.config.split = split;
        self
    }

    /// Shorthand for a [`SplitPolicy::Split`] with the given write-cache
    /// fraction.
    pub fn write_fraction(mut self, write_fraction: f64) -> Self {
        self.config.split = SplitPolicy::Split { write_fraction };
        self
    }

    /// Shorthand for [`SplitPolicy::Unified`].
    pub fn unified(mut self) -> Self {
        self.config.split = SplitPolicy::Unified;
        self
    }

    /// Sets the controller reconfiguration policy.
    pub fn controller(mut self, controller: ControllerPolicy) -> Self {
        self.config.controller = controller;
        self
    }

    /// Sets the cell mode newly allocated pages start in.
    pub fn default_mode(mut self, default_mode: CellMode) -> Self {
        self.config.default_mode = default_mode;
        self
    }

    /// Sets the ECC strength newly allocated pages start with.
    pub fn initial_ecc(mut self, initial_ecc: u8) -> Self {
        self.config.initial_ecc = initial_ecc;
        self
    }

    /// Sets the maximum ECC strength the controller may program.
    pub fn max_ecc(mut self, max_ecc: u8) -> Self {
        self.config.max_ecc = max_ecc;
        self
    }

    /// Sets the ECC accelerator timing model.
    pub fn ecc_latency(mut self, ecc_latency: EccLatencyModel) -> Self {
        self.config.ecc_latency = ecc_latency;
        self
    }

    /// Sets the wear-levelling trigger threshold (§3.6).
    pub fn wear_threshold(mut self, wear_threshold: f64) -> Self {
        self.config.wear_threshold = wear_threshold;
        self
    }

    /// Sets the degree-of-wear-out cost weights (`k2 > k1` required).
    pub fn wear_weights(mut self, k1: f64, k2: f64) -> Self {
        self.config.wear_k1 = k1;
        self.config.wear_k2 = k2;
        self
    }

    /// Sets the read-region GC watermark (§5.1).
    pub fn read_gc_watermark(mut self, read_gc_watermark: f64) -> Self {
        self.config.read_gc_watermark = read_gc_watermark;
        self
    }

    /// Sets the minimum invalid fraction GC requires of a victim block.
    pub fn gc_min_invalid_fraction(mut self, fraction: f64) -> Self {
        self.config.gc_min_invalid_fraction = fraction;
        self
    }

    /// Sets the hot-page SLC promotion threshold (§5.2.2).
    pub fn hot_threshold(mut self, hot_threshold: u8) -> Self {
        self.config.hot_threshold = hot_threshold;
        self
    }

    /// Sets the average disk miss penalty used by the Δtd heuristic, µs.
    pub fn disk_latency_us(mut self, disk_latency_us: f64) -> Self {
        self.config.disk_latency_us = disk_latency_us;
        self
    }

    /// Sets the reconfiguration trigger margin.
    pub fn reconfig_margin(mut self, reconfig_margin: u8) -> Self {
        self.config.reconfig_margin = reconfig_margin;
        self
    }

    /// Sets the access-counter decay interval (§5.2.2; `0` selects one
    /// cache-capacity of accesses).
    pub fn counter_decay_interval(mut self, interval: u64) -> Self {
        self.config.counter_decay_interval = interval;
        self
    }

    /// Selects whether reclaim victim queries use the incremental index.
    pub fn use_reclaim_index(mut self, use_reclaim_index: bool) -> Self {
        self.config.use_reclaim_index = use_reclaim_index;
        self
    }

    /// Sets the flash admission policy gating fills and host writes.
    pub fn admission(mut self, admission: AdmissionPolicyConfig) -> Self {
        self.config.admission = admission;
        self
    }

    /// Sets the number of longevity buckets in the write region
    /// (`1..=16`; `1` disables bucketing).
    pub fn longevity_buckets(mut self, longevity_buckets: u32) -> Self {
        self.config.longevity_buckets = longevity_buckets;
        self
    }

    /// Selects SWAR group probing (`true`, default) or the byte-wise
    /// differential-oracle probe for the FCHT.
    pub fn fcht_swar_probe(mut self, fcht_swar_probe: bool) -> Self {
        self.config.fcht_swar_probe = fcht_swar_probe;
        self
    }

    /// Enables (default) or disables the prefetch-pipelined lookup
    /// stage of `FlashCache::op_batch`.
    pub fn batch_pipeline(mut self, batch_pipeline: bool) -> Self {
        self.config.batch_pipeline = batch_pipeline;
        self
    }

    /// Validates the assembled configuration and returns it.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] from [`FlashCacheConfig::validate`] describing
    /// the first violated constraint.
    pub fn build(self) -> Result<FlashCacheConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert_eq!(FlashCacheConfig::default().validate(), Ok(()));
    }

    #[test]
    fn default_split_is_90_10() {
        match SplitPolicy::default() {
            SplitPolicy::Split { write_fraction } => {
                assert!((write_fraction - 0.10).abs() < 1e-12)
            }
            SplitPolicy::Unified => panic!("default must be split"),
        }
    }

    #[test]
    fn validation_catches_bad_fields() {
        let mut c = FlashCacheConfig {
            split: SplitPolicy::Split {
                write_fraction: 0.0,
            },
            ..FlashCacheConfig::default()
        };
        assert!(c.validate().is_err());
        c.split = SplitPolicy::default();
        c.initial_ecc = 0;
        assert!(c.validate().is_err());
        c.initial_ecc = 13;
        c.max_ecc = 12;
        assert!(c.validate().is_err());
        c.initial_ecc = 1;
        c.max_ecc = 64;
        assert!(c.validate().is_err());
        c.max_ecc = 40; // beyond hardware, allowed for Figure 10 sweeps
        assert!(c.validate().is_ok());
        c.max_ecc = 12;
        c.wear_k1 = 9.0;
        assert!(c.validate().is_err());
        c.wear_k1 = 0.5;
        c.read_gc_watermark = 1.5;
        assert!(c.validate().is_err());
        c.read_gc_watermark = 0.9;
        c.flash.geometry.blocks = 2;
        assert!(c.validate().is_err());
    }

    #[test]
    fn builder_defaults_match_default() {
        assert_eq!(
            FlashCacheConfig::builder().build().unwrap(),
            FlashCacheConfig::default()
        );
    }

    #[test]
    fn builder_sets_fields_and_validates() {
        let c = FlashCacheConfig::builder()
            .unified()
            .initial_ecc(2)
            .max_ecc(16)
            .hot_threshold(4)
            .wear_weights(0.25, 4.0)
            .use_reclaim_index(false)
            .build()
            .unwrap();
        assert_eq!(c.split, SplitPolicy::Unified);
        assert_eq!(c.initial_ecc, 2);
        assert_eq!(c.max_ecc, 16);
        assert_eq!(c.hot_threshold, 4);
        assert!(!c.use_reclaim_index);

        // Invalid combinations are rejected at build time.
        assert!(FlashCacheConfig::builder()
            .write_fraction(0.0)
            .build()
            .is_err());
        assert!(FlashCacheConfig::builder()
            .wear_weights(8.0, 0.5)
            .build()
            .is_err());
    }

    #[test]
    fn admission_validation_rejects_degenerate_knobs() {
        // k = 0 would admit everything; explicitly rejected.
        assert!(FlashCacheConfig::builder()
            .admission(AdmissionPolicyConfig::ReReference { k: 0, window: 100 })
            .build()
            .is_err());
        assert!(FlashCacheConfig::builder()
            .admission(AdmissionPolicyConfig::ReReference { k: 1, window: 0 })
            .build()
            .is_err());
        // Zero-rate cap rejects every write; rejected at build time.
        assert!(FlashCacheConfig::builder()
            .admission(AdmissionPolicyConfig::WriteCap {
                pages_per_window: 0,
                window: 100,
                coalesce: false,
            })
            .build()
            .is_err());
        assert!(FlashCacheConfig::builder()
            .admission(AdmissionPolicyConfig::WriteCap {
                pages_per_window: 8,
                window: 0,
                coalesce: false,
            })
            .build()
            .is_err());
        assert!(FlashCacheConfig::builder()
            .longevity_buckets(0)
            .build()
            .is_err());
        assert!(FlashCacheConfig::builder()
            .longevity_buckets(17)
            .build()
            .is_err());
        let c = FlashCacheConfig::builder()
            .admission(AdmissionPolicyConfig::ReReference { k: 2, window: 64 })
            .longevity_buckets(4)
            .build()
            .unwrap();
        assert_eq!(
            c.admission,
            AdmissionPolicyConfig::ReReference { k: 2, window: 64 }
        );
        assert_eq!(c.longevity_buckets, 4);
    }

    #[test]
    fn admission_defaults_are_paper_faithful() {
        let c = FlashCacheConfig::default();
        assert_eq!(c.admission, AdmissionPolicyConfig::AdmitAll);
        assert_eq!(c.longevity_buckets, 1);
    }

    #[test]
    fn probe_and_pipeline_gates_default_on() {
        // The bench and CI smoke assume the shipped configuration is
        // the fast one; the oracles are opt-in.
        let c = FlashCacheConfig::default();
        assert!(c.fcht_swar_probe);
        assert!(c.batch_pipeline);
        let oracle = FlashCacheConfig::builder()
            .fcht_swar_probe(false)
            .batch_pipeline(false)
            .build()
            .unwrap();
        assert!(!oracle.fcht_swar_probe);
        assert!(!oracle.batch_pipeline);
    }

    #[test]
    fn policies_compare() {
        assert_eq!(ControllerPolicy::default(), ControllerPolicy::Programmable);
        assert_ne!(
            ControllerPolicy::FixedEcc { strength: 1 },
            ControllerPolicy::EccOnly
        );
    }
}
