//! NAND flash based secondary disk cache — the primary contribution of
//! *Improving NAND Flash Based Disk Caches* (Kgil, Roberts & Mudge,
//! ISCA 2008).
//!
//! The library implements the paper's full architecture:
//!
//! * the management tables — FCHT, FPST, FBST, FGST (§3, [`tables`]);
//! * read/write region splitting of the flash cache (§3.5, Figure 3/4);
//! * out-of-place writes with background garbage collection (Figure 8);
//! * the wear-level-aware replacement policy with newest-block
//!   migration (§3.6);
//! * the programmable flash memory controller policy: per-page variable
//!   ECC strength and MLC→SLC density switching driven by the Δtcs/Δtd
//!   heuristics and hot-page promotion (§4, §5.2);
//! * the DRAM primary disk cache fronting the flash ([`pdc`]).
//!
//! # Examples
//!
//! ```
//! use flashcache_core::{CacheOp, FlashCache, FlashCacheConfig};
//!
//! let mut cache = FlashCache::new(FlashCacheConfig::default()).unwrap();
//! // Miss, fill, hit.
//! assert!(cache.op(CacheOp::read(7)).access.needs_disk_read);
//! assert!(cache.op(CacheOp::read(7)).access.hit);
//! // Writes go to the write region out-of-place.
//! let w = cache.op(CacheOp::write(7));
//! assert!(w.access.hit);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod admission;
pub mod cache;
#[cfg(test)]
mod cache_tests;
pub mod config;
pub mod descriptor;
#[cfg(test)]
mod edge_tests;
pub mod error;
pub mod fxhash;
pub mod lru;
mod maint;
pub mod overheads;
pub mod pdc;
mod reclaim;
pub mod snapshot;
pub mod stats;
pub mod tables;

pub use admission::{AdmissionPolicy, AdmitAll, ReReference, WriteCap};
pub use cache::{AccessOutcome, AdmissionDecision, CacheOp, CacheOpKind, CacheOutcome, FlashCache};
pub use config::{
    AdmissionPolicyConfig, ConfigError, ControllerPolicy, FlashCacheConfig,
    FlashCacheConfigBuilder, SplitPolicy,
};
pub use descriptor::{DescriptorOp, FlashDescriptor};
pub use error::CacheError;
pub use flash_obs::ServiceTier;
pub use overheads::TableOverheads;
pub use pdc::PrimaryDiskCache;
pub use snapshot::{BlockSummary, CacheSnapshot, RegionSnapshot, WearSummary};
pub use stats::CacheStats;
pub use tables::RegionKind;
