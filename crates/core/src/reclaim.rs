//! Incremental reclaim indexes: O(1)/O(log B) victim selection for GC,
//! eviction, and wear levelling.
//!
//! The paper's reclaim machinery (§3.5–3.6) asks four questions of the
//! FBST every time space must be made:
//!
//! 1. *fully invalid* — a block with no valid pages that can simply be
//!    erased;
//! 2. *GC victim* — the block with the most invalid pages, above the
//!    write-amplification floor;
//! 3. *LRU victim* — the least recently used block with content;
//! 4. *newest block* — the globally least worn block (§3.6 override).
//!
//! The seed answered each with a full O(blocks) FBST scan per miss,
//! which dominates steady-state reclaim at realistic geometries. This
//! module answers all four incrementally:
//!
//! * a per-region **bucketed invalid-count index** (`Vec<BTreeSet>`
//!   indexed by `invalid_pages`, plus a running max-bucket cursor)
//!   serves the GC victim and fully-invalid queries;
//! * a per-region **block LRU** reuses the O(1) dense-keyed
//!   [`DenseLru`](crate::lru::DenseLru) — touch order is exactly
//!   `last_access` order, so the tracker's tail is the scan's
//!   `min_by_key(last_access)`;
//! * a global **wear ordering** (a bucket queue: `BTreeMap` keyed by
//!   the exact bit pattern of the §3.3 wear cost) serves the
//!   newest-block query, updated only at the O(1) points where
//!   `erase_count`/`TotalECC`/`TotalSLC` already change.
//!
//! Membership rules mirror the scans' filters exactly; the handful of
//! *reserved* blocks (open/spare allocator blocks) are filtered at
//! query time since at most four exist. The retained scans stay behind
//! [`FlashCache::check_invariants`](crate::cache::FlashCache) as
//! ground-truth oracles, and every index structure is cross-checked
//! against an FBST recount there.

use std::cell::Cell;
use std::collections::BTreeSet;

use nand_flash::BlockId;

use crate::lru::DenseLru;
use crate::tables::{Fbst, RegionKind};

/// A sorted `Vec<u32>` set. The invalid-count buckets hold a handful of
/// block ids each but are updated on *every* program and invalidate;
/// a flat sorted vector keeps those updates allocation-free (`BTreeSet`
/// node churn dominated the replay profile), while iteration stays in
/// ascending order like the `BTreeSet` it replaces.
#[derive(Debug, Clone, Default)]
struct SortedSet(Vec<u32>);

impl SortedSet {
    fn insert(&mut self, v: u32) {
        if let Err(i) = self.0.binary_search(&v) {
            self.0.insert(i, v);
        }
    }

    fn remove(&mut self, v: u32) {
        if let Ok(i) = self.0.binary_search(&v) {
            self.0.remove(i);
        }
    }

    fn contains(&self, v: u32) -> bool {
        self.0.binary_search(&v).is_ok()
    }

    fn len(&self) -> usize {
        self.0.len()
    }

    fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Ascending iteration (double-ended, like `BTreeSet::iter`).
    fn iter(&self) -> std::slice::Iter<'_, u32> {
        self.0.iter()
    }
}

/// Maps an `f64` wear cost onto a `u64` whose unsigned order matches
/// the float's `partial_cmp` order (for non-NaN values). Keys compare
/// *exactly* as the scan oracle compares costs — no quantization.
fn order_key(cost: f64) -> u64 {
    let bits = cost.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// Where a block currently lives in its region's invalid-count index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BucketLoc {
    /// Not indexed (no programmed pages, or invalid count is zero).
    None,
    /// In the fully-invalid set (`valid == 0`, `invalid > 0`).
    FullyInvalid,
    /// In GC bucket `invalid` (`valid > 0`, `invalid > 0`).
    Gc(u32),
}

/// The per-region structures: invalid-count buckets plus block LRU.
#[derive(Debug)]
struct RegionIndex {
    /// Blocks with `valid == 0 && invalid > 0` — erasable for free.
    fully_invalid: SortedSet,
    /// `gc_buckets[i]`: blocks with `valid > 0 && invalid == i`.
    /// Index 0 is never populated (kept so `invalid` indexes directly).
    gc_buckets: Vec<SortedSet>,
    /// Upper bound on the highest non-empty GC bucket. Raised eagerly
    /// on insert, lowered lazily — each lowering step pairs with an
    /// earlier insert, so the walk is amortized O(1).
    max_bucket: u32,
    /// Blocks with any programmed pages, in `last_access` order.
    lru: DenseLru,
}

impl RegionIndex {
    fn new(blocks: u32, slots_per_block: u32) -> Self {
        RegionIndex {
            fully_invalid: SortedSet::default(),
            gc_buckets: vec![SortedSet::default(); slots_per_block as usize + 1],
            max_bucket: 0,
            lru: DenseLru::with_capacity(blocks as usize),
        }
    }

    fn bucket_remove(&mut self, b: BlockId, loc: BucketLoc) {
        match loc {
            BucketLoc::None => {}
            BucketLoc::FullyInvalid => {
                self.fully_invalid.remove(b.0);
            }
            BucketLoc::Gc(i) => {
                self.gc_buckets[i as usize].remove(b.0);
            }
        }
    }

    fn bucket_insert(&mut self, b: BlockId, loc: BucketLoc) {
        match loc {
            BucketLoc::None => {}
            BucketLoc::FullyInvalid => {
                self.fully_invalid.insert(b.0);
            }
            BucketLoc::Gc(i) => {
                self.gc_buckets[i as usize].insert(b.0);
                self.max_bucket = self.max_bucket.max(i);
            }
        }
    }
}

/// The incremental reclaim index of a
/// [`FlashCache`](crate::cache::FlashCache). Maintained at every FBST
/// mutation via [`ReclaimIndex::sync`]; queried by `make_space` instead
/// of scanning.
#[derive(Debug)]
pub(crate) struct ReclaimIndex {
    read: RegionIndex,
    write: RegionIndex,
    /// Wear ordering over non-retired blocks with valid pages, as flat
    /// `(exact-cost key, block)` pairs: the `BTreeSet` keeps the
    /// minimum (the "newest" block) at the front in O(log B), and a
    /// single flat tree re-keys without the per-bucket set allocations
    /// a map-of-sets pays on every program.
    wear: BTreeSet<(u64, u32)>,
    /// Per block: the wear key it is filed under, if a member.
    wear_key: Vec<Option<u64>>,
    /// Per block: which region's index holds it (None = no content).
    region_of: Vec<Option<RegionKind>>,
    /// Per block: its location in that region's invalid-count index.
    loc: Vec<BucketLoc>,
    /// Entries stepped over during queries (reserved blocks, excluded
    /// blocks): the index's residual non-O(1) work, surfaced through
    /// `flash.reclaim_index_skips`.
    skips: Cell<u64>,
}

impl ReclaimIndex {
    pub(crate) fn new(blocks: u32, slots_per_block: u32) -> Self {
        ReclaimIndex {
            read: RegionIndex::new(blocks, slots_per_block),
            write: RegionIndex::new(blocks, slots_per_block),
            wear: BTreeSet::new(),
            wear_key: vec![None; blocks as usize],
            region_of: vec![None; blocks as usize],
            loc: vec![BucketLoc::None; blocks as usize],
            skips: Cell::new(0),
        }
    }

    fn region(&self, kind: RegionKind) -> &RegionIndex {
        match kind {
            RegionKind::Read => &self.read,
            RegionKind::Write => &self.write,
        }
    }

    /// Reconciles every index structure with a block's FBST state.
    /// Called after any mutation of `valid_pages`, `invalid_pages`,
    /// `retired`, or the wear-cost components. O(log B) worst case;
    /// no-ops when nothing relevant changed.
    pub(crate) fn sync(
        &mut self,
        b: BlockId,
        region: RegionKind,
        valid: u32,
        invalid: u32,
        retired: bool,
        wear_cost: f64,
    ) {
        let i = b.0 as usize;
        // --- region membership (buckets + LRU) ---
        let want_region = if retired || valid + invalid == 0 {
            None
        } else {
            Some(region)
        };
        let want_loc = match want_region {
            None => BucketLoc::None,
            Some(_) if valid == 0 => BucketLoc::FullyInvalid,
            Some(_) if invalid > 0 => BucketLoc::Gc(invalid),
            Some(_) => BucketLoc::None,
        };
        let cur_region = self.region_of[i];
        if cur_region != want_region {
            if let Some(old) = cur_region {
                let old_loc = self.loc[i];
                let r = match old {
                    RegionKind::Read => &mut self.read,
                    RegionKind::Write => &mut self.write,
                };
                r.bucket_remove(b, old_loc);
                r.lru.remove(b.0);
                self.loc[i] = BucketLoc::None;
            }
            if let Some(new) = want_region {
                let r = match new {
                    RegionKind::Read => &mut self.read,
                    RegionKind::Write => &mut self.write,
                };
                // A block (re)gains content only via a program, which
                // stamps `last_access = now` — entering as MRU is the
                // correct recency position.
                r.lru.touch(b.0);
                r.bucket_insert(b, want_loc);
                self.loc[i] = want_loc;
            }
            self.region_of[i] = want_region;
        } else if let Some(kind) = cur_region {
            if self.loc[i] != want_loc {
                let old_loc = self.loc[i];
                let r = match kind {
                    RegionKind::Read => &mut self.read,
                    RegionKind::Write => &mut self.write,
                };
                r.bucket_remove(b, old_loc);
                r.bucket_insert(b, want_loc);
                self.loc[i] = want_loc;
            }
        }
        // --- wear ordering membership ---
        let want_wear = if valid > 0 && !retired {
            Some(order_key(wear_cost))
        } else {
            None
        };
        if self.wear_key[i] != want_wear {
            if let Some(old) = self.wear_key[i] {
                self.wear.remove(&(old, b.0));
            }
            if let Some(new) = want_wear {
                self.wear.insert((new, b.0));
            }
            self.wear_key[i] = want_wear;
        }
    }

    /// Marks `b` most recently used in whichever region tracks it
    /// (no-op for blocks with no content). Call wherever the FBST's
    /// `last_access` is stamped with the current tick.
    pub(crate) fn touch(&mut self, b: BlockId) {
        if let Some(kind) = self.region_of[b.0 as usize] {
            let r = match kind {
                RegionKind::Read => &mut self.read,
                RegionKind::Write => &mut self.write,
            };
            r.lru.touch(b.0);
        }
    }

    fn skip(&self) {
        self.skips.set(self.skips.get() + 1);
    }

    /// Entries stepped over by queries so far (exported as a metric).
    pub(crate) fn skips(&self) -> u64 {
        self.skips.get()
    }

    /// A fully-invalid block of `kind` (lowest id, matching the scan
    /// oracle's iteration order), skipping reserved blocks.
    pub(crate) fn fully_invalid(
        &self,
        kind: RegionKind,
        reserved: impl Fn(BlockId) -> bool,
    ) -> Option<BlockId> {
        self.region(kind)
            .fully_invalid
            .iter()
            .map(|&b| BlockId(b))
            .find(|&b| {
                let ok = !reserved(b);
                if !ok {
                    self.skip();
                }
                ok
            })
    }

    /// The most profitable GC victim of `kind`: highest invalid count
    /// at least `floor`, ties broken toward the highest block id
    /// (matching `max_by_key`'s last-maximum rule in the scan oracle).
    pub(crate) fn gc_victim(
        &self,
        kind: RegionKind,
        floor: u32,
        reserved: impl Fn(BlockId) -> bool,
    ) -> Option<BlockId> {
        let r = self.region(kind);
        let top = r.max_bucket.min(r.gc_buckets.len() as u32 - 1);
        for bucket in (floor.max(1)..=top).rev() {
            for &b in r.gc_buckets[bucket as usize].iter().rev() {
                if reserved(BlockId(b)) {
                    self.skip();
                    continue;
                }
                return Some(BlockId(b));
            }
        }
        None
    }

    /// Lowers `kind`'s max-bucket cursor past empty buckets so hot-path
    /// GC queries stay amortized O(1). Read-only queries (invariant
    /// checks) skip this and pay the walk instead.
    pub(crate) fn trim_gc_cursor(&mut self, kind: RegionKind) {
        let r = match kind {
            RegionKind::Read => &mut self.read,
            RegionKind::Write => &mut self.write,
        };
        let top = r.max_bucket.min(r.gc_buckets.len() as u32 - 1);
        r.max_bucket = (1..=top)
            .rev()
            .find(|&i| !r.gc_buckets[i as usize].is_empty())
            .unwrap_or(0);
    }

    /// The least recently used block of `kind` with content, skipping
    /// reserved blocks. The tracker's LRU-first order equals ascending
    /// `last_access` order, so the first acceptable key matches the
    /// scan's `min_by_key(last_access)` key.
    pub(crate) fn lru_victim(
        &self,
        kind: RegionKind,
        reserved: impl Fn(BlockId) -> bool,
    ) -> Option<BlockId> {
        self.region(kind)
            .lru
            .iter_lru_first()
            .map(BlockId)
            .find(|&b| {
                let ok = !reserved(b);
                if !ok {
                    self.skip();
                }
                ok
            })
    }

    /// The globally newest (least worn) block with valid pages, ties
    /// broken toward the lowest id (matching `min_by`'s first-minimum
    /// rule in the scan oracle). `exclude` is the eviction victim the
    /// §3.6 override is comparing against.
    pub(crate) fn newest_block(
        &self,
        exclude: BlockId,
        reserved: impl Fn(BlockId) -> bool,
    ) -> Option<BlockId> {
        for &(_, b) in &self.wear {
            let b = BlockId(b);
            if b == exclude || reserved(b) {
                self.skip();
                continue;
            }
            return Some(b);
        }
        None
    }

    /// Cross-checks every index structure against an FBST recount.
    /// O(blocks); used by `check_invariants` to keep the incremental
    /// maintenance honest against the ground truth.
    pub(crate) fn verify(&self, fbst: &Fbst, k1: f64, k2: f64) -> Result<(), String> {
        let mut counts = [(0usize, 0usize, 0usize); 2]; // (fully, gc, lru)
        let mut wear_members = 0usize;
        for (b, s) in fbst.iter() {
            let i = b.0 as usize;
            let expect_region = if s.retired || s.valid_pages + s.invalid_pages == 0 {
                None
            } else {
                Some(s.region)
            };
            if self.region_of[i] != expect_region {
                return Err(format!(
                    "{b}: reclaim region {:?} != expected {:?}",
                    self.region_of[i], expect_region
                ));
            }
            let expect_loc = match expect_region {
                None => BucketLoc::None,
                Some(_) if s.valid_pages == 0 => BucketLoc::FullyInvalid,
                Some(_) if s.invalid_pages > 0 => BucketLoc::Gc(s.invalid_pages),
                Some(_) => BucketLoc::None,
            };
            if self.loc[i] != expect_loc {
                return Err(format!(
                    "{b}: reclaim bucket {:?} != expected {:?}",
                    self.loc[i], expect_loc
                ));
            }
            if let Some(kind) = expect_region {
                let r = self.region(kind);
                let ri = match kind {
                    RegionKind::Read => 0,
                    RegionKind::Write => 1,
                };
                match expect_loc {
                    BucketLoc::FullyInvalid => {
                        if !r.fully_invalid.contains(b.0) {
                            return Err(format!("{b}: missing from fully-invalid set"));
                        }
                        counts[ri].0 += 1;
                    }
                    BucketLoc::Gc(inv) => {
                        if !r.gc_buckets[inv as usize].contains(b.0) {
                            return Err(format!("{b}: missing from GC bucket {inv}"));
                        }
                        if inv > r.max_bucket {
                            return Err(format!(
                                "{b}: GC bucket {inv} above cursor {}",
                                r.max_bucket
                            ));
                        }
                        counts[ri].1 += 1;
                    }
                    BucketLoc::None => {}
                }
                if !r.lru.contains(b.0) {
                    return Err(format!("{b}: missing from {kind:?} block LRU"));
                }
                counts[ri].2 += 1;
            }
            let expect_wear = if s.valid_pages > 0 && !s.retired {
                Some(order_key(fbst.wear_out(b, k1, k2)))
            } else {
                None
            };
            if self.wear_key[i] != expect_wear {
                return Err(format!(
                    "{b}: wear key {:?} != expected {:?} (cost {})",
                    self.wear_key[i],
                    expect_wear,
                    fbst.wear_out(b, k1, k2)
                ));
            }
            if let Some(key) = expect_wear {
                if !self.wear.contains(&(key, b.0)) {
                    return Err(format!("{b}: missing from wear bucket {key:#x}"));
                }
                wear_members += 1;
            }
        }
        // No stale entries: totals must match the recount exactly.
        for (ri, kind) in [(0, RegionKind::Read), (1, RegionKind::Write)] {
            let r = self.region(kind);
            let gc_total: usize = r.gc_buckets.iter().map(|s| s.len()).sum();
            if r.fully_invalid.len() != counts[ri].0 {
                return Err(format!(
                    "{kind:?}: fully-invalid set has {} entries, expected {}",
                    r.fully_invalid.len(),
                    counts[ri].0
                ));
            }
            if gc_total != counts[ri].1 {
                return Err(format!(
                    "{kind:?}: GC buckets hold {gc_total} entries, expected {}",
                    counts[ri].1
                ));
            }
            if r.lru.len() != counts[ri].2 {
                return Err(format!(
                    "{kind:?}: block LRU has {} entries, expected {}",
                    r.lru.len(),
                    counts[ri].2
                ));
            }
        }
        let wear_total = self.wear.len();
        if wear_total != wear_members {
            return Err(format!(
                "wear index holds {wear_total} entries, expected {wear_members}"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_key_preserves_float_order() {
        let costs = [0.0, 0.5, 1.0, 1.5, 8.0, 64.25, 1e9, f64::MAX];
        for w in costs.windows(2) {
            assert!(order_key(w[0]) < order_key(w[1]), "{} vs {}", w[0], w[1]);
        }
        assert!(order_key(-1.0) < order_key(0.0));
        assert!(order_key(-2.0) < order_key(-1.0));
        assert_eq!(order_key(3.25), order_key(3.25));
    }

    #[test]
    fn sync_moves_block_between_structures() {
        let mut idx = ReclaimIndex::new(8, 16);
        let b = BlockId(3);
        // Program: one valid page, no invalid — LRU + wear only.
        idx.sync(b, RegionKind::Read, 1, 0, false, 2.0);
        assert_eq!(idx.lru_victim(RegionKind::Read, |_| false), Some(b));
        assert_eq!(idx.newest_block(BlockId(999), |_| false), Some(b));
        assert_eq!(idx.gc_victim(RegionKind::Read, 1, |_| false), None);
        // Invalidate one of two: GC bucket 1.
        idx.sync(b, RegionKind::Read, 1, 1, false, 2.0);
        assert_eq!(idx.gc_victim(RegionKind::Read, 1, |_| false), Some(b));
        assert_eq!(idx.fully_invalid(RegionKind::Read, |_| false), None);
        // Last valid page gone: fully invalid, out of the wear order.
        idx.sync(b, RegionKind::Read, 0, 2, false, 2.0);
        assert_eq!(idx.fully_invalid(RegionKind::Read, |_| false), Some(b));
        assert_eq!(idx.gc_victim(RegionKind::Read, 1, |_| false), None);
        assert_eq!(idx.newest_block(BlockId(999), |_| false), None);
        // Erase: empty everywhere.
        idx.sync(b, RegionKind::Read, 0, 0, false, 3.0);
        assert_eq!(idx.fully_invalid(RegionKind::Read, |_| false), None);
        assert_eq!(idx.lru_victim(RegionKind::Read, |_| false), None);
    }

    #[test]
    fn gc_victim_prefers_highest_bucket_then_highest_id() {
        let mut idx = ReclaimIndex::new(8, 16);
        idx.sync(BlockId(1), RegionKind::Write, 3, 5, false, 1.0);
        idx.sync(BlockId(2), RegionKind::Write, 2, 9, false, 1.0);
        idx.sync(BlockId(4), RegionKind::Write, 2, 9, false, 1.0);
        assert_eq!(
            idx.gc_victim(RegionKind::Write, 2, |_| false),
            Some(BlockId(4)),
            "last maximum, as max_by_key breaks ties"
        );
        // Floor above every bucket: nothing qualifies.
        assert_eq!(idx.gc_victim(RegionKind::Write, 10, |_| false), None);
        // Reserved blocks are stepped over.
        assert_eq!(
            idx.gc_victim(RegionKind::Write, 2, |b| b == BlockId(4)),
            Some(BlockId(2))
        );
        assert!(idx.skips() > 0);
    }

    #[test]
    fn wear_order_updates_with_cost_changes() {
        let mut idx = ReclaimIndex::new(4, 8);
        idx.sync(BlockId(0), RegionKind::Read, 1, 0, false, 5.0);
        idx.sync(BlockId(1), RegionKind::Read, 1, 0, false, 3.0);
        assert_eq!(idx.newest_block(BlockId(99), |_| false), Some(BlockId(1)));
        // Block 1 wears past block 0.
        idx.sync(BlockId(1), RegionKind::Read, 1, 0, false, 9.0);
        assert_eq!(idx.newest_block(BlockId(99), |_| false), Some(BlockId(0)));
        // Excluding the newest falls through to the next.
        assert_eq!(idx.newest_block(BlockId(0), |_| false), Some(BlockId(1)));
        // Retirement removes a block permanently.
        idx.sync(BlockId(0), RegionKind::Read, 1, 0, true, 5.0);
        assert_eq!(idx.newest_block(BlockId(99), |_| false), Some(BlockId(1)));
    }

    #[test]
    fn trim_cursor_drops_emptied_buckets() {
        let mut idx = ReclaimIndex::new(8, 16);
        idx.sync(BlockId(1), RegionKind::Read, 1, 12, false, 1.0);
        idx.sync(BlockId(2), RegionKind::Read, 1, 3, false, 1.0);
        assert_eq!(idx.read.max_bucket, 12);
        // Block 1 erased: bucket 12 empties.
        idx.sync(BlockId(1), RegionKind::Read, 0, 0, false, 2.0);
        idx.trim_gc_cursor(RegionKind::Read);
        assert_eq!(idx.read.max_bucket, 3);
        assert_eq!(
            idx.gc_victim(RegionKind::Read, 1, |_| false),
            Some(BlockId(2))
        );
    }
}
