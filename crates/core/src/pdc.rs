//! The primary disk cache (PDC): the small DRAM page cache that fronts
//! the flash secondary cache (Figure 2). Managed by the OS as a
//! write-back LRU over 2KB disk pages.

use crate::fxhash::FxHashMap;
use crate::lru::LruTracker;

/// Result of a PDC insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PdcEviction {
    /// The disk page pushed out.
    pub page: u64,
    /// Whether it carried unwritten data (must be written to the next
    /// level — the flash write cache).
    pub dirty: bool,
}

/// A fixed-capacity LRU page cache standing in for the DRAM-resident
/// primary disk cache.
///
/// # Examples
///
/// ```
/// use flashcache_core::pdc::PrimaryDiskCache;
///
/// let mut pdc = PrimaryDiskCache::new(2);
/// assert!(!pdc.access(1));          // cold miss
/// pdc.insert(1, false);
/// assert!(pdc.access(1));           // hit
/// pdc.insert(2, false);
/// let evicted = pdc.insert(3, true); // capacity reached
/// assert_eq!(evicted.unwrap().page, 1);
/// ```
#[derive(Debug)]
pub struct PrimaryDiskCache {
    capacity_pages: usize,
    lru: LruTracker,
    dirty: FxHashMap<u64, bool>,
}

impl PrimaryDiskCache {
    /// Creates a PDC holding `capacity_pages` 2KB pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_pages` is zero.
    pub fn new(capacity_pages: usize) -> Self {
        assert!(capacity_pages > 0, "PDC capacity must be nonzero");
        PrimaryDiskCache {
            capacity_pages,
            lru: LruTracker::new(),
            dirty: FxHashMap::default(),
        }
    }

    /// Capacity in pages.
    pub fn capacity_pages(&self) -> usize {
        self.capacity_pages
    }

    /// Current resident pages.
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }

    /// Touches `page`; returns `true` on a hit (recency updated).
    pub fn access(&mut self, page: u64) -> bool {
        if self.dirty.contains_key(&page) {
            self.lru.touch(page);
            true
        } else {
            false
        }
    }

    /// Marks a resident page dirty; returns whether it was resident.
    pub fn mark_dirty(&mut self, page: u64) -> bool {
        if let Some(d) = self.dirty.get_mut(&page) {
            *d = true;
            self.lru.touch(page);
            true
        } else {
            false
        }
    }

    /// Inserts `page` (dirty or clean), evicting the LRU page if at
    /// capacity. Inserting a resident page updates its dirty bit
    /// (OR-wise) and recency instead.
    pub fn insert(&mut self, page: u64, dirty: bool) -> Option<PdcEviction> {
        if let Some(d) = self.dirty.get_mut(&page) {
            *d |= dirty;
            self.lru.touch(page);
            return None;
        }
        let evicted = if self.lru.len() >= self.capacity_pages {
            let victim = self.lru.pop_lru().expect("nonempty at capacity");
            let was_dirty = self.dirty.remove(&victim).unwrap_or(false);
            Some(PdcEviction {
                page: victim,
                dirty: was_dirty,
            })
        } else {
            None
        };
        self.lru.touch(page);
        self.dirty.insert(page, dirty);
        evicted
    }

    /// Drains every dirty page, marking them clean. Returns the pages in
    /// ascending order (stable output keeps whole-simulation runs
    /// deterministic) — the periodic write-back of §5.1.
    pub fn flush_dirty(&mut self) -> Vec<u64> {
        let mut out = Vec::new();
        for (&p, d) in self.dirty.iter_mut() {
            if *d {
                *d = false;
                out.push(p);
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut p = PrimaryDiskCache::new(4);
        assert!(!p.access(7));
        assert!(p.insert(7, false).is_none());
        assert!(p.access(7));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut p = PrimaryDiskCache::new(2);
        p.insert(1, false);
        p.insert(2, false);
        p.access(1); // 2 becomes LRU
        let ev = p.insert(3, false).unwrap();
        assert_eq!(
            ev,
            PdcEviction {
                page: 2,
                dirty: false
            }
        );
    }

    #[test]
    fn dirty_state_travels_with_eviction() {
        let mut p = PrimaryDiskCache::new(1);
        p.insert(5, true);
        let ev = p.insert(6, false).unwrap();
        assert!(ev.dirty && ev.page == 5);
    }

    #[test]
    fn reinsert_merges_dirty_bit() {
        let mut p = PrimaryDiskCache::new(2);
        p.insert(1, false);
        assert!(p.insert(1, true).is_none());
        let flushed = p.flush_dirty();
        assert_eq!(flushed, vec![1]);
        // Second flush is empty: pages are now clean.
        assert!(p.flush_dirty().is_empty());
    }

    #[test]
    fn mark_dirty_requires_residency() {
        let mut p = PrimaryDiskCache::new(2);
        assert!(!p.mark_dirty(9));
        p.insert(9, false);
        assert!(p.mark_dirty(9));
        assert_eq!(p.flush_dirty(), vec![9]);
    }

    #[test]
    #[should_panic(expected = "capacity must be nonzero")]
    fn zero_capacity_rejected() {
        PrimaryDiskCache::new(0);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut p = PrimaryDiskCache::new(8);
        for i in 0..1000 {
            p.insert(i, i % 3 == 0);
            assert!(p.len() <= 8);
        }
    }
}
