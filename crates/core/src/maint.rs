//! Space maintenance for the flash cache: log-structured slot allocation,
//! garbage collection (valid-data compaction, §3.5/Fig. 8), block
//! eviction with the wear-level-aware replacement policy (§3.6), and
//! block retirement (§5.2).
//!
//! All reclaim work (reads, programs, erases performed to make space) is
//! accounted as *background* time in [`CacheStats::gc_time_us`], matching
//! the paper's "all GCs are performed in the background".

use flash_obs::Event;
use nand_flash::{BlockId, CellMode, OpContext, PageAddr};

use crate::cache::{FlashCache, OpenBlock};
use crate::config::ControllerPolicy;
use crate::error::CacheError;
use crate::stats::CacheStats;
use crate::tables::RegionKind;

impl FlashCache {
    /// The region a block's state should record, folding unified mode
    /// onto the read region.
    fn storage_kind(&self, kind: RegionKind) -> RegionKind {
        if self.unified {
            RegionKind::Read
        } else {
            kind
        }
    }

    fn block_in_region(&self, b: BlockId, kind: RegionKind) -> bool {
        self.unified || self.fbst.get(b).region == kind
    }

    fn block_is_reserved(&self, b: BlockId) -> bool {
        let check = |r: &crate::cache::Region| {
            r.open.iter().flatten().any(|o| o.id == b) || r.spare == Some(b)
        };
        check(&self.read_region) || check(&self.write_region)
    }

    /// Maximum ECC strength the active controller policy can program.
    fn policy_max_strength(&self) -> u8 {
        match self.config.controller {
            ControllerPolicy::FixedEcc { strength } => strength,
            _ => self.config.max_ecc,
        }
    }

    /// Whether the active policy can fall back to SLC mode.
    fn policy_allows_slc(&self) -> bool {
        matches!(
            self.config.controller,
            ControllerPolicy::Programmable | ControllerPolicy::DensityOnly
        ) || self.config.default_mode == CellMode::Slc
    }

    /// Allocates the next programmable slot in `kind`, making space if
    /// needed. `want_slc` forces the destination physical page into SLC
    /// mode (hot-page promotion); `bucket` selects which longevity open
    /// block the slot comes from (clamped to the region's bucket count —
    /// always 0 for the read region). Returns `None` when the device can
    /// no longer provide space (worn out).
    pub(crate) fn allocate_slot(
        &mut self,
        kind: RegionKind,
        want_slc: bool,
        bucket: u32,
    ) -> Result<Option<PageAddr>, CacheError> {
        let mut attempts = 0u32;
        let limit = 2 * self.device.geometry().blocks + 8;
        loop {
            if let Some(addr) = self.take_from_open(kind, want_slc, bucket) {
                return Ok(Some(addr));
            }
            let region = self.region_mut(kind);
            let bi = (bucket as usize).min(region.open.len() - 1);
            if let Some(b) = region.free.pop_front() {
                region.open[bi] = Some(OpenBlock {
                    id: b,
                    next_slot: 0,
                });
                continue;
            }
            if !self.make_space(kind)? {
                // Last resort: consume the reserved spare so the final
                // surviving blocks still cycle (and can retire) instead
                // of sitting pinned forever.
                let region = self.region_mut(kind);
                if let Some(spare) = region.spare.take() {
                    region.open[bi] = Some(OpenBlock {
                        id: spare,
                        next_slot: 0,
                    });
                    continue;
                }
                return Ok(None);
            }
            attempts += 1;
            if attempts > limit {
                return Ok(None);
            }
        }
    }

    /// Advances `next_slot` to the next programmable slot of `block`
    /// compatible with the request's mode, honouring per-physical-page
    /// configuration (and converting MLC pages to SLC for forced-SLC
    /// requests). Shared by open-block allocation and block-to-block
    /// migration — the walk must agree in both, or a migrated block
    /// would be laid out differently than a freshly programmed one.
    fn advance_slot(
        &mut self,
        block: BlockId,
        next_slot: &mut u32,
        want_slc: bool,
    ) -> Option<PageAddr> {
        let spb = self.device.geometry().slots_per_block();
        while *next_slot < spb {
            let addr = PageAddr::new(block, *next_slot);
            let even = PageAddr::new(block, *next_slot & !1u32);
            if want_slc {
                if addr.is_upper_half() {
                    // The lower half is already committed MLC; skip to the
                    // next physical page for an SLC allocation.
                    *next_slot += 1;
                    continue;
                }
                if self.fpst.get(even).mode == CellMode::Mlc {
                    self.fpst.get_mut(even).mode = CellMode::Slc;
                    self.fpst.get_mut(even.sibling()).mode = CellMode::Slc;
                    self.fbst.get_mut(block).slc_pages += 1;
                    // slc_pages is a wear-cost term; keep the index fresh.
                    self.reclaim_sync(block);
                }
                *next_slot += 2;
                return Some(addr);
            }
            if addr.is_upper_half() {
                // Lower half was programmed MLC; the upper half follows.
                *next_slot += 1;
                return Some(addr);
            }
            if self.fpst.get(even).mode == CellMode::Slc {
                // Wear-demoted physical page: one SLC slot, skip sibling.
                *next_slot += 2;
                return Some(addr);
            }
            *next_slot += 1;
            return Some(addr);
        }
        None
    }

    /// Advances `bucket`'s open-block pointer to the next slot compatible
    /// with the request, honouring per-physical-page mode configuration.
    fn take_from_open(
        &mut self,
        kind: RegionKind,
        want_slc: bool,
        bucket: u32,
    ) -> Option<PageAddr> {
        let region = self.region_mut(kind);
        let bi = (bucket as usize).min(region.open.len() - 1);
        let mut ob = region.open[bi]?;
        let spb = self.device.geometry().slots_per_block();
        let result = self.advance_slot(ob.id, &mut ob.next_slot, want_slc);
        let region = self.region_mut(kind);
        if result.is_none() && ob.next_slot >= spb {
            region.open[bi] = None;
        } else {
            region.open[bi] = Some(ob);
        }
        result
    }

    /// Tries to create free space in `kind`. Returns `false` when no
    /// further progress is possible (all blocks retired or pinned).
    fn make_space(&mut self, kind: RegionKind) -> Result<bool, CacheError> {
        // 1. A fully invalidated block can simply be erased.
        if let Some(b) = self.find_fully_invalid(kind) {
            self.erase_and_recycle(b, kind)?;
            return Ok(true);
        }
        // 2. Compaction GC — the common case for the write region (§5.1).
        //    The read region compacts only via its watermark trigger.
        if self.unified || kind == RegionKind::Write {
            if let Some(b) = self.find_gc_victim(kind) {
                if self.gc_compact(b, kind)? {
                    return Ok(true);
                }
            }
        }
        // 3. Evict a whole block.
        self.evict_block(kind)
    }

    /// The write-amplification floor for GC victims: minimum invalid
    /// pages a block must carry before compaction beats eviction.
    fn gc_floor(&self) -> u32 {
        let spb = self.device.geometry().slots_per_block();
        ((spb as f64 * self.config.gc_min_invalid_fraction).ceil() as u32).max(1)
    }

    /// A fully invalidated block of `kind`, from the reclaim index (or
    /// the scan oracle when the index is disabled).
    fn find_fully_invalid(&mut self, kind: RegionKind) -> Option<BlockId> {
        if !self.config.use_reclaim_index {
            self.stats.reclaim_scan_fallbacks += 1;
            return self.find_fully_invalid_scan(kind);
        }
        self.stats.reclaim_index_queries += 1;
        let region = self.storage_kind(kind);
        let found = self
            .reclaim
            .fully_invalid(region, |b| self.block_is_reserved(b));
        self.stats.reclaim_index_hits += found.is_some() as u64;
        found
    }

    /// O(blocks) ground-truth oracle for [`Self::find_fully_invalid`],
    /// retained for `check_invariants` and the differential tests.
    fn find_fully_invalid_scan(&self, kind: RegionKind) -> Option<BlockId> {
        self.fbst
            .iter()
            .filter(|(b, s)| {
                !s.retired
                    && self.block_in_region(*b, kind)
                    && !self.block_is_reserved(*b)
                    && s.valid_pages == 0
                    && s.invalid_pages > 0
            })
            .map(|(b, _)| b)
            .next()
    }

    /// The most profitable compaction victim: the block with the most
    /// invalid pages, provided it clears the write-amplification floor
    /// (`gc_min_invalid_fraction`) — otherwise `None`, and eviction is
    /// the better reclaim.
    fn find_gc_victim(&mut self, kind: RegionKind) -> Option<BlockId> {
        if !self.config.use_reclaim_index {
            self.stats.reclaim_scan_fallbacks += 1;
            return self.find_gc_victim_scan(kind);
        }
        self.stats.reclaim_index_queries += 1;
        let region = self.storage_kind(kind);
        self.reclaim.trim_gc_cursor(region);
        let floor = self.gc_floor();
        let found = self
            .reclaim
            .gc_victim(region, floor, |b| self.block_is_reserved(b));
        self.stats.reclaim_index_hits += found.is_some() as u64;
        found
    }

    /// O(blocks) ground-truth oracle for [`Self::find_gc_victim`].
    fn find_gc_victim_scan(&self, kind: RegionKind) -> Option<BlockId> {
        let floor = self.gc_floor();
        self.fbst
            .iter()
            .filter(|(b, s)| {
                !s.retired
                    && self.block_in_region(*b, kind)
                    && !self.block_is_reserved(*b)
                    && s.invalid_pages >= floor
                    && s.valid_pages > 0
            })
            .max_by_key(|(_, s)| s.invalid_pages)
            .map(|(b, _)| b)
    }

    /// The least recently used block of `kind` with content.
    fn find_lru_victim(&mut self, kind: RegionKind) -> Option<BlockId> {
        if !self.config.use_reclaim_index {
            self.stats.reclaim_scan_fallbacks += 1;
            return self.find_lru_victim_scan(kind);
        }
        self.stats.reclaim_index_queries += 1;
        let region = self.storage_kind(kind);
        let found = self
            .reclaim
            .lru_victim(region, |b| self.block_is_reserved(b));
        self.stats.reclaim_index_hits += found.is_some() as u64;
        found
    }

    /// O(blocks) ground-truth oracle for [`Self::find_lru_victim`].
    fn find_lru_victim_scan(&self, kind: RegionKind) -> Option<BlockId> {
        self.fbst
            .iter()
            .filter(|(b, s)| {
                !s.retired
                    && self.block_in_region(*b, kind)
                    && !self.block_is_reserved(*b)
                    && s.valid_pages + s.invalid_pages > 0
            })
            .min_by_key(|(_, s)| s.last_access)
            .map(|(b, _)| b)
    }

    /// The globally newest block: minimum degree of wear out across the
    /// *entire* flash (§3.6: "Newest blocks are chosen from the entire
    /// set of Flash blocks"), restricted to blocks whose content can be
    /// migrated.
    fn find_newest_block(&mut self, exclude: BlockId) -> Option<BlockId> {
        if !self.config.use_reclaim_index {
            self.stats.reclaim_scan_fallbacks += 1;
            return self.find_newest_block_scan(exclude);
        }
        self.stats.reclaim_index_queries += 1;
        let found = self
            .reclaim
            .newest_block(exclude, |b| self.block_is_reserved(b));
        self.stats.reclaim_index_hits += found.is_some() as u64;
        found
    }

    /// O(blocks) ground-truth oracle for [`Self::find_newest_block`].
    fn find_newest_block_scan(&self, exclude: BlockId) -> Option<BlockId> {
        let (k1, k2) = (self.config.wear_k1, self.config.wear_k2);
        self.fbst
            .iter()
            .filter(|(b, s)| {
                *b != exclude && !s.retired && !self.block_is_reserved(*b) && s.valid_pages > 0
            })
            .map(|(b, _)| b)
            .min_by(|&a, &b| {
                // total_cmp: no panic path even for NaN wear costs.
                self.fbst
                    .wear_out(a, k1, k2)
                    .total_cmp(&self.fbst.wear_out(b, k1, k2))
            })
    }

    /// Public entry for watermark-triggered compaction. Returns whether a
    /// pass ran (victim selection applies the write-amplification floor).
    pub(crate) fn collect_garbage(&mut self, kind: RegionKind) -> Result<bool, CacheError> {
        match self.find_gc_victim(kind) {
            Some(victim) => self.gc_compact(victim, kind),
            None => Ok(false),
        }
    }

    /// Moves the victim's valid pages into the allocation stream, then
    /// erases the victim (Figure 8's GC flow).
    fn gc_compact(&mut self, victim: BlockId, kind: RegionKind) -> Result<bool, CacheError> {
        let mut gc_us = 0.0;
        let moved = self.relocate_valid_pages(victim, kind, &mut gc_us)?;
        self.stats.gc_runs += 1;
        self.stats.gc_moved_pages += moved as u64;
        self.emit(Event::GcCompaction {
            tick: self.tick(),
            block: victim.0,
            moved_pages: moved,
        });
        let retired = self.erase_block_internal(victim, &mut gc_us)?;
        self.stats.gc_time_us += gc_us;
        if !retired {
            let storage = self.storage_kind(kind);
            self.fbst.get_mut(victim).region = storage;
            let region = self.region_mut(kind);
            if region.spare.is_none() {
                region.spare = Some(victim);
            } else {
                region.free.push_back(victim);
            }
        }
        Ok(true)
    }

    /// Relocates every valid page of `src` via the region's allocation
    /// stream (open block, then free blocks, then the spare). Pages that
    /// cannot be placed are evicted (dirty ones flushed). Returns the
    /// number of pages moved.
    fn relocate_valid_pages(
        &mut self,
        src: BlockId,
        kind: RegionKind,
        gc_us: &mut f64,
    ) -> Result<u32, CacheError> {
        let spb = self.device.geometry().slots_per_block();
        let mut moved = 0;
        for slot in 0..spb {
            let addr = PageAddr::new(src, slot);
            if !self.fpst.get(addr).valid {
                continue;
            }
            if self.move_page(addr, kind, gc_us)? {
                moved += 1;
            }
        }
        Ok(moved)
    }

    /// Moves one valid page to a new location. Returns `false` if the
    /// page was dropped instead (uncorrectable or no destination).
    fn move_page(
        &mut self,
        src: PageAddr,
        kind: RegionKind,
        gc_us: &mut f64,
    ) -> Result<bool, CacheError> {
        let st = *self.fpst.get(src);
        let live_t = self.live_strength[src.block.0 as usize
            * self.device.geometry().slots_per_block() as usize
            + src.slot as usize];
        let out = self
            .device
            .read_page_with(src, OpContext::background())
            .map_err(|source| CacheError::TableCorruption { addr: src, source })?;
        self.stats.flash_reads += 1;
        *gc_us += out.latency_us + self.config.ecc_latency.decode_us(live_t as usize);
        if out.raw_bit_errors > live_t as u32 {
            // Content lost during relocation.
            self.stats.uncorrectable_reads += 1;
            self.emit(Event::UncorrectableRead {
                tick: self.tick(),
                block: src.block.0,
                slot: src.slot,
                bit_errors: out.raw_bit_errors,
            });
            self.drop_valid_page(src, false);
            return Ok(false);
        }
        let access = self.fpst.access_count(src);
        let want_slc = access >= self.config.hot_threshold && self.policy_allows_slc();
        let Some(dst) = self.gc_dest_slot(kind, want_slc, self.top_bucket(kind)) else {
            self.drop_valid_page(src, true);
            return Ok(false);
        };
        let disk_page = self
            .fpst
            .disk_page(src)
            .ok_or(CacheError::MappingMissing { addr: src })?;
        // Re-home: clear the old mapping (no flush — data is moving).
        {
            let s = self.fpst.get_mut(src);
            s.valid = false;
            s.dirty = false;
        }
        self.fpst.clear_disk_page(src);
        let region = self.fbst.get(src.block).region;
        let bs = self.fbst.get_mut(src.block);
        bs.valid_pages -= 1;
        bs.invalid_pages += 1;
        let r = self.region_mut(region);
        r.valid_pages -= 1;
        r.invalid_pages += 1;
        self.reclaim_sync(src.block);
        let lat = self.program_slot(dst, disk_page, st.dirty, access)?;
        *gc_us += lat;
        Ok(true)
    }

    /// A destination slot for relocation: never recurses into
    /// `make_space`; falls back to consuming the spare block. GC
    /// survivors have proven longevity, so callers route them to the
    /// region's top bucket.
    fn gc_dest_slot(&mut self, kind: RegionKind, want_slc: bool, bucket: u32) -> Option<PageAddr> {
        loop {
            if let Some(a) = self.take_from_open(kind, want_slc, bucket) {
                return Some(a);
            }
            let region = self.region_mut(kind);
            let bi = (bucket as usize).min(region.open.len() - 1);
            if let Some(b) = region.free.pop_front() {
                region.open[bi] = Some(OpenBlock {
                    id: b,
                    next_slot: 0,
                });
                continue;
            }
            if let Some(s) = region.spare.take() {
                region.open[bi] = Some(OpenBlock {
                    id: s,
                    next_slot: 0,
                });
                continue;
            }
            return None;
        }
    }

    /// Evicts a whole block chosen by block-LRU, applying the
    /// wear-level-aware override of §3.6.
    fn evict_block(&mut self, kind: RegionKind) -> Result<bool, CacheError> {
        let Some(victim) = self.find_lru_victim(kind) else {
            return Ok(false);
        };
        if self.config.wear_threshold.is_finite() {
            if let Some(newest) = self.find_newest_block(victim) {
                let (k1, k2) = (self.config.wear_k1, self.config.wear_k2);
                let w_victim = self.fbst.wear_out(victim, k1, k2);
                let w_newest = self.fbst.wear_out(newest, k1, k2);
                if w_victim - w_newest > self.config.wear_threshold {
                    return self.wear_level_swap(victim, newest, kind);
                }
            }
        }
        self.drop_block_content(victim);
        self.stats.evictions += 1;
        self.erase_and_recycle(victim, kind)?;
        Ok(true)
    }

    /// §3.6: the old (worn, LRU) block absorbs the newest block's
    /// content; the newest block is erased and handed to the requesting
    /// region, balancing wear.
    fn wear_level_swap(
        &mut self,
        old: BlockId,
        newest: BlockId,
        kind: RegionKind,
    ) -> Result<bool, CacheError> {
        self.drop_block_content(old);
        self.stats.evictions += 1;
        let mut gc_us = 0.0;
        let old_retired = self.erase_block_internal(old, &mut gc_us)?;
        if old_retired {
            // The worn block died on erase; treat as a plain eviction.
            self.stats.gc_time_us += gc_us;
            return Ok(true);
        }
        // The old block takes over the newest block's identity.
        let newest_state = *self.fbst.get(newest);
        {
            let bs = self.fbst.get_mut(old);
            bs.region = newest_state.region;
            bs.last_access = newest_state.last_access;
        }
        self.migrate_block_content(newest, old, &mut gc_us)?;
        // If migration salvaged nothing (end-of-life uncorrectable reads
        // can drop every page), the old block is erased and empty: hand
        // it to the requesting region's free pool rather than leaving it
        // orphaned outside every allocator structure.
        let old_bs = self.fbst.get(old);
        if old_bs.valid_pages + old_bs.invalid_pages == 0 {
            let storage = self.storage_kind(kind);
            self.fbst.get_mut(old).region = storage;
            self.region_mut(kind).free.push_back(old);
        }
        let newest_retired = self.erase_block_internal(newest, &mut gc_us)?;
        self.stats.gc_time_us += gc_us;
        if !newest_retired {
            let storage = self.storage_kind(kind);
            self.fbst.get_mut(newest).region = storage;
            self.region_mut(kind).free.push_back(newest);
        }
        self.stats.wear_migrations += 1;
        self.emit(Event::WearMigration {
            tick: self.tick(),
            worn_block: old.0,
            newest_block: newest.0,
        });
        Ok(true)
    }

    /// Moves every valid page of `src` into block `dst` (assumed fully
    /// erased), walking `dst`'s slots with the same mode rules as normal
    /// allocation. Unplaceable pages are evicted (flushed if dirty).
    fn migrate_block_content(
        &mut self,
        src: BlockId,
        dst: BlockId,
        gc_us: &mut f64,
    ) -> Result<(), CacheError> {
        let spb = self.device.geometry().slots_per_block();
        let mut dst_slot = 0u32;
        for slot in 0..spb {
            let s_addr = PageAddr::new(src, slot);
            if !self.fpst.get(s_addr).valid {
                continue;
            }
            let st = *self.fpst.get(s_addr);
            let live_t =
                self.live_strength[s_addr.block.0 as usize * spb as usize + s_addr.slot as usize];
            let out = self
                .device
                .read_page_with(s_addr, OpContext::background())
                .map_err(|source| CacheError::TableCorruption {
                    addr: s_addr,
                    source,
                })?;
            self.stats.flash_reads += 1;
            *gc_us += out.latency_us + self.config.ecc_latency.decode_us(live_t as usize);
            if out.raw_bit_errors > live_t as u32 {
                self.stats.uncorrectable_reads += 1;
                self.emit(Event::UncorrectableRead {
                    tick: self.tick(),
                    block: s_addr.block.0,
                    slot: s_addr.slot,
                    bit_errors: out.raw_bit_errors,
                });
                self.drop_valid_page(s_addr, false);
                continue;
            }
            // Find the next compatible slot in dst — the same walk as
            // open-block allocation (see `advance_slot`).
            let access = self.fpst.access_count(s_addr);
            let want_slc = access >= self.config.hot_threshold && self.policy_allows_slc();
            match self.advance_slot(dst, &mut dst_slot, want_slc) {
                Some(d_addr) => {
                    let disk_page = self
                        .fpst
                        .disk_page(s_addr)
                        .ok_or(CacheError::MappingMissing { addr: s_addr })?;
                    let sp = self.fpst.get_mut(s_addr);
                    sp.valid = false;
                    sp.dirty = false;
                    self.fpst.clear_disk_page(s_addr);
                    let region = self.fbst.get(src).region;
                    let bs = self.fbst.get_mut(src);
                    bs.valid_pages -= 1;
                    bs.invalid_pages += 1;
                    let r = self.region_mut(region);
                    r.valid_pages -= 1;
                    r.invalid_pages += 1;
                    self.reclaim_sync(src);
                    let lat = self.program_slot(d_addr, disk_page, st.dirty, access)?;
                    *gc_us += lat;
                    self.stats.gc_moved_pages += 1;
                }
                None => {
                    self.drop_valid_page(s_addr, true);
                }
            }
        }
        Ok(())
    }

    /// Flushes/drops every valid page of a block prior to erasure.
    fn drop_block_content(&mut self, b: BlockId) {
        let spb = self.device.geometry().slots_per_block();
        for slot in 0..spb {
            let addr = PageAddr::new(b, slot);
            if self.fpst.get(addr).valid {
                self.drop_valid_page(addr, true);
            }
        }
    }

    /// Erases `b` (which must hold no valid pages), resets its page
    /// bookkeeping, probes post-erase health, and retires the block if a
    /// physical page can no longer be protected at any configuration the
    /// policy can reach. Returns `true` if the block was retired.
    fn erase_block_internal(&mut self, b: BlockId, gc_us: &mut f64) -> Result<bool, CacheError> {
        debug_assert_eq!(self.fbst.get(b).valid_pages, 0, "erase of live block");
        let region = self.fbst.get(b).region;
        let invalid = self.fbst.get(b).invalid_pages;
        self.region_mut(region).invalid_pages -= invalid as u64;
        let spb = self.device.geometry().slots_per_block();
        for slot in 0..spb {
            let addr = PageAddr::new(b, slot);
            let st = self.fpst.get_mut(addr);
            st.valid = false;
            st.dirty = false;
            st.access_count = 0;
            st.error_streak = 0;
            self.fpst.clear_disk_page(addr);
        }
        {
            let bs = self.fbst.get_mut(b);
            bs.valid_pages = 0;
            bs.invalid_pages = 0;
            bs.erase_count += 1;
        }
        let out = self
            .device
            .erase_block_with(b, OpContext::background())
            .map_err(|source| CacheError::BlockOp { block: b, source })?;
        self.stats.erases += 1;
        self.emit(Event::BlockErased {
            tick: self.tick(),
            block: b.0,
            erase_count: out.erase_count,
        });
        *gc_us += out.latency_us;
        // Retirement probe (§5.2): a page past the strongest reachable
        // configuration kills the whole block.
        let max_t = self.policy_max_strength() as u32;
        let allow_slc = self.policy_allows_slc();
        let mut dead = false;
        for phys in 0..self.device.geometry().pages_per_block {
            let addr = PageAddr::new(b, phys * 2);
            let (fail_slc, fail_mlc) = self.device.probe_page_health(addr);
            let best_case = if allow_slc { fail_slc } else { fail_mlc };
            if best_case > max_t {
                dead = true;
                break;
            }
        }
        if dead {
            self.fbst.get_mut(b).retired = true;
            self.stats.retired_blocks += 1;
            self.emit(Event::BlockRetired {
                tick: self.tick(),
                block: b.0,
            });
            self.usable_slots = self
                .usable_slots
                .saturating_sub(self.device.geometry().slots_per_block() as u64);
        }
        // One reconciliation covers the erase (counts zeroed, erase_count
        // bumped) and any retirement. Callers may reassign the block's
        // region afterwards, but only while it is empty — a no-op for the
        // index, so no further sync is needed at the handoff sites.
        self.reclaim_sync(b);
        Ok(dead)
    }

    /// Erase + return the block to `kind`'s free pool (unless retired).
    fn erase_and_recycle(&mut self, b: BlockId, kind: RegionKind) -> Result<bool, CacheError> {
        let mut gc_us = 0.0;
        let retired = self.erase_block_internal(b, &mut gc_us)?;
        self.stats.gc_time_us += gc_us;
        if !retired {
            let storage = self.storage_kind(kind);
            self.fbst.get_mut(b).region = storage;
            self.region_mut(kind).free.push_back(b);
        }
        Ok(!retired)
    }

    /// Test/diagnostic hook: consistency check between the incremental
    /// region counters and a full FPST scan. O(slots); debug use only.
    #[doc(hidden)]
    pub fn check_invariants(&self) -> Result<(), String> {
        let g = self.device.geometry();
        let mut valid = [0u64; 2];
        let mut invalid_programmed = 0u64;
        for b in g.iter_blocks() {
            let mut bv = 0u32;
            for slot in 0..g.slots_per_block() {
                let addr = PageAddr::new(b, slot);
                let st = self.fpst.get(addr);
                if st.valid {
                    bv += 1;
                    let dp = self
                        .fpst
                        .disk_page(addr)
                        .ok_or_else(|| format!("{addr}: valid without mapping"))?;
                    if self.fcht.lookup(dp) != Some(addr) {
                        return Err(format!("{addr}: FCHT does not point back"));
                    }
                    let idx = match self.fbst.get(b).region {
                        RegionKind::Read => 0,
                        RegionKind::Write => 1,
                    };
                    valid[idx] += 1;
                    if !self.device.is_programmed(addr) {
                        return Err(format!("{addr}: valid but not programmed on device"));
                    }
                }
            }
            let bs = self.fbst.get(b);
            if bs.valid_pages != bv {
                return Err(format!(
                    "{b}: FBST valid {} != recount {bv}",
                    bs.valid_pages
                ));
            }
            // The incrementally maintained wear-cost components must
            // agree with a full FPST recount.
            if bs.total_ecc != self.fpst.total_ecc(b) {
                return Err(format!(
                    "{b}: FBST TotalECC {} != FPST recount {}",
                    bs.total_ecc,
                    self.fpst.total_ecc(b)
                ));
            }
            if bs.slc_pages != self.fpst.total_slc(b) {
                return Err(format!(
                    "{b}: FBST TotalSLC {} != FPST recount {}",
                    bs.slc_pages,
                    self.fpst.total_slc(b)
                ));
            }
            invalid_programmed += bs.invalid_pages as u64;
        }
        let region_valid = self.read_region.valid_pages + self.write_region.valid_pages;
        if region_valid != valid[0] + valid[1] {
            return Err(format!(
                "region valid counters {region_valid} != recount {}",
                valid[0] + valid[1]
            ));
        }
        let region_invalid = self.read_region.invalid_pages + self.write_region.invalid_pages;
        if region_invalid != invalid_programmed {
            return Err(format!(
                "region invalid counters {region_invalid} != recount {invalid_programmed}"
            ));
        }
        if self.fcht.len() as u64 != valid[0] + valid[1] {
            return Err(format!(
                "FCHT size {} != valid pages {}",
                self.fcht.len(),
                valid[0] + valid[1]
            ));
        }
        // The incremental reclaim index must mirror the FBST exactly
        // (membership and keys), whether or not queries are routed to it.
        self.reclaim
            .verify(&self.fbst, self.config.wear_k1, self.config.wear_k2)?;
        // Differential: every index query must return a victim with the
        // same ordering key as the O(blocks) scan oracle. Ties may break
        // toward a different block; the keys must agree.
        let reserved = |b: BlockId| self.block_is_reserved(b);
        let kinds: &[RegionKind] = if self.unified {
            &[RegionKind::Read]
        } else {
            &[RegionKind::Read, RegionKind::Write]
        };
        let mut excludes = vec![BlockId(u32::MAX)];
        for &kind in kinds {
            let scan = self.find_fully_invalid_scan(kind);
            let idx = self.reclaim.fully_invalid(kind, reserved);
            if scan.is_some() != idx.is_some() {
                return Err(format!(
                    "{kind:?}: fully-invalid scan {scan:?} vs index {idx:?}"
                ));
            }
            let scan = self.find_gc_victim_scan(kind);
            let idx = self.reclaim.gc_victim(kind, self.gc_floor(), reserved);
            match (scan, idx) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    let (ka, kb) = (
                        self.fbst.get(a).invalid_pages,
                        self.fbst.get(b).invalid_pages,
                    );
                    if ka != kb {
                        return Err(format!(
                            "{kind:?}: GC scan {a} (invalid {ka}) vs index {b} (invalid {kb})"
                        ));
                    }
                }
                (scan, idx) => {
                    return Err(format!("{kind:?}: GC scan {scan:?} vs index {idx:?}"));
                }
            }
            let scan = self.find_lru_victim_scan(kind);
            let idx = self.reclaim.lru_victim(kind, reserved);
            match (scan, idx) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    let (ka, kb) = (self.fbst.get(a).last_access, self.fbst.get(b).last_access);
                    if ka != kb {
                        return Err(format!(
                            "{kind:?}: LRU scan {a} (access {ka}) vs index {b} (access {kb})"
                        ));
                    }
                    excludes.push(a);
                }
                (scan, idx) => {
                    return Err(format!("{kind:?}: LRU scan {scan:?} vs index {idx:?}"));
                }
            }
        }
        // Newest-block query, both with a sentinel exclusion and with the
        // real eviction victims §3.6 would compare against.
        let (k1, k2) = (self.config.wear_k1, self.config.wear_k2);
        for exclude in excludes {
            let scan = self.find_newest_block_scan(exclude);
            let idx = self.reclaim.newest_block(exclude, reserved);
            match (scan, idx) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    let (wa, wb) = (self.fbst.wear_out(a, k1, k2), self.fbst.wear_out(b, k1, k2));
                    if wa != wb {
                        return Err(format!(
                            "newest scan {a} (wear {wa}) vs index {b} (wear {wb})"
                        ));
                    }
                }
                (scan, idx) => {
                    return Err(format!("newest scan {scan:?} vs index {idx:?}"));
                }
            }
        }
        let _ = CacheStats::default();
        Ok(())
    }
}
