//! Aggregate statistics of the flash disk cache.

use std::fmt;

/// Counters accumulated by a [`crate::cache::FlashCache`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CacheStats {
    /// Read lookups.
    pub reads: u64,
    /// Read hits.
    pub read_hits: u64,
    /// Write lookups.
    pub writes: u64,
    /// Writes that updated a page already cached (in either region).
    pub write_hits: u64,
    /// Flash page reads issued to the device.
    pub flash_reads: u64,
    /// Flash page programs issued to the device.
    pub flash_programs: u64,
    /// Block erases issued to the device.
    pub erases: u64,
    /// Garbage-collection passes.
    pub gc_runs: u64,
    /// Valid pages relocated by GC.
    pub gc_moved_pages: u64,
    /// Time spent in background GC, µs.
    pub gc_time_us: f64,
    /// Whole-block evictions.
    pub evictions: u64,
    /// Dirty pages flushed to disk by evictions/GC.
    pub flushed_dirty_pages: u64,
    /// Wear-levelling migrations (newest-block content moved, §3.6).
    pub wear_migrations: u64,
    /// Controller reconfigurations that raised ECC strength.
    pub reconfig_ecc: u64,
    /// Controller reconfigurations that switched MLC→SLC density
    /// (both fault-driven and hot-page promotions).
    pub reconfig_density: u64,
    /// Hot-page promotions to SLC (subset of `reconfig_density`).
    pub hot_promotions: u64,
    /// Reads whose raw bit errors exceeded the configured ECC strength
    /// (data lost; satisfied from disk).
    pub uncorrectable_reads: u64,
    /// Blocks permanently retired.
    pub retired_blocks: u64,
    /// Foreground latency accumulated by cache operations, µs
    /// (flash + ECC; disk time is accounted by the caller).
    pub foreground_us: f64,
    /// Off-critical-path fill/migration time, µs (excludes GC time,
    /// which is tracked in `gc_time_us`).
    pub background_us: f64,
    /// ECC decode/encode latency included in `foreground_us`, µs.
    pub ecc_us: f64,
    /// Reclaim victim queries answered by the incremental index.
    pub reclaim_index_queries: u64,
    /// Index-answered queries that produced a victim.
    pub reclaim_index_hits: u64,
    /// Reclaim victim queries answered by the O(blocks) FBST scan
    /// (index disabled via `use_reclaim_index: false`).
    pub reclaim_scan_fallbacks: u64,
    /// Internal errors degraded into bypassed outcomes by the infallible
    /// entry points (`read`/`write` catching a
    /// [`CacheError`](crate::CacheError) from their `try_` twins).
    pub internal_errors: u64,
    /// Read-miss fills the admission policy kept out of flash (the
    /// request was still served from disk; nothing was cached).
    pub admission_rejected_fills: u64,
    /// Host writes the admission policy sent straight to disk instead
    /// of programming into the write region.
    pub admission_rejected_writes: u64,
    /// Host writes absorbed in place by an already-dirty cached copy
    /// (dirty-page coalescing; no reprogram was issued).
    pub admission_coalesced_writes: u64,
    /// Bytes of admitted host writes programmed into flash — the
    /// quantity a [`WriteCap`](crate::admission::WriteCap) policy
    /// bounds. Excludes fills and GC relocation traffic.
    pub admission_bytes_written: u64,
}

impl CacheStats {
    /// Read miss rate.
    pub fn read_miss_rate(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            1.0 - self.read_hits as f64 / self.reads as f64
        }
    }

    /// Overall miss rate across reads and writes, counting a write to an
    /// uncached page as a miss (the metric of Figure 4).
    pub fn miss_rate(&self) -> f64 {
        let total = self.reads + self.writes;
        if total == 0 {
            0.0
        } else {
            1.0 - (self.read_hits + self.write_hits) as f64 / total as f64
        }
    }

    /// Accumulates `other` into `self`, field by field.
    ///
    /// Used by the sharded engine to report paper-faithful totals across
    /// shard-partitioned caches: every counter and accumulated duration
    /// is additive, so the merged value equals what a single cache
    /// serving the union of the traffic would have counted for the same
    /// per-shard event sequences.
    pub fn merge(&mut self, other: &CacheStats) {
        self.reads += other.reads;
        self.read_hits += other.read_hits;
        self.writes += other.writes;
        self.write_hits += other.write_hits;
        self.flash_reads += other.flash_reads;
        self.flash_programs += other.flash_programs;
        self.erases += other.erases;
        self.gc_runs += other.gc_runs;
        self.gc_moved_pages += other.gc_moved_pages;
        self.gc_time_us += other.gc_time_us;
        self.evictions += other.evictions;
        self.flushed_dirty_pages += other.flushed_dirty_pages;
        self.wear_migrations += other.wear_migrations;
        self.reconfig_ecc += other.reconfig_ecc;
        self.reconfig_density += other.reconfig_density;
        self.hot_promotions += other.hot_promotions;
        self.uncorrectable_reads += other.uncorrectable_reads;
        self.retired_blocks += other.retired_blocks;
        self.foreground_us += other.foreground_us;
        self.background_us += other.background_us;
        self.ecc_us += other.ecc_us;
        self.reclaim_index_queries += other.reclaim_index_queries;
        self.reclaim_index_hits += other.reclaim_index_hits;
        self.reclaim_scan_fallbacks += other.reclaim_scan_fallbacks;
        self.internal_errors += other.internal_errors;
        self.admission_rejected_fills += other.admission_rejected_fills;
        self.admission_rejected_writes += other.admission_rejected_writes;
        self.admission_coalesced_writes += other.admission_coalesced_writes;
        self.admission_bytes_written += other.admission_bytes_written;
    }

    /// GC overhead: GC time relative to all time the cache spent working
    /// (the Figure 1(b) metric).
    pub fn gc_overhead(&self) -> f64 {
        let total = self.foreground_us + self.background_us + self.gc_time_us;
        if total == 0.0 {
            0.0
        } else {
            self.gc_time_us / total
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "reads {} (hit {:.1}%), writes {} (hit {:.1}%)",
            self.reads,
            100.0 * (1.0 - self.read_miss_rate()),
            self.writes,
            if self.writes == 0 {
                0.0
            } else {
                100.0 * self.write_hits as f64 / self.writes as f64
            }
        )?;
        writeln!(
            f,
            "flash: {} reads, {} programs, {} erases",
            self.flash_reads, self.flash_programs, self.erases
        )?;
        writeln!(
            f,
            "gc: {} runs moved {} pages ({:.2}% time overhead); {} evictions, {} flushed",
            self.gc_runs,
            self.gc_moved_pages,
            100.0 * self.gc_overhead(),
            self.evictions,
            self.flushed_dirty_pages
        )?;
        write!(
            f,
            "controller: +ecc {} / density {} (hot {}), uncorrectable {}, retired blocks {}, wear migrations {}",
            self.reconfig_ecc,
            self.reconfig_density,
            self.hot_promotions,
            self.uncorrectable_reads,
            self.retired_blocks,
            self.wear_migrations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_empty() {
        let s = CacheStats::default();
        assert_eq!(s.read_miss_rate(), 0.0);
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.gc_overhead(), 0.0);
    }

    #[test]
    fn miss_rates_computed() {
        let s = CacheStats {
            reads: 100,
            read_hits: 80,
            writes: 100,
            write_hits: 40,
            ..CacheStats::default()
        };
        assert!((s.read_miss_rate() - 0.2).abs() < 1e-12);
        assert!((s.miss_rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn gc_overhead_fraction() {
        let s = CacheStats {
            foreground_us: 900.0,
            gc_time_us: 100.0,
            ..CacheStats::default()
        };
        assert!((s.gc_overhead() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn merge_is_fieldwise_additive() {
        let a = CacheStats {
            reads: 3,
            read_hits: 2,
            gc_time_us: 1.5,
            internal_errors: 1,
            ..CacheStats::default()
        };
        let b = CacheStats {
            reads: 4,
            writes: 7,
            gc_time_us: 0.5,
            admission_rejected_writes: 3,
            admission_bytes_written: 4096,
            ..CacheStats::default()
        };
        let mut m = a;
        m.merge(&b);
        assert_eq!(m.reads, 7);
        assert_eq!(m.read_hits, 2);
        assert_eq!(m.writes, 7);
        assert_eq!(m.internal_errors, 1);
        assert_eq!(m.admission_rejected_writes, 3);
        assert_eq!(m.admission_bytes_written, 4096);
        assert!((m.gc_time_us - 2.0).abs() < 1e-12);
        // Merging the zero stats is the identity.
        let mut z = a;
        z.merge(&CacheStats::default());
        assert_eq!(z, a);
    }

    #[test]
    fn display_mentions_key_counters() {
        let s = CacheStats {
            reads: 5,
            gc_runs: 2,
            ..CacheStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("reads 5"));
        assert!(text.contains("gc: 2 runs"));
    }
}
